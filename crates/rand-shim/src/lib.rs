//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace cannot reach a registry, so the
//! workspace patches `rand` to this crate (see `[patch.crates-io]` in the
//! root `Cargo.toml`). It implements the exact API surface the workspace
//! uses — [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`]/[`RngExt`] method families — on a splitmix64 seed expander and a
//! xoshiro256++ generator core.
//!
//! The streams differ from upstream `rand`'s ChaCha-based `StdRng`, but
//! every consumer in this workspace only relies on *seed determinism*
//! (same seed ⇒ same stream), which holds here on every platform.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u32`/`u64` words.
pub trait Rng {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type samplable uniformly over its "standard" domain (`[0,1)` for
/// floats, the full range for integers).
pub trait StandardSample: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
              u64 => next_u64, usize => next_u64,
              i8 => next_u32, i16 => next_u32, i32 => next_u32,
              i64 => next_u64, isize => next_u64);

/// A range argument accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = StandardSample::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}
range_float!(f32, f64);

/// Unbiased uniform draw in `[0, span)` via Lemire's multiply-shift with a
/// rejection step. `span == 0` means the full 64-bit range.
fn uniform_u64_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        let lo = m as u64;
        if lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

/// High-level sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A standard draw: `[0,1)` for floats, the full range for integers.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform draw from `range` (`lo..hi` or `lo..=hi`).
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed through splitmix64 — the
    /// recommended seeding scheme for the xoshiro family.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// splitmix64 — used to expand seeds.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(state: u64) -> Self {
        Self { state }
    }
}

impl Rng for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    //! Concrete generators, mirroring `rand::rngs`.

    use super::{Rng, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna).
    /// Not the upstream ChaCha12 — streams differ from crates.io `rand`,
    /// but seed determinism (the only property consumers here rely on)
    /// is preserved.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256++ state words. Together with [`from_state`]
        /// this lets a checkpoint capture the exact stream position so a
        /// resumed run continues the *same* random sequence.
        ///
        /// [`from_state`]: StdRng::from_state
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at an exact stream position previously
        /// captured with [`StdRng::state`]. An all-zero state is a fixed
        /// point of xoshiro and is nudged the same way as in `from_seed`.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self {
                    s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
                };
            }
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (w, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = r.random();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = r.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for i in 1usize..200 {
            let j = r.random_range(0..i);
            assert!(j < i);
            let k = r.random_range(0..=i);
            assert!(k <= i);
            let f = r.random_range(-1.5f32..1.5);
            assert!((-1.5..1.5).contains(&f));
        }
        let u: u32 = r.random_range(5..6);
        assert_eq!(u, 5);
    }

    #[test]
    fn int_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn mean_of_unit_draws_is_half() {
        let mut r = StdRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.random::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.005);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(7);
        for _ in 0..9 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // A zero state is nudged, never a fixed point.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn random_bool_probability() {
        let mut r = StdRng::seed_from_u64(6);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.random_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "got {frac}");
    }
}
