//! # lrgcn-stream — append-only crash-safe interaction event log
//!
//! The write path of the streaming ingestion subsystem (DESIGN.md §13):
//! `POST /events` appends framed binary records here, the serving engine
//! folds the tail of the log into its read state, and `lrgcn retrain`
//! replays the whole log into the training matrices.
//!
//! ## Durability contract
//!
//! * Every record is framed as `u32 len | u32 crc32(payload) | payload`,
//!   appended to fsync'd segment files under one directory
//!   (`events-NNNNNN.seg`, each starting with an 8-byte magic).
//! * [`EventLog::append_batch`] acknowledges a batch only after
//!   `fdatasync` of all its frames — **an acknowledged event is never
//!   lost**, no matter where a crash lands.
//! * On [`EventLog::open`] after a crash, a torn frame at the tail of the
//!   *newest* segment is truncated away (it was never acknowledged); a
//!   torn frame anywhere else is real corruption and refuses to open.
//! * Replay is deterministic: the recovered event sequence is exactly the
//!   acknowledged append order, so folding it into any consumer
//!   reproduces the pre-crash state byte-for-byte.
//!
//! ## Idempotency
//!
//! Producers may stamp events with a `(client, seq)` pair; the log keeps a
//! per-client high-water mark (rebuilt on replay) and silently drops
//! re-sent events with `seq` at or below it, so at-least-once retries
//! after a 503 or a lost ack never duplicate records. Events with an empty
//! client id opt out of deduplication.
//!
//! Fault injection: `LRGCN_FAULT` `io_error:<p>` clauses also fire on
//! appends (see `lrgcn_tensor::faultfs::append_fault`); an injected fault
//! leaves no acknowledged bytes behind (the partial frame is rolled back)
//! and surfaces as a retryable error.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use lrgcn_tensor::Matrix;

/// 8-byte magic at the start of every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"LRGCNEV1";

/// Default rotation threshold for segment files.
pub const DEFAULT_SEGMENT_BYTES: u64 = 1 << 20;

/// Name of the reserved checkpoint entry recording how many log events the
/// checkpoint's training matrices already include (the "covered" prefix).
/// Written by `lrgcn retrain`, read by the serving engine so the fold-in
/// delta starts exactly where the checkpoint left off.
pub const COVERED_ENTRY: &str = "__stream__:covered";

/// One interaction event as recorded in the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamEvent {
    pub user: u32,
    pub item: u32,
    pub timestamp: i64,
    /// Producer id for idempotent retries; empty opts out.
    pub client: String,
    /// Producer-assigned sequence number (monotone per client).
    pub seq: u64,
    /// The `x-lrgcn-request-id` of the HTTP request that carried the
    /// event, for end-to-end tracing (arrival → fold-in → generation).
    pub request_id: String,
}

/// Outcome of one acknowledged append.
#[derive(Debug, Default)]
pub struct AppendOutcome {
    /// Events durably written by this call, in append order.
    pub accepted: Vec<StreamEvent>,
    /// Events dropped as idempotent duplicates.
    pub duplicates: usize,
}

// ---------------------------------------------------------------------------
// crc32 (IEEE, reflected) — table-driven, zero-dependency.
// ---------------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

/// IEEE CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = !0u32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Record encoding
// ---------------------------------------------------------------------------

/// Longest allowed client / request-id string in a record.
const MAX_STR: usize = 256;

fn encode_payload(ev: &StreamEvent, out: &mut Vec<u8>) -> Result<(), String> {
    if ev.client.len() > MAX_STR {
        return Err(format!("client id longer than {MAX_STR} bytes"));
    }
    if ev.request_id.len() > MAX_STR {
        return Err(format!("request id longer than {MAX_STR} bytes"));
    }
    out.extend_from_slice(&ev.user.to_le_bytes());
    out.extend_from_slice(&ev.item.to_le_bytes());
    out.extend_from_slice(&ev.timestamp.to_le_bytes());
    out.extend_from_slice(&ev.seq.to_le_bytes());
    out.extend_from_slice(&(ev.client.len() as u16).to_le_bytes());
    out.extend_from_slice(ev.client.as_bytes());
    out.extend_from_slice(&(ev.request_id.len() as u16).to_le_bytes());
    out.extend_from_slice(ev.request_id.as_bytes());
    Ok(())
}

fn decode_payload(buf: &[u8]) -> Result<StreamEvent, String> {
    let take = |buf: &[u8], at: usize, n: usize| -> Result<Vec<u8>, String> {
        buf.get(at..at + n)
            .map(|s| s.to_vec())
            .ok_or_else(|| "record payload truncated".to_string())
    };
    let u32_at = |at: usize| -> Result<u32, String> {
        Ok(u32::from_le_bytes(take(buf, at, 4)?.try_into().unwrap()))
    };
    let user = u32_at(0)?;
    let item = u32_at(4)?;
    let timestamp = i64::from_le_bytes(take(buf, 8, 8)?.try_into().unwrap());
    let seq = u64::from_le_bytes(take(buf, 16, 8)?.try_into().unwrap());
    let clen = u16::from_le_bytes(take(buf, 24, 2)?.try_into().unwrap()) as usize;
    let client = String::from_utf8(take(buf, 26, clen)?)
        .map_err(|_| "client id is not UTF-8".to_string())?;
    let rat = 26 + clen;
    let rlen = u16::from_le_bytes(take(buf, rat, 2)?.try_into().unwrap()) as usize;
    let request_id = String::from_utf8(take(buf, rat + 2, rlen)?)
        .map_err(|_| "request id is not UTF-8".to_string())?;
    if rat + 2 + rlen != buf.len() {
        return Err("record payload has trailing bytes".to_string());
    }
    Ok(StreamEvent { user, item, timestamp, client, seq, request_id })
}

fn encode_frame(ev: &StreamEvent, out: &mut Vec<u8>) -> Result<(), String> {
    let mut payload = Vec::with_capacity(64);
    encode_payload(ev, &mut payload)?;
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    Ok(())
}

/// Largest frame we accept when scanning (defends against reading a
/// garbage length field in a torn tail).
const MAX_FRAME_PAYLOAD: u32 = 16 * 1024;

/// Scans one segment's bytes. Returns the decoded events and the byte
/// offset of the end of the last *valid* frame; `Ok` even when a torn tail
/// follows (the caller decides whether truncation is allowed).
fn scan_segment(bytes: &[u8]) -> Result<(Vec<StreamEvent>, u64), String> {
    if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return Err("segment missing magic header".to_string());
    }
    let mut events = Vec::new();
    let mut at = SEGMENT_MAGIC.len();
    let mut good_end = at as u64;
    while at + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        if len > MAX_FRAME_PAYLOAD {
            break; // torn/garbage length field
        }
        let (start, end) = (at + 8, at + 8 + len as usize);
        if end > bytes.len() {
            break; // torn frame: payload runs past the file
        }
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            break; // torn frame: checksum mismatch
        }
        match decode_payload(payload) {
            Ok(ev) => events.push(ev),
            Err(_) => break, // checksum passed but payload malformed: treat as torn
        }
        at = end;
        good_end = at as u64;
    }
    Ok((events, good_end))
}

fn segment_name(n: u64) -> String {
    format!("events-{n:06}.seg")
}

fn list_segments(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut segs = Vec::new();
    let rd = fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in rd {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("events-") && name.ends_with(".seg") {
            segs.push(entry.path());
        }
    }
    segs.sort();
    Ok(segs)
}

fn fsync_dir(dir: &Path) -> Result<(), String> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| format!("fsync {}: {e}", dir.display()))
}

/// The writable, replayable event log over one directory of segments.
pub struct EventLog {
    dir: PathBuf,
    segment_bytes: u64,
    /// 1-based index of the current (newest) segment.
    current_seg: u64,
    file: File,
    file_len: u64,
    events: Vec<StreamEvent>,
    /// Per-client acknowledged-sequence high-water marks.
    hwm: HashMap<String, u64>,
    /// Set when a failed append could not be rolled back; all further
    /// appends refuse rather than risk writing after a torn frame.
    poisoned: bool,
}

impl EventLog {
    /// Opens (creating if needed) the log at `dir`, replaying all segments
    /// and truncating a torn tail on the newest one.
    pub fn open(dir: impl AsRef<Path>) -> Result<EventLog, String> {
        Self::open_with_segment_bytes(dir, DEFAULT_SEGMENT_BYTES)
    }

    /// [`EventLog::open`] with an explicit rotation threshold (tests).
    pub fn open_with_segment_bytes(
        dir: impl AsRef<Path>,
        segment_bytes: u64,
    ) -> Result<EventLog, String> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        let mut segs = list_segments(&dir)?;
        if segs.is_empty() {
            let first = dir.join(segment_name(1));
            let mut f = File::create(&first)
                .map_err(|e| format!("creating {}: {e}", first.display()))?;
            f.write_all(SEGMENT_MAGIC)
                .and_then(|_| f.sync_all())
                .map_err(|e| format!("initializing {}: {e}", first.display()))?;
            fsync_dir(&dir)?;
            segs.push(first);
        }
        let mut events = Vec::new();
        let last = segs.len() - 1;
        let mut tail_good_end = 0u64;
        for (i, seg) in segs.iter().enumerate() {
            let bytes =
                fs::read(seg).map_err(|e| format!("reading {}: {e}", seg.display()))?;
            let (evs, good_end) = scan_segment(&bytes)
                .map_err(|e| format!("{}: {e}", seg.display()))?;
            if i < last && (good_end as usize) != bytes.len() {
                return Err(format!(
                    "{}: corrupt frame in a non-tail segment (crash recovery only \
                     truncates the newest segment)",
                    seg.display()
                ));
            }
            if i == last {
                tail_good_end = good_end;
                if (good_end as usize) != bytes.len() {
                    // Torn tail: the partial frame was never acknowledged.
                    let f = OpenOptions::new()
                        .write(true)
                        .open(seg)
                        .map_err(|e| format!("opening {}: {e}", seg.display()))?;
                    f.set_len(good_end)
                        .and_then(|_| f.sync_all())
                        .map_err(|e| format!("truncating {}: {e}", seg.display()))?;
                }
            }
            events.extend(evs);
        }
        let current_seg = segs.len() as u64;
        let mut file = OpenOptions::new()
            .append(true)
            .open(&segs[last])
            .map_err(|e| format!("opening {}: {e}", segs[last].display()))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| format!("seeking {}: {e}", segs[last].display()))?;
        let mut hwm = HashMap::new();
        for ev in &events {
            if !ev.client.is_empty() {
                let e = hwm.entry(ev.client.clone()).or_insert(0u64);
                *e = (*e).max(ev.seq);
            }
        }
        Ok(EventLog {
            dir,
            segment_bytes,
            current_seg,
            file,
            file_len: tail_good_end,
            events,
            hwm,
            poisoned: false,
        })
    }

    /// Number of acknowledged events in the log.
    pub fn len(&self) -> u64 {
        self.events.len() as u64
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All acknowledged events in append order.
    pub fn events(&self) -> &[StreamEvent] {
        &self.events
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends a batch: filters idempotent duplicates, writes one frame
    /// per fresh event, fsyncs once, then acknowledges. On error nothing
    /// is acknowledged and any partial frame is rolled back, so the call
    /// is safe to retry.
    pub fn append_batch(&mut self, batch: &[StreamEvent]) -> Result<AppendOutcome, String> {
        if self.poisoned {
            return Err("event log poisoned by an earlier unrecoverable append failure".into());
        }
        let mut out = AppendOutcome::default();
        let mut buf = Vec::new();
        let mut batch_hwm: HashMap<&str, u64> = HashMap::new();
        for ev in batch {
            if !ev.client.is_empty() {
                let acked = self.hwm.get(&ev.client).copied().unwrap_or(0);
                let in_batch = batch_hwm.get(ev.client.as_str()).copied().unwrap_or(0);
                if ev.seq <= acked.max(in_batch) {
                    out.duplicates += 1;
                    continue;
                }
                batch_hwm.insert(&ev.client, ev.seq);
            }
            encode_frame(ev, &mut buf)?;
            out.accepted.push(ev.clone());
        }
        if out.accepted.is_empty() {
            return Ok(out);
        }
        if lrgcn_tensor::faultfs::append_fault() {
            // Simulate a torn write: half the first frame hits the disk,
            // then roll back so the in-process log stays appendable. A
            // real crash here is what open()'s tail truncation handles.
            let torn = &buf[..buf.len() / 2];
            let _ = self.file.write_all(torn);
            let _ = self.file.flush();
            if self.file.set_len(self.file_len).is_err()
                || self.file.seek(SeekFrom::End(0)).is_err()
            {
                self.poisoned = true;
            }
            return Err("injected append fault (no events acknowledged; retry)".into());
        }
        let write = self
            .file
            .write_all(&buf)
            .and_then(|_| self.file.sync_data());
        if let Err(e) = write {
            if self.file.set_len(self.file_len).is_err()
                || self.file.seek(SeekFrom::End(0)).is_err()
            {
                self.poisoned = true;
            }
            return Err(format!("append failed (no events acknowledged; retry): {e}"));
        }
        // Acknowledged: update in-memory state.
        self.file_len += buf.len() as u64;
        for ev in &out.accepted {
            if !ev.client.is_empty() {
                let e = self.hwm.entry(ev.client.clone()).or_insert(0);
                *e = (*e).max(ev.seq);
            }
        }
        self.events.extend(out.accepted.iter().cloned());
        if self.file_len >= self.segment_bytes {
            self.rotate()?;
        }
        Ok(out)
    }

    fn rotate(&mut self) -> Result<(), String> {
        let next = self.current_seg + 1;
        let path = self.dir.join(segment_name(next));
        let mut f =
            File::create(&path).map_err(|e| format!("creating {}: {e}", path.display()))?;
        f.write_all(SEGMENT_MAGIC)
            .and_then(|_| f.sync_all())
            .map_err(|e| format!("initializing {}: {e}", path.display()))?;
        fsync_dir(&self.dir)?;
        self.current_seg = next;
        self.file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| format!("opening {}: {e}", path.display()))?;
        self.file_len = SEGMENT_MAGIC.len() as u64;
        Ok(())
    }

    /// Read-only deterministic replay of the log at `dir` without taking
    /// the writer: returns the acknowledged events in append order. A torn
    /// tail on the newest segment is ignored (not truncated). A directory
    /// that does not exist yet is an empty log, not an error — the serving
    /// engine opens before the first event is ever written.
    pub fn replay(dir: impl AsRef<Path>) -> Result<Vec<StreamEvent>, String> {
        let dir = dir.as_ref();
        if !dir.exists() {
            return Ok(Vec::new());
        }
        let segs = list_segments(dir)?;
        let mut events = Vec::new();
        let last = segs.len().saturating_sub(1);
        for (i, seg) in segs.iter().enumerate() {
            let bytes =
                fs::read(seg).map_err(|e| format!("reading {}: {e}", seg.display()))?;
            let (evs, good_end) = scan_segment(&bytes)
                .map_err(|e| format!("{}: {e}", seg.display()))?;
            if i < last && (good_end as usize) != bytes.len() {
                return Err(format!(
                    "{}: corrupt frame in a non-tail segment",
                    seg.display()
                ));
            }
            events.extend(evs);
        }
        Ok(events)
    }
}

// ---------------------------------------------------------------------------
// Covered-prefix checkpoint entry
// ---------------------------------------------------------------------------

/// Packs the covered-event count into a checkpoint matrix entry: four
/// little-endian u16 limbs stored as exact f32 values (the same scheme the
/// trainer uses for its own u64 metadata, so any f32 container roundtrips
/// it losslessly).
pub fn pack_covered(n: u64) -> Matrix {
    let limbs: Vec<f32> = (0..4).map(|k| ((n >> (16 * k)) & 0xffff) as f32).collect();
    Matrix::from_vec(1, 4, limbs)
}

/// Reads the covered-event count back from checkpoint entries; 0 when the
/// entry is absent (pre-streaming checkpoints) or malformed.
pub fn unpack_covered(entries: &[(String, Matrix)]) -> u64 {
    let Some((_, m)) = entries.iter().find(|(n, _)| n == COVERED_ENTRY) else {
        return 0;
    };
    if m.shape() != (1, 4) {
        return 0;
    }
    let mut n = 0u64;
    for (k, &limb) in m.data().iter().enumerate() {
        if !(0.0..=65535.0).contains(&limb) || limb.fract() != 0.0 {
            return 0;
        }
        n |= (limb as u64) << (16 * k);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lrgcn_stream_{name}"));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn ev(user: u32, item: u32, ts: i64, client: &str, seq: u64) -> StreamEvent {
        StreamEvent {
            user,
            item,
            timestamp: ts,
            client: client.to_string(),
            seq,
            request_id: format!("rid-{user}-{item}"),
        }
    }

    #[test]
    fn append_replay_roundtrip_preserves_order_and_fields() {
        let dir = tmpdir("roundtrip");
        let mut log = EventLog::open(&dir).expect("open");
        let batch: Vec<_> = (0..20).map(|i| ev(i, i * 2, i as i64, "c", i as u64 + 1)).collect();
        let out = log.append_batch(&batch).expect("append");
        assert_eq!(out.accepted.len(), 20);
        assert_eq!(out.duplicates, 0);
        drop(log);
        let replayed = EventLog::replay(&dir).expect("replay");
        assert_eq!(replayed, batch);
        let reopened = EventLog::open(&dir).expect("reopen");
        assert_eq!(reopened.events(), &batch[..]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn idempotent_duplicates_are_dropped_across_reopen() {
        let dir = tmpdir("idem");
        let mut log = EventLog::open(&dir).expect("open");
        log.append_batch(&[ev(1, 2, 0, "c", 1), ev(1, 3, 1, "c", 2)]).unwrap();
        // Retry of seq 1/2 plus one fresh event, including an in-batch dup.
        let out = log
            .append_batch(&[ev(1, 2, 0, "c", 1), ev(1, 4, 2, "c", 3), ev(1, 4, 2, "c", 3)])
            .unwrap();
        assert_eq!(out.accepted.len(), 1);
        assert_eq!(out.duplicates, 2);
        drop(log);
        // The high-water mark survives replay.
        let mut log = EventLog::open(&dir).expect("reopen");
        let out = log.append_batch(&[ev(1, 5, 3, "c", 3), ev(1, 5, 3, "c", 4)]).unwrap();
        assert_eq!(out.duplicates, 1, "seq 3 already acknowledged");
        assert_eq!(out.accepted.len(), 1);
        assert_eq!(log.len(), 4);
        // Empty client ids opt out of deduplication.
        let out = log.append_batch(&[ev(9, 9, 9, "", 0), ev(9, 9, 9, "", 0)]).unwrap();
        assert_eq!(out.accepted.len(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_on_open_but_not_replay() {
        let dir = tmpdir("torn");
        let mut log = EventLog::open(&dir).expect("open");
        log.append_batch(&[ev(1, 2, 0, "c", 1), ev(3, 4, 1, "c", 2)]).unwrap();
        drop(log);
        // Simulate a crash mid-frame: append half a valid frame.
        let seg = dir.join(segment_name(1));
        let mut frame = Vec::new();
        encode_frame(&ev(5, 6, 2, "c", 3), &mut frame).unwrap();
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&frame[..frame.len() / 2]).unwrap();
        drop(f);
        let replayed = EventLog::replay(&dir).expect("replay tolerates torn tail");
        assert_eq!(replayed.len(), 2);
        let before = fs::metadata(&seg).unwrap().len();
        let mut log = EventLog::open(&dir).expect("open truncates");
        assert_eq!(log.len(), 2);
        assert!(fs::metadata(&seg).unwrap().len() < before, "tail truncated");
        // And the log is appendable again right where it left off.
        log.append_batch(&[ev(5, 6, 2, "c", 3)]).unwrap();
        drop(log);
        assert_eq!(EventLog::replay(&dir).unwrap().len(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_length_field_is_treated_as_torn() {
        let dir = tmpdir("garbage");
        let mut log = EventLog::open(&dir).expect("open");
        log.append_batch(&[ev(1, 2, 0, "", 0)]).unwrap();
        drop(log);
        let seg = dir.join(segment_name(1));
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[0xff; 32]).unwrap();
        drop(f);
        let log = EventLog::open(&dir).expect("recovers");
        assert_eq!(log.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segments_rotate_and_interior_corruption_refuses_to_open() {
        let dir = tmpdir("rotate");
        let mut log = EventLog::open_with_segment_bytes(&dir, 256).expect("open");
        for i in 0..40 {
            log.append_batch(&[ev(i, i, i as i64, "c", i as u64 + 1)]).unwrap();
        }
        drop(log);
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() >= 2, "expected rotation, got {} segments", segs.len());
        assert_eq!(EventLog::replay(&dir).unwrap().len(), 40);
        assert_eq!(EventLog::open_with_segment_bytes(&dir, 256).unwrap().len(), 40);
        // Flip a payload byte in the FIRST segment: not crash-recoverable.
        let mut bytes = fs::read(&segs[0]).unwrap();
        let at = bytes.len() - 3;
        bytes[at] ^= 0x5a;
        fs::write(&segs[0], &bytes).unwrap();
        assert!(EventLog::open_with_segment_bytes(&dir, 256).is_err());
        assert!(EventLog::replay(&dir).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_append_fault_acknowledges_nothing_and_stays_usable() {
        let dir = tmpdir("fault");
        let mut log = EventLog::open(&dir).expect("open");
        log.append_batch(&[ev(1, 1, 0, "c", 1)]).unwrap();
        lrgcn_tensor::faultfs::set_thread_override(Some("io_error:1.0")).unwrap();
        let err = log.append_batch(&[ev(2, 2, 1, "c", 2)]).expect_err("injected");
        assert!(err.contains("no events acknowledged"), "{err}");
        lrgcn_tensor::faultfs::set_thread_override(None).unwrap();
        assert_eq!(log.len(), 1, "failed append acknowledged nothing");
        // Retry succeeds and the on-disk log is clean.
        let out = log.append_batch(&[ev(2, 2, 1, "c", 2)]).expect("retry");
        assert_eq!(out.accepted.len(), 1);
        drop(log);
        let replayed = EventLog::replay(&dir).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(EventLog::open(&dir).unwrap().len(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn covered_entry_roundtrips_and_defaults_to_zero() {
        for n in [0u64, 1, 65535, 65536, 1 << 40, (1 << 48) + 12345] {
            let m = pack_covered(n);
            let entries = vec![(COVERED_ENTRY.to_string(), m)];
            assert_eq!(unpack_covered(&entries), n);
        }
        assert_eq!(unpack_covered(&[]), 0);
        let bad = vec![(COVERED_ENTRY.to_string(), Matrix::from_vec(1, 4, vec![0.5; 4]))];
        assert_eq!(unpack_covered(&bad), 0);
    }

    /// Satellite: chronological replay through the log reproduces the
    /// offline split partition exactly — the streaming path and the batch
    /// path see the same train/val/test worlds.
    #[test]
    fn replay_through_log_reproduces_offline_split() {
        use lrgcn_data::{Dataset, InteractionLog, SplitRatios, SyntheticConfig};
        let dir = tmpdir("split_equiv");
        let log0 = SyntheticConfig::games().scaled(0.05).generate(42);
        let mut elog = EventLog::open(&dir).expect("open");
        let events: Vec<StreamEvent> = log0
            .interactions()
            .iter()
            .enumerate()
            .map(|(i, x)| StreamEvent {
                user: x.user,
                item: x.item,
                timestamp: x.timestamp,
                client: "replayer".into(),
                seq: i as u64 + 1,
                request_id: String::new(),
            })
            .collect();
        for chunk in events.chunks(97) {
            elog.append_batch(chunk).expect("append");
        }
        drop(elog);
        let replayed = EventLog::replay(&dir).expect("replay");
        let log1 = InteractionLog::new(
            log0.n_users(),
            log0.n_items(),
            replayed
                .iter()
                .map(|e| lrgcn_data::Interaction {
                    user: e.user,
                    item: e.item,
                    timestamp: e.timestamp,
                })
                .collect(),
        );
        let a = Dataset::chronological_split("a", &log0, SplitRatios::default());
        let b = Dataset::chronological_split("b", &log1, SplitRatios::default());
        assert_eq!(a.n_users(), b.n_users());
        assert_eq!(a.n_items(), b.n_items());
        assert_eq!(a.train().edges(), b.train().edges(), "train edges differ");
        for u in 0..a.n_users() as u32 {
            assert_eq!(a.val_items(u), b.val_items(u), "val differs for user {u}");
            assert_eq!(a.test_items(u), b.test_items(u), "test differs for user {u}");
        }
        fs::remove_dir_all(&dir).ok();
    }
}
