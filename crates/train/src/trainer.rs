//! The training loop: epochs, periodic validation, early stopping and
//! best-parameter selection (§V-A4: early stopping 50, total epochs 1000,
//! validation on R@20 of the held-out 10%).
//!
//! When a JSONL sink is installed (see [`lrgcn_obs::sink`]), each run emits
//! a `run_start` record, one `epoch` record per epoch (loss, per-phase wall
//! timings, kernel-counter deltas, thread count, peak resident matrix
//! bytes, validation metrics when computed), one `diag` record per
//! validated epoch (model-health probes: per-layer smoothness, gradient
//! norms, embedding drift — see [`lrgcn_obs::diag`]) and a `run_summary`;
//! with no sink the only overhead is the always-on counters and the
//! per-phase scoped timers.
//!
//! When a trace writer is installed (see [`lrgcn_obs::trace`]) the loop
//! additionally emits hierarchical `run` → `epoch` → phase wall-clock
//! spans into the Chrome `trace_event` stream.

use crate::history::{EpochRecord, History};
use crate::resume::{self, TrainState};
use lrgcn_data::Dataset;
use lrgcn_eval::{evaluate_ranking_parallel, EvalReport, Split};
use lrgcn_models::Recommender;
use lrgcn_obs::{diag, event, registry, sink, timer, trace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::Instant;

/// Training-loop configuration.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Hard cap on epochs (paper: 1000; defaults here are laptop-sized).
    pub max_epochs: usize,
    /// Stop after this many validations without improvement (paper: 50).
    pub patience: usize,
    /// Validate every `eval_every` epochs.
    pub eval_every: usize,
    /// Cutoff of the early-stopping metric (Recall@K on validation).
    pub criterion_k: usize,
    /// RNG seed for model init + sampling.
    pub seed: u64,
    /// Print a progress line per validation.
    pub verbose: bool,
    /// When true and the model supports in-memory snapshots
    /// (`Recommender::snapshot`), the parameters from the best validation
    /// epoch are restored after training — the paper's "report at the best
    /// epoch" protocol. Models without snapshot support keep their final
    /// state.
    pub restore_best: bool,
    /// Compute model-health diagnostics on every validated epoch even when
    /// no JSONL sink is installed, storing the per-layer values into the
    /// in-memory [`History`] (`layer_values`). With a sink installed the
    /// diagnostics are computed and emitted regardless of this flag.
    pub record_diagnostics: bool,
    /// Write a resumable training-state checkpoint generation every this
    /// many epochs (`0` disables checkpointing). Requires a base path via
    /// `checkpoint` (or `resume`, which doubles as the base).
    pub checkpoint_every: usize,
    /// Base path for checkpoint generations (`<base>.e<NNNNNN>`, newest
    /// two kept). Falls back to `resume` when unset.
    pub checkpoint: Option<PathBuf>,
    /// Resume from this training-state checkpoint: an exact generation
    /// file, or a base path whose newest *valid* generation is used. The
    /// resumed trajectory is bitwise-identical to the uninterrupted run.
    pub resume: Option<PathBuf>,
    /// Model-family tag stamped into checkpoints (`__model__:<tag>`) so
    /// they double as servable model checkpoints. `None` writes untagged
    /// files that still resume fine.
    pub checkpoint_tag: Option<String>,
    /// Divergence sentinel budget: after this many rollback/LR-halving
    /// recoveries in one run, the run stops instead of thrashing.
    pub max_recoveries: usize,
    /// Divergence sentinel threshold on the diagnostics gradient norm
    /// (checked on validated epochs when diagnostics are computed; a
    /// non-finite training loss always trips the sentinel).
    pub grad_norm_limit: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            max_epochs: 120,
            patience: 10,
            eval_every: 2,
            criterion_k: 20,
            seed: 2023,
            verbose: false,
            restore_best: false,
            record_diagnostics: false,
            checkpoint_every: 0,
            checkpoint: None,
            resume: None,
            checkpoint_tag: None,
            max_recoveries: 4,
            grad_norm_limit: 1e6,
        }
    }
}

impl TrainConfig {
    /// The paper's full-scale schedule.
    pub fn paper_scale() -> Self {
        Self {
            max_epochs: 1000,
            patience: 50,
            eval_every: 1,
            ..Self::default()
        }
    }
}

/// Outcome of a training run.
pub struct TrainOutcome {
    /// Epoch index achieving the best validation metric.
    pub best_epoch: usize,
    /// Best validation metric value.
    pub best_val_metric: f64,
    /// Number of epochs actually run.
    pub epochs_run: usize,
    /// Per-epoch records.
    pub history: History,
    /// Observability run id stamped on this run's JSONL records.
    pub run_id: u64,
}

/// Trains `model` with early stopping on validation Recall@K.
///
/// By default the model is left in its *final* state (final and best states
/// are close when patience is generous); set
/// [`TrainConfig::restore_best`] to roll the parameters back to the best
/// validation epoch for snapshot-capable models.
pub fn train_with_early_stopping(
    model: &mut dyn Recommender,
    ds: &Dataset,
    cfg: &TrainConfig,
) -> TrainOutcome {
    let _run_span = trace::span("run", "run");
    let at_start = registry::snapshot();
    let run_id = start_run(model, ds);
    let started = Instant::now();
    let outcome = train_inner(model, ds, cfg, run_id);
    if sink::enabled() {
        let at_end = registry::snapshot();
        sink::emit(
            &event::run_summary_between(
                run_id,
                outcome.epochs_run as u64,
                started.elapsed().as_secs_f64(),
                &at_start,
                &at_end,
                None,
            )
            .to_value(),
        );
    }
    outcome
}

/// Trains and then evaluates on the test split at the given cutoffs. The
/// run summary carries the test metrics when a JSONL sink is installed.
pub fn train_and_test(
    model: &mut dyn Recommender,
    ds: &Dataset,
    cfg: &TrainConfig,
    ks: &[usize],
) -> (TrainOutcome, EvalReport) {
    let _run_span = trace::span("run", "run");
    let at_start = registry::snapshot();
    let run_id = start_run(model, ds);
    let started = Instant::now();
    let outcome = train_inner(model, ds, cfg, run_id);
    let report = {
        let _test_span = trace::span("test", "phase");
        model.refresh(ds);
        let scorer = |users: &[u32]| model.score_users(ds, users);
        evaluate_ranking_parallel(ds, Split::Test, ks, 256, &scorer)
    };
    if sink::enabled() {
        let pairs: Vec<(String, f64)> = report
            .metrics
            .iter()
            .flat_map(|m| {
                [
                    (format!("recall@{}", m.k), m.recall),
                    (format!("ndcg@{}", m.k), m.ndcg),
                ]
            })
            .collect();
        let at_end = registry::snapshot();
        sink::emit(
            &event::run_summary_between(
                run_id,
                outcome.epochs_run as u64,
                started.elapsed().as_secs_f64(),
                &at_start,
                &at_end,
                Some(event::metrics_obj(&pairs)),
            )
            .to_value(),
        );
    }
    (outcome, report)
}

/// Allocates a run id and emits the `run_start` record.
fn start_run(model: &dyn Recommender, ds: &Dataset) -> u64 {
    let run_id = sink::next_run_id();
    if sink::enabled() {
        sink::emit(&event::run_start(
            run_id,
            &model.name(),
            &ds.name,
            lrgcn_tensor::par::configured_threads() as u64,
        ));
    }
    run_id
}

fn train_inner(
    model: &mut dyn Recommender,
    ds: &Dataset,
    cfg: &TrainConfig,
    run_id: u64,
) -> TrainOutcome {
    assert!(cfg.eval_every >= 1, "eval_every must be >= 1");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut history = History::new();
    let mut best: Option<(usize, f64)> = None;
    let mut best_params: Option<Vec<lrgcn_tensor::Matrix>> = None;
    let mut strikes = 0usize;
    let mut epochs_run = 0usize;
    let mut epoch = 0usize;
    let mut recoveries = 0usize;
    let has_val = !ds.val_users().is_empty();
    // `--resume PATH` without an explicit checkpoint base keeps writing new
    // generations next to the ones it resumed from.
    let ckpt_base = cfg.checkpoint.clone().or_else(|| cfg.resume.clone());

    if let Some(rp) = &cfg.resume {
        let (path, entries, st) = resume::load_for_resume(rp)
            .unwrap_or_else(|e| panic!("resume failed: {e}"));
        let mut applied = model.load_checkpoint_entries(&entries);
        if applied.is_ok() {
            applied = model.load_optim_state(&st.optim);
        }
        applied.unwrap_or_else(|e| panic!("resume from {} failed: {e}", path.display()));
        rng = StdRng::from_state(st.rng_state);
        history = st.history;
        best = st.best;
        best_params = st.best_params;
        strikes = st.strikes;
        recoveries = st.recoveries;
        epoch = st.epoch_next;
        epochs_run = st.epoch_next;
        if cfg.verbose {
            eprintln!(
                "[{}] resumed from {} at epoch {epoch}",
                model.name(),
                path.display()
            );
        }
    }

    while epoch < cfg.max_epochs {
        let _epoch_span = trace::span("epoch", "run");
        let at_epoch_start = registry::snapshot();
        let (stats, train_ns) = {
            let _span = trace::span("train", "phase");
            let train_timer = timer::scoped(lrgcn_obs::Hist::EpochTrain);
            let stats = model.train_epoch(ds, epoch, &mut rng);
            let ns = train_timer.stop();
            (stats, ns)
        };
        registry::add(lrgcn_obs::Counter::TrainEpochs, 1);
        sink::note_progress(run_id, epoch as u64);
        epochs_run = epoch + 1;
        let mut val_metric = None;
        let mut diagnostics = None;
        let mut refresh_ns = 0u64;
        let mut val_ns = 0u64;
        if has_val && (epoch % cfg.eval_every == cfg.eval_every - 1 || epoch + 1 == cfg.max_epochs)
        {
            let refresh_ns_inner = {
                let _span = trace::span("refresh", "phase");
                let refresh_timer = timer::scoped(lrgcn_obs::Hist::EpochRefresh);
                model.refresh(ds);
                refresh_timer.stop()
            };
            refresh_ns = refresh_ns_inner;
            // `Recommender: Sync` + `score_users(&self)` lets validation fan
            // user chunks out across threads (bitwise identical to serial).
            let scorer = |users: &[u32]| model.score_users(ds, users);
            let rep = {
                let _span = trace::span("val", "phase");
                let val_timer = timer::scoped(lrgcn_obs::Hist::EpochVal);
                let rep =
                    evaluate_ranking_parallel(ds, Split::Val, &[cfg.criterion_k], 256, &scorer);
                val_ns = val_timer.stop();
                rep
            };
            let m = rep.recall(cfg.criterion_k);
            val_metric = Some(m);
            if sink::enabled() || cfg.record_diagnostics {
                let _span = trace::span("diag", "phase");
                diagnostics = model.diagnostics(ds);
            }
            if cfg.verbose {
                eprintln!(
                    "[{}] epoch {:>4} loss {:>10.5} val R@{} {:.4}",
                    model.name(),
                    epoch,
                    stats.loss,
                    cfg.criterion_k,
                    m
                );
            }
        }
        if sink::enabled() {
            let now = registry::snapshot();
            sink::emit(
                &event::EpochRecord {
                    run: run_id,
                    epoch: epoch as u64,
                    loss: stats.loss,
                    train_s: train_ns as f64 / 1e9,
                    refresh_s: refresh_ns as f64 / 1e9,
                    val_s: val_ns as f64 / 1e9,
                    threads: lrgcn_tensor::par::configured_threads() as u64,
                    matrix_bytes_peak: registry::gauge_peak(lrgcn_obs::Gauge::MatrixBytes),
                    counters: now.counter_deltas_since(&at_epoch_start),
                    val_metrics: val_metric.map(|m| {
                        event::metrics_obj(&[(format!("recall@{}", cfg.criterion_k), m)])
                    }),
                }
                .to_value(),
            );
            if let Some(d) = &diagnostics {
                sink::emit(
                    &diag::DiagRecord {
                        run: run_id,
                        epoch: epoch as u64,
                        model: model.name(),
                        smoothness: d.smoothness.clone(),
                        embedding_l2: d.embedding_l2,
                        grad_norm: d.grad_norm,
                        grad_groups: d.grad_groups.clone(),
                        layer_weights: d.layer_weights.clone(),
                    }
                    .to_value(),
                );
            }
        }
        // --- Divergence sentinel -----------------------------------------
        // A non-finite loss (any epoch) or an exploding gradient norm (on
        // validated epochs, where diagnostics run) means the epoch's update
        // is poison: don't record it, don't checkpoint it. Roll back to the
        // newest valid checkpoint generation when one exists, halve the
        // learning rate either way, and keep training instead of dying.
        let diverged: Option<&str> = if !stats.loss.is_finite() {
            Some("non_finite_loss")
        } else {
            match diagnostics.as_ref().and_then(|d| d.grad_norm) {
                Some(g) if !g.is_finite() || g > cfg.grad_norm_limit => {
                    Some("grad_norm_exploded")
                }
                _ => None,
            }
        };
        if let Some(reason) = diverged {
            recoveries += 1;
            registry::add(lrgcn_obs::Counter::TrainRecoveries, 1);
            let mut rolled_back_to: Option<usize> = None;
            if let Some(base) = &ckpt_base {
                match resume::load_latest_valid(base) {
                    Ok(Some((path, entries, st))) => {
                        let mut applied = model.load_checkpoint_entries(&entries);
                        if applied.is_ok() {
                            applied = model.load_optim_state(&st.optim);
                        }
                        match applied {
                            Ok(()) => {
                                rng = StdRng::from_state(st.rng_state);
                                history = st.history;
                                best = st.best;
                                best_params = st.best_params;
                                strikes = st.strikes;
                                rolled_back_to = Some(st.epoch_next);
                                if cfg.verbose {
                                    eprintln!(
                                        "[{}] rolled back to {} (epoch {})",
                                        model.name(),
                                        path.display(),
                                        st.epoch_next
                                    );
                                }
                            }
                            Err(e) => eprintln!("[lrgcn-train] rollback failed: {e}"),
                        }
                    }
                    Ok(None) => {}
                    Err(e) => eprintln!("[lrgcn-train] rollback failed: {e}"),
                }
            }
            // Halve the LR *after* any restore so the halving survives it.
            let new_lr = model.optim_state().map(|s| s.lr * 0.5);
            if let Some(lr) = new_lr {
                model.set_learning_rate(lr);
            }
            if sink::enabled() {
                sink::emit(&event::recovery(
                    run_id,
                    epoch as u64,
                    reason,
                    rolled_back_to.map(|e| e as u64),
                    f64::from(new_lr.unwrap_or(0.0)),
                ));
            }
            if cfg.verbose {
                eprintln!(
                    "[{}] divergence at epoch {epoch} ({reason}); recovery {recoveries}/{}",
                    model.name(),
                    cfg.max_recoveries
                );
            }
            if recoveries > cfg.max_recoveries {
                eprintln!(
                    "[lrgcn-train] giving up after {recoveries} divergence recoveries"
                );
                break;
            }
            match rolled_back_to {
                Some(e) => epoch = e,
                None => epoch += 1,
            }
            continue;
        }

        if let Some(m) = val_metric {
            match best {
                Some((_, bm)) if m <= bm => {
                    strikes += 1;
                }
                _ => {
                    best = Some((epoch, m));
                    strikes = 0;
                    if cfg.restore_best {
                        best_params = model.snapshot();
                    }
                }
            }
        }
        // Fig. 1 / Fig. 5 per-layer values: the model's layer weights when
        // the readout has them (LayerGCN: refinement similarities), else the
        // smoothness chain.
        let layer_values = diagnostics.as_ref().map(|d| {
            if d.layer_weights.is_empty() {
                d.smoothness.clone()
            } else {
                d.layer_weights.clone()
            }
        });
        history.push(EpochRecord {
            epoch,
            train_loss: stats.loss,
            val_metric,
            layer_values,
        });
        // --- Periodic training-state checkpoint --------------------------
        // Saved *after* the epoch's history/strike updates so a resumed run
        // continues at `epoch + 1` with identical state. A failed save is a
        // survivable fault: count it, emit a `recovery` record, train on.
        if cfg.checkpoint_every > 0 && (epoch + 1).is_multiple_of(cfg.checkpoint_every) {
            if let Some(base) = &ckpt_base {
                let saved = match model.optim_state() {
                    Some(optim) => {
                        let state = TrainState {
                            epoch_next: epoch + 1,
                            strikes,
                            best,
                            best_params: best_params.clone(),
                            rng_state: rng.state(),
                            optim,
                            history: history.clone(),
                            recoveries,
                        };
                        resume::save_generation(
                            base,
                            cfg.checkpoint_tag.as_deref(),
                            model,
                            &state,
                        )
                    }
                    None => Err(format!(
                        "{} exposes no optimizer state; training-state checkpoints \
                         are unsupported for it",
                        model.name()
                    )),
                };
                match saved {
                    Ok(path) => {
                        registry::add(lrgcn_obs::Counter::TrainCheckpoints, 1);
                        if cfg.verbose {
                            eprintln!("[{}] checkpoint {}", model.name(), path.display());
                        }
                    }
                    Err(e) => {
                        registry::add(lrgcn_obs::Counter::TrainCheckpointErrors, 1);
                        eprintln!("[lrgcn-train] checkpoint save failed: {e}");
                        if sink::enabled() {
                            let lr = model.optim_state().map_or(0.0, |s| f64::from(s.lr));
                            sink::emit(&event::recovery(
                                run_id,
                                epoch as u64,
                                "checkpoint_save_failed",
                                None,
                                lr,
                            ));
                        }
                    }
                }
            }
        }
        if strikes >= cfg.patience {
            break;
        }
        epoch += 1;
    }
    if let Some(params) = best_params {
        model.restore(params);
        model.refresh(ds);
    }
    let (best_epoch, best_val_metric) = best.unwrap_or((epochs_run.saturating_sub(1), 0.0));
    TrainOutcome {
        best_epoch,
        best_val_metric,
        epochs_run,
        history,
        run_id,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrgcn_data::{SplitRatios, SyntheticConfig};
    use lrgcn_models::{LayerGcn, LayerGcnConfig};

    fn ds() -> Dataset {
        let log = SyntheticConfig::games().scaled(0.1).generate(3);
        Dataset::chronological_split("t", &log, SplitRatios::default())
    }

    #[test]
    fn early_stopping_triggers() {
        let d = ds();
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = LayerGcn::new(&d, LayerGcnConfig::without_dropout(), &mut rng);
        let cfg = TrainConfig {
            max_epochs: 200,
            patience: 2,
            eval_every: 1,
            ..Default::default()
        };
        let out = train_with_early_stopping(&mut m, &d, &cfg);
        assert!(out.epochs_run < 200, "never early-stopped");
        assert!(out.best_epoch < out.epochs_run);
        assert!(out.best_val_metric > 0.0);
    }

    #[test]
    fn history_records_every_epoch() {
        let d = ds();
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = LayerGcn::new(&d, LayerGcnConfig::without_dropout(), &mut rng);
        let cfg = TrainConfig {
            max_epochs: 6,
            patience: 100,
            eval_every: 2,
            ..Default::default()
        };
        let out = train_with_early_stopping(&mut m, &d, &cfg);
        assert_eq!(out.history.len(), 6);
        assert_eq!(out.history.val_curve().len(), 3);
    }

    #[test]
    fn train_and_test_reports_all_ks() {
        let d = ds();
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = LayerGcn::new(&d, LayerGcnConfig::without_dropout(), &mut rng);
        let cfg = TrainConfig {
            max_epochs: 4,
            patience: 100,
            ..Default::default()
        };
        let (_, rep) = train_and_test(&mut m, &d, &cfg, &[10, 20, 50]);
        assert_eq!(rep.metrics.len(), 3);
        assert!(rep.recall(50) >= rep.recall(20));
        assert!(rep.recall(20) >= rep.recall(10));
    }

    #[test]
    fn restore_best_rolls_back_parameters() {
        let d = ds();
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = LayerGcn::new(&d, LayerGcnConfig::without_dropout(), &mut rng);
        let cfg = TrainConfig {
            max_epochs: 12,
            patience: 100,
            eval_every: 1,
            restore_best: true,
            ..Default::default()
        };
        let out = train_with_early_stopping(&mut m, &d, &cfg);
        // After restoration, the model's validation metric must equal the
        // recorded best (not the final epoch's value).
        m.refresh(&d);
        let val = lrgcn_eval::evaluate_ranking(&d, Split::Val, &[20], 256, &mut |u| {
            m.score_users(&d, u)
        })
        .recall(20);
        assert!(
            (val - out.best_val_metric).abs() < 1e-12,
            "restored val {val} != best {}",
            out.best_val_metric
        );
    }

    /// A minimal checkpoint-capable model whose loss goes NaN on chosen
    /// `train_epoch` calls. The call counter is deliberately *not* part of
    /// the checkpointed state, so a rollback replays the epoch cleanly —
    /// modeling a transient divergence.
    struct Divergent {
        x: lrgcn_tensor::Matrix,
        step: u64,
        lr: f32,
        calls: usize,
        nan_calls: Vec<usize>,
    }

    impl Divergent {
        fn new(nan_calls: Vec<usize>) -> Self {
            Self {
                x: lrgcn_tensor::Matrix::zeros(1, 1),
                step: 0,
                lr: 0.1,
                calls: 0,
                nan_calls,
            }
        }
    }

    impl lrgcn_models::Recommender for Divergent {
        fn name(&self) -> String {
            "divergent".into()
        }
        fn train_epoch(
            &mut self,
            _ds: &Dataset,
            _epoch: usize,
            rng: &mut StdRng,
        ) -> lrgcn_models::EpochStats {
            use rand::Rng;
            self.calls += 1;
            self.step += 1;
            self.x.data_mut()[0] += 0.01 + (rng.next_u64() % 1000) as f32 * 1e-6;
            let loss = if self.nan_calls.contains(&self.calls) {
                f64::NAN
            } else {
                1.0 / (1.0 + f64::from(self.x.data()[0]))
            };
            lrgcn_models::EpochStats { loss, n_batches: 1 }
        }
        fn refresh(&mut self, _ds: &Dataset) {}
        fn score_users(&self, ds: &Dataset, users: &[u32]) -> lrgcn_tensor::Matrix {
            lrgcn_tensor::Matrix::zeros(users.len(), ds.n_items())
        }
        fn n_parameters(&self) -> usize {
            1
        }
        fn checkpoint_entries(&self) -> Option<Vec<(String, lrgcn_tensor::Matrix)>> {
            Some(vec![("x".to_string(), self.x.clone())])
        }
        fn load_checkpoint_entries(
            &mut self,
            entries: &[(String, lrgcn_tensor::Matrix)],
        ) -> Result<(), String> {
            let (_, m) = entries
                .iter()
                .find(|(n, _)| n == "x")
                .ok_or_else(|| "missing x".to_string())?;
            self.x = m.clone();
            Ok(())
        }
        fn optim_state(&self) -> Option<lrgcn_models::OptimState> {
            Some(lrgcn_models::OptimState {
                step: self.step,
                lr: self.lr,
                moments: vec![(
                    "x".to_string(),
                    lrgcn_tensor::Matrix::zeros(1, 1),
                    lrgcn_tensor::Matrix::zeros(1, 1),
                )],
            })
        }
        fn load_optim_state(&mut self, state: &lrgcn_models::OptimState) -> Result<(), String> {
            self.step = state.step;
            self.lr = state.lr;
            Ok(())
        }
        fn set_learning_rate(&mut self, lr: f32) -> bool {
            self.lr = lr;
            true
        }
    }

    fn temp_ckpt_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn resume_matches_uninterrupted_run_bitwise() {
        let d = ds();
        let cfg_full = TrainConfig {
            max_epochs: 8,
            patience: 100,
            eval_every: 2,
            seed: 7,
            ..Default::default()
        };
        let full = {
            let mut rng = StdRng::seed_from_u64(5);
            let mut m = LayerGcn::new(&d, LayerGcnConfig::default(), &mut rng);
            train_with_early_stopping(&mut m, &d, &cfg_full)
        };

        let dir = temp_ckpt_dir("lrgcn_trainer_resume_eq");
        let base = dir.join("ckpt");
        {
            let mut rng = StdRng::seed_from_u64(5);
            let mut m = LayerGcn::new(&d, LayerGcnConfig::default(), &mut rng);
            let cfg = TrainConfig {
                max_epochs: 4,
                checkpoint_every: 2,
                checkpoint: Some(base.clone()),
                checkpoint_tag: Some("layergcn".to_string()),
                ..cfg_full.clone()
            };
            train_with_early_stopping(&mut m, &d, &cfg);
        }
        let resumed = {
            // Different init seed on purpose: resume must overwrite it all.
            let mut rng = StdRng::seed_from_u64(999);
            let mut m = LayerGcn::new(&d, LayerGcnConfig::default(), &mut rng);
            let cfg = TrainConfig {
                resume: Some(base.clone()),
                ..cfg_full.clone()
            };
            train_with_early_stopping(&mut m, &d, &cfg)
        };

        let (a, b) = (full.history.losses(), resumed.history.losses());
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "loss diverged at epoch {i}");
        }
        let (va, vb) = (full.history.val_curve(), resumed.history.val_curve());
        assert_eq!(va.len(), vb.len());
        for ((e1, m1), (e2, m2)) in va.iter().zip(&vb) {
            assert_eq!(e1, e2);
            assert_eq!(m1.to_bits(), m2.to_bits());
        }
        assert_eq!(full.best_epoch, resumed.best_epoch);
        assert_eq!(
            full.best_val_metric.to_bits(),
            resumed.best_val_metric.to_bits()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn divergence_sentinel_rolls_back_and_halves_lr() {
        let d = ds();
        let dir = temp_ckpt_dir("lrgcn_trainer_divergence_rollback");
        let base = dir.join("ckpt");
        // 5th call (epoch 4 first pass) is transiently poisoned.
        let mut m = Divergent::new(vec![5]);
        let cfg = TrainConfig {
            max_epochs: 6,
            patience: 100,
            eval_every: 1,
            checkpoint_every: 2,
            checkpoint: Some(base.clone()),
            ..Default::default()
        };
        let out = train_with_early_stopping(&mut m, &d, &cfg);
        assert_eq!(out.epochs_run, 6);
        // The rollback replayed epoch 4; every recorded loss is finite and
        // the trajectory has no gap.
        assert_eq!(out.history.len(), 6);
        assert!(out.history.losses().iter().all(|l| l.is_finite()));
        assert!((m.lr - 0.05).abs() < 1e-9, "lr {} not halved once", m.lr);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn divergence_without_checkpoint_skips_epoch_and_continues() {
        let d = ds();
        let mut m = Divergent::new(vec![2]);
        let cfg = TrainConfig {
            max_epochs: 4,
            patience: 100,
            eval_every: 1,
            ..Default::default()
        };
        let out = train_with_early_stopping(&mut m, &d, &cfg);
        assert_eq!(out.epochs_run, 4);
        // The poisoned epoch 1 is dropped from the record, not stored as NaN.
        assert_eq!(out.history.len(), 3);
        assert!(out.history.records().iter().all(|r| r.epoch != 1));
        assert!(out.history.losses().iter().all(|l| l.is_finite()));
        assert!((m.lr - 0.05).abs() < 1e-9);
    }

    #[test]
    fn recovery_budget_caps_a_persistently_diverging_run() {
        let d = ds();
        let mut m = Divergent::new((2..50).collect());
        let cfg = TrainConfig {
            max_epochs: 40,
            patience: 100,
            eval_every: 1,
            max_recoveries: 3,
            ..Default::default()
        };
        let out = train_with_early_stopping(&mut m, &d, &cfg);
        assert!(out.epochs_run < 40, "run never gave up");
        assert_eq!(out.history.len(), 1);
        // One halving per recovery, including the final over-budget one.
        assert!((m.lr - 0.1 / 16.0).abs() < 1e-9, "lr {}", m.lr);
    }

    #[test]
    fn checkpoint_save_faults_never_kill_training() {
        let d = ds();
        let dir = temp_ckpt_dir("lrgcn_trainer_save_fault");
        let base = dir.join("ckpt");
        lrgcn_tensor::faultfs::set_thread_override(Some("io_error:1.0")).unwrap();
        let out = {
            let mut rng = StdRng::seed_from_u64(5);
            let mut m = LayerGcn::new(&d, LayerGcnConfig::without_dropout(), &mut rng);
            let cfg = TrainConfig {
                max_epochs: 4,
                patience: 100,
                checkpoint_every: 1,
                checkpoint: Some(base.clone()),
                ..Default::default()
            };
            train_with_early_stopping(&mut m, &d, &cfg)
        };
        lrgcn_tensor::faultfs::set_thread_override(None).unwrap();
        assert_eq!(out.epochs_run, 4);
        assert!(out.history.losses().iter().all(|l| l.is_finite()));
        // Every save failed pre-rename, so no generation ever materialized —
        // and none of the failures killed the run.
        assert!(crate::resume::load_latest_valid(&base).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deterministic_given_seed() {
        let d = ds();
        let run = || {
            let mut rng = StdRng::seed_from_u64(5);
            let mut m = LayerGcn::new(&d, LayerGcnConfig::default(), &mut rng);
            let cfg = TrainConfig {
                max_epochs: 3,
                patience: 100,
                seed: 7,
                ..Default::default()
            };
            train_with_early_stopping(&mut m, &d, &cfg).history.losses()
        };
        assert_eq!(run(), run());
    }
}
