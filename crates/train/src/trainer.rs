//! The training loop: epochs, periodic validation, early stopping and
//! best-parameter selection (§V-A4: early stopping 50, total epochs 1000,
//! validation on R@20 of the held-out 10%).
//!
//! When a JSONL sink is installed (see [`lrgcn_obs::sink`]), each run emits
//! a `run_start` record, one `epoch` record per epoch (loss, per-phase wall
//! timings, kernel-counter deltas, thread count, peak resident matrix
//! bytes, validation metrics when computed), one `diag` record per
//! validated epoch (model-health probes: per-layer smoothness, gradient
//! norms, embedding drift — see [`lrgcn_obs::diag`]) and a `run_summary`;
//! with no sink the only overhead is the always-on counters and the
//! per-phase scoped timers.
//!
//! When a trace writer is installed (see [`lrgcn_obs::trace`]) the loop
//! additionally emits hierarchical `run` → `epoch` → phase wall-clock
//! spans into the Chrome `trace_event` stream.

use crate::history::{EpochRecord, History};
use lrgcn_data::Dataset;
use lrgcn_eval::{evaluate_ranking_parallel, EvalReport, Split};
use lrgcn_models::Recommender;
use lrgcn_obs::{diag, event, registry, sink, timer, trace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Training-loop configuration.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Hard cap on epochs (paper: 1000; defaults here are laptop-sized).
    pub max_epochs: usize,
    /// Stop after this many validations without improvement (paper: 50).
    pub patience: usize,
    /// Validate every `eval_every` epochs.
    pub eval_every: usize,
    /// Cutoff of the early-stopping metric (Recall@K on validation).
    pub criterion_k: usize,
    /// RNG seed for model init + sampling.
    pub seed: u64,
    /// Print a progress line per validation.
    pub verbose: bool,
    /// When true and the model supports in-memory snapshots
    /// (`Recommender::snapshot`), the parameters from the best validation
    /// epoch are restored after training — the paper's "report at the best
    /// epoch" protocol. Models without snapshot support keep their final
    /// state.
    pub restore_best: bool,
    /// Compute model-health diagnostics on every validated epoch even when
    /// no JSONL sink is installed, storing the per-layer values into the
    /// in-memory [`History`] (`layer_values`). With a sink installed the
    /// diagnostics are computed and emitted regardless of this flag.
    pub record_diagnostics: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            max_epochs: 120,
            patience: 10,
            eval_every: 2,
            criterion_k: 20,
            seed: 2023,
            verbose: false,
            restore_best: false,
            record_diagnostics: false,
        }
    }
}

impl TrainConfig {
    /// The paper's full-scale schedule.
    pub fn paper_scale() -> Self {
        Self {
            max_epochs: 1000,
            patience: 50,
            eval_every: 1,
            ..Self::default()
        }
    }
}

/// Outcome of a training run.
pub struct TrainOutcome {
    /// Epoch index achieving the best validation metric.
    pub best_epoch: usize,
    /// Best validation metric value.
    pub best_val_metric: f64,
    /// Number of epochs actually run.
    pub epochs_run: usize,
    /// Per-epoch records.
    pub history: History,
    /// Observability run id stamped on this run's JSONL records.
    pub run_id: u64,
}

/// Trains `model` with early stopping on validation Recall@K.
///
/// By default the model is left in its *final* state (final and best states
/// are close when patience is generous); set
/// [`TrainConfig::restore_best`] to roll the parameters back to the best
/// validation epoch for snapshot-capable models.
pub fn train_with_early_stopping(
    model: &mut dyn Recommender,
    ds: &Dataset,
    cfg: &TrainConfig,
) -> TrainOutcome {
    let _run_span = trace::span("run", "run");
    let at_start = registry::snapshot();
    let run_id = start_run(model, ds);
    let started = Instant::now();
    let outcome = train_inner(model, ds, cfg, run_id);
    if sink::enabled() {
        let at_end = registry::snapshot();
        sink::emit(
            &event::run_summary_between(
                run_id,
                outcome.epochs_run as u64,
                started.elapsed().as_secs_f64(),
                &at_start,
                &at_end,
                None,
            )
            .to_value(),
        );
    }
    outcome
}

/// Trains and then evaluates on the test split at the given cutoffs. The
/// run summary carries the test metrics when a JSONL sink is installed.
pub fn train_and_test(
    model: &mut dyn Recommender,
    ds: &Dataset,
    cfg: &TrainConfig,
    ks: &[usize],
) -> (TrainOutcome, EvalReport) {
    let _run_span = trace::span("run", "run");
    let at_start = registry::snapshot();
    let run_id = start_run(model, ds);
    let started = Instant::now();
    let outcome = train_inner(model, ds, cfg, run_id);
    let report = {
        let _test_span = trace::span("test", "phase");
        model.refresh(ds);
        let scorer = |users: &[u32]| model.score_users(ds, users);
        evaluate_ranking_parallel(ds, Split::Test, ks, 256, &scorer)
    };
    if sink::enabled() {
        let pairs: Vec<(String, f64)> = report
            .metrics
            .iter()
            .flat_map(|m| {
                [
                    (format!("recall@{}", m.k), m.recall),
                    (format!("ndcg@{}", m.k), m.ndcg),
                ]
            })
            .collect();
        let at_end = registry::snapshot();
        sink::emit(
            &event::run_summary_between(
                run_id,
                outcome.epochs_run as u64,
                started.elapsed().as_secs_f64(),
                &at_start,
                &at_end,
                Some(event::metrics_obj(&pairs)),
            )
            .to_value(),
        );
    }
    (outcome, report)
}

/// Allocates a run id and emits the `run_start` record.
fn start_run(model: &dyn Recommender, ds: &Dataset) -> u64 {
    let run_id = sink::next_run_id();
    if sink::enabled() {
        sink::emit(&event::run_start(
            run_id,
            &model.name(),
            &ds.name,
            lrgcn_tensor::par::configured_threads() as u64,
        ));
    }
    run_id
}

fn train_inner(
    model: &mut dyn Recommender,
    ds: &Dataset,
    cfg: &TrainConfig,
    run_id: u64,
) -> TrainOutcome {
    assert!(cfg.eval_every >= 1, "eval_every must be >= 1");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut history = History::new();
    let mut best: Option<(usize, f64)> = None;
    let mut best_params: Option<Vec<lrgcn_tensor::Matrix>> = None;
    let mut strikes = 0usize;
    let mut epochs_run = 0usize;
    let has_val = !ds.val_users().is_empty();

    for epoch in 0..cfg.max_epochs {
        let _epoch_span = trace::span("epoch", "run");
        let at_epoch_start = registry::snapshot();
        let (stats, train_ns) = {
            let _span = trace::span("train", "phase");
            let train_timer = timer::scoped(lrgcn_obs::Hist::EpochTrain);
            let stats = model.train_epoch(ds, epoch, &mut rng);
            let ns = train_timer.stop();
            (stats, ns)
        };
        registry::add(lrgcn_obs::Counter::TrainEpochs, 1);
        epochs_run = epoch + 1;
        let mut val_metric = None;
        let mut diagnostics = None;
        let mut refresh_ns = 0u64;
        let mut val_ns = 0u64;
        if has_val && (epoch % cfg.eval_every == cfg.eval_every - 1 || epoch + 1 == cfg.max_epochs)
        {
            let refresh_ns_inner = {
                let _span = trace::span("refresh", "phase");
                let refresh_timer = timer::scoped(lrgcn_obs::Hist::EpochRefresh);
                model.refresh(ds);
                refresh_timer.stop()
            };
            refresh_ns = refresh_ns_inner;
            // `Recommender: Sync` + `score_users(&self)` lets validation fan
            // user chunks out across threads (bitwise identical to serial).
            let scorer = |users: &[u32]| model.score_users(ds, users);
            let rep = {
                let _span = trace::span("val", "phase");
                let val_timer = timer::scoped(lrgcn_obs::Hist::EpochVal);
                let rep =
                    evaluate_ranking_parallel(ds, Split::Val, &[cfg.criterion_k], 256, &scorer);
                val_ns = val_timer.stop();
                rep
            };
            let m = rep.recall(cfg.criterion_k);
            val_metric = Some(m);
            if sink::enabled() || cfg.record_diagnostics {
                let _span = trace::span("diag", "phase");
                diagnostics = model.diagnostics(ds);
            }
            if cfg.verbose {
                eprintln!(
                    "[{}] epoch {:>4} loss {:>10.5} val R@{} {:.4}",
                    model.name(),
                    epoch,
                    stats.loss,
                    cfg.criterion_k,
                    m
                );
            }
            match best {
                Some((_, bm)) if m <= bm => {
                    strikes += 1;
                }
                _ => {
                    best = Some((epoch, m));
                    strikes = 0;
                    if cfg.restore_best {
                        best_params = model.snapshot();
                    }
                }
            }
        }
        if sink::enabled() {
            let now = registry::snapshot();
            sink::emit(
                &event::EpochRecord {
                    run: run_id,
                    epoch: epoch as u64,
                    loss: stats.loss,
                    train_s: train_ns as f64 / 1e9,
                    refresh_s: refresh_ns as f64 / 1e9,
                    val_s: val_ns as f64 / 1e9,
                    threads: lrgcn_tensor::par::configured_threads() as u64,
                    matrix_bytes_peak: registry::gauge_peak(lrgcn_obs::Gauge::MatrixBytes),
                    counters: now.counter_deltas_since(&at_epoch_start),
                    val_metrics: val_metric.map(|m| {
                        event::metrics_obj(&[(format!("recall@{}", cfg.criterion_k), m)])
                    }),
                }
                .to_value(),
            );
            if let Some(d) = &diagnostics {
                sink::emit(
                    &diag::DiagRecord {
                        run: run_id,
                        epoch: epoch as u64,
                        model: model.name(),
                        smoothness: d.smoothness.clone(),
                        embedding_l2: d.embedding_l2,
                        grad_norm: d.grad_norm,
                        grad_groups: d.grad_groups.clone(),
                        layer_weights: d.layer_weights.clone(),
                    }
                    .to_value(),
                );
            }
        }
        // Fig. 1 / Fig. 5 per-layer values: the model's layer weights when
        // the readout has them (LayerGCN: refinement similarities), else the
        // smoothness chain.
        let layer_values = diagnostics.as_ref().map(|d| {
            if d.layer_weights.is_empty() {
                d.smoothness.clone()
            } else {
                d.layer_weights.clone()
            }
        });
        history.push(EpochRecord {
            epoch,
            train_loss: stats.loss,
            val_metric,
            layer_values,
        });
        if strikes >= cfg.patience {
            break;
        }
    }
    if let Some(params) = best_params {
        model.restore(params);
        model.refresh(ds);
    }
    let (best_epoch, best_val_metric) = best.unwrap_or((epochs_run.saturating_sub(1), 0.0));
    TrainOutcome {
        best_epoch,
        best_val_metric,
        epochs_run,
        history,
        run_id,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrgcn_data::{SplitRatios, SyntheticConfig};
    use lrgcn_models::{LayerGcn, LayerGcnConfig};

    fn ds() -> Dataset {
        let log = SyntheticConfig::games().scaled(0.1).generate(3);
        Dataset::chronological_split("t", &log, SplitRatios::default())
    }

    #[test]
    fn early_stopping_triggers() {
        let d = ds();
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = LayerGcn::new(&d, LayerGcnConfig::without_dropout(), &mut rng);
        let cfg = TrainConfig {
            max_epochs: 200,
            patience: 2,
            eval_every: 1,
            ..Default::default()
        };
        let out = train_with_early_stopping(&mut m, &d, &cfg);
        assert!(out.epochs_run < 200, "never early-stopped");
        assert!(out.best_epoch < out.epochs_run);
        assert!(out.best_val_metric > 0.0);
    }

    #[test]
    fn history_records_every_epoch() {
        let d = ds();
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = LayerGcn::new(&d, LayerGcnConfig::without_dropout(), &mut rng);
        let cfg = TrainConfig {
            max_epochs: 6,
            patience: 100,
            eval_every: 2,
            ..Default::default()
        };
        let out = train_with_early_stopping(&mut m, &d, &cfg);
        assert_eq!(out.history.len(), 6);
        assert_eq!(out.history.val_curve().len(), 3);
    }

    #[test]
    fn train_and_test_reports_all_ks() {
        let d = ds();
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = LayerGcn::new(&d, LayerGcnConfig::without_dropout(), &mut rng);
        let cfg = TrainConfig {
            max_epochs: 4,
            patience: 100,
            ..Default::default()
        };
        let (_, rep) = train_and_test(&mut m, &d, &cfg, &[10, 20, 50]);
        assert_eq!(rep.metrics.len(), 3);
        assert!(rep.recall(50) >= rep.recall(20));
        assert!(rep.recall(20) >= rep.recall(10));
    }

    #[test]
    fn restore_best_rolls_back_parameters() {
        let d = ds();
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = LayerGcn::new(&d, LayerGcnConfig::without_dropout(), &mut rng);
        let cfg = TrainConfig {
            max_epochs: 12,
            patience: 100,
            eval_every: 1,
            restore_best: true,
            ..Default::default()
        };
        let out = train_with_early_stopping(&mut m, &d, &cfg);
        // After restoration, the model's validation metric must equal the
        // recorded best (not the final epoch's value).
        m.refresh(&d);
        let val = lrgcn_eval::evaluate_ranking(&d, Split::Val, &[20], 256, &mut |u| {
            m.score_users(&d, u)
        })
        .recall(20);
        assert!(
            (val - out.best_val_metric).abs() < 1e-12,
            "restored val {val} != best {}",
            out.best_val_metric
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let d = ds();
        let run = || {
            let mut rng = StdRng::seed_from_u64(5);
            let mut m = LayerGcn::new(&d, LayerGcnConfig::default(), &mut rng);
            let cfg = TrainConfig {
                max_epochs: 3,
                patience: 100,
                seed: 7,
                ..Default::default()
            };
            train_with_early_stopping(&mut m, &d, &cfg).history.losses()
        };
        assert_eq!(run(), run());
    }
}
