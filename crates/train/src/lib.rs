//! # lrgcn-train — training harness for the LayerGCN reproduction
//!
//! * [`trainer`] — the epoch loop with periodic validation, early stopping
//!   on Recall@K and best-epoch tracking (§V-A4 of the paper);
//! * [`history`] — per-epoch records backing the convergence experiments
//!   (Fig. 3, Table IV) and the layer-weight logs (Figs. 1 and 5);
//! * [`sweep`] — hyper-parameter grids (Fig. 7) and multi-seed summaries
//!   (Table II's significance protocol).

pub mod history;
pub mod resume;
pub mod sweep;
pub mod trainer;

pub use history::{EpochRecord, History};
pub use resume::TrainState;
pub use sweep::{grid2, multi_seed, SeedSummary, SweepResult};
pub use trainer::{train_and_test, train_with_early_stopping, TrainConfig, TrainOutcome};
