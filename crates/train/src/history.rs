//! Per-epoch training records.
//!
//! The convergence experiments (Fig. 3, Table IV) need the loss curve, the
//! validation-metric curve and the best epoch; Figs. 1 and 5 additionally
//! log per-layer weights. [`History`] collects all of it.

/// One epoch's record.
#[derive(Clone, Debug)]
pub struct EpochRecord {
    pub epoch: usize,
    /// Mean training batch loss.
    pub train_loss: f64,
    /// Validation metric (the early-stopping criterion), if evaluated.
    pub val_metric: Option<f64>,
    /// Optional per-layer values (Fig. 1 weights / Fig. 5 similarities).
    pub layer_values: Option<Vec<f64>>,
}

/// The full training trajectory of one run.
#[derive(Clone, Debug, Default)]
pub struct History {
    records: Vec<EpochRecord>,
}

impl History {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, rec: EpochRecord) {
        self.records.push(rec);
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// The training-loss series.
    pub fn losses(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.train_loss).collect()
    }

    /// `(epoch, metric)` points where validation ran.
    pub fn val_curve(&self) -> Vec<(usize, f64)> {
        self.records
            .iter()
            .filter_map(|r| r.val_metric.map(|m| (r.epoch, m)))
            .collect()
    }

    /// The epoch with the best (largest) validation metric, if any.
    pub fn best_epoch(&self) -> Option<(usize, f64)> {
        self.val_curve()
            .into_iter()
            .fold(None, |best, (e, m)| match best {
                Some((_, bm)) if bm >= m => best,
                _ => Some((e, m)),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(epoch: usize, loss: f64, val: Option<f64>) -> EpochRecord {
        EpochRecord {
            epoch,
            train_loss: loss,
            val_metric: val,
            layer_values: None,
        }
    }

    #[test]
    fn best_epoch_is_argmax() {
        let mut h = History::new();
        h.push(rec(0, 1.0, Some(0.10)));
        h.push(rec(1, 0.8, None));
        h.push(rec(2, 0.6, Some(0.25)));
        h.push(rec(3, 0.5, Some(0.20)));
        assert_eq!(h.best_epoch(), Some((2, 0.25)));
        assert_eq!(h.val_curve().len(), 3);
        assert_eq!(h.losses(), vec![1.0, 0.8, 0.6, 0.5]);
    }

    #[test]
    fn empty_history() {
        let h = History::new();
        assert!(h.is_empty());
        assert!(h.best_epoch().is_none());
    }

    #[test]
    fn ties_keep_earliest_epoch() {
        let mut h = History::new();
        h.push(rec(0, 1.0, Some(0.5)));
        h.push(rec(1, 1.0, Some(0.5)));
        assert_eq!(h.best_epoch(), Some((0, 0.5)));
    }
}
