//! Resumable training-state checkpoints.
//!
//! A *training-state* checkpoint is a superset of a model checkpoint: it
//! reuses the binary entry format of `lrgcn_tensor::io` and layers extra
//! reserved-name entries on top, so one file is simultaneously
//!
//! * loadable by `evaluate --load` and the serving engine (the model-tag
//!   marker plus the model's own `checkpoint_entries` are present
//!   verbatim), and
//! * sufficient to continue `train_inner` bitwise-identically: Adam
//!   moments and step counter, the RNG stream position, the epoch cursor,
//!   early-stopping state (strikes, best epoch/metric, best-params
//!   snapshot), the loss/metric history so far, and the recovery count.
//!
//! The entry format only carries finite `f32` payloads (the reader rejects
//! NaN/Inf as corruption), so integer and `f64` metadata is packed
//! losslessly as u16 chunks: each `u64` becomes four `f32`s, each holding
//! one 16-bit limb exactly.
//!
//! # Generations
//!
//! [`save_generation`] writes `<base>.e<NNNNNN>` (epoch-stamped, atomic
//! via the tmp+fsync+rename path in `tensor::io`) and prunes all but the
//! newest [`KEEP_GENERATIONS`]. [`load_latest_valid`] walks generations
//! newest-first and skips any that fail validation, so a torn write or a
//! kill mid-save can only ever cost the most recent generation, never the
//! run.

use crate::history::{EpochRecord, History};
use lrgcn_models::{OptimState, Recommender, MODEL_TAG_PREFIX};
use lrgcn_tensor::{io, Matrix};
use std::path::{Path, PathBuf};

/// Bumped when the reserved-entry layout changes incompatibly.
pub const FORMAT_VERSION: u64 = 1;
/// How many epoch-stamped generations [`save_generation`] retains.
pub const KEEP_GENERATIONS: usize = 2;

/// Reserved entry holding the packed scalar metadata.
pub const META_ENTRY: &str = "__train__:meta";
/// Reserved entry holding the per-epoch history rows.
pub const HISTORY_ENTRY: &str = "__train__:history";
/// Prefix of per-epoch layer-value rows (`__train__:layers:<epoch>`).
pub const LAYERS_PREFIX: &str = "__train__:layers:";
/// Prefix of Adam first-moment entries (`__adam_m__:<param>`).
pub const ADAM_M_PREFIX: &str = "__adam_m__:";
/// Prefix of Adam second-moment entries (`__adam_v__:<param>`).
pub const ADAM_V_PREFIX: &str = "__adam_v__:";
/// Prefix of best-epoch parameter-snapshot entries (`__best__:<i>`).
pub const BEST_PREFIX: &str = "__best__:";

/// Number of `u64` slots in the meta entry (see [`TrainState::to_meta`]).
const META_SLOTS: usize = 14;

/// Everything `train_inner` needs besides the model parameters themselves.
#[derive(Clone, Debug)]
pub struct TrainState {
    /// First epoch index the resumed run should execute.
    pub epoch_next: usize,
    /// Early-stopping strike count at the checkpoint.
    pub strikes: usize,
    /// Best `(epoch, metric)` seen so far, if validation has run.
    pub best: Option<(usize, f64)>,
    /// Snapshot of the best epoch's parameters (when `restore_best`).
    pub best_params: Option<Vec<Matrix>>,
    /// Raw xoshiro256++ words of the training RNG, mid-stream.
    pub rng_state: [u64; 4],
    /// Optimizer step counter, learning rate and per-param moments.
    pub optim: OptimState,
    /// The per-epoch trajectory up to (excluding) `epoch_next`.
    pub history: History,
    /// Divergence recoveries consumed so far.
    pub recoveries: usize,
}

// ---------------------------------------------------------------------------
// Lossless scalar packing: u64 <-> four f32 limbs of 16 bits each.
// ---------------------------------------------------------------------------

/// Packs each `u64` as four `f32`s holding its u16 limbs, low first. Every
/// limb is an integer in `[0, 65535]`, exactly representable in `f32` and
/// always finite, so the checkpoint reader's corruption checks pass.
fn pack_u64s(vals: &[u64]) -> Vec<f32> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for &v in vals {
        for limb in 0..4 {
            out.push(((v >> (16 * limb)) & 0xFFFF) as f32);
        }
    }
    out
}

/// Inverse of [`pack_u64s`]; rejects limbs that are not exact u16 values.
fn unpack_u64s(data: &[f32]) -> Result<Vec<u64>, String> {
    if !data.len().is_multiple_of(4) {
        return Err(format!("packed u64 data has {} limbs (not / 4)", data.len()));
    }
    let mut out = Vec::with_capacity(data.len() / 4);
    for chunk in data.chunks_exact(4) {
        let mut v: u64 = 0;
        for (limb, &f) in chunk.iter().enumerate() {
            if !(0.0..=65535.0).contains(&f) || f.fract() != 0.0 {
                return Err(format!("packed u64 limb {f} is not an exact u16"));
            }
            v |= (f as u64) << (16 * limb);
        }
        out.push(v);
    }
    Ok(out)
}

fn pack_f64s(vals: &[f64]) -> Vec<f32> {
    pack_u64s(&vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>())
}

fn unpack_f64s(data: &[f32]) -> Result<Vec<f64>, String> {
    Ok(unpack_u64s(data)?.into_iter().map(f64::from_bits).collect())
}

// ---------------------------------------------------------------------------
// TrainState <-> entries
// ---------------------------------------------------------------------------

impl TrainState {
    /// The meta entry: `META_SLOTS` u64 slots, packed. Slot order is part
    /// of the on-disk format (guarded by `FORMAT_VERSION`).
    fn to_meta(&self) -> Matrix {
        let (best_flag, best_epoch, best_metric) = match self.best {
            Some((e, m)) => (1u64, e as u64, m.to_bits()),
            None => (0, 0, 0),
        };
        let slots = [
            FORMAT_VERSION,
            self.epoch_next as u64,
            self.strikes as u64,
            best_flag,
            best_epoch,
            best_metric,
            self.optim.step,
            u64::from(self.optim.lr.to_bits()),
            self.rng_state[0],
            self.rng_state[1],
            self.rng_state[2],
            self.rng_state[3],
            self.recoveries as u64,
            self.best_params.as_ref().map_or(0, |p| p.len()) as u64,
        ];
        debug_assert_eq!(slots.len(), META_SLOTS);
        Matrix::from_vec(1, META_SLOTS * 4, pack_u64s(&slots))
    }

    /// History rows: one row per record, 4 packed u64 columns
    /// `[epoch, loss_bits, val_flag, val_bits]`. Layer values (variable
    /// length) live in separate `__train__:layers:<epoch>` entries.
    fn to_history_rows(&self) -> Matrix {
        let recs = self.history.records();
        let mut data = Vec::with_capacity(recs.len() * 16);
        for r in recs {
            let (val_flag, val_bits) = match r.val_metric {
                Some(m) => (1u64, m.to_bits()),
                None => (0, 0),
            };
            data.extend(pack_u64s(&[
                r.epoch as u64,
                r.train_loss.to_bits(),
                val_flag,
                val_bits,
            ]));
        }
        Matrix::from_vec(recs.len(), 16, data)
    }
}

/// Serializes `state` plus the model's own checkpoint entries to `path`
/// (atomically, via `tensor::io`). When `tag` is given a `__model__:<tag>`
/// marker is included so the file doubles as a servable model checkpoint.
pub fn save_train_state(
    path: impl AsRef<Path>,
    tag: Option<&str>,
    model: &dyn Recommender,
    state: &TrainState,
) -> Result<(), String> {
    save_train_state_with_extras(path, tag, model, state, &[])
}

/// [`save_train_state`] with additional caller-supplied entries appended —
/// e.g. the streaming covered-prefix marker (`lrgcn_stream::COVERED_ENTRY`)
/// `lrgcn retrain` stamps so a serving engine knows how much of the event
/// log a generation's training matrices already include. Extra names must
/// not collide with model entries or the reserved `__train__:` names.
pub fn save_train_state_with_extras(
    path: impl AsRef<Path>,
    tag: Option<&str>,
    model: &dyn Recommender,
    state: &TrainState,
    extras: &[(String, Matrix)],
) -> Result<(), String> {
    let model_entries = model.checkpoint_entries().ok_or_else(|| {
        format!(
            "{} has no stable checkpoint format; cannot write a training-state checkpoint",
            model.name()
        )
    })?;

    let marker_name = tag.map(|t| format!("{MODEL_TAG_PREFIX}{t}"));
    let marker = Matrix::zeros(0, 0);
    let meta = state.to_meta();
    let history = state.to_history_rows();
    let layer_rows: Vec<(String, Matrix)> = state
        .history
        .records()
        .iter()
        .filter_map(|r| {
            r.layer_values.as_ref().map(|vals| {
                let m = Matrix::from_vec(1, vals.len() * 4, pack_f64s(vals));
                (format!("{LAYERS_PREFIX}{}", r.epoch), m)
            })
        })
        .collect();
    let moment_names: Vec<(String, String)> = state
        .optim
        .moments
        .iter()
        .map(|(n, _, _)| (format!("{ADAM_M_PREFIX}{n}"), format!("{ADAM_V_PREFIX}{n}")))
        .collect();
    let best_names: Vec<String> = state
        .best_params
        .iter()
        .flatten()
        .enumerate()
        .map(|(i, _)| format!("{BEST_PREFIX}{i}"))
        .collect();

    let mut refs: Vec<(&str, &Matrix)> = Vec::new();
    if let Some(name) = &marker_name {
        refs.push((name.as_str(), &marker));
    }
    for (n, m) in &model_entries {
        refs.push((n.as_str(), m));
    }
    refs.push((META_ENTRY, &meta));
    refs.push((HISTORY_ENTRY, &history));
    for (n, m) in &layer_rows {
        refs.push((n.as_str(), m));
    }
    for ((mn, vn), (_, m, v)) in moment_names.iter().zip(state.optim.moments.iter()) {
        refs.push((mn.as_str(), m));
        refs.push((vn.as_str(), v));
    }
    for (n, m) in best_names.iter().zip(state.best_params.iter().flatten()) {
        refs.push((n.as_str(), m));
    }
    for (n, m) in extras {
        refs.push((n.as_str(), m));
    }

    io::save_checkpoint(path, &refs).map_err(|e| e.to_string())
}

/// Parses a training-state checkpoint. Returns the raw entries (for
/// [`Recommender::load_checkpoint_entries`], which ignores the reserved
/// names) alongside the reconstructed [`TrainState`].
pub fn load_train_state(
    path: impl AsRef<Path>,
) -> Result<(Vec<(String, Matrix)>, TrainState), String> {
    let entries = io::load_checkpoint(path).map_err(|e| e.to_string())?;
    let state = state_from_entries(&entries)?;
    Ok((entries, state))
}

fn find<'a>(entries: &'a [(String, Matrix)], name: &str) -> Option<&'a Matrix> {
    entries.iter().find(|(n, _)| n == name).map(|(_, m)| m)
}

fn state_from_entries(entries: &[(String, Matrix)]) -> Result<TrainState, String> {
    let meta = find(entries, META_ENTRY)
        .ok_or_else(|| format!("not a training-state checkpoint (missing {META_ENTRY:?})"))?;
    let slots = unpack_u64s(meta.data())?;
    if slots.len() != META_SLOTS {
        return Err(format!(
            "meta entry has {} slots, expected {META_SLOTS}",
            slots.len()
        ));
    }
    if slots[0] != FORMAT_VERSION {
        return Err(format!(
            "training-state format version {} (this build reads {FORMAT_VERSION})",
            slots[0]
        ));
    }
    let best = if slots[3] == 1 {
        let metric = f64::from_bits(slots[5]);
        if !metric.is_finite() {
            return Err("best metric is non-finite".into());
        }
        Some((slots[4] as usize, metric))
    } else {
        None
    };
    let lr_bits = u32::try_from(slots[7]).map_err(|_| "lr bits exceed u32".to_string())?;
    let lr = f32::from_bits(lr_bits);
    if !lr.is_finite() {
        return Err("learning rate is non-finite".into());
    }
    let n_best = slots[13] as usize;

    // History rows (+ optional per-epoch layer values).
    let hist_rows = find(entries, HISTORY_ENTRY)
        .ok_or_else(|| format!("missing {HISTORY_ENTRY:?} entry"))?;
    if hist_rows.rows() > 0 && hist_rows.cols() != 16 {
        return Err(format!("history rows have {} cols, expected 16", hist_rows.cols()));
    }
    let mut history = History::new();
    for row in 0..hist_rows.rows() {
        let vals = unpack_u64s(hist_rows.row(row))?;
        let epoch = vals[0] as usize;
        let train_loss = f64::from_bits(vals[1]);
        let val_metric = if vals[2] == 1 {
            Some(f64::from_bits(vals[3]))
        } else {
            None
        };
        let layer_values = match find(entries, &format!("{LAYERS_PREFIX}{epoch}")) {
            Some(m) => Some(unpack_f64s(m.data())?),
            None => None,
        };
        history.push(EpochRecord {
            epoch,
            train_loss,
            val_metric,
            layer_values,
        });
    }

    // Adam moments, paired by parameter name.
    let mut moments: Vec<(String, Matrix, Matrix)> = Vec::new();
    for (name, m) in entries {
        if let Some(param) = name.strip_prefix(ADAM_M_PREFIX) {
            let v = find(entries, &format!("{ADAM_V_PREFIX}{param}"))
                .ok_or_else(|| format!("moment entry {name:?} has no matching v entry"))?;
            moments.push((param.to_string(), m.clone(), v.clone()));
        }
    }
    let optim = OptimState {
        step: slots[6],
        lr,
        moments,
    };

    let best_params = if n_best > 0 {
        let mut params = Vec::with_capacity(n_best);
        for i in 0..n_best {
            let m = find(entries, &format!("{BEST_PREFIX}{i}"))
                .ok_or_else(|| format!("missing best-params entry {BEST_PREFIX}{i}"))?;
            params.push(m.clone());
        }
        Some(params)
    } else {
        None
    };

    Ok(TrainState {
        epoch_next: slots[1] as usize,
        strikes: slots[2] as usize,
        best,
        best_params,
        rng_state: [slots[8], slots[9], slots[10], slots[11]],
        optim,
        history,
        recoveries: slots[12] as usize,
    })
}

// ---------------------------------------------------------------------------
// Generation management
// ---------------------------------------------------------------------------

/// The epoch-stamped path of one checkpoint generation.
pub fn generation_path(base: &Path, epoch_next: usize) -> PathBuf {
    let mut name = base
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    name.push_str(&format!(".e{epoch_next:06}"));
    base.with_file_name(name)
}

/// All on-disk generations of `base`, newest (highest epoch) first.
pub fn list_generations(base: &Path) -> Vec<(usize, PathBuf)> {
    // A bare relative base like "ckpt" has parent Some("") — not readable.
    let dir = match base.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let stem = match base.file_name() {
        Some(n) => format!("{}.e", n.to_string_lossy()),
        None => return Vec::new(),
    };
    let mut found = Vec::new();
    let Ok(rd) = std::fs::read_dir(&dir) else {
        return Vec::new();
    };
    for entry in rd.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(suffix) = name.strip_prefix(&stem) {
            if !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit()) {
                if let Ok(epoch) = suffix.parse::<usize>() {
                    found.push((epoch, entry.path()));
                }
            }
        }
    }
    found.sort_by_key(|g| std::cmp::Reverse(g.0));
    found
}

/// Writes the generation for `state.epoch_next` atomically, then prunes all
/// but the newest [`KEEP_GENERATIONS`] generations (prune errors are
/// ignored: stale files are harmless, the loader skips past them).
pub fn save_generation(
    base: &Path,
    tag: Option<&str>,
    model: &dyn Recommender,
    state: &TrainState,
) -> Result<PathBuf, String> {
    save_generation_with_extras(base, tag, model, state, &[])
}

/// [`save_generation`] with extra checkpoint entries (see
/// [`save_train_state_with_extras`]).
pub fn save_generation_with_extras(
    base: &Path,
    tag: Option<&str>,
    model: &dyn Recommender,
    state: &TrainState,
    extras: &[(String, Matrix)],
) -> Result<PathBuf, String> {
    let path = generation_path(base, state.epoch_next);
    save_train_state_with_extras(&path, tag, model, state, extras)?;
    for (_, old) in list_generations(base).into_iter().skip(KEEP_GENERATIONS) {
        let _ = std::fs::remove_file(old);
    }
    Ok(path)
}

/// Loads the newest generation of `base` that validates, skipping corrupt
/// ones. `Ok(None)` when no generation exists at all; `Err` when
/// generations exist but none is loadable (every candidate's failure is
/// listed).
#[allow(clippy::type_complexity)]
pub fn load_latest_valid(
    base: &Path,
) -> Result<Option<(PathBuf, Vec<(String, Matrix)>, TrainState)>, String> {
    let candidates = list_generations(base);
    if candidates.is_empty() {
        return Ok(None);
    }
    let mut failures = Vec::new();
    for (_, path) in candidates {
        match load_train_state(&path) {
            Ok((entries, state)) => return Ok(Some((path, entries, state))),
            Err(e) => failures.push(format!("{}: {e}", path.display())),
        }
    }
    Err(format!(
        "no loadable checkpoint generation:\n  {}",
        failures.join("\n  ")
    ))
}

/// Resolves a `--resume PATH` argument: an exact training-state file is
/// used directly; otherwise `PATH` is treated as a generation base and the
/// newest valid generation wins.
#[allow(clippy::type_complexity)]
pub fn load_for_resume(
    path: &Path,
) -> Result<(PathBuf, Vec<(String, Matrix)>, TrainState), String> {
    if path.is_file() {
        let (entries, state) = load_train_state(path)?;
        return Ok((path.to_path_buf(), entries, state));
    }
    match load_latest_valid(path)? {
        Some(hit) => Ok(hit),
        None => Err(format!(
            "{}: no training-state checkpoint or generation found",
            path.display()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrgcn_data::synthetic::SyntheticConfig;
    use lrgcn_data::{Dataset, SplitRatios};
    use lrgcn_models::{LayerGcn, LayerGcnConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_ds() -> Dataset {
        let log = SyntheticConfig::games().scaled(0.05).generate(3);
        Dataset::chronological_split("t", &log, SplitRatios::default())
    }

    fn sample_state(model: &LayerGcn, epoch_next: usize) -> TrainState {
        let mut history = History::new();
        history.push(EpochRecord {
            epoch: 0,
            train_loss: std::f64::consts::LN_2,
            val_metric: None,
            layer_values: None,
        });
        history.push(EpochRecord {
            epoch: 1,
            train_loss: 0.5123,
            val_metric: Some(0.25),
            layer_values: Some(vec![0.1, 0.2, 0.7]),
        });
        TrainState {
            epoch_next,
            strikes: 1,
            best: Some((1, 0.25)),
            best_params: model.snapshot(),
            rng_state: [0xDEAD_BEEF, 42, u64::MAX, 7],
            optim: model.optim_state().expect("layergcn has optim state"),
            history,
            recoveries: 1,
        }
    }

    #[test]
    fn u64_packing_roundtrips_extremes() {
        let vals = [0, 1, 0xFFFF, 0x1_0000, u64::MAX, 0x0123_4567_89AB_CDEF];
        assert_eq!(unpack_u64s(&pack_u64s(&vals)).unwrap(), vals);
        let f64s = [0.0, -0.0, 1.5, f64::MIN_POSITIVE, -123.456e300];
        let back = unpack_f64s(&pack_f64s(&f64s)).unwrap();
        for (a, b) in f64s.iter().zip(back.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(unpack_u64s(&[0.5, 0.0, 0.0, 0.0]).is_err());
        assert!(unpack_u64s(&[70000.0, 0.0, 0.0, 0.0]).is_err());
        assert!(unpack_u64s(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn train_state_roundtrips_bitwise() {
        let ds = tiny_ds();
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = LayerGcn::new(&ds, LayerGcnConfig::default(), &mut rng);
        model.train_epoch(&ds, 0, &mut rng);
        let state = sample_state(&model, 2);

        let dir = std::env::temp_dir().join("lrgcn_resume_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.bin");
        save_train_state(&path, Some("layergcn"), &model, &state).expect("save");

        let (entries, back) = load_train_state(&path).expect("load");
        // The file is simultaneously a tagged model checkpoint.
        assert_eq!(lrgcn_models::model_tag(&entries), Some("layergcn"));
        let mut rng2 = StdRng::seed_from_u64(99);
        let mut fresh = LayerGcn::new(&ds, LayerGcnConfig::default(), &mut rng2);
        fresh.load_checkpoint_entries(&entries).expect("model load");

        assert_eq!(back.epoch_next, 2);
        assert_eq!(back.strikes, 1);
        assert_eq!(back.recoveries, 1);
        assert_eq!(back.rng_state, state.rng_state);
        assert_eq!(back.best.unwrap().0, 1);
        assert_eq!(back.best.unwrap().1.to_bits(), 0.25f64.to_bits());
        assert_eq!(back.optim.step, state.optim.step);
        assert_eq!(back.optim.lr.to_bits(), state.optim.lr.to_bits());
        assert_eq!(back.optim.moments.len(), 1);
        let (name, m, v) = &back.optim.moments[0];
        assert_eq!(name, "ego");
        assert_eq!(m.data(), state.optim.moments[0].1.data());
        assert_eq!(v.data(), state.optim.moments[0].2.data());
        assert_eq!(back.history.len(), 2);
        let r = &back.history.records()[1];
        assert_eq!(r.train_loss.to_bits(), 0.5123f64.to_bits());
        assert_eq!(r.val_metric.unwrap().to_bits(), 0.25f64.to_bits());
        assert_eq!(r.layer_values.as_deref(), Some(&[0.1, 0.2, 0.7][..]));
        assert!(back.history.records()[0].layer_values.is_none());
        let bp = back.best_params.expect("best params");
        assert_eq!(bp.len(), 1);
        assert_eq!(bp[0].data(), state.best_params.as_ref().unwrap()[0].data());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generations_prune_and_fall_back_past_corruption() {
        let ds = tiny_ds();
        let mut rng = StdRng::seed_from_u64(5);
        let model = LayerGcn::new(&ds, LayerGcnConfig::default(), &mut rng);

        let dir = std::env::temp_dir().join("lrgcn_resume_generations");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("ckpt");

        for epoch_next in [2usize, 4, 6] {
            let state = sample_state(&model, epoch_next);
            save_generation(&base, Some("layergcn"), &model, &state).expect("save gen");
        }
        // Keep-2 pruning: only e000004 and e000006 remain.
        let gens = list_generations(&base);
        assert_eq!(
            gens.iter().map(|(e, _)| *e).collect::<Vec<_>>(),
            vec![6, 4]
        );

        // Corrupt the newest; the loader must fall back to epoch 4.
        std::fs::write(&gens[0].1, b"torn").unwrap();
        let (path, _, state) = load_latest_valid(&base).expect("load").expect("some");
        assert_eq!(state.epoch_next, 4);
        assert_eq!(path, generation_path(&base, 4));

        // Corrupt every generation: hard error, not silent fresh start.
        std::fs::write(&gens[1].1, b"also torn").unwrap();
        let err = load_latest_valid(&base).expect_err("all corrupt");
        assert!(err.contains("no loadable checkpoint generation"), "{err}");

        // No generations at all: Ok(None).
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        assert!(load_latest_valid(&base).expect("empty").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_for_resume_accepts_exact_file_or_base() {
        let ds = tiny_ds();
        let mut rng = StdRng::seed_from_u64(5);
        let model = LayerGcn::new(&ds, LayerGcnConfig::default(), &mut rng);
        let dir = std::env::temp_dir().join("lrgcn_resume_resolve");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("ckpt");
        let state = sample_state(&model, 2);
        let written = save_generation(&base, None, &model, &state).expect("save");

        let (p1, _, s1) = load_for_resume(&base).expect("resolve base");
        assert_eq!(p1, written);
        assert_eq!(s1.epoch_next, 2);
        let (p2, _, s2) = load_for_resume(&written).expect("resolve exact");
        assert_eq!(p2, written);
        assert_eq!(s2.epoch_next, 2);

        let missing = dir.join("nope");
        let err = load_for_resume(&missing).expect_err("missing");
        assert!(err.contains("no training-state checkpoint"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
