//! Hyper-parameter sweeps and multi-seed runs.
//!
//! Backs the paper's Fig. 7 (λ × dropout grid), the layer sweep of Fig. 6
//! and the 5-seed significance protocol of Table II.

/// Result of evaluating a grid of parameter points.
#[derive(Clone, Debug)]
pub struct SweepResult<P> {
    /// `(point, score)` in evaluation order.
    pub cells: Vec<(P, f64)>,
}

impl<P: Clone> SweepResult<P> {
    /// The best-scoring cell (largest score).
    ///
    /// # Panics
    /// Panics on an empty sweep.
    pub fn best(&self) -> &(P, f64) {
        self.cells
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("scores must be finite"))
            .expect("empty sweep")
    }

    /// The worst-scoring cell.
    pub fn worst(&self) -> &(P, f64) {
        self.cells
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("scores must be finite"))
            .expect("empty sweep")
    }
}

/// Evaluates `eval` at every point, collecting scores.
pub fn sweep<P: Clone>(points: &[P], mut eval: impl FnMut(&P) -> f64) -> SweepResult<P> {
    SweepResult {
        cells: points.iter().map(|p| (p.clone(), eval(p))).collect(),
    }
}

/// Cartesian product of two axes, row-major (`a` outer).
pub fn grid2<A: Clone, B: Clone>(a: &[A], b: &[B]) -> Vec<(A, B)> {
    a.iter()
        .flat_map(|x| b.iter().map(move |y| (x.clone(), y.clone())))
        .collect()
}

/// Summary statistics of a multi-seed run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeedSummary {
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator); 0 for a single seed.
    pub std: f64,
    pub min: f64,
    pub max: f64,
    pub n: usize,
}

/// Runs `run` once per seed and summarizes the scores.
pub fn multi_seed(seeds: &[u64], mut run: impl FnMut(u64) -> f64) -> (Vec<f64>, SeedSummary) {
    assert!(!seeds.is_empty(), "need at least one seed");
    let scores: Vec<f64> = seeds.iter().map(|&s| run(s)).collect();
    let n = scores.len();
    let mean = scores.iter().sum::<f64>() / n as f64;
    let std = if n > 1 {
        (scores.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
    } else {
        0.0
    };
    let min = scores.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (scores, SeedSummary { mean, std, min, max, n })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2_row_major() {
        let g = grid2(&[1, 2], &['a', 'b', 'c']);
        assert_eq!(g.len(), 6);
        assert_eq!(g[0], (1, 'a'));
        assert_eq!(g[2], (1, 'c'));
        assert_eq!(g[3], (2, 'a'));
    }

    #[test]
    fn sweep_finds_best_and_worst() {
        let points = vec![0.0f64, 1.0, 2.0, 3.0];
        let r = sweep(&points, |&x| -(x - 2.0) * (x - 2.0));
        assert_eq!(r.best().0, 2.0);
        assert_eq!(r.worst().0, 0.0);
        assert_eq!(r.cells.len(), 4);
    }

    #[test]
    fn multi_seed_summary() {
        let (scores, s) = multi_seed(&[1, 2, 3, 4], |seed| seed as f64);
        assert_eq!(scores, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.n, 4);
    }

    #[test]
    fn single_seed_zero_std() {
        let (_, s) = multi_seed(&[9], |x| x as f64);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seeds_panic() {
        let _ = multi_seed(&[], |x| x as f64);
    }
}
