//! `LRGCN_THREADS` is a pure performance knob: training trajectories
//! (per-epoch losses and validation metrics) must be identical — exact f64
//! equality — no matter how many worker threads the kernels fan out to.

use lrgcn_data::{Dataset, SplitRatios, SyntheticConfig};
use lrgcn_models::{LayerGcn, LayerGcnConfig};
use lrgcn_tensor::par;
use lrgcn_train::{train_with_early_stopping, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ds() -> Dataset {
    let log = SyntheticConfig::games().scaled(0.1).generate(3);
    Dataset::chronological_split("t", &log, SplitRatios::default())
}

fn run_trajectory(d: &Dataset) -> (Vec<f64>, Vec<(usize, f64)>) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut m = LayerGcn::new(d, LayerGcnConfig::default(), &mut rng);
    let cfg = TrainConfig {
        max_epochs: 4,
        patience: 100,
        eval_every: 1,
        seed: 7,
        ..Default::default()
    };
    let out = train_with_early_stopping(&mut m, d, &cfg);
    (out.history.losses(), out.history.val_curve())
}

#[test]
fn training_trajectory_is_thread_count_invariant() {
    let d = ds();
    par::set_threads(1);
    let (losses_1, vals_1) = run_trajectory(&d);
    assert_eq!(losses_1.len(), 4);
    for t in [2usize, 3, 8] {
        par::set_threads(t);
        let (losses_t, vals_t) = run_trajectory(&d);
        assert_eq!(losses_t, losses_1, "losses differ at threads={t}");
        assert_eq!(vals_t, vals_1, "val metrics differ at threads={t}");
    }
    par::set_threads(1);
}
