//! Integration tests for the training harness: sweeps, multi-seed runs and
//! the early-stopping/restoration protocol on a real model.

use lrgcn_data::{Dataset, SplitRatios, SyntheticConfig};
use lrgcn_models::{LayerGcn, LayerGcnConfig, Recommender};
use lrgcn_train::sweep::sweep;
use lrgcn_train::{grid2, multi_seed, train_and_test, train_with_early_stopping, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset() -> Dataset {
    let log = SyntheticConfig::games().scaled(0.1).generate(8);
    Dataset::chronological_split("harness", &log, SplitRatios::default())
}

#[test]
fn sweep_over_lambda_finds_a_best_cell() {
    let ds = dataset();
    let lambdas = [1e-4f32, 1e-2, 0.5];
    let result = sweep(&lambdas, |&lambda| {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = LayerGcnConfig {
            lambda,
            ..LayerGcnConfig::without_dropout()
        };
        let mut m = LayerGcn::new(&ds, cfg, &mut rng);
        let tc = TrainConfig {
            max_epochs: 8,
            patience: 100,
            ..Default::default()
        };
        let (_, rep) = train_and_test(&mut m, &ds, &tc, &[20]);
        rep.recall(20)
    });
    assert_eq!(result.cells.len(), 3);
    let (best_lambda, best_score) = *result.best();
    assert!(best_score >= result.worst().1);
    // An absurd λ = 0.5 should never be the winner.
    assert!(best_lambda < 0.5, "λ=0.5 won with {best_score}");
}

#[test]
fn grid2_drives_two_axis_sweeps() {
    let grid = grid2(&[1usize, 2], &[0.0f32, 0.1]);
    let r = sweep(&grid, |&(layers, _ratio)| layers as f64);
    assert_eq!(r.cells.len(), 4);
    assert_eq!(r.best().0 .0, 2);
}

#[test]
fn multi_seed_measures_variance_of_real_runs() {
    let ds = dataset();
    let (scores, summary) = multi_seed(&[1, 2, 3], |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = LayerGcn::new(&ds, LayerGcnConfig::without_dropout(), &mut rng);
        let tc = TrainConfig {
            max_epochs: 6,
            patience: 100,
            seed,
            ..Default::default()
        };
        let (_, rep) = train_and_test(&mut m, &ds, &tc, &[20]);
        rep.recall(20)
    });
    assert_eq!(scores.len(), 3);
    assert!(summary.mean > 0.0);
    assert!(summary.min <= summary.mean && summary.mean <= summary.max);
    // Different seeds should produce at least slightly different scores.
    assert!(summary.std > 0.0, "suspiciously identical runs: {scores:?}");
}

#[test]
fn restoration_never_hurts_validation() {
    let ds = dataset();
    let run = |restore: bool| {
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = LayerGcn::new(&ds, LayerGcnConfig::without_dropout(), &mut rng);
        let tc = TrainConfig {
            max_epochs: 14,
            patience: 100,
            eval_every: 1,
            restore_best: restore,
            ..Default::default()
        };
        let out = train_with_early_stopping(&mut m, &ds, &tc);
        m.refresh(&ds);
        let val = lrgcn_eval::evaluate_ranking(
            &ds,
            lrgcn_eval::Split::Val,
            &[20],
            256,
            &mut |u| m.score_users(&ds, u),
        )
        .recall(20);
        (val, out.best_val_metric)
    };
    let (restored_val, best) = run(true);
    let (final_val, best2) = run(false);
    assert_eq!(best, best2, "training trajectory must not depend on restore");
    assert!((restored_val - best).abs() < 1e-12);
    assert!(restored_val + 1e-12 >= final_val, "restoration made validation worse");
}
