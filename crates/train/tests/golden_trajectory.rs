//! Golden-trajectory regression test.
//!
//! Freezes a seeded 3-epoch LayerGCN run on the scaled MOOC preset: the
//! per-epoch training losses and validation Recall@20 values are pinned to
//! constants captured from the reference build. Any future kernel rewrite,
//! parallelization change or optimizer tweak that silently perturbs the
//! numerics fails here instead of shipping — the kernels are contractually
//! bitwise identical across thread counts, so this test passes unchanged at
//! `LRGCN_THREADS=1` and `LRGCN_THREADS=8`.
//!
//! To re-capture after an *intentional* numeric change, run with
//! `LRGCN_GOLDEN_PRINT=1` and paste the printed table:
//!
//! ```text
//! LRGCN_GOLDEN_PRINT=1 cargo test -p lrgcn-train --test golden_trajectory -- --nocapture
//! ```

use lrgcn_data::{Dataset, SplitRatios, SyntheticConfig};
use lrgcn_models::{LayerGcn, LayerGcnConfig};
use lrgcn_train::{train_with_early_stopping, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPOCHS: usize = 3;
const TOL: f64 = 1e-6;

/// Captured from the reference build (seed 2023 model init, seed 7
/// sampling). Loss is the mean BPR+L2 objective per epoch; recall is
/// validation Recall@20 (eval_every = 1, so every epoch validates).
/// Pasted verbatim from `LRGCN_GOLDEN_PRINT=1` at 17 digits — more than
/// f64 can hold, which is the point: the parsed constant is bit-exact.
#[allow(clippy::excessive_precision)]
const GOLDEN_LOSS: [f64; EPOCHS] = [
    0.69378465414047241,
    0.69375324249267578,
    0.69372189044952393,
];
#[allow(clippy::excessive_precision)]
const GOLDEN_RECALL: [f64; EPOCHS] = [
    0.67581300813008127,
    0.66463414634146345,
    0.68191056910569103,
];

fn run_trajectory() -> (Vec<f64>, Vec<f64>) {
    let log = SyntheticConfig::mooc().scaled(0.25).generate(11);
    let ds = Dataset::chronological_split("mooc-golden", &log, SplitRatios::default());
    let mut rng = StdRng::seed_from_u64(2023);
    let mut model = LayerGcn::new(&ds, LayerGcnConfig::default(), &mut rng);
    let cfg = TrainConfig {
        max_epochs: EPOCHS,
        patience: 1000,
        eval_every: 1,
        criterion_k: 20,
        seed: 7,
        verbose: false,
        restore_best: false,
    };
    let out = train_with_early_stopping(&mut model, &ds, &cfg);
    let recalls: Vec<f64> = out.history.val_curve().iter().map(|&(_, r)| r).collect();
    (out.history.losses(), recalls)
}

#[test]
fn layergcn_mooc_trajectory_matches_golden_values() {
    let (losses, recalls) = run_trajectory();
    if std::env::var("LRGCN_GOLDEN_PRINT").is_ok() {
        println!("GOLDEN_LOSS: {losses:.17?}");
        println!("GOLDEN_RECALL: {recalls:.17?}");
        return;
    }
    assert_eq!(losses.len(), EPOCHS);
    assert_eq!(recalls.len(), EPOCHS);
    let mut failures = Vec::new();
    for e in 0..EPOCHS {
        if (losses[e] - GOLDEN_LOSS[e]).abs() > TOL {
            failures.push(format!(
                "epoch {e} loss {:.9} != golden {:.9}",
                losses[e], GOLDEN_LOSS[e]
            ));
        }
        if (recalls[e] - GOLDEN_RECALL[e]).abs() > TOL {
            failures.push(format!(
                "epoch {e} recall@20 {:.9} != golden {:.9}",
                recalls[e], GOLDEN_RECALL[e]
            ));
        }
    }
    if !failures.is_empty() {
        // The word below is the tripwire scripts/verify.sh greps for; it
        // must appear on stderr only when the trajectory actually diverges.
        eprintln!("numeric drift detected:\n  {}", failures.join("\n  "));
        panic!("golden trajectory mismatch ({} deviations)", failures.len());
    }
}

#[test]
fn trajectory_is_reproducible_within_one_build() {
    // Guards the *premise* of the golden test: two in-process runs with the
    // same seeds must agree bitwise, otherwise pinned constants would flake.
    let (l1, r1) = run_trajectory();
    let (l2, r2) = run_trajectory();
    assert_eq!(l1, l2, "losses varied across identical runs");
    assert_eq!(r1, r2, "recalls varied across identical runs");
}
