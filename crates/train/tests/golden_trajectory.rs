//! Golden-trajectory regression test.
//!
//! Freezes a seeded 3-epoch LayerGCN run on the scaled MOOC preset: the
//! per-epoch training losses and validation Recall@20 values are pinned to
//! constants captured from the reference build. Any future kernel rewrite,
//! parallelization change or optimizer tweak that silently perturbs the
//! numerics fails here instead of shipping — the kernels are contractually
//! bitwise identical across thread counts, so this test passes unchanged at
//! `LRGCN_THREADS=1` and `LRGCN_THREADS=8`.
//!
//! To re-capture after an *intentional* numeric change, run with
//! `LRGCN_GOLDEN_PRINT=1` and paste the printed table:
//!
//! ```text
//! LRGCN_GOLDEN_PRINT=1 cargo test -p lrgcn-train --test golden_trajectory -- --nocapture
//! ```

use lrgcn_data::{Dataset, SplitRatios, SyntheticConfig};
use lrgcn_models::{LayerGcn, LayerGcnConfig};
use lrgcn_train::{train_with_early_stopping, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPOCHS: usize = 3;
const TOL: f64 = 1e-6;

/// Captured from the reference build (seed 2023 model init, seed 7
/// sampling). Loss is the mean BPR+L2 objective per epoch; recall is
/// validation Recall@20 (eval_every = 1, so every epoch validates).
/// Pasted verbatim from `LRGCN_GOLDEN_PRINT=1` at 17 digits — more than
/// f64 can hold, which is the point: the parsed constant is bit-exact.
#[allow(clippy::excessive_precision)]
const GOLDEN_LOSS: [f64; EPOCHS] = [
    0.69378465414047241,
    0.69375324249267578,
    0.69372189044952393,
];
#[allow(clippy::excessive_precision)]
const GOLDEN_RECALL: [f64; EPOCHS] = [
    0.67581300813008127,
    0.66463414634146345,
    0.68191056910569103,
];
/// Per-epoch LayerGCN layer similarities (the Fig. 5 refinement weights,
/// recorded into `History::layer_values` by `record_diagnostics`). The
/// diagnostics probe accumulates serially in f64, so these too are
/// thread-invariant and pinned to the same tolerance.
#[allow(clippy::excessive_precision)]
const GOLDEN_SIMS: [[f64; 4]; EPOCHS] = [
    [
        0.01855245605111122,
        0.08845362812280655,
        0.01677223108708858,
        0.06840750575065613,
    ],
    [
        0.03228902444243431,
        0.15920068323612213,
        0.03093312866985798,
        0.12100542336702347,
    ],
    [
        0.04605074599385262,
        0.19458585977554321,
        0.04709725454449654,
        0.13851954042911530,
    ],
];

fn run_trajectory() -> (Vec<f64>, Vec<f64>, Vec<Vec<f64>>) {
    let log = SyntheticConfig::mooc().scaled(0.25).generate(11);
    let ds = Dataset::chronological_split("mooc-golden", &log, SplitRatios::default());
    let mut rng = StdRng::seed_from_u64(2023);
    let mut model = LayerGcn::new(&ds, LayerGcnConfig::default(), &mut rng);
    let cfg = TrainConfig {
        max_epochs: EPOCHS,
        patience: 1000,
        eval_every: 1,
        criterion_k: 20,
        seed: 7,
        verbose: false,
        restore_best: false,
        record_diagnostics: true,
        ..Default::default()
    };
    let out = train_with_early_stopping(&mut model, &ds, &cfg);
    let recalls: Vec<f64> = out.history.val_curve().iter().map(|&(_, r)| r).collect();
    let sims: Vec<Vec<f64>> = out
        .history
        .records()
        .iter()
        .filter_map(|r| r.layer_values.clone())
        .collect();
    (out.history.losses(), recalls, sims)
}

#[test]
fn layergcn_mooc_trajectory_matches_golden_values() {
    let (losses, recalls, sims) = run_trajectory();
    if std::env::var("LRGCN_GOLDEN_PRINT").is_ok() {
        println!("GOLDEN_LOSS: {losses:.17?}");
        println!("GOLDEN_RECALL: {recalls:.17?}");
        println!("GOLDEN_SIMS: {sims:.17?}");
        return;
    }
    assert_eq!(losses.len(), EPOCHS);
    assert_eq!(recalls.len(), EPOCHS);
    assert_eq!(sims.len(), EPOCHS, "every epoch validates, so every epoch probes");
    let mut failures = Vec::new();
    for e in 0..EPOCHS {
        if (losses[e] - GOLDEN_LOSS[e]).abs() > TOL {
            failures.push(format!(
                "epoch {e} loss {:.9} != golden {:.9}",
                losses[e], GOLDEN_LOSS[e]
            ));
        }
        if (recalls[e] - GOLDEN_RECALL[e]).abs() > TOL {
            failures.push(format!(
                "epoch {e} recall@20 {:.9} != golden {:.9}",
                recalls[e], GOLDEN_RECALL[e]
            ));
        }
        assert_eq!(sims[e].len(), GOLDEN_SIMS[e].len(), "layer count changed");
        for (l, (&got, &want)) in sims[e].iter().zip(&GOLDEN_SIMS[e]).enumerate() {
            if (got - want).abs() > TOL {
                failures.push(format!(
                    "epoch {e} layer {l} similarity {got:.9} != golden {want:.9}"
                ));
            }
        }
    }
    if !failures.is_empty() {
        // The word below is the tripwire scripts/verify.sh greps for; it
        // must appear on stderr only when the trajectory actually diverges.
        eprintln!("numeric drift detected:\n  {}", failures.join("\n  "));
        panic!("golden trajectory mismatch ({} deviations)", failures.len());
    }
}

#[test]
fn trajectory_is_reproducible_within_one_build() {
    // Guards the *premise* of the golden test: two in-process runs with the
    // same seeds must agree bitwise, otherwise pinned constants would flake.
    let (l1, r1, s1) = run_trajectory();
    let (l2, r2, s2) = run_trajectory();
    assert_eq!(l1, l2, "losses varied across identical runs");
    assert_eq!(r1, r2, "recalls varied across identical runs");
    assert_eq!(s1, s2, "layer similarities varied across identical runs");
}
