//! Fig. 1 — the recommendation dilemma: with learnable layer weights, a
//! 4-layer LightGCN collapses its readout onto the ego layer.
//!
//! Trains the learnable-weight LightGCN variant on the MOOC replica and
//! prints the softmax layer weights per epoch; the ego layer's weight should
//! grow to dominate the others.
//!
//! ```text
//! cargo run -p lrgcn-bench --release --bin exp_fig1 -- [--epochs N] [--scale F] [--seed N]
//! ```

use lrgcn::models::{LightGcnConfig, Recommender, WeightedLightGcn};
use lrgcn_bench::{rule, Args, ExpConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let cfg = ExpConfig::parse(&args, 60);
    let ds = cfg.dataset(args.get("dataset").unwrap_or("mooc"));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut m = WeightedLightGcn::new(&ds, LightGcnConfig::default(), &mut rng);
    println!("FIG. 1: LEARNABLE LAYER WEIGHTS COLLAPSE TO THE EGO LAYER (4-layer LightGCN, MOOC)");
    rule(76);
    println!(
        "{:>6} | {:>9} {:>9} {:>9} {:>9} {:>9}",
        "epoch", "w(ego)", "w(L1)", "w(L2)", "w(L3)", "w(L4)"
    );
    rule(76);
    let mut first = Vec::new();
    let mut last = Vec::new();
    for epoch in 0..cfg.max_epochs {
        m.train_epoch(&ds, epoch, &mut rng);
        let w = m.layer_weights();
        if epoch == 0 {
            first = w.clone();
        }
        last = w.clone();
        if epoch % (cfg.max_epochs / 12).max(1) == 0 || epoch + 1 == cfg.max_epochs {
            println!(
                "{:>6} | {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
                epoch, w[0], w[1], w[2], w[3], w[4]
            );
        }
    }
    rule(76);
    let ego_grew = last[0] > first[0];
    let dominates = last[0] > *last[1..].iter().max_by(|a, b| a.partial_cmp(b).expect("finite")).expect("layers");
    println!(
        "ego-layer weight: {:.4} -> {:.4} ({}); dominates all hidden layers: {}",
        first[0],
        last[0],
        if ego_grew { "grew" } else { "shrank" },
        dominates
    );
    println!(
        "Paper's claim: the weighting of the ego layer always ends up dominating, which\n\
         starves high-order information (the \"solution collapsing\" half of the dilemma)."
    );
}
