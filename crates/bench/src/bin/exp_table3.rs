//! Table III — LayerGCN (4 layers) vs LightGCN with 1–4 layers on MOOC.
//!
//! The paper's point: LightGCN must tune its depth (best ≤ 3 layers, and
//! 4 layers *degrades* due to over-smoothing), while LayerGCN fixed at 4
//! layers beats every LightGCN depth.
//!
//! ```text
//! cargo run -p lrgcn-bench --release --bin exp_table3 -- [--epochs N] [--scale F] [--seed N]
//! ```

use lrgcn::models::{LayerGcn, LayerGcnConfig, LightGcn, LightGcnConfig};
use lrgcn::train::{train_and_test, TrainConfig};
use lrgcn_bench::{fmt4, rule, Args, ExpConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let cfg = ExpConfig::parse(&args, 80);
    let ds = cfg.dataset(args.get("dataset").unwrap_or("mooc"));
    let tc = TrainConfig {
        max_epochs: cfg.max_epochs,
        patience: cfg.patience,
        eval_every: 2,
        criterion_k: 20,
        seed: cfg.seed,
        verbose: cfg.verbose,
        restore_best: true,
        record_diagnostics: false,
        ..Default::default()
    };
    let ks = [20, 50];
    println!("TABLE III: LAYERGCN vs LIGHTGCN w.r.t. DIFFERENT LAYERS ON THE MOOC DATASET");
    rule(78);
    println!(
        "{:<22} | {:>8} {:>8} {:>8} {:>8}",
        "Model", "R@20", "R@50", "N@20", "N@50"
    );
    rule(78);
    {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut m = LayerGcn::new(&ds, LayerGcnConfig::default(), &mut rng);
        let (_, rep) = train_and_test(&mut m, &ds, &tc, &ks);
        println!(
            "{:<22} | {:>8} {:>8} {:>8} {:>8}",
            "LayerGCN - 4 Layers",
            fmt4(rep.recall(20)),
            fmt4(rep.recall(50)),
            fmt4(rep.ndcg(20)),
            fmt4(rep.ndcg(50))
        );
    }
    let mut light_r20 = Vec::new();
    for layers in (1..=4).rev() {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let lcfg = LightGcnConfig {
            n_layers: layers,
            ..LightGcnConfig::default()
        };
        let mut m = LightGcn::new(&ds, lcfg, &mut rng);
        let (_, rep) = train_and_test(&mut m, &ds, &tc, &ks);
        println!(
            "{:<22} | {:>8} {:>8} {:>8} {:>8}",
            format!("LightGCN - {layers} Layers"),
            fmt4(rep.recall(20)),
            fmt4(rep.recall(50)),
            fmt4(rep.ndcg(20)),
            fmt4(rep.ndcg(50))
        );
        light_r20.push(rep.recall(20));
    }
    rule(78);
    println!(
        "Shape check: LayerGCN@4 should beat every LightGCN depth; LightGCN's best depth\n\
         should be < 4 (over-smoothing at 4). LightGCN R@20 by depth 4..1: {:?}",
        light_r20.iter().map(|v| format!("{v:.4}")).collect::<Vec<_>>()
    );
}
