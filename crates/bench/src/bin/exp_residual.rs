//! §IV-B ablation: LayerGCN's dynamic layer refinement vs the fixed-weight
//! residual alternatives it argues against.
//!
//! Columns: vanilla GCN (Eq. 1), previous-layer residual (Eq. 22/23),
//! GCNII-style initial residual at several fixed α, and LayerGCN — all at
//! the same depth, embedding size and BPR objective, at shallow and deep
//! settings.
//!
//! ```text
//! cargo run -p lrgcn-bench --release --bin exp_residual -- [--dataset mooc] [--epochs N] [--scale F]
//! ```

use lrgcn::models::residual::{ResidualFamilyGcn, ResidualGcnConfig, ResidualKind};
use lrgcn::models::{LayerGcn, LayerGcnConfig, Recommender};
use lrgcn::train::{train_and_test, TrainConfig};
use lrgcn_bench::{fmt4, rule, Args, ExpConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let cfg = ExpConfig::parse(&args, 60);
    let ds = cfg.dataset(args.get("dataset").unwrap_or("mooc"));
    let tc = TrainConfig {
        max_epochs: cfg.max_epochs,
        patience: cfg.patience,
        eval_every: 2,
        criterion_k: 20,
        seed: cfg.seed,
        verbose: cfg.verbose,
        restore_best: true,
        record_diagnostics: false,
        ..Default::default()
    };
    println!("ABLATION (§IV-B): DYNAMIC LAYER REFINEMENT vs FIXED RESIDUAL SCHEMES ({})", ds.name);
    rule(74);
    println!(
        "{:<24} | {:>9} {:>9} | {:>9} {:>9}",
        "Scheme", "R@20 (4L)", "N@20 (4L)", "R@20 (8L)", "N@20 (8L)"
    );
    rule(74);
    let kinds: Vec<ResidualKind> = vec![
        ResidualKind::Vanilla,
        ResidualKind::Residual,
        ResidualKind::InitialResidual { alpha: 0.1 },
        ResidualKind::InitialResidual { alpha: 0.3 },
        ResidualKind::InitialResidual { alpha: 0.5 },
    ];
    for kind in kinds {
        let mut row = Vec::new();
        let mut name = String::new();
        for layers in [4usize, 8] {
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let mut m = ResidualFamilyGcn::new(
                &ds,
                ResidualGcnConfig {
                    kind,
                    n_layers: layers,
                    ..Default::default()
                },
                &mut rng,
            );
            name = m.name();
            let (_, rep) = train_and_test(&mut m, &ds, &tc, &[20]);
            row.push((rep.recall(20), rep.ndcg(20)));
        }
        println!(
            "{:<24} | {:>9} {:>9} | {:>9} {:>9}",
            name,
            fmt4(row[0].0),
            fmt4(row[0].1),
            fmt4(row[1].0),
            fmt4(row[1].1)
        );
    }
    // LayerGCN at the same depths.
    let mut row = Vec::new();
    for layers in [4usize, 8] {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut m = LayerGcn::new(
            &ds,
            LayerGcnConfig {
                n_layers: layers,
                ..LayerGcnConfig::default()
            },
            &mut rng,
        );
        let (_, rep) = train_and_test(&mut m, &ds, &tc, &[20]);
        row.push((rep.recall(20), rep.ndcg(20)));
    }
    println!(
        "{:<24} | {:>9} {:>9} | {:>9} {:>9}",
        "LayerGCN (dynamic)",
        fmt4(row[0].0),
        fmt4(row[0].1),
        fmt4(row[1].0),
        fmt4(row[1].1)
    );
    rule(74);
    println!(
        "The paper's §IV-B argument: fixed-value skips (previous-layer or initial\n\
         residual with hand-tuned α) lack per-node, per-layer flexibility; LayerGCN's\n\
         similarity-driven weighting should match or beat every fixed scheme,\n\
         especially at depth 8."
    );
}
