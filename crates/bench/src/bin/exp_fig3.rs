//! Fig. 3 — convergence of DegreeDrop vs DropEdge.
//!
//! (a) best-epoch index as a function of the edge dropout ratio 0.1–0.8
//!     (lower best epoch = faster convergence);
//! (b) with `--curves`: per-epoch training-loss curves at ratio 0.7.
//!
//! ```text
//! cargo run -p lrgcn-bench --release --bin exp_fig3 -- [--epochs N] [--scale F] [--curves]
//! ```

use lrgcn::data::Dataset;
use lrgcn::eval::{evaluate_ranking, Split};
use lrgcn::graph::EdgePruner;
use lrgcn::models::{LayerGcn, LayerGcnConfig, Recommender};
use lrgcn_bench::{rule, Args, ExpConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Trains and returns `(best epoch, epochs to reach 95% of the peak)` on
/// validation R@20. The second number is the robust convergence-speed
/// measure used in the summary (the raw best epoch is noisy at small
/// scale: validation keeps creeping by fractions of a point long after the
/// model has effectively converged).
fn convergence(ds: &Dataset, pruner: EdgePruner, max_epochs: usize, seed: u64) -> (usize, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = LayerGcnConfig {
        pruner,
        ..LayerGcnConfig::default()
    };
    let mut m = LayerGcn::new(ds, cfg, &mut rng);
    let mut curve = Vec::with_capacity(max_epochs);
    for epoch in 0..max_epochs {
        m.train_epoch(ds, epoch, &mut rng);
        m.refresh(ds);
        let val = evaluate_ranking(ds, Split::Val, &[20], 256, &mut |u| m.score_users(ds, u))
            .recall(20);
        curve.push(val);
    }
    let peak = curve.iter().cloned().fold(f64::MIN, f64::max);
    let best = curve
        .iter()
        .position(|&v| v == peak)
        .map(|e| e + 1)
        .unwrap_or(max_epochs);
    let reach95 = curve
        .iter()
        .position(|&v| v >= 0.95 * peak)
        .map(|e| e + 1)
        .unwrap_or(max_epochs);
    (best, reach95)
}

/// Per-epoch mean batch losses.
fn loss_curve(ds: &Dataset, pruner: EdgePruner, max_epochs: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = LayerGcnConfig {
        pruner,
        ..LayerGcnConfig::default()
    };
    let mut m = LayerGcn::new(ds, cfg, &mut rng);
    (0..max_epochs)
        .map(|e| m.train_epoch(ds, e, &mut rng).loss)
        .collect()
}

fn main() {
    let args = Args::from_env();
    let cfg = ExpConfig::parse(&args, 50);
    let ds = cfg.dataset(args.get("dataset").unwrap_or("mooc"));

    if args.has_flag("curves") {
        let ratio = 0.7f32;
        println!("FIG. 3(b): BATCH-LOSS CONVERGENCE AT DROPOUT RATIO {ratio} (MOOC)");
        rule(58);
        println!("{:>6} | {:>12} | {:>12}", "epoch", "DropEdge", "DegreeDrop");
        rule(58);
        let de = loss_curve(&ds, EdgePruner::DropEdge { ratio }, cfg.max_epochs, cfg.seed);
        let dd = loss_curve(&ds, EdgePruner::DegreeDrop { ratio }, cfg.max_epochs, cfg.seed);
        for (e, (a, b)) in de.iter().zip(&dd).enumerate() {
            println!("{e:>6} | {a:>12.5} | {b:>12.5}");
        }
        rule(58);
        let early = cfg.max_epochs / 4;
        let de_early: f64 = de[..early].iter().sum::<f64>() / early as f64;
        let dd_early: f64 = dd[..early].iter().sum::<f64>() / early as f64;
        println!(
            "mean loss over first {early} epochs: DropEdge {de_early:.5}, DegreeDrop {dd_early:.5}\n\
             shape check {}: DegreeDrop's loss should descend faster from the start.",
            if dd_early <= de_early { "PASSED" } else { "FAILED on this seed" }
        );
        return;
    }

    println!("FIG. 3(a): CONVERGENCE vs EDGE DROPOUT RATIO (MOOC; lower = faster)");
    rule(76);
    println!(
        "{:>7} | {:>9} {:>9} | {:>9} {:>9}",
        "ratio", "DE best", "DE 95%", "DD best", "DD 95%"
    );
    rule(76);
    let mut sums = (0usize, 0usize);
    for r in 1..=8 {
        let ratio = r as f32 / 10.0;
        let (de_b, de_95) = convergence(&ds, EdgePruner::DropEdge { ratio }, cfg.max_epochs, cfg.seed);
        let (dd_b, dd_95) = convergence(&ds, EdgePruner::DegreeDrop { ratio }, cfg.max_epochs, cfg.seed);
        sums.0 += de_95;
        sums.1 += dd_95;
        println!("{ratio:>7.1} | {de_b:>9} {de_95:>9} | {dd_b:>9} {dd_95:>9}");
    }
    rule(76);
    let reduction = 100.0 * (1.0 - sums.1 as f64 / sums.0.max(1) as f64);
    println!(
        "epochs-to-95%-of-peak sum: DropEdge {}, DegreeDrop {} -> DegreeDrop reduces\n\
         convergence epochs by {:.0}% (paper reports 39% on its best-epoch measure).",
        sums.0, sums.1, reduction
    );
}
