//! Fig. 6 — effect of the number of layers (1–8) on LayerGCN vs LightGCN,
//! on the MOOC replica.
//!
//! Paper's shape: LightGCN peaks shallow (≤3 layers) and then degrades;
//! LayerGCN keeps improving (or at least holds) as layers stack, because the
//! refinement suppresses over-smoothing. Also prints the over-smoothing
//! diagnostic (mean distance between connected nodes) per depth.
//!
//! ```text
//! cargo run -p lrgcn-bench --release --bin exp_fig6 -- [--max-layers 8] [--epochs N] [--scale F]
//! ```

use lrgcn::eval::oversmooth::mean_edge_distance;
use lrgcn::models::{LayerGcn, LayerGcnConfig, LightGcn, LightGcnConfig};
use lrgcn::train::{train_and_test, TrainConfig};
use lrgcn_bench::{fmt4, rule, Args, ExpConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let cfg = ExpConfig::parse(&args, 60);
    let max_layers: usize = args.get_parsed("max-layers", 8usize);
    let ds = cfg.dataset(args.get("dataset").unwrap_or("mooc"));
    let tc = TrainConfig {
        max_epochs: cfg.max_epochs,
        patience: cfg.patience,
        eval_every: 2,
        criterion_k: 20,
        seed: cfg.seed,
        verbose: cfg.verbose,
        restore_best: true,
        record_diagnostics: false,
        ..Default::default()
    };
    println!("FIG. 6: EFFECT OF THE NUMBER OF LAYERS ON LAYERGCN AND LIGHTGCN (MOOC)");
    rule(96);
    println!(
        "{:>7} | {:>10} {:>10} | {:>10} {:>10} | {:>12} {:>12}",
        "layers", "Layer R@20", "Layer N@20", "Light R@20", "Light N@20", "edge-dist(Lr)", "edge-dist(Li)"
    );
    rule(96);
    let mut layer_curve = Vec::new();
    let mut light_curve = Vec::new();
    for layers in 1..=max_layers {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut lay = LayerGcn::new(
            &ds,
            LayerGcnConfig {
                n_layers: layers,
                ..LayerGcnConfig::default()
            },
            &mut rng,
        );
        let (_, rep_l) = train_and_test(&mut lay, &ds, &tc, &[20]);
        let d_l = mean_edge_distance(ds.train(), &lay.final_embeddings());

        let mut rng2 = StdRng::seed_from_u64(cfg.seed);
        let mut lgt = LightGcn::new(
            &ds,
            LightGcnConfig {
                n_layers: layers,
                ..LightGcnConfig::default()
            },
            &mut rng2,
        );
        let (_, rep_g) = train_and_test(&mut lgt, &ds, &tc, &[20]);
        let d_g = mean_edge_distance(ds.train(), &lgt.final_embeddings());

        println!(
            "{:>7} | {:>10} {:>10} | {:>10} {:>10} | {:>12.4} {:>12.4}",
            layers,
            fmt4(rep_l.recall(20)),
            fmt4(rep_l.ndcg(20)),
            fmt4(rep_g.recall(20)),
            fmt4(rep_g.ndcg(20)),
            d_l,
            d_g
        );
        layer_curve.push(rep_l.recall(20));
        light_curve.push(rep_g.recall(20));
    }
    rule(96);
    let best_light = light_curve
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i + 1)
        .expect("non-empty");
    let deep_layer = layer_curve[max_layers.min(layer_curve.len()) - 1];
    let deep_light = light_curve[max_layers.min(light_curve.len()) - 1];
    println!("LightGCN best depth: {best_light}; at depth {max_layers}: LayerGCN {deep_layer:.4} vs LightGCN {deep_light:.4}");
    println!(
        "Shape check {}: deep LayerGCN should beat deep LightGCN (refinement fights over-smoothing).",
        if deep_layer >= deep_light { "PASSED" } else { "FAILED on this seed" }
    );
}
