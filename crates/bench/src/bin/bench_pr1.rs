//! PR 1 benchmark: epoch + full-ranking evaluation wall time at 1 vs N
//! worker threads, on a MOOC-like synthetic dataset.
//!
//! Emits `BENCH_PR1.json` (override with `--out PATH`). The parallel
//! kernels are bitwise identical to serial, so the report also records the
//! evaluation metric at both thread counts as a cross-check — they must
//! match exactly.
//!
//! ```text
//! cargo run -p lrgcn-bench --release --bin bench_pr1 -- \
//!     [--scale F] [--threads N] [--reps R] [--out PATH]
//! ```

use lrgcn::data::{Dataset, SplitRatios, SyntheticConfig};
use lrgcn::eval::{evaluate_ranking_parallel, Split};
use lrgcn::models::{LayerGcn, LayerGcnConfig, Recommender};
use lrgcn::tensor::par;
use lrgcn_bench::Args;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

struct Timings {
    epoch_s: f64,
    eval_s: f64,
    recall20: f64,
}

/// Best-of-`reps` wall time for one training epoch and one full-ranking
/// test evaluation at the given thread count.
fn measure(ds: &Dataset, threads: usize, reps: usize, seed: u64) -> Timings {
    par::set_threads(threads);
    let mut epoch_s = f64::INFINITY;
    let mut eval_s = f64::INFINITY;
    let mut recall20 = 0.0;
    for _ in 0..reps {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = LayerGcn::new(ds, LayerGcnConfig::default(), &mut rng);
        let t0 = Instant::now();
        m.train_epoch(ds, 0, &mut rng);
        epoch_s = epoch_s.min(t0.elapsed().as_secs_f64());

        m.refresh(ds);
        let scorer = |u: &[u32]| m.score_users(ds, u);
        let t1 = Instant::now();
        let rep = evaluate_ranking_parallel(ds, Split::Test, &[20], 256, &scorer);
        eval_s = eval_s.min(t1.elapsed().as_secs_f64());
        recall20 = rep.recall(20);
    }
    Timings {
        epoch_s,
        eval_s,
        recall20,
    }
}

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get_parsed("scale", 0.25f64);
    let reps: usize = args.get_parsed("reps", 3usize);
    let seed: u64 = args.get_parsed("seed", 2023u64);
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads: usize = args.get_parsed("threads", cpus.max(4));
    let out_path = args.get("out").unwrap_or("BENCH_PR1.json").to_string();

    let log = SyntheticConfig::mooc().scaled(scale).generate(seed);
    let ds = Dataset::chronological_split("mooc-like", &log, SplitRatios::default());
    eprintln!(
        "bench_pr1: {} users / {} items / {} train edges, cpus={cpus}, comparing 1 vs {threads} threads",
        ds.n_users(),
        ds.n_items(),
        ds.train().n_edges()
    );

    let serial = measure(&ds, 1, reps, seed);
    let parallel = measure(&ds, threads, reps, seed);
    par::set_threads(1);
    assert_eq!(
        serial.recall20.to_bits(),
        parallel.recall20.to_bits(),
        "parallel evaluation must be bitwise identical to serial"
    );

    let json = format!(
        "{{\n  \"bench\": \"pr1_parallel_execution\",\n  \"dataset\": \"mooc-like (synthetic, scale {scale})\",\n  \"n_users\": {},\n  \"n_items\": {},\n  \"train_edges\": {},\n  \"cpus_available\": {cpus},\n  \"reps\": {reps},\n  \"threads_compared\": [1, {threads}],\n  \"epoch_seconds\": {{\"t1\": {:.6}, \"t{threads}\": {:.6}}},\n  \"eval_seconds\": {{\"t1\": {:.6}, \"t{threads}\": {:.6}}},\n  \"epoch_speedup\": {:.3},\n  \"eval_speedup\": {:.3},\n  \"recall20_identical\": true,\n  \"note\": \"speedups are bounded by cpus_available; on a single-CPU host threading cannot beat serial\"\n}}\n",
        ds.n_users(),
        ds.n_items(),
        ds.train().n_edges(),
        serial.epoch_s,
        parallel.epoch_s,
        serial.eval_s,
        parallel.eval_s,
        serial.epoch_s / parallel.epoch_s,
        serial.eval_s / parallel.eval_s,
    );
    std::fs::write(&out_path, &json).expect("writing benchmark report");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
