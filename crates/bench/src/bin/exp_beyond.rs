//! Extension experiment: beyond-accuracy comparison.
//!
//! Accuracy tables can hide popularity bias; this binary compares catalogue
//! coverage, exposure Gini and novelty of the top-20 lists produced by a
//! popularity ranker, LightGCN and LayerGCN — probing whether DegreeDrop's
//! hub pruning diversifies recommendations.
//!
//! ```text
//! cargo run -p lrgcn-bench --release --bin exp_beyond -- [--dataset games] [--epochs N] [--scale F]
//! ```

use lrgcn::data::Dataset;
use lrgcn::eval::beyond::RecAggregate;
use lrgcn::eval::topk::top_k_indices;
use lrgcn::eval::{evaluate_ranking, Split};
use lrgcn::models::{LayerGcn, LayerGcnConfig, LightGcn, LightGcnConfig, Recommender};
use lrgcn::train::{train_with_early_stopping, TrainConfig};
use lrgcn_bench::{rule, Args, ExpConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const K: usize = 20;

fn profile(name: &str, ds: &Dataset, mut score: impl FnMut(&[u32]) -> lrgcn::tensor::Matrix) {
    let users = ds.test_users();
    let mut agg = RecAggregate::new();
    for chunk in users.chunks(256) {
        let mut scores = score(chunk);
        for (r, &u) in chunk.iter().enumerate() {
            let row = scores.row_mut(r);
            for &it in ds.train_items(u) {
                row[it as usize] = f32::NEG_INFINITY;
            }
            agg.push(&top_k_indices(row, K));
        }
    }
    let recall = evaluate_ranking(ds, Split::Test, &[K], 256, &mut score).recall(K);
    let degrees = ds.train().item_degrees();
    println!(
        "{:<16} | {:>8.4} | {:>9.4} | {:>8.4} | {:>8.3}",
        name,
        recall,
        agg.catalog_coverage(ds.n_items()),
        agg.exposure_gini(ds.n_items()),
        agg.mean_novelty(&degrees)
    );
}

fn main() {
    let args = Args::from_env();
    let cfg = ExpConfig::parse(&args, 60);
    let ds = cfg.dataset(args.get("dataset").unwrap_or("games"));
    let tc = TrainConfig {
        max_epochs: cfg.max_epochs,
        patience: cfg.patience,
        eval_every: 2,
        criterion_k: 20,
        seed: cfg.seed,
        verbose: cfg.verbose,
        restore_best: true,
        record_diagnostics: false,
        ..Default::default()
    };
    println!("EXTENSION: BEYOND-ACCURACY PROFILE OF TOP-{K} RECOMMENDATIONS ({})", ds.name);
    rule(70);
    println!(
        "{:<16} | {:>8} | {:>9} | {:>8} | {:>8}",
        "Model", "R@20", "Coverage", "Gini", "Novelty"
    );
    rule(70);

    // Popularity ranker: identical list for everyone (up to masking).
    let degrees = ds.train().item_degrees();
    profile("Popularity", &ds, |users| {
        let mut m = lrgcn::tensor::Matrix::zeros(users.len(), ds.n_items());
        for r in 0..users.len() {
            for (i, &d) in degrees.iter().enumerate() {
                m[(r, i)] = d as f32;
            }
        }
        m
    });

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut light = LightGcn::new(&ds, LightGcnConfig::default(), &mut rng);
    train_with_early_stopping(&mut light, &ds, &tc);
    light.refresh(&ds);
    profile("LightGCN", &ds, |users| light.score_users(&ds, users));

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut layer = LayerGcn::new(&ds, LayerGcnConfig::default(), &mut rng);
    train_with_early_stopping(&mut layer, &ds, &tc);
    layer.refresh(&ds);
    profile("LayerGCN (Full)", &ds, |users| layer.score_users(&ds, users));

    rule(70);
    println!(
        "Coverage = fraction of catalogue recommended to anyone; Gini = exposure\n\
         concentration (lower is more even); Novelty = mean -log2(item popularity)."
    );
}
