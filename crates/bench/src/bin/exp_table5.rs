//! Table V — LayerGCN with Mixed (alternating DegreeDrop / DropEdge)
//! pruning, compared against the pure policies.
//!
//! Expected ordering (paper, §V-C3): DegreeDrop ≥ Mixed ≥ DropEdge in most
//! cases.
//!
//! ```text
//! cargo run -p lrgcn-bench --release --bin exp_table5 -- \
//!     [--datasets mooc,...] [--ratio 0.1] [--epochs N] [--scale F]
//! ```

use lrgcn::graph::EdgePruner;
use lrgcn::models::{LayerGcn, LayerGcnConfig};
use lrgcn::train::{train_and_test, TrainConfig};
use lrgcn_bench::{fmt4, rule, Args, ExpConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let cfg = ExpConfig::parse(&args, 80);
    let ratio: f32 = args.get_parsed("ratio", 0.1f32);
    let tc = TrainConfig {
        max_epochs: cfg.max_epochs,
        patience: cfg.patience,
        eval_every: 2,
        criterion_k: 20,
        seed: cfg.seed,
        verbose: cfg.verbose,
        restore_best: true,
        record_diagnostics: false,
        ..Default::default()
    };
    println!("TABLE V: PERFORMANCE OF LAYERGCN WITH MIXED DEGREEDROP AND DROPEDGE (ratio {ratio})");
    rule(84);
    println!(
        "{:<8} {:<12} | {:>8} {:>8} {:>8} {:>8}",
        "Dataset", "DropoutType", "R@20", "R@50", "N@20", "N@50"
    );
    rule(84);
    for dataset in ExpConfig::datasets(&args) {
        let ds = cfg.dataset(&dataset);
        let mut r20s = Vec::new();
        for (name, pruner) in [
            ("DropEdge", EdgePruner::DropEdge { ratio }),
            ("Mixed", EdgePruner::Mixed { ratio }),
            ("DegreeDrop", EdgePruner::DegreeDrop { ratio }),
        ] {
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let mcfg = LayerGcnConfig {
                pruner,
                ..LayerGcnConfig::default()
            };
            let mut m = LayerGcn::new(&ds, mcfg, &mut rng);
            let (_, rep) = train_and_test(&mut m, &ds, &tc, &[20, 50]);
            println!(
                "{:<8} {:<12} | {:>8} {:>8} {:>8} {:>8}",
                ds.name,
                name,
                fmt4(rep.recall(20)),
                fmt4(rep.recall(50)),
                fmt4(rep.ndcg(20)),
                fmt4(rep.ndcg(50))
            );
            r20s.push(rep.recall(20));
        }
        rule(84);
        let ok = r20s[2] >= r20s[0] - 1e-9;
        println!(
            "  {}: DegreeDrop ({:.4}) vs DropEdge ({:.4}); Mixed in between at {:.4}",
            if ok { "shape holds" } else { "shape inverted on this seed" },
            r20s[2],
            r20s[0],
            r20s[1]
        );
        rule(84);
    }
}
