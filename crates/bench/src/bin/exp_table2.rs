//! Table II — overall performance comparison.
//!
//! Trains every model of the paper's Table II on the four synthetic dataset
//! replicas and prints R@{10,20,50} / N@{10,20,50} per model, the best
//! baseline (underlined in the paper), LayerGCN's improvement %, and — with
//! `--tseeds K` — the paired t-test of LayerGCN (Full) vs the best baseline
//! across K seeds (the paper uses 5, p < 0.05).
//!
//! ```text
//! cargo run -p lrgcn-bench --release --bin exp_table2 -- \
//!     [--datasets mooc,games,food,yelp] [--models light,layer,...] \
//!     [--epochs N] [--scale F] [--seed N] [--tseeds K]
//! ```

use lrgcn::eval::paired_t_test;
use lrgcn::models::ModelKind;
use lrgcn::train::{train_and_test, TrainConfig};
use lrgcn_bench::{fmt4, rule, Args, ExpConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const KS: [usize; 3] = [10, 20, 50];

fn run_model(
    kind: ModelKind,
    ds: &lrgcn::data::Dataset,
    cfg: &ExpConfig,
    seed: u64,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = kind.build(ds, &mut rng);
    let tc = TrainConfig {
        max_epochs: cfg.max_epochs,
        patience: cfg.patience,
        eval_every: 2,
        criterion_k: 20,
        seed,
        verbose: cfg.verbose,
        restore_best: true,
        record_diagnostics: false,
        ..Default::default()
    };
    let (_, rep) = train_and_test(&mut *model, ds, &tc, &KS);
    let mut row = Vec::with_capacity(6);
    for k in KS {
        row.push(rep.recall(k));
    }
    for k in KS {
        row.push(rep.ndcg(k));
    }
    row
}

fn main() {
    let args = Args::from_env();
    let cfg = ExpConfig::parse(&args, 80);
    let t_seeds: usize = args.get_parsed("tseeds", 0usize);
    let models: Vec<ModelKind> = match args.get("models") {
        Some(spec) => spec
            .split(',')
            .map(|m| ModelKind::parse(m).unwrap_or_else(|| panic!("unknown model {m:?}")))
            .collect(),
        None => ModelKind::all(),
    };
    println!("TABLE II: OVERALL PERFORMANCE COMPARISON");
    println!(
        "(synthetic replicas; scale {}, seed {}, max {} epochs, patience {})",
        cfg.scale, cfg.seed, cfg.max_epochs, cfg.patience
    );

    for dataset in ExpConfig::datasets(&args) {
        let ds = cfg.dataset(&dataset);
        println!();
        println!(
            "== {} ({} users, {} items, {} train edges) ==",
            dataset.to_uppercase(),
            ds.n_users(),
            ds.n_items(),
            ds.train().n_edges()
        );
        rule(110);
        println!(
            "{:<14} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
            "Model", "R@10", "R@20", "R@50", "N@10", "N@20", "N@50"
        );
        rule(110);
        let mut results: Vec<(ModelKind, Vec<f64>)> = Vec::new();
        for &kind in &models {
            let t = std::time::Instant::now();
            let row = run_model(kind, &ds, &cfg, cfg.seed);
            println!(
                "{:<14} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}   ({:.1}s)",
                kind.label(),
                fmt4(row[0]),
                fmt4(row[1]),
                fmt4(row[2]),
                fmt4(row[3]),
                fmt4(row[4]),
                fmt4(row[5]),
                t.elapsed().as_secs_f64()
            );
            results.push((kind, row));
        }
        rule(110);

        // Improvement of LayerGCN (Full) over the best baseline per metric.
        let layer_full = results
            .iter()
            .find(|(k, _)| *k == ModelKind::LayerGcnFull)
            .map(|(_, r)| r.clone());
        let baselines: Vec<&(ModelKind, Vec<f64>)> = results
            .iter()
            .filter(|(k, _)| {
                !matches!(k, ModelKind::LayerGcnFull | ModelKind::LayerGcnNoDrop)
            })
            .collect();
        if let (Some(full), false) = (layer_full, baselines.is_empty()) {
            let headers = ["R@10", "R@20", "R@50", "N@10", "N@20", "N@50"];
            print!("{:<14} |", "best baseline");
            let mut best_vals = Vec::new();
            for m in 0..6 {
                let (bk, bv) = baselines
                    .iter()
                    .map(|(k, r)| (k, r[m]))
                    .fold((&ModelKind::Bpr, f64::MIN), |acc, (k, v)| {
                        if v > acc.1 {
                            (k, v)
                        } else {
                            acc
                        }
                    });
                best_vals.push(bv);
                print!(" {:>8}", format!("{}*", bk.label().chars().take(7).collect::<String>()));
                if m == 2 {
                    print!(" |");
                }
            }
            println!();
            print!("{:<14} |", "improv. (%)");
            for (m, h) in headers.iter().enumerate() {
                let _ = h;
                let imp = (full[m] - best_vals[m]) * 100.0 / best_vals[m].max(1e-12);
                print!(" {:>8}", format!("{imp:+.2}"));
                if m == 2 {
                    print!(" |");
                }
            }
            println!();
            rule(110);
        }

        // Optional multi-seed significance check (paper footnote, Table II).
        if t_seeds >= 2 {
            let best_kind = baselines
                .iter()
                .max_by(|a, b| a.1[1].partial_cmp(&b.1[1]).expect("finite"))
                .map(|(k, _)| *k)
                .expect("at least one baseline");
            println!(
                "paired t-test over {t_seeds} seeds: LayerGCN (Full) vs {} on R@20",
                best_kind.label()
            );
            let mut ours = Vec::new();
            let mut theirs = Vec::new();
            for s in 0..t_seeds as u64 {
                ours.push(run_model(ModelKind::LayerGcnFull, &ds, &cfg, cfg.seed + s)[1]);
                theirs.push(run_model(best_kind, &ds, &cfg, cfg.seed + s)[1]);
            }
            let t = paired_t_test(&ours, &theirs);
            println!(
                "  mean diff {:+.4}, t = {:.3}, p = {:.4} ({})",
                t.mean_difference,
                t.t_statistic,
                t.p_value,
                if t.p_value < 0.05 && t.mean_difference > 0.0 {
                    "significant at p < 0.05"
                } else {
                    "not significant"
                }
            );
        }
    }
}
