//! Fig. 7 — sensitivity heatmap: L2 coefficient λ × edge dropout ratio, on
//! the MOOC and Yelp replicas (R@20; darker = better in the paper).
//!
//! Paper's observations: optimal λ ≈ 1e-3 on both datasets; a small dropout
//! ratio (0.05–0.1) is best on the dense MOOC graph, and too much pruning
//! (≥0.2) hurts.
//!
//! ```text
//! cargo run -p lrgcn-bench --release --bin exp_fig7 -- [--datasets mooc,yelp] [--epochs N] [--scale F]
//! ```

use lrgcn::graph::EdgePruner;
use lrgcn::models::{LayerGcn, LayerGcnConfig};
use lrgcn::train::{train_and_test, TrainConfig};
use lrgcn_bench::{rule, Args, ExpConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const LAMBDAS: [f32; 5] = [1e-5, 1e-4, 1e-3, 1e-2, 1e-1];
const RATIOS: [f32; 4] = [0.0, 0.05, 0.1, 0.2];

fn main() {
    let args = Args::from_env();
    let cfg = ExpConfig::parse(&args, 50);
    let datasets = match args.get("datasets") {
        Some(s) => s.split(',').map(str::to_string).collect::<Vec<_>>(),
        None => vec!["mooc".to_string(), "yelp".to_string()],
    };
    let tc = TrainConfig {
        max_epochs: cfg.max_epochs,
        patience: cfg.patience,
        eval_every: 2,
        criterion_k: 20,
        seed: cfg.seed,
        verbose: cfg.verbose,
        restore_best: true,
        record_diagnostics: false,
        ..Default::default()
    };
    println!("FIG. 7: R@20 OF LAYERGCN w.r.t. REGULARIZATION λ AND DROPOUT RATIO");
    for dataset in datasets {
        let ds = cfg.dataset(&dataset);
        println!();
        println!("== {} ==", dataset.to_uppercase());
        rule(70);
        print!("{:>10} |", "λ \\ ratio");
        for r in RATIOS {
            print!(" {r:>10.2}");
        }
        println!();
        rule(70);
        let mut best = (0.0f64, 0.0f32, 0.0f32);
        for lambda in LAMBDAS {
            print!("{lambda:>10.0e} |");
            for ratio in RATIOS {
                let mut rng = StdRng::seed_from_u64(cfg.seed);
                let mcfg = LayerGcnConfig {
                    lambda,
                    pruner: if ratio > 0.0 {
                        EdgePruner::DegreeDrop { ratio }
                    } else {
                        EdgePruner::None
                    },
                    ..LayerGcnConfig::default()
                };
                let mut m = LayerGcn::new(&ds, mcfg, &mut rng);
                let (_, rep) = train_and_test(&mut m, &ds, &tc, &[20]);
                let r20 = rep.recall(20);
                if r20 > best.0 {
                    best = (r20, lambda, ratio);
                }
                print!(" {r20:>10.4}");
            }
            println!();
        }
        rule(70);
        println!(
            "best cell: R@20 {:.4} at λ = {:.0e}, ratio = {:.2} (paper: λ = 1e-3, low ratio on dense data)",
            best.0, best.1, best.2
        );
    }
}
