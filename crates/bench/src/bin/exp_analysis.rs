//! Supporting analyses behind the paper's commentary:
//!
//! 1. **Graph fragmentation vs dropout ratio** — Fig. 7's explanation for
//!    why heavy pruning hurts: the pruned graph splits into disconnected
//!    subgraphs, which blocks propagation. We count components / isolated
//!    nodes per ratio for both pruning policies.
//! 2. **Head/tail stratified recall** — §V-C4 argues DegreeDrop acts on
//!    *popular* nodes; the stratified breakdown shows where its recall
//!    comes from.
//!
//! ```text
//! cargo run -p lrgcn-bench --release --bin exp_analysis -- [--dataset mooc] [--epochs N] [--scale F]
//! ```

use lrgcn::eval::stratified::stratified_recall;
use lrgcn::eval::Split;
use lrgcn::graph::{component_stats, EdgePruner};
use lrgcn::models::{LayerGcn, LayerGcnConfig, Recommender};
use lrgcn::train::{train_with_early_stopping, TrainConfig};
use lrgcn_bench::{rule, Args, ExpConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let cfg = ExpConfig::parse(&args, 60);
    let ds = cfg.dataset(args.get("dataset").unwrap_or("mooc"));
    println!("ANALYSIS 1: GRAPH FRAGMENTATION UNDER EDGE PRUNING ({})", ds.name);
    rule(88);
    println!(
        "{:>7} | {:>11} {:>9} {:>9} | {:>11} {:>9} {:>9}",
        "ratio", "DD comps", "isolated", "largest", "DE comps", "isolated", "largest"
    );
    rule(88);
    let full = component_stats(ds.train(), ds.train().edges());
    println!(
        "{:>7} | {:>11} {:>9} {:>9} | (unpruned graph)",
        "0.0", full.n_components, full.n_isolated, full.largest
    );
    for r in [0.1f32, 0.2, 0.4, 0.6, 0.8] {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let dd = EdgePruner::DegreeDrop { ratio: r }
            .sample_edges(ds.train(), 0, &mut rng)
            .expect("pruned");
        let sd = component_stats(ds.train(), &dd);
        let de = EdgePruner::DropEdge { ratio: r }
            .sample_edges(ds.train(), 0, &mut rng)
            .expect("pruned");
        let se = component_stats(ds.train(), &de);
        println!(
            "{:>7.1} | {:>11} {:>9} {:>9} | {:>11} {:>9} {:>9}",
            r, sd.n_components, sd.n_isolated, sd.largest, se.n_components, se.n_isolated, se.largest
        );
    }
    rule(88);
    println!(
        "Higher ratios fragment the graph (Fig. 7's high-ratio collapse). Note that\n\
         DegreeDrop fragments *less* than DropEdge at every ratio: it spends its\n\
         removal budget on redundant hub-hub edges, while uniform dropping severs\n\
         leaves' only links — part of why DegreeDrop tolerates higher ratios.\n"
    );

    println!("ANALYSIS 2: HEAD/TAIL STRATIFIED RECALL@20 (head = top items covering 50% of interactions)");
    rule(72);
    println!(
        "{:<12} | {:>10} {:>10} | {:>9} {:>9}",
        "Pruner", "head R@20", "tail R@20", "head users", "tail users"
    );
    rule(72);
    let tc = TrainConfig {
        max_epochs: cfg.max_epochs,
        patience: cfg.patience,
        eval_every: 2,
        criterion_k: 20,
        seed: cfg.seed,
        verbose: cfg.verbose,
        restore_best: true,
        record_diagnostics: false,
        ..Default::default()
    };
    for (name, pruner) in [
        ("None", EdgePruner::None),
        ("DropEdge", EdgePruner::DropEdge { ratio: 0.1 }),
        ("DegreeDrop", EdgePruner::DegreeDrop { ratio: 0.1 }),
    ] {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mcfg = LayerGcnConfig {
            pruner,
            ..LayerGcnConfig::default()
        };
        let mut m = LayerGcn::new(&ds, mcfg, &mut rng);
        train_with_early_stopping(&mut m, &ds, &tc);
        m.refresh(&ds);
        let s = stratified_recall(&ds, Split::Test, 20, 0.5, &mut |u| m.score_users(&ds, u));
        println!(
            "{:<12} | {:>10.4} {:>10.4} | {:>9} {:>9}",
            name, s.head, s.tail, s.head_users, s.tail_users
        );
    }
    rule(72);
}
