//! Table IV — DegreeDrop vs DropEdge at fixed epochs (20, 50) and at the
//! best epoch, on all four datasets.
//!
//! ```text
//! cargo run -p lrgcn-bench --release --bin exp_table4 -- \
//!     [--datasets mooc,...] [--ratio 0.1] [--epochs N] [--scale F]
//! ```

use lrgcn::data::Dataset;
use lrgcn::eval::{evaluate_ranking, Split};
use lrgcn::graph::EdgePruner;
use lrgcn::models::{LayerGcn, LayerGcnConfig, Recommender};
use lrgcn_bench::{fmt4, rule, Args, ExpConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const KS: [usize; 2] = [20, 50];

struct Snapshot {
    r20: f64,
    r50: f64,
    n20: f64,
    n50: f64,
}

fn snapshot(model: &mut LayerGcn, ds: &Dataset) -> Snapshot {
    model.refresh(ds);
    let rep = evaluate_ranking(ds, Split::Test, &KS, 256, &mut |u| model.score_users(ds, u));
    Snapshot {
        r20: rep.recall(20),
        r50: rep.recall(50),
        n20: rep.ndcg(20),
        n50: rep.ndcg(50),
    }
}

/// Trains and captures test metrics at fixed epochs and at the epoch with
/// the best validation R@20. Returns (at20, at50, best, best_epoch).
fn run(
    ds: &Dataset,
    pruner: EdgePruner,
    max_epochs: usize,
    seed: u64,
) -> (Snapshot, Snapshot, Snapshot, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = LayerGcnConfig {
        pruner,
        ..LayerGcnConfig::default()
    };
    let mut m = LayerGcn::new(ds, cfg, &mut rng);
    let mut at20 = None;
    let mut at50 = None;
    let mut best: Option<(f64, Snapshot, usize)> = None;
    for epoch in 0..max_epochs {
        m.train_epoch(ds, epoch, &mut rng);
        let e1 = epoch + 1;
        if e1 == 20 {
            at20 = Some(snapshot(&mut m, ds));
        }
        if e1 == 50 {
            at50 = Some(snapshot(&mut m, ds));
        }
        if e1 % 5 == 0 || e1 == max_epochs {
            m.refresh(ds);
            let val = evaluate_ranking(ds, Split::Val, &[20], 256, &mut |u| {
                m.score_users(ds, u)
            })
            .recall(20);
            if best.as_ref().map(|(bv, _, _)| val > *bv).unwrap_or(true) {
                let snap = snapshot(&mut m, ds);
                best = Some((val, snap, e1));
            }
        }
    }
    let final_snap = snapshot(&mut m, ds);
    let (best_snap, best_epoch) = match best {
        Some((_, s, e)) => (s, e),
        None => (final_snap, max_epochs),
    };
    (
        at20.unwrap_or_else(|| snapshot(&mut m, ds)),
        at50.unwrap_or_else(|| snapshot(&mut m, ds)),
        best_snap,
        best_epoch,
    )
}

fn main() {
    let args = Args::from_env();
    let cfg = ExpConfig::parse(&args, 80);
    let ratio: f32 = args.get_parsed("ratio", 0.1f32);
    println!("TABLE IV: DEGREEDROP vs DROPEDGE ACROSS TRAINING EPOCHS (ratio {ratio})");
    rule(86);
    println!(
        "{:<8} {:<11} {:>6} | {:>8} {:>8} {:>8} {:>8}",
        "Dataset", "Variant", "Epoch", "R@20", "R@50", "N@20", "N@50"
    );
    rule(86);
    for dataset in ExpConfig::datasets(&args) {
        let ds = cfg.dataset(&dataset);
        for (name, pruner) in [
            ("DropEdge", EdgePruner::DropEdge { ratio }),
            ("DegreeDrop", EdgePruner::DegreeDrop { ratio }),
        ] {
            let (a20, a50, best, be) = run(&ds, pruner, cfg.max_epochs, cfg.seed);
            for (label, s) in [
                ("20".to_string(), a20),
                ("50".to_string(), a50),
                (format!("Best({be})"), best),
            ] {
                println!(
                    "{:<8} {:<11} {:>6} | {:>8} {:>8} {:>8} {:>8}",
                    ds.name,
                    name,
                    label,
                    fmt4(s.r20),
                    fmt4(s.r50),
                    fmt4(s.n20),
                    fmt4(s.n50)
                );
            }
        }
        rule(86);
    }
    println!(
        "Shape check: DegreeDrop should match or beat DropEdge at the best epoch on every\n\
         dataset, with the clearest margin on the dense MOOC replica (§V-C2/C4)."
    );
}
