//! Extension experiment (paper §VI, future work): self-supervised signals
//! on top of LayerGCN.
//!
//! Compares plain LayerGCN against LayerGCN-SSL (two DegreeDrop views +
//! InfoNCE after a warm-up) across datasets, sweeping the contrastive
//! weight.
//!
//! ```text
//! cargo run -p lrgcn-bench --release --bin exp_ssl -- [--datasets games,yelp] [--epochs N] [--scale F]
//! ```

use lrgcn::models::layergcn_ssl::{LayerGcnSsl, LayerGcnSslConfig};
use lrgcn::models::{LayerGcn, LayerGcnConfig};
use lrgcn::train::{train_and_test, TrainConfig};
use lrgcn_bench::{fmt4, rule, Args, ExpConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let cfg = ExpConfig::parse(&args, 70);
    let datasets = match args.get("datasets") {
        Some(s) => s.split(',').map(str::to_string).collect::<Vec<_>>(),
        None => vec!["games".to_string(), "yelp".to_string()],
    };
    let tc = TrainConfig {
        max_epochs: cfg.max_epochs,
        patience: cfg.patience,
        eval_every: 2,
        criterion_k: 20,
        seed: cfg.seed,
        verbose: cfg.verbose,
        restore_best: true,
        record_diagnostics: false,
        ..Default::default()
    };
    println!("EXTENSION: SELF-SUPERVISED SIGNALS ON LAYERGCN (paper §VI future work)");
    rule(76);
    println!(
        "{:<8} {:<20} | {:>8} {:>8} {:>8} {:>8}",
        "Dataset", "Variant", "R@10", "R@20", "N@10", "N@20"
    );
    rule(76);
    for dataset in datasets {
        let ds = cfg.dataset(&dataset);
        {
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let mut m = LayerGcn::new(&ds, LayerGcnConfig::default(), &mut rng);
            let (_, rep) = train_and_test(&mut m, &ds, &tc, &[10, 20]);
            println!(
                "{:<8} {:<20} | {:>8} {:>8} {:>8} {:>8}",
                ds.name,
                "LayerGCN (Full)",
                fmt4(rep.recall(10)),
                fmt4(rep.recall(20)),
                fmt4(rep.ndcg(10)),
                fmt4(rep.ndcg(20))
            );
        }
        for w in [0.02f32, 0.05, 0.1] {
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let scfg = LayerGcnSslConfig {
                ssl_weight: w,
                warmup_epochs: cfg.max_epochs / 4,
                ..LayerGcnSslConfig::default()
            };
            let mut m = LayerGcnSsl::new(&ds, scfg, &mut rng);
            let (_, rep) = train_and_test(&mut m, &ds, &tc, &[10, 20]);
            println!(
                "{:<8} {:<20} | {:>8} {:>8} {:>8} {:>8}",
                ds.name,
                format!("LayerGCN-SSL w={w}"),
                fmt4(rep.recall(10)),
                fmt4(rep.recall(20)),
                fmt4(rep.ndcg(10)),
                fmt4(rep.ndcg(20))
            );
        }
        rule(76);
    }
    println!(
        "The contrastive term is a regularizer: gains are expected on sparse graphs and\n\
         can be neutral-to-negative on small dense replicas (documented in EXPERIMENTS.md)."
    );
}
