//! Supporting analysis: receptive-field saturation per dataset.
//!
//! After `k` propagation layers a node's embedding mixes its whole k-hop
//! neighbourhood; once that neighbourhood is "everything", more layers can
//! only over-smooth (§I, §IV-A). This binary measures the mean fraction of
//! the graph inside the k-hop receptive field per dataset replica — the
//! structural reason the dense MOOC graph over-smooths hardest and
//! LightGCN's useful depth is so shallow.
//!
//! ```text
//! cargo run -p lrgcn-bench --release --bin exp_khop -- [--scale F] [--seed N]
//! ```

use lrgcn::graph::khop::{mean_receptive_fraction, saturation_depth};
use lrgcn_bench::{rule, Args, ExpConfig};

fn main() {
    let args = Args::from_env();
    let cfg = ExpConfig::parse(&args, 0);
    const MAX_HOPS: usize = 8;
    const SAMPLES: usize = 64;
    println!("RECEPTIVE-FIELD SATURATION (mean fraction of graph within k hops)");
    rule(86);
    print!("{:<8} |", "Dataset");
    for k in 1..=MAX_HOPS {
        print!(" {:>7}", format!("k={k}"));
    }
    println!(" | 90% at");
    rule(86);
    for preset in ["mooc", "games", "food", "yelp"] {
        let ds = cfg.dataset(preset);
        let adj = ds.train().adjacency();
        let frac = mean_receptive_fraction(&adj, MAX_HOPS, SAMPLES);
        print!("{:<8} |", ds.name);
        for f in frac.iter().skip(1) {
            print!(" {:>7.3}", f);
        }
        match saturation_depth(&adj, 0.9, MAX_HOPS, SAMPLES) {
            Some(d) => println!(" | {d} hops"),
            None => println!(" | >{MAX_HOPS}"),
        }
    }
    rule(86);
    println!(
        "The denser the graph, the earlier the receptive field saturates — after that\n\
         depth every extra LightGCN layer only re-mixes shared information (over-smoothing);\n\
         LayerGCN's refinement (Fig. 6) is what keeps deep layers useful."
    );
}
