//! Writes a small deterministic synthetic interaction TSV for smoke tests
//! and CLI demos — the same generator the benchmarks and integration tests
//! use, exposed as a standalone tool so shell scripts (`scripts/verify.sh`)
//! don't have to synthesize data themselves.
//!
//! ```text
//! cargo run -p lrgcn-bench --bin make_fixture -- \
//!     --out interactions.tsv [--preset games|mooc|yelp|amazon] \
//!     [--scale F] [--seed S]
//! ```

use lrgcn::data::{loader, SyntheticConfig};
use lrgcn_bench::Args;

fn main() {
    let args = Args::from_env();
    let out = args.get("out").unwrap_or("interactions.tsv").to_string();
    let preset = args.get("preset").unwrap_or("games");
    let scale: f64 = args.get_parsed("scale", 0.1f64);
    let seed: u64 = args.get_parsed("seed", 13u64);
    let cfg = SyntheticConfig::by_name(preset)
        .unwrap_or_else(|| panic!("unknown preset {preset:?}"))
        .scaled(scale);
    let log = cfg.generate(seed);
    loader::save_interactions(&out, &log).expect("writing fixture");
    println!(
        "wrote {} interactions ({} users, {} items) to {out}",
        log.len(),
        log.n_users(),
        log.n_items()
    );
}
