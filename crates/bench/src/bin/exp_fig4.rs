//! Fig. 4 — cumulative distribution of sqrt(item degree), MOOC vs Yelp.
//!
//! The paper's commentary: MOOC items carry high degrees (≈20% of items
//! above √degree 20 at full scale), while Yelp's distribution is extremely
//! skewed (≈90% of items below √degree 10) — which is exactly why
//! DegreeDrop's advantage is larger on MOOC (§V-C4).
//!
//! ```text
//! cargo run -p lrgcn-bench --release --bin exp_fig4 [--seed N] [--scale F]
//! ```

use lrgcn::data::stats::{frac_items_below_sqrt_degree, item_degree_cdf};
use lrgcn::data::SyntheticConfig;
use lrgcn_bench::{rule, Args, ExpConfig};

fn main() {
    let args = Args::from_env();
    let cfg = ExpConfig::parse(&args, 0);
    println!("FIG. 4: DISTRIBUTIONS OF DEGREES FOR ITEMS IN MOOC AND YELP");
    println!("(CDF sampled at fixed sqrt-degree grid; scale {}, seed {})", cfg.scale, cfg.seed);
    rule(72);
    let grid: Vec<f64> = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 14.0, 20.0, 30.0];
    println!("{:>12} | {:>10} | {:>10}", "sqrt(deg)<=", "MOOC CDF", "Yelp CDF");
    rule(72);
    let logs: Vec<_> = ["mooc", "yelp"]
        .iter()
        .map(|p| {
            SyntheticConfig::by_name(p)
                .expect("preset")
                .scaled(cfg.scale)
                .generate(cfg.seed)
        })
        .collect();
    for &g in &grid {
        let m = frac_items_below_sqrt_degree(&logs[0], g);
        let y = frac_items_below_sqrt_degree(&logs[1], g);
        println!("{g:>12.1} | {m:>10.4} | {y:>10.4}");
    }
    rule(72);
    // The paper's qualitative claims, checked numerically.
    let yelp_low = frac_items_below_sqrt_degree(&logs[1], 10.0);
    let mooc_low = frac_items_below_sqrt_degree(&logs[0], 10.0);
    println!("Yelp items with sqrt(degree) <= 10: {:.1}% (paper: ~90%)", 100.0 * yelp_low);
    println!("MOOC items with sqrt(degree) <= 10: {:.1}% (far lower: most MOOC items are popular)", 100.0 * mooc_low);
    println!(
        "Distinct degree levels: MOOC {}, Yelp {}",
        item_degree_cdf(&logs[0]).len(),
        item_degree_cdf(&logs[1]).len()
    );
    println!(
        "Shape check {}: Yelp CDF strictly dominates MOOC (Yelp skew >> MOOC).",
        if yelp_low > mooc_low { "PASSED" } else { "FAILED" }
    );
}
