//! Fig. 5 — LayerGCN's per-layer similarity weights during training.
//!
//! Logs the mean cosine similarity of each refined layer to the ego layer
//! per epoch. Paper's observations: (i) no single layer dominates (contrast
//! Fig. 1), and (ii) even layers (same node type as the target in the
//! bipartite graph) contribute more than the preceding odd layers.
//!
//! ```text
//! cargo run -p lrgcn-bench --release --bin exp_fig5 -- [--epochs N] [--scale F] [--seed N]
//! ```

use lrgcn::models::{LayerGcn, LayerGcnConfig, Recommender};
use lrgcn_bench::{rule, Args, ExpConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let cfg = ExpConfig::parse(&args, 60);
    let ds = cfg.dataset(args.get("dataset").unwrap_or("mooc"));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut m = LayerGcn::new(&ds, LayerGcnConfig::default(), &mut rng);
    println!("FIG. 5: WEIGHTS (COSINE SIMILARITIES) OF LAYERS DURING TRAINING OF LAYERGCN (MOOC)");
    rule(66);
    println!(
        "{:>6} | {:>9} {:>9} {:>9} {:>9}",
        "epoch", "sim(L1)", "sim(L2)", "sim(L3)", "sim(L4)"
    );
    rule(66);
    let mut last = Vec::new();
    for epoch in 0..cfg.max_epochs {
        m.train_epoch(&ds, epoch, &mut rng);
        let sims = m.layer_similarities();
        last = sims.clone();
        if epoch % (cfg.max_epochs / 12).max(1) == 0 || epoch + 1 == cfg.max_epochs {
            println!(
                "{:>6} | {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
                epoch, sims[0], sims[1], sims[2], sims[3]
            );
        }
    }
    rule(66);
    let max = last.iter().cloned().fold(f64::MIN, f64::max);
    let min = last.iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "final weights span [{min:.4}, {max:.4}] — no collapse to a single layer: {}",
        max < 0.95 || min > 0.05
    );
    let even_gt_odd = last[1] > last[0] && (last.len() < 4 || last[3] > last[2]);
    println!(
        "even layers exceed the preceding odd layers (same-node-type intuition): {even_gt_odd}"
    );
}
