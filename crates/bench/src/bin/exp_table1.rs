//! Table I — statistics of the experimented datasets.
//!
//! Prints the synthetic replicas' statistics next to the paper's reported
//! values so the calibration is auditable.
//!
//! ```text
//! cargo run -p lrgcn-bench --release --bin exp_table1 [--seed N] [--scale F]
//! ```

use lrgcn::data::{DatasetStats, SyntheticConfig};
use lrgcn_bench::{rule, Args, ExpConfig};

/// The paper's Table I rows: (name, users, items, interactions, sparsity%).
const PAPER: [(&str, u64, u64, u64, f64); 4] = [
    ("MOOC", 82_535, 1_302, 458_453, 99.5734),
    ("Games", 50_677, 16_897, 454_529, 99.9469),
    ("Food", 115_144, 39_688, 1_025_169, 99.9776),
    ("Yelp", 99_010, 56_441, 2_762_088, 99.9506),
];

fn main() {
    let args = Args::from_env();
    let cfg = ExpConfig::parse(&args, 0);
    println!("TABLE I: STATISTICS OF THE EXPERIMENTED DATASETS");
    println!("(synthetic replicas at scale {}, seed {})", cfg.scale, cfg.seed);
    rule(100);
    println!(
        "{:<8} | {:>8} {:>8} {:>12} {:>10} {:>7} {:>7} | paper: users items interactions",
        "Dataset", "Users", "Items", "Interact.", "Sparsity", "u-deg", "i-deg"
    );
    rule(100);
    for (preset, paper) in ["mooc", "games", "food", "yelp"].iter().zip(PAPER) {
        let sc = SyntheticConfig::by_name(preset).expect("preset").scaled(cfg.scale);
        let log = sc.generate(cfg.seed);
        let s = DatasetStats::of(sc.name, &log);
        println!(
            "{:<8} | {:>8} {:>8} {:>12} {:>9.4}% {:>7.2} {:>7.2} | {:>12} {:>8} {:>12}",
            s.name,
            s.n_users,
            s.n_items,
            s.n_interactions,
            s.sparsity_pct,
            s.mean_user_degree,
            s.mean_item_degree,
            paper.1,
            paper.2,
            paper.3,
        );
    }
    rule(100);
    println!(
        "Shape checks: user/item ratio and mean-degree regime follow the paper; absolute node\n\
         counts are ~1/20-1/40 scale (see DESIGN.md, substitution table)."
    );
}
