//! # lrgcn-bench — experiment harness for the LayerGCN reproduction
//!
//! One binary per table/figure of the paper (see DESIGN.md §3 for the full
//! index) plus Criterion micro-benchmarks for the hot kernels. This library
//! holds the tiny CLI/layout helpers those binaries share.

use lrgcn::data::{Dataset, SplitRatios, SyntheticConfig};
use std::collections::HashMap;

/// Minimal `--key value` / `--flag` argument parser (no external deps).
pub struct Args {
    kv: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args`, treating `--key value` as a pair when the
    /// next token does not start with `--`, else as a boolean flag.
    pub fn from_env() -> Args {
        Self::from_tokens(std::env::args().skip(1))
    }

    pub fn from_tokens(items: impl IntoIterator<Item = String>) -> Args {
        let tokens: Vec<String> = items.into_iter().collect();
        let mut kv = HashMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if let Some(key) = t.strip_prefix("--") {
                if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    kv.insert(key.to_string(), tokens[i + 1].clone());
                    i += 2;
                    continue;
                }
                flags.push(key.to_string());
            }
            i += 1;
        }
        Args { kv, flags }
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.kv.get(key).map(String::as_str)
    }

    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.kv.get(key) {
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("could not parse --{key} {v}")),
            None => default,
        }
    }

    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }
}

/// Standard experiment knobs shared by all binaries.
pub struct ExpConfig {
    pub seed: u64,
    /// Uniform scale-down of the dataset presets (1.0 = the calibrated
    /// laptop-scale presets of `lrgcn-data`).
    pub scale: f64,
    pub max_epochs: usize,
    pub patience: usize,
    pub verbose: bool,
}

impl ExpConfig {
    /// Parses the common `--seed/--scale/--epochs/--patience/--verbose`
    /// arguments with experiment-specific defaults.
    pub fn parse(args: &Args, default_epochs: usize) -> ExpConfig {
        ExpConfig {
            seed: args.get_parsed("seed", 2023u64),
            scale: args.get_parsed("scale", 1.0f64),
            max_epochs: args.get_parsed("epochs", default_epochs),
            patience: args.get_parsed("patience", 10usize),
            verbose: args.has_flag("verbose"),
        }
    }

    /// Materializes a preset at the configured scale into a split dataset.
    pub fn dataset(&self, preset: &str) -> Dataset {
        let cfg = SyntheticConfig::by_name(preset)
            .unwrap_or_else(|| panic!("unknown dataset preset {preset:?}"))
            .scaled(self.scale);
        let log = cfg.generate(self.seed);
        Dataset::chronological_split(preset, &log, SplitRatios::default())
    }

    /// The dataset presets selected by `--datasets a,b,c` (default: all 4).
    pub fn datasets(args: &Args) -> Vec<String> {
        match args.get("datasets") {
            Some(spec) => spec.split(',').map(|s| s.trim().to_string()).collect(),
            None => vec!["mooc".into(), "games".into(), "food".into(), "yelp".into()],
        }
    }
}

/// Prints a horizontal rule sized for a table of `width` characters.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats a metric to the paper's 4-decimal convention.
pub fn fmt4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::from_tokens(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_pairs_and_flags() {
        let a = args("--seed 7 --verbose --scale 0.5");
        assert_eq!(a.get("seed"), Some("7"));
        assert!(a.has_flag("verbose"));
        assert_eq!(a.get_parsed("scale", 1.0f64), 0.5);
        assert_eq!(a.get_parsed("epochs", 42usize), 42);
    }

    #[test]
    fn exp_config_builds_datasets() {
        let a = args("--scale 0.1 --epochs 3");
        let cfg = ExpConfig::parse(&a, 60);
        assert_eq!(cfg.max_epochs, 3);
        let ds = cfg.dataset("games");
        assert!(ds.n_users() > 0 && ds.n_items() > 0);
        assert!(ds.train().n_edges() > 0);
    }

    #[test]
    fn dataset_list_parsing() {
        let a = args("--datasets mooc,yelp");
        assert_eq!(ExpConfig::datasets(&a), vec!["mooc", "yelp"]);
        let a2 = args("");
        assert_eq!(ExpConfig::datasets(&a2).len(), 4);
    }

    #[test]
    #[should_panic(expected = "unknown dataset preset")]
    fn unknown_preset_panics() {
        let cfg = ExpConfig::parse(&args(""), 1);
        let _ = cfg.dataset("bogus");
    }
}
