//! Cost of LayerGCN's layer refinement (Eq. 6–8) versus the plain LightGCN
//! propagation step — the paper's §IV-C complexity argument: refinement adds
//! `O(N·T)` per layer on top of `O(M·T)` propagation, so the totals stay in
//! the same ballpark.

// Criterion cannot be fetched in the offline build environment; without the
// `criterion-benches` feature this target compiles to a stub main.

#[cfg(feature = "criterion-benches")]
mod imp {
    use criterion::{criterion_group, criterion_main, Criterion};
    use lrgcn::data::{Dataset, SplitRatios, SyntheticConfig};
    use lrgcn::tensor::tape::SharedCsr;
    use lrgcn::tensor::{Matrix, Tape};
    use std::hint::black_box;

    fn setup() -> (SharedCsr, Matrix) {
        let log = SyntheticConfig::games().scaled(0.5).generate(1);
        let ds = Dataset::chronological_split("games", &log, SplitRatios::default());
        let adj = SharedCsr::new(ds.train().norm_adjacency());
        let n = adj.matrix().n_rows();
        let x0 = Matrix::full(n, 64, 0.1);
        (adj, x0)
    }

    fn bench_refinement(c: &mut Criterion) {
        let (adj, x0) = setup();
        let mut group = c.benchmark_group("layer_step");

        group.bench_function("lightgcn_propagate_4l", |b| {
            b.iter(|| {
                let mut tape = Tape::new();
                let x = tape.constant(x0.clone());
                let mut h = x;
                for _ in 0..4 {
                    h = tape.spmm(&adj, h);
                }
                black_box(tape.value(h).data()[0]);
            })
        });

        group.bench_function("layergcn_refined_4l", |b| {
            b.iter(|| {
                let mut tape = Tape::new();
                let x = tape.constant(x0.clone());
                let mut h = x;
                for _ in 0..4 {
                    let p = tape.spmm(&adj, h);
                    let sim = tape.row_cosine(p, x, 1e-8);
                    let sim_eps = tape.add_scalar(sim, 1e-8);
                    h = tape.mul_row_broadcast(p, sim_eps);
                }
                black_box(tape.value(h).data()[0]);
            })
        });

        group.bench_function("refinement_only", |b| {
            let mut tape = Tape::new();
            let x = tape.constant(x0.clone());
            let p = tape.spmm(&adj, x);
            let pv = tape.value(p).clone();
            b.iter(|| {
                let mut t = Tape::new();
                let xv = t.constant(x0.clone());
                let prop = t.constant(pv.clone());
                let sim = t.row_cosine(prop, xv, 1e-8);
                let sim_eps = t.add_scalar(sim, 1e-8);
                let r = t.mul_row_broadcast(prop, sim_eps);
                black_box(t.value(r).data()[0]);
            })
        });

        group.finish();
    }

    criterion_group!(benches, bench_refinement);

}

#[cfg(feature = "criterion-benches")]
fn main() {
    imp::benches();
}

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    eprintln!(
        "criterion benches are disabled: restore the `criterion` dev-dependency \
         and build with --features criterion-benches (network required)"
    );
}
