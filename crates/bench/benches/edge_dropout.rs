//! Per-epoch edge-sampling cost: DegreeDrop's Efraimidis–Spirakis weighted
//! sampling vs DropEdge's uniform Fisher–Yates, plus the adjacency
//! re-normalization both pay afterwards. Ablation for the DESIGN.md choice
//! of one-pass weighted sampling over sequential multinomial draws.

// Criterion cannot be fetched in the offline build environment; without the
// `criterion-benches` feature this target compiles to a stub main.

#[cfg(feature = "criterion-benches")]
mod imp {
    use criterion::{criterion_group, criterion_main, Criterion};
    use lrgcn::data::{Dataset, SplitRatios, SyntheticConfig};
    use lrgcn::graph::dropout::{
        degree_keep_weights, sample_uniform, sample_weighted_without_replacement,
    };
    use lrgcn::graph::EdgePruner;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::hint::black_box;

    fn bench_edge_dropout(c: &mut Criterion) {
        let log = SyntheticConfig::yelp().scaled(0.5).generate(1);
        let ds = Dataset::chronological_split("yelp", &log, SplitRatios::default());
        let g = ds.train();
        let m = g.n_edges();
        let keep = m - m / 10;
        let weights = degree_keep_weights(g);
        let mut group = c.benchmark_group("edge_dropout");

        group.bench_function("uniform_sample", |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(sample_uniform(m, keep, &mut rng)))
        });

        group.bench_function("weighted_sample_es", |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(sample_weighted_without_replacement(&weights, keep, &mut rng)))
        });

        // Naive sequential multinomial draws (what the paper's formula implies
        // literally) for comparison — O(M·k) worst case, implemented with a
        // simple cumulative re-scan.
        group.bench_function("weighted_sample_naive_1pct", |b| {
            // Only 1% of the draw count to keep the benchmark finite; scale the
            // reading accordingly.
            let small_keep = keep / 100;
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let mut taken = vec![false; m];
                let mut out = Vec::with_capacity(small_keep);
                let mut total: f64 = weights.iter().sum();
                use rand::RngExt;
                for _ in 0..small_keep {
                    let mut target = rng.random::<f64>() * total;
                    let mut pick = 0;
                    for (i, &w) in weights.iter().enumerate() {
                        if taken[i] {
                            continue;
                        }
                        target -= w;
                        if target <= 0.0 {
                            pick = i;
                            break;
                        }
                    }
                    taken[pick] = true;
                    total -= weights[pick];
                    out.push(pick);
                }
                black_box(out)
            })
        });

        group.bench_function("full_epoch_degreedrop", |b| {
            let mut rng = StdRng::seed_from_u64(1);
            let pruner = EdgePruner::DegreeDrop { ratio: 0.1 };
            b.iter(|| black_box(pruner.pruned_norm_adjacency(g, 0, &mut rng)))
        });

        group.bench_function("full_epoch_dropedge", |b| {
            let mut rng = StdRng::seed_from_u64(1);
            let pruner = EdgePruner::DropEdge { ratio: 0.1 };
            b.iter(|| black_box(pruner.pruned_norm_adjacency(g, 0, &mut rng)))
        });

        group.finish();
    }

    criterion_group!(benches, bench_edge_dropout);

}

#[cfg(feature = "criterion-benches")]
fn main() {
    imp::benches();
}

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    eprintln!(
        "criterion benches are disabled: restore the `criterion` dev-dependency \
         and build with --features criterion-benches (network required)"
    );
}
