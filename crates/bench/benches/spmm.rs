//! The propagation kernel `Â · X` (sparse × dense), the hot loop of every
//! GCN layer. Measured on the normalized adjacency of each dataset preset
//! at the paper's embedding width (64) and a narrow width for comparison.

// Criterion cannot be fetched in the offline build environment; without the
// `criterion-benches` feature this target compiles to a stub main.

#[cfg(feature = "criterion-benches")]
mod imp {
    use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
    use lrgcn::data::{Dataset, SplitRatios, SyntheticConfig};
    use lrgcn::tensor::Matrix;
    use std::hint::black_box;

    fn bench_spmm(c: &mut Criterion) {
        let mut group = c.benchmark_group("spmm");
        for preset in ["mooc", "games", "yelp"] {
            let log = SyntheticConfig::by_name(preset)
                .expect("preset")
                .scaled(0.5)
                .generate(1);
            let ds = Dataset::chronological_split(preset, &log, SplitRatios::default());
            let adj = ds.train().norm_adjacency();
            let n = adj.n_rows();
            for width in [16usize, 64] {
                let x = Matrix::full(n, width, 0.5);
                let mut out = vec![0.0f32; n * width];
                group.throughput(Throughput::Elements((adj.nnz() * width) as u64));
                group.bench_with_input(
                    BenchmarkId::new(format!("{preset}-w{width}"), adj.nnz()),
                    &width,
                    |b, _| {
                        b.iter(|| {
                            adj.spmm_into(black_box(x.data()), width, &mut out);
                            black_box(&out);
                        })
                    },
                );
            }
        }
        group.finish();
    }

    criterion_group!(benches, bench_spmm);

}

#[cfg(feature = "criterion-benches")]
fn main() {
    imp::benches();
}

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    eprintln!(
        "criterion benches are disabled: restore the `criterion` dev-dependency \
         and build with --features criterion-benches (network required)"
    );
}
