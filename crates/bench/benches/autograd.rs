//! Autograd-tape overhead: forward+backward of a realistic BPR step (gather
//! → row-dot → softplus → mean + L2) and of a dense MLP layer, vs the
//! forward-only cost. Ablation for the op-enum tape design in DESIGN.md.

// Criterion cannot be fetched in the offline build environment; without the
// `criterion-benches` feature this target compiles to a stub main.

#[cfg(feature = "criterion-benches")]
mod imp {
    use criterion::{criterion_group, criterion_main, Criterion};
    use lrgcn::tensor::{Matrix, Tape};
    use std::hint::black_box;
    use std::rc::Rc;

    fn bench_autograd(c: &mut Criterion) {
        let mut group = c.benchmark_group("autograd");
        let n = 4096usize;
        let t = 64usize;
        let emb = Matrix::full(n, t, 0.05);
        let batch = 1024usize;
        let u_idx: Rc<Vec<u32>> = Rc::new((0..batch as u32).collect());
        let i_idx: Rc<Vec<u32>> = Rc::new((batch as u32..2 * batch as u32).collect());
        let j_idx: Rc<Vec<u32>> = Rc::new((2 * batch as u32..3 * batch as u32).collect());

        group.bench_function("bpr_step_forward", |b| {
            b.iter(|| {
                let mut tape = Tape::new();
                let e = tape.leaf(emb.clone());
                let u = tape.gather(e, Rc::clone(&u_idx));
                let i = tape.gather(e, Rc::clone(&i_idx));
                let j = tape.gather(e, Rc::clone(&j_idx));
                let pos = tape.row_dot(u, i);
                let neg = tape.row_dot(u, j);
                let d = tape.sub(neg, pos);
                let sp = tape.softplus(d);
                let l = tape.mean_all(sp);
                black_box(tape.scalar(l))
            })
        });

        group.bench_function("bpr_step_forward_backward", |b| {
            b.iter(|| {
                let mut tape = Tape::new();
                let e = tape.leaf(emb.clone());
                let u = tape.gather(e, Rc::clone(&u_idx));
                let i = tape.gather(e, Rc::clone(&i_idx));
                let j = tape.gather(e, Rc::clone(&j_idx));
                let pos = tape.row_dot(u, i);
                let neg = tape.row_dot(u, j);
                let d = tape.sub(neg, pos);
                let sp = tape.softplus(d);
                let l = tape.mean_all(sp);
                tape.backward(l);
                black_box(tape.take_grad(e))
            })
        });

        let x = Matrix::full(256, 256, 0.1);
        let w = Matrix::full(256, 256, 0.01);
        group.bench_function("dense_matmul_256_forward", |b| {
            b.iter(|| black_box(x.matmul(&w)))
        });
        group.bench_function("dense_matmul_256_fwd_bwd", |b| {
            b.iter(|| {
                let mut tape = Tape::new();
                let xv = tape.leaf(x.clone());
                let wv = tape.leaf(w.clone());
                let y = tape.matmul(xv, wv);
                let l = tape.sq_frobenius(y);
                tape.backward(l);
                black_box(tape.take_grad(wv))
            })
        });

        group.finish();
    }

    criterion_group!(benches, bench_autograd);

}

#[cfg(feature = "criterion-benches")]
fn main() {
    imp::benches();
}

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    eprintln!(
        "criterion benches are disabled: restore the `criterion` dev-dependency \
         and build with --features criterion-benches (network required)"
    );
}
