//! One full training epoch per model — the end-to-end cost comparison
//! backing the paper's §IV-C complexity claims (LayerGCN within the same
//! magnitude as LightGCN; both far cheaper than attention-style models).

// Criterion cannot be fetched in the offline build environment; without the
// `criterion-benches` feature this target compiles to a stub main.

#[cfg(feature = "criterion-benches")]
mod imp {
    use criterion::{criterion_group, criterion_main, Criterion};
    use lrgcn::data::{Dataset, SplitRatios, SyntheticConfig};
    use lrgcn::models::ModelKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::hint::black_box;

    fn bench_epoch(c: &mut Criterion) {
        let log = SyntheticConfig::games().scaled(0.35).generate(1);
        let ds = Dataset::chronological_split("games", &log, SplitRatios::default());
        let mut group = c.benchmark_group("train_epoch");
        group.sample_size(10);
        for kind in [
            ModelKind::Bpr,
            ModelKind::LightGcn,
            ModelKind::LayerGcnNoDrop,
            ModelKind::LayerGcnFull,
            ModelKind::Ngcf,
            ModelKind::UltraGcn,
        ] {
            group.bench_function(kind.label(), |b| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut model = kind.build(&ds, &mut rng);
                let mut epoch = 0usize;
                b.iter(|| {
                    let stats = model.train_epoch(&ds, epoch, &mut rng);
                    epoch += 1;
                    black_box(stats.loss)
                })
            });
        }
        group.finish();
    }

    criterion_group!(benches, bench_epoch);

}

#[cfg(feature = "criterion-benches")]
fn main() {
    imp::benches();
}

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    eprintln!(
        "criterion benches are disabled: restore the `criterion` dev-dependency \
         and build with --features criterion-benches (network required)"
    );
}
