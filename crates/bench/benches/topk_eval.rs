//! All-ranking evaluation cost: scoring + masking + top-K selection over the
//! full catalogue (§V-A3), and the isolated partial-selection kernel.

// Criterion cannot be fetched in the offline build environment; without the
// `criterion-benches` feature this target compiles to a stub main.

#[cfg(feature = "criterion-benches")]
mod imp {
    use criterion::{criterion_group, criterion_main, Criterion};
    use lrgcn::data::{Dataset, SplitRatios, SyntheticConfig};
    use lrgcn::eval::topk::top_k_indices;
    use lrgcn::eval::{evaluate_ranking, Split};
    use lrgcn::models::{LightGcn, LightGcnConfig, Recommender};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use std::hint::black_box;

    fn bench_topk(c: &mut Criterion) {
        let mut group = c.benchmark_group("topk_eval");

        // Kernel: select top-50 of a large score row.
        let mut rng = StdRng::seed_from_u64(3);
        let scores: Vec<f32> = (0..50_000).map(|_| rng.random()).collect();
        group.bench_function("top50_of_50k", |b| {
            b.iter(|| black_box(top_k_indices(black_box(&scores), 50)))
        });

        // Full protocol on a mid-sized dataset with a trained-ish model.
        let log = SyntheticConfig::games().scaled(0.5).generate(1);
        let ds = Dataset::chronological_split("games", &log, SplitRatios::default());
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = LightGcn::new(&ds, LightGcnConfig::default(), &mut rng);
        model.train_epoch(&ds, 0, &mut rng);
        model.refresh(&ds);
        group.bench_function("full_protocol_games", |b| {
            b.iter(|| {
                let rep = evaluate_ranking(&ds, Split::Test, &[10, 20, 50], 256, &mut |users| {
                    model.score_users(&ds, users)
                });
                black_box(rep.n_users)
            })
        });

        group.finish();
    }

    criterion_group!(benches, bench_topk);

}

#[cfg(feature = "criterion-benches")]
fn main() {
    imp::benches();
}

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    eprintln!(
        "criterion benches are disabled: restore the `criterion` dev-dependency \
         and build with --features criterion-benches (network required)"
    );
}
