//! # lrgcn — Layer-refined Graph Convolutional Networks for Recommendation
//!
//! A from-scratch Rust implementation of **LayerGCN** (Zhou, Lin, Liu &
//! Miao, *ICDE 2023*) together with every baseline and substrate the paper
//! depends on. This facade crate re-exports the whole workspace and adds a
//! batteries-included [`LayerGcnRecommender`] pipeline.
//!
//! ## Quickstart
//!
//! ```
//! use lrgcn::prelude::*;
//!
//! // A small synthetic dataset shaped like the paper's Games dataset.
//! let log = SyntheticConfig::games().scaled(0.1).generate(7);
//! let ds = Dataset::chronological_split("games-mini", &log, SplitRatios::default());
//!
//! // Train LayerGCN (with degree-sensitive edge dropout) for a few epochs.
//! let mut rec = LayerGcnRecommender::builder()
//!     .n_layers(4)
//!     .dropout_ratio(0.1)
//!     .max_epochs(5)
//!     .seed(42)
//!     .build(&ds);
//! let outcome = rec.fit(&ds);
//! assert!(outcome.epochs_run >= 1);
//!
//! // Top-5 recommendations for user 0.
//! let top = rec.recommend(&ds, 0, 5);
//! assert_eq!(top.len(), 5);
//! ```
//!
//! ## Crate map
//!
//! * [`graph`] — CSR matrices, bipartite graphs, DegreeDrop/DropEdge, WL test
//! * [`tensor`] — dense autodiff tape, Adam, Xavier init
//! * [`data`] — synthetic generators, chronological splits, samplers
//! * [`eval`] — Recall/NDCG under all-ranking, paired t-test
//! * [`models`] — LayerGCN + the nine baselines of Table II
//! * [`train`] — epoch loop with early stopping
//! * [`obs`] — metrics registry, scoped timers and the JSONL run-log sink

pub use lrgcn_data as data;
pub use lrgcn_eval as eval;
pub use lrgcn_graph as graph;
pub use lrgcn_models as models;
pub use lrgcn_obs as obs;
pub use lrgcn_tensor as tensor;
pub use lrgcn_train as train;

use lrgcn_data::Dataset;
use lrgcn_eval::topk::top_k_indices;
use lrgcn_graph::EdgePruner;
use lrgcn_models::layergcn::{LayerGcn, LayerGcnConfig};
use lrgcn_models::Recommender;
use lrgcn_train::{train_with_early_stopping, TrainConfig, TrainOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Commonly used items, one `use` away.
pub mod prelude {
    pub use crate::{LayerGcnBuilder, LayerGcnRecommender};
    pub use lrgcn_data::{Dataset, InteractionLog, SplitRatios, SyntheticConfig};
    pub use lrgcn_eval::{evaluate_ranking, evaluate_ranking_parallel, EvalReport, Split};
    pub use lrgcn_graph::{BipartiteGraph, EdgePruner};
    pub use lrgcn_models::{
        BprMf, LayerGcn, LayerGcnConfig, LightGcn, LightGcnConfig, ModelKind, Recommender,
    };
    pub use lrgcn_train::{TrainConfig, TrainOutcome};
}

/// Builder for [`LayerGcnRecommender`].
#[derive(Clone, Debug, Default)]
pub struct LayerGcnBuilder {
    model: LayerGcnConfig,
    train: TrainConfig,
}

impl LayerGcnBuilder {
    /// Embedding size `T` (paper: 64).
    pub fn embedding_dim(mut self, dim: usize) -> Self {
        self.model.embedding_dim = dim;
        self
    }

    /// Number of propagation layers `L` (paper: fixed at 4).
    pub fn n_layers(mut self, layers: usize) -> Self {
        self.model.n_layers = layers;
        self
    }

    /// Degree-sensitive dropout ratio; `0.0` disables pruning.
    pub fn dropout_ratio(mut self, ratio: f32) -> Self {
        self.model.pruner = if ratio > 0.0 {
            EdgePruner::DegreeDrop { ratio }
        } else {
            EdgePruner::None
        };
        self
    }

    /// Full pruning policy (DegreeDrop / DropEdge / Mixed / None).
    pub fn pruner(mut self, pruner: EdgePruner) -> Self {
        self.model.pruner = pruner;
        self
    }

    /// L2 regularization coefficient λ (Eq. 12).
    pub fn lambda(mut self, lambda: f32) -> Self {
        self.model.lambda = lambda;
        self
    }

    pub fn learning_rate(mut self, lr: f32) -> Self {
        self.model.learning_rate = lr;
        self
    }

    pub fn batch_size(mut self, bs: usize) -> Self {
        self.model.batch_size = bs;
        self
    }

    pub fn max_epochs(mut self, epochs: usize) -> Self {
        self.train.max_epochs = epochs;
        self
    }

    /// Early-stopping patience in validation rounds.
    pub fn patience(mut self, patience: usize) -> Self {
        self.train.patience = patience;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.train.seed = seed;
        self
    }

    /// Print a progress line per validation round.
    pub fn verbose(mut self, verbose: bool) -> Self {
        self.train.verbose = verbose;
        self
    }

    /// Constructs the recommender (untrained) for `ds`.
    pub fn build(self, ds: &Dataset) -> LayerGcnRecommender {
        let mut rng = StdRng::seed_from_u64(self.train.seed);
        let model = LayerGcn::new(ds, self.model, &mut rng);
        LayerGcnRecommender {
            model,
            train_cfg: self.train,
            fitted: false,
        }
    }
}

/// A ready-to-use LayerGCN pipeline: construct via
/// [`LayerGcnRecommender::builder`], call [`LayerGcnRecommender::fit`], then
/// [`LayerGcnRecommender::recommend`].
pub struct LayerGcnRecommender {
    model: LayerGcn,
    train_cfg: TrainConfig,
    fitted: bool,
}

impl LayerGcnRecommender {
    pub fn builder() -> LayerGcnBuilder {
        LayerGcnBuilder::default()
    }

    /// Trains with early stopping on the validation split.
    pub fn fit(&mut self, ds: &Dataset) -> TrainOutcome {
        let outcome = train_with_early_stopping(&mut self.model, ds, &self.train_cfg);
        self.model.refresh(ds);
        self.fitted = true;
        outcome
    }

    /// Top-K item recommendations for a user, excluding training items.
    ///
    /// # Panics
    /// Panics if called before [`LayerGcnRecommender::fit`].
    pub fn recommend(&self, ds: &Dataset, user: u32, k: usize) -> Vec<u32> {
        assert!(self.fitted, "call fit() before recommend()");
        let mut scores = self.model.score_users(ds, &[user]);
        let row = scores.row_mut(0);
        for &it in ds.train_items(user) {
            row[it as usize] = f32::NEG_INFINITY;
        }
        top_k_indices(row, k)
    }

    /// Checkpoints the trained parameters to a file.
    pub fn save(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), lrgcn_tensor::io::IoError> {
        self.model.save(path)
    }

    /// Restores parameters from a checkpoint written by
    /// [`LayerGcnRecommender::save`] and marks the recommender as fitted.
    pub fn load(
        &mut self,
        ds: &Dataset,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), lrgcn_tensor::io::IoError> {
        self.model.load(path)?;
        self.model.refresh(ds);
        self.fitted = true;
        Ok(())
    }

    /// The underlying model, for evaluation or diagnostics.
    pub fn model(&self) -> &LayerGcn {
        &self.model
    }

    /// Mutable access to the underlying model.
    pub fn model_mut(&mut self) -> &mut LayerGcn {
        &mut self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrgcn_data::{SplitRatios, SyntheticConfig};

    fn ds() -> Dataset {
        let log = SyntheticConfig::games().scaled(0.1).generate(3);
        Dataset::chronological_split("t", &log, SplitRatios::default())
    }

    #[test]
    fn builder_pipeline_end_to_end() {
        let d = ds();
        let mut rec = LayerGcnRecommender::builder()
            .n_layers(3)
            .dropout_ratio(0.1)
            .max_epochs(4)
            .patience(100)
            .seed(1)
            .build(&d);
        let out = rec.fit(&d);
        assert_eq!(out.epochs_run, 4);
        let top = rec.recommend(&d, 0, 10);
        assert_eq!(top.len(), 10);
        // No training items may be recommended.
        for it in &top {
            assert!(!d.is_train_interaction(0, *it));
        }
        // No duplicates.
        let mut sorted = top.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), top.len());
    }

    #[test]
    #[should_panic(expected = "call fit()")]
    fn recommend_before_fit_panics() {
        let d = ds();
        let rec = LayerGcnRecommender::builder().build(&d);
        let _ = rec.recommend(&d, 0, 5);
    }

    #[test]
    fn dropout_zero_maps_to_none_pruner() {
        let b = LayerGcnBuilder::default().dropout_ratio(0.0);
        assert_eq!(b.model.pruner, EdgePruner::None);
        let b2 = LayerGcnBuilder::default().dropout_ratio(0.2);
        assert_eq!(b2.model.pruner, EdgePruner::DegreeDrop { ratio: 0.2 });
    }
}
