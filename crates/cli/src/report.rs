//! `lrgcn report` — offline terminal reports over the JSONL run logs.
//!
//! Parses the records emitted by `--log-json` (see `lrgcn_obs::event` and
//! `lrgcn_obs::diag` for the schema) and renders:
//!
//! * the loss / validation-metric trajectory with an ASCII sparkline,
//! * the per-phase wall-time breakdown (train / refresh / val),
//! * per-epoch kernel-counter deltas for the busiest counters,
//! * the model-health section: smoothness by layer, layer weights,
//!   gradient-norm trajectory (when `diag` records are present),
//! * the run-summary timer percentiles.
//!
//! `lrgcn report --diff A.jsonl B.jsonl` compares two runs side by side:
//! trajectory endpoints, wall time and total kernel counters.
//!
//! When a file holds several runs the report covers the **last** one,
//! matching "tail the log of the latest experiment". Runs are segmented
//! by `run_start` boundaries, not run id alone: the id counter is only
//! process-unique, so appended logs from separate processes may reuse it.

use lrgcn::obs::json::{self, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One `epoch` record, flattened.
struct EpochRow {
    epoch: u64,
    loss: f64,
    val: Option<(String, f64)>,
    train_s: f64,
    refresh_s: f64,
    val_s: f64,
    counters: BTreeMap<String, f64>,
}

/// One `diag` record, flattened.
struct DiagRow {
    epoch: u64,
    smoothness: Vec<f64>,
    layer_weights: Vec<f64>,
    grad_norm: Option<f64>,
    embedding_l2: f64,
}

/// Run-summary timers: name -> (count, p50_ns, p95_ns, p99_ns).
struct Summary {
    wall_s: f64,
    counters_total: BTreeMap<String, f64>,
    timers: BTreeMap<String, (f64, f64, f64, f64)>,
}

/// Everything the report needs from one JSONL file.
struct RunLog {
    path: String,
    run: u64,
    model: String,
    dataset: String,
    threads: u64,
    epochs: Vec<EpochRow>,
    diags: Vec<DiagRow>,
    summary: Option<Summary>,
    /// Divergence/fault recoveries: `(epoch, reason)`.
    recoveries: Vec<(u64, String)>,
    /// Terminal crash record, if the process panicked: `(epoch, message)`.
    abort: Option<(u64, String)>,
}

pub fn cmd_report(tokens: &[String]) -> Result<(), String> {
    let mut diff = false;
    let mut paths: Vec<&String> = Vec::new();
    for t in tokens {
        match t.as_str() {
            "--diff" => diff = true,
            s if s.starts_with("--") => return Err(format!("unknown report option {s:?}")),
            _ => paths.push(t),
        }
    }
    let text = if diff {
        let [a, b] = paths[..] else {
            return Err("usage: lrgcn report --diff A.jsonl B.jsonl".into());
        };
        render_diff(&parse_log(a)?, &parse_log(b)?)
    } else {
        let [path] = paths[..] else {
            return Err(
                "usage: lrgcn report LOG.jsonl  (or: report --diff A.jsonl B.jsonl)".into(),
            );
        };
        render_report(&parse_log(path)?)
    };
    // write_all instead of println!: piping into `head` must not panic on
    // the broken pipe when the reader exits early.
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(text.as_bytes());
    Ok(())
}

fn num(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

fn num_vec(v: Option<&Value>) -> Vec<f64> {
    match v {
        Some(Value::Arr(items)) => items.iter().filter_map(Value::as_f64).collect(),
        _ => Vec::new(),
    }
}

fn obj_nums(v: Option<&Value>) -> BTreeMap<String, f64> {
    match v {
        Some(Value::Obj(m)) => m
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
            .collect(),
        _ => BTreeMap::new(),
    }
}

fn parse_log(path: &str) -> Result<RunLog, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("{path}:{}: bad JSONL line: {e}", i + 1))?;
        records.push(v);
    }
    if records.is_empty() {
        return Err(format!("{path}: no records"));
    }
    // Segment the stream: each `run_start` opens a new run; every other
    // record belongs to the most recent segment with the same run id.
    // (The sink appends, and run ids restart per process, so id-only
    // demux would merge runs from different invocations.)
    let fresh = |run: u64| RunLog {
        path: path.to_string(),
        run,
        model: "?".into(),
        dataset: "?".into(),
        threads: 0,
        epochs: Vec::new(),
        diags: Vec::new(),
        summary: None,
        recoveries: Vec::new(),
        abort: None,
    };
    let mut segments: Vec<RunLog> = Vec::new();
    for v in &records {
        let run = num(v, "run").unwrap_or(0.0) as u64;
        match v.get("event").and_then(Value::as_str) {
            Some("run_start") => {
                let mut seg = fresh(run);
                if let Some(m) = v.get("model").and_then(Value::as_str) {
                    seg.model = m.to_string();
                }
                if let Some(d) = v.get("dataset").and_then(Value::as_str) {
                    seg.dataset = d.to_string();
                }
                seg.threads = num(v, "threads").unwrap_or(0.0) as u64;
                segments.push(seg);
                continue;
            }
            Some("epoch") | Some("diag") | Some("run_summary") | Some("recovery")
            | Some("run_abort") => {}
            _ => continue,
        }
        let log = match segments.iter_mut().rev().find(|s| s.run == run) {
            Some(seg) => seg,
            None => {
                // Headerless record (truncated file): open an implicit run.
                segments.push(fresh(run));
                segments.last_mut().expect("just pushed")
            }
        };
        match v.get("event").and_then(Value::as_str) {
            Some("epoch") => {
                let t = v.get("timings_s");
                // Prefer the early-stopping criterion metric when several
                // validation metrics are present.
                let val = v.get("val").and_then(|m| match m {
                    Value::Obj(pairs) => pairs
                        .iter()
                        .find(|(k, _)| k.starts_with("recall"))
                        .or_else(|| pairs.iter().next())
                        .and_then(|(k, x)| x.as_f64().map(|f| (k.clone(), f))),
                    _ => None,
                });
                log.epochs.push(EpochRow {
                    epoch: num(v, "epoch").unwrap_or(0.0) as u64,
                    loss: num(v, "loss").unwrap_or(f64::NAN),
                    val,
                    train_s: t.and_then(|t| num(t, "train")).unwrap_or(0.0),
                    refresh_s: t.and_then(|t| num(t, "refresh")).unwrap_or(0.0),
                    val_s: t.and_then(|t| num(t, "val")).unwrap_or(0.0),
                    counters: obj_nums(v.get("counters")),
                });
            }
            Some("diag") => log.diags.push(DiagRow {
                epoch: num(v, "epoch").unwrap_or(0.0) as u64,
                smoothness: num_vec(v.get("smoothness")),
                layer_weights: num_vec(v.get("layer_weights")),
                grad_norm: num(v, "grad_norm"),
                embedding_l2: num(v, "embedding_l2").unwrap_or(f64::NAN),
            }),
            Some("run_summary") => {
                let timers = match v.get("timers") {
                    Some(Value::Obj(m)) => m
                        .iter()
                        .map(|(k, t)| {
                            (
                                k.clone(),
                                (
                                    num(t, "count").unwrap_or(0.0),
                                    num(t, "p50_ns").unwrap_or(0.0),
                                    num(t, "p95_ns").unwrap_or(0.0),
                                    num(t, "p99_ns").unwrap_or(0.0),
                                ),
                            )
                        })
                        .collect(),
                    _ => BTreeMap::new(),
                };
                log.summary = Some(Summary {
                    wall_s: num(v, "wall_s").unwrap_or(0.0),
                    counters_total: obj_nums(v.get("counters_total")),
                    timers,
                });
            }
            Some("recovery") => log.recoveries.push((
                num(v, "epoch").unwrap_or(0.0) as u64,
                v.get("reason")
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_string(),
            )),
            Some("run_abort") => {
                log.abort = Some((
                    num(v, "epoch").unwrap_or(0.0) as u64,
                    v.get("message")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_string(),
                ))
            }
            _ => {}
        }
    }
    let mut log = segments
        .into_iter()
        .rev()
        .find(|s| !s.epochs.is_empty())
        .ok_or_else(|| format!("{path}: no run with epoch records"))?;
    log.epochs.sort_by_key(|e| e.epoch);
    log.diags.sort_by_key(|d| d.epoch);
    Ok(log)
}

/// 8-level ASCII sparkline; constant series render as a flat middle band.
pub(crate) fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if finite.is_empty() {
        return String::new();
    }
    let (lo, hi) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &x| {
            (l.min(x), h.max(x))
        });
    values
        .iter()
        .map(|&x| {
            if !x.is_finite() {
                return '·';
            }
            if hi == lo {
                return LEVELS[3];
            }
            let t = (x - lo) / (hi - lo);
            LEVELS[((t * 7.0).round() as usize).min(7)]
        })
        .collect()
}

pub(crate) fn fmt_si(x: f64) -> String {
    let ax = x.abs();
    if ax >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if ax >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if ax >= 1e3 {
        format!("{:.1}k", x / 1e3)
    } else {
        format!("{x:.0}")
    }
}

pub(crate) fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// The busiest counters across the run, biggest first (table columns).
fn top_counters(epochs: &[EpochRow], k: usize) -> Vec<String> {
    let mut totals: BTreeMap<&str, f64> = BTreeMap::new();
    for e in epochs {
        for (name, v) in &e.counters {
            *totals.entry(name).or_default() += v;
        }
    }
    let mut by_total: Vec<(&str, f64)> = totals.into_iter().collect();
    by_total.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
    by_total
        .into_iter()
        .take(k)
        .map(|(n, _)| n.to_string())
        .collect()
}

/// Shortens `tensor.spmm.calls` to `spmm.calls` for column headers.
fn short(name: &str) -> &str {
    name.split_once('.').map_or(name, |(_, rest)| rest)
}

fn render_report(log: &RunLog) -> String {
    let mut o = String::new();
    let _ = writeln!(
        o,
        "run {} — {} on {} ({} thread{}) — {} epochs — {}",
        log.run,
        log.model,
        log.dataset,
        log.threads,
        if log.threads == 1 { "" } else { "s" },
        log.epochs.len(),
        log.path
    );
    if let Some((epoch, msg)) = &log.abort {
        let _ = writeln!(o, "  ABORTED at epoch {epoch}: {msg}");
    }
    if !log.recoveries.is_empty() {
        let list: Vec<String> = log
            .recoveries
            .iter()
            .map(|(e, r)| format!("{r} @ epoch {e}"))
            .collect();
        let _ = writeln!(
            o,
            "  recoveries: {} ({})",
            log.recoveries.len(),
            list.join(", ")
        );
    }
    let _ = writeln!(o);

    // Trajectory.
    let losses: Vec<f64> = log.epochs.iter().map(|e| e.loss).collect();
    let _ = writeln!(o, "trajectory");
    let _ = writeln!(
        o,
        "  loss        {:>12.6} → {:>12.6}   {}",
        losses.first().copied().unwrap_or(f64::NAN),
        losses.last().copied().unwrap_or(f64::NAN),
        sparkline(&losses)
    );
    let vals: Vec<(u64, String, f64)> = log
        .epochs
        .iter()
        .filter_map(|e| e.val.as_ref().map(|(k, v)| (e.epoch, k.clone(), *v)))
        .collect();
    if let (Some(first), Some(last)) = (vals.first(), vals.last()) {
        let curve: Vec<f64> = vals.iter().map(|(_, _, v)| *v).collect();
        let best = vals
            .iter()
            .max_by(|a, b| a.2.total_cmp(&b.2))
            .expect("non-empty");
        let _ = writeln!(
            o,
            "  {:<10}  {:>12.6} → {:>12.6}   {}   best {:.6} @ epoch {}",
            first.1,
            first.2,
            last.2,
            sparkline(&curve),
            best.2,
            best.0
        );
    }
    let _ = writeln!(o);

    // Phase breakdown.
    let (t, r, v) = log.epochs.iter().fold((0.0, 0.0, 0.0), |(t, r, v), e| {
        (t + e.train_s, r + e.refresh_s, v + e.val_s)
    });
    let total = (t + r + v).max(1e-12);
    let _ = writeln!(o, "phase breakdown");
    for (name, secs) in [("train", t), ("refresh", r), ("val", v)] {
        let share = secs / total;
        let bar = "█".repeat((share * 24.0).round() as usize);
        let _ = writeln!(
            o,
            "  {name:<8} {secs:>9.3}s  {:>5.1}%  {bar}",
            share * 100.0
        );
    }
    if let Some(s) = &log.summary {
        let _ = writeln!(o, "  wall     {:>9.3}s  (run total incl. setup)", s.wall_s);
    }
    let _ = writeln!(o);

    // Per-epoch kernel-counter deltas.
    let cols = top_counters(&log.epochs, 5);
    if !cols.is_empty() {
        let _ = writeln!(o, "kernel counters (per-epoch deltas)");
        let _ = write!(o, "  {:>6}", "epoch");
        for c in &cols {
            let _ = write!(o, "  {:>14}", short(c));
        }
        let _ = writeln!(o);
        // Cap the table at 12 rows: first 6, ellipsis, last 5.
        let n = log.epochs.len();
        let rows: Vec<usize> = if n <= 12 {
            (0..n).collect()
        } else {
            (0..6).chain(n - 5..n).collect()
        };
        let mut prev_printed: Option<usize> = None;
        for i in rows {
            if let Some(p) = prev_printed {
                if i > p + 1 {
                    let _ = writeln!(o, "  {:>6}", "⋮");
                }
            }
            let e = &log.epochs[i];
            let _ = write!(o, "  {:>6}", e.epoch);
            for c in &cols {
                let _ = write!(
                    o,
                    "  {:>14}",
                    fmt_si(e.counters.get(c).copied().unwrap_or(0.0))
                );
            }
            let _ = writeln!(o);
            prev_printed = Some(i);
        }
        let _ = writeln!(o);
    }

    // Model health (diag records).
    if let Some(last) = log.diags.last() {
        let _ = writeln!(o, "model health (diag @ epoch {})", last.epoch);
        if !last.smoothness.is_empty() {
            let _ = writeln!(
                o,
                "  smoothness by layer (mean row-cosine to previous layer)"
            );
            for (l, s) in last.smoothness.iter().enumerate() {
                let w = last.layer_weights.get(l);
                let bar = "▪".repeat(((s.clamp(0.0, 1.0)) * 24.0).round() as usize);
                let _ = match w {
                    Some(w) => writeln!(
                        o,
                        "    layer {:<2} {s:>9.5}  {bar:<24}  weight {w:>9.5}",
                        l + 1
                    ),
                    None => writeln!(o, "    layer {:<2} {s:>9.5}  {bar}", l + 1),
                };
            }
        }
        let grads: Vec<f64> = log.diags.iter().filter_map(|d| d.grad_norm).collect();
        if !grads.is_empty() {
            let _ = writeln!(
                o,
                "  grad norm   {:>12.6} → {:>12.6}   {}",
                grads.first().copied().unwrap_or(f64::NAN),
                grads.last().copied().unwrap_or(f64::NAN),
                sparkline(&grads)
            );
        }
        let l2s: Vec<f64> = log.diags.iter().map(|d| d.embedding_l2).collect();
        let _ = writeln!(
            o,
            "  ego emb L2  {:>12.6} → {:>12.6}   {}",
            l2s.first().copied().unwrap_or(f64::NAN),
            l2s.last().copied().unwrap_or(f64::NAN),
            sparkline(&l2s)
        );
        let _ = writeln!(o);
    }

    // Summary timer percentiles.
    if let Some(s) = &log.summary {
        if !s.timers.is_empty() {
            let _ = writeln!(o, "timer percentiles (run summary)");
            let _ = writeln!(
                o,
                "  {:<26} {:>8} {:>10} {:>10} {:>10}",
                "timer", "count", "p50", "p95", "p99"
            );
            for (name, (count, p50, p95, p99)) in &s.timers {
                if *count == 0.0 {
                    continue;
                }
                let _ = writeln!(
                    o,
                    "  {:<26} {:>8} {:>10} {:>10} {:>10}",
                    name,
                    fmt_si(*count),
                    fmt_ns(*p50),
                    fmt_ns(*p95),
                    fmt_ns(*p99)
                );
            }
        }
    }
    o
}

fn render_diff(a: &RunLog, b: &RunLog) -> String {
    let mut o = String::new();
    let _ = writeln!(
        o,
        "A: run {} — {} on {} — {}",
        a.run, a.model, a.dataset, a.path
    );
    let _ = writeln!(
        o,
        "B: run {} — {} on {} — {}",
        b.run, b.model, b.dataset, b.path
    );
    let _ = writeln!(o);
    let last_loss = |l: &RunLog| l.epochs.last().map_or(f64::NAN, |e| e.loss);
    let best_val = |l: &RunLog| {
        l.epochs
            .iter()
            .filter_map(|e| e.val.as_ref().map(|(_, v)| *v))
            .fold(f64::NAN, f64::max)
    };
    let wall = |l: &RunLog| l.summary.as_ref().map_or(f64::NAN, |s| s.wall_s);
    let _ = writeln!(
        o,
        "  {:<24} {:>14} {:>14} {:>12}",
        "metric", "A", "B", "Δ (B−A)"
    );
    for (name, fa, fb) in [
        ("epochs", a.epochs.len() as f64, b.epochs.len() as f64),
        ("final loss", last_loss(a), last_loss(b)),
        ("best val metric", best_val(a), best_val(b)),
        ("wall s", wall(a), wall(b)),
    ] {
        let _ = writeln!(o, "  {name:<24} {fa:>14.6} {fb:>14.6} {:>+12.6}", fb - fa);
    }
    let _ = writeln!(o);
    // Total kernel counters, union of both summaries (epoch sums as
    // fallback when a summary record is missing).
    let totals = |l: &RunLog| -> BTreeMap<String, f64> {
        match &l.summary {
            Some(s) if !s.counters_total.is_empty() => s.counters_total.clone(),
            _ => {
                let mut m = BTreeMap::new();
                for e in &l.epochs {
                    for (k, v) in &e.counters {
                        *m.entry(k.clone()).or_default() += v;
                    }
                }
                m
            }
        }
    };
    let ta = totals(a);
    let tb = totals(b);
    let mut keys: Vec<&String> = ta.keys().chain(tb.keys()).collect();
    keys.sort();
    keys.dedup();
    let _ = writeln!(
        o,
        "  {:<26} {:>12} {:>12} {:>10}",
        "counter (run totals)", "A", "B", "B/A"
    );
    for k in keys {
        let va = ta.get(k).copied().unwrap_or(0.0);
        let vb = tb.get(k).copied().unwrap_or(0.0);
        if va == 0.0 && vb == 0.0 {
            continue;
        }
        let ratio = if va > 0.0 {
            format!("{:>9.3}x", vb / va)
        } else {
            "      new".to_string()
        };
        let _ = writeln!(
            o,
            "  {:<26} {:>12} {:>12} {ratio}",
            k,
            fmt_si(va),
            fmt_si(vb)
        );
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_spans_levels() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁') && s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
        // Constant series stays flat; NaN renders as a dot among finite
        // points, and an all-NaN series collapses to nothing.
        assert_eq!(sparkline(&[2.0, 2.0]), "▄▄");
        assert_eq!(sparkline(&[1.0, f64::NAN, 3.0]), "▁·█");
        assert_eq!(sparkline(&[f64::NAN]), "");
    }

    #[test]
    fn si_and_ns_formatting() {
        assert_eq!(fmt_si(950.0), "950");
        assert_eq!(fmt_si(1500.0), "1.5k");
        assert_eq!(fmt_si(2_500_000.0), "2.50M");
        assert_eq!(fmt_ns(1_500.0), "1.50µs");
        assert_eq!(fmt_ns(2_000_000.0), "2.00ms");
        assert_eq!(fmt_ns(3_100_000_000.0), "3.10s");
    }

    #[test]
    fn report_rejects_missing_and_empty_inputs() {
        assert!(cmd_report(&[]).is_err());
        assert!(cmd_report(&["/nonexistent/x.jsonl".to_string()]).is_err());
        let dir = std::env::temp_dir().join("lrgcn_report_empty");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let p = dir.join("empty.jsonl");
        std::fs::write(&p, "").expect("write");
        let err = cmd_report(&[p.display().to_string()]).expect_err("empty log");
        assert!(err.contains("no records"), "{err}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn report_renders_synthetic_log_end_to_end() {
        let dir = std::env::temp_dir().join("lrgcn_report_synth");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let p = dir.join("run.jsonl");
        let mut lines = vec![
            r#"{"dataset":"mooc","event":"run_start","model":"LayerGCN","run":1,"threads":2}"#
                .to_string(),
        ];
        for e in 0..3 {
            lines.push(format!(
                concat!(
                    r#"{{"counters":{{"tensor.spmm.calls":{c}}},"epoch":{e},"event":"epoch","#,
                    r#""loss":{l},"matrix_bytes_peak":1024,"run":1,"threads":2,"#,
                    r#""timings_s":{{"refresh":0.1,"train":1.0,"val":0.2}},"#,
                    r#""val":{{"recall@20":{v}}}}}"#
                ),
                c = 40 + e,
                e = e,
                l = 0.7 - 0.01 * e as f64,
                v = 0.5 + 0.01 * e as f64,
            ));
            lines.push(format!(
                concat!(
                    r#"{{"embedding_l2":0.9,"epoch":{e},"event":"diag","grad_groups":{{"ego":0.5}},"#,
                    r#""grad_norm":0.5,"layer_weights":[0.1,0.2],"model":"LayerGCN","run":1,"#,
                    r#""smoothness":[0.8,0.9]}}"#
                ),
                e = e
            ));
        }
        lines.push(
            r#"{"counters_total":{"tensor.spmm.calls":123},"epochs":3,"event":"run_summary","run":1,"timers":{"train.epoch_ns":{"count":3,"p50_ns":1000,"p95_ns":2000,"p99_ns":2000}},"wall_s":4.2}"#
                .to_string(),
        );
        std::fs::write(&p, lines.join("\n")).expect("write");
        let path = p.display().to_string();
        let log = parse_log(&path).expect("parse");
        assert_eq!(log.epochs.len(), 3);
        assert_eq!(log.epochs[0].val, Some(("recall@20".to_string(), 0.5)));
        let text = render_report(&log);
        for needle in ["trajectory", "recall@20", "phase breakdown", "model health"] {
            assert!(text.contains(needle), "missing {needle:?}:\n{text}");
        }
        cmd_report(std::slice::from_ref(&path)).expect("report");
        cmd_report(&["--diff".to_string(), path.clone(), path]).expect("diff");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn recovery_and_abort_records_surface_in_the_report() {
        let dir = std::env::temp_dir().join("lrgcn_report_recovery");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let p = dir.join("faulty.jsonl");
        let lines = [
            r#"{"dataset":"mooc","event":"run_start","model":"LayerGCN","run":1,"threads":1}"#,
            r#"{"counters":{},"epoch":0,"event":"epoch","loss":0.9,"matrix_bytes_peak":0,"run":1,"threads":1,"timings_s":{"refresh":0,"train":1,"val":0}}"#,
            r#"{"epoch":1,"event":"recovery","lr":0.0005,"reason":"non_finite_loss","rolled_back_to":0,"run":1}"#,
            r#"{"counters":{},"epoch":1,"event":"epoch","loss":0.8,"matrix_bytes_peak":0,"run":1,"threads":1,"timings_s":{"refresh":0,"train":1,"val":0}}"#,
            r#"{"epoch":2,"event":"run_abort","message":"boom","run":1}"#,
        ];
        std::fs::write(&p, lines.join("\n")).expect("write");
        let log = parse_log(&p.display().to_string()).expect("parse");
        assert_eq!(log.recoveries, vec![(1, "non_finite_loss".to_string())]);
        assert_eq!(log.abort, Some((2, "boom".to_string())));
        assert_eq!(log.epochs.len(), 2, "recovery records must not eat epochs");
        let text = render_report(&log);
        assert!(text.contains("ABORTED at epoch 2: boom"), "{text}");
        assert!(
            text.contains("recoveries: 1 (non_finite_loss @ epoch 1)"),
            "{text}"
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn last_run_wins_when_file_holds_several() {
        let dir = std::env::temp_dir().join("lrgcn_report_multi");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let p = dir.join("multi.jsonl");
        let lines = [
            r#"{"dataset":"a","event":"run_start","model":"m1","run":1,"threads":1}"#,
            r#"{"counters":{},"epoch":0,"event":"epoch","loss":0.5,"matrix_bytes_peak":0,"run":1,"threads":1,"timings_s":{"refresh":0,"train":1,"val":0}}"#,
            r#"{"dataset":"b","event":"run_start","model":"m2","run":2,"threads":1}"#,
            r#"{"counters":{},"epoch":0,"event":"epoch","loss":0.4,"matrix_bytes_peak":0,"run":2,"threads":1,"timings_s":{"refresh":0,"train":1,"val":0}}"#,
        ];
        std::fs::write(&p, lines.join("\n")).expect("write");
        let log = parse_log(&p.display().to_string()).expect("parse");
        assert_eq!(log.run, 2);
        assert_eq!(log.model, "m2");
        assert_eq!(log.epochs.len(), 1);
        assert_eq!(log.epochs[0].loss, 0.4);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn appended_runs_with_colliding_ids_split_at_run_start() {
        // Run ids are process-unique counters, so two invocations that
        // append to one file both write run=1: the later run_start must
        // open a new segment rather than merge the epoch streams.
        let dir = std::env::temp_dir().join("lrgcn_report_collide");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let p = dir.join("collide.jsonl");
        let lines = [
            r#"{"dataset":"old","event":"run_start","model":"m1","run":1,"threads":1}"#,
            r#"{"counters":{},"epoch":0,"event":"epoch","loss":0.9,"matrix_bytes_peak":0,"run":1,"threads":1,"timings_s":{"refresh":0,"train":1,"val":0}}"#,
            r#"{"counters":{},"epoch":1,"event":"epoch","loss":0.8,"matrix_bytes_peak":0,"run":1,"threads":1,"timings_s":{"refresh":0,"train":1,"val":0}}"#,
            r#"{"dataset":"new","event":"run_start","model":"m2","run":1,"threads":1}"#,
            r#"{"counters":{},"epoch":0,"event":"epoch","loss":0.7,"matrix_bytes_peak":0,"run":1,"threads":1,"timings_s":{"refresh":0,"train":1,"val":0}}"#,
        ];
        std::fs::write(&p, lines.join("\n")).expect("write");
        let log = parse_log(&p.display().to_string()).expect("parse");
        assert_eq!(log.model, "m2");
        assert_eq!(log.dataset, "new");
        assert_eq!(log.epochs.len(), 1, "segments must not merge");
        assert_eq!(log.epochs[0].loss, 0.7);
        std::fs::remove_file(&p).ok();
    }
}
