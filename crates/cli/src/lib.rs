//! # lrgcn-cli — command-line workflows for the LayerGCN recommender
//!
//! Seven subcommands — five over `user item [timestamp]` text logs, an
//! offline reporter over the JSONL run logs, and a live serving dashboard:
//!
//! ```text
//! lrgcn stats     --input interactions.tsv [--kcore K]
//! lrgcn train     --input interactions.tsv --save model.ckpt
//!                 [--model layergcn|lightgcn|bpr|...] [--epochs N] [--kcore K]
//!                 [--layers L] [--dropout R] [--lambda F] [--seed S]
//!                 [--checkpoint BASE [--checkpoint-every N]] [--resume BASE]
//! lrgcn evaluate  --input interactions.tsv --load model.ckpt [--ks 10,20,50]
//! lrgcn recommend --input interactions.tsv --load model.ckpt --user ID [--k N]
//!                 [--exclude-seen true|false]       # default true
//! lrgcn serve     model.ckpt --input interactions.tsv [--port P] [--host H]
//!                 [--workers N] [--cache N]         # online HTTP serving
//!                 [--quant | --exact]               # int8 or exact read path
//!                 [--ann [--nprobe N] [--ann-cells C]]  # IVF ANN retrieval
//!                 [--ann-standby]                   # build index, serve exact
//!                 [--access-log PATH [--access-sample N]]   # JSONL access log
//!                 [--slo-p99-ms MS] [--slo-err-ppm PPM]     # SLO burn gauges
//!                 [--max-inflight N [--max-queue N]]        # admission gate
//!                 [--deadline-default-ms MS]        # per-request deadlines
//!                 [--brownout [--brownout-up-ticks N] [--brownout-down-ticks N]]
//! lrgcn report    LOG.jsonl            # or: report --diff A.jsonl B.jsonl
//! lrgcn top       http://HOST:PORT [--interval SECS] [--once]
//! ```
//!
//! Every subcommand also accepts `--threads N` to pin the worker-thread
//! count of the parallel kernels (default: `LRGCN_THREADS` env var, then
//! the machine's available parallelism) and `--kernel naive|blocked|simd`
//! to pin the micro-kernel implementation (default: `LRGCN_KERNEL` env
//! var, then the best the CPU supports; `simd` needs AVX2). Results are
//! bitwise identical for any thread count and any kernel.
//!
//! ## Observability flags
//!
//! Two sinks can be armed on any subcommand; for both, the command-line
//! flag wins over the environment variable, and either installs the sink
//! for the duration of the process:
//!
//! * `--log-json PATH` (env `LRGCN_LOG_JSON`) appends structured JSONL run
//!   logs: one record per training epoch (loss, per-phase timings, kernel
//!   counters, thread count, peak matrix bytes), one `diag` record per
//!   validated epoch (per-layer smoothness, gradient norms, embedding L2,
//!   refined-layer weights), plus `run_start` / `run_summary` records. See
//!   `lrgcn_obs::event` and `lrgcn_obs::diag` for the schema, and
//!   `lrgcn report` to render the file.
//! * `--trace PATH` (env `LRGCN_TRACE`) writes a Chrome `trace_event` JSON
//!   array of hierarchical wall-clock spans (run → epoch → phase → kernel)
//!   loadable in `chrome://tracing` / Perfetto. See `lrgcn_obs::trace`.
//!
//! `train --save` checkpoints LayerGCN and LightGCN (tagged with the model
//! family, see `lrgcn::models::checkpoint`; the remaining baselines train
//! and report but have no stable checkpoint format). `evaluate`,
//! `recommend` and `serve` rebuild the dataset with the same flags, so pass
//! the same `--input`/`--kcore`/`--layers` used at training time; the
//! embedding dimension is inferred from the checkpoint itself.
//!
//! `recommend` masks items the user already interacted with in training by
//! default; pass `--exclude-seen false` to rank the full catalogue.
//!
//! ## Fault tolerance
//!
//! `train --checkpoint BASE` writes resumable training-state checkpoints to
//! `BASE.e<NNNNNN>` (atomic tmp+fsync+rename, newest two generations kept)
//! every `--checkpoint-every N` epochs (default 1 when `--checkpoint` is
//! given). `train --resume BASE` continues from the newest *valid*
//! generation — corrupt or torn files are skipped — and reproduces the
//! uninterrupted run's loss/metric trajectory bitwise, at any `--threads`.
//! The trainer also survives divergence (non-finite loss, exploding
//! gradients) by rolling back to the last good generation and halving the
//! learning rate, and a process panic is stamped into the JSONL log as a
//! terminal `run_abort` record so `lrgcn report` can tell a crashed run
//! from a finished one. Set `LRGCN_FAULT` (e.g. `io_error:0.1`,
//! `torn_write:save`, `kill:3`) to inject I/O faults for drills; see
//! `lrgcn_tensor::faultfs`.
//!
//! ## Serving
//!
//! `serve` loads the checkpoint once into an `lrgcn_serve::Engine` and
//! answers HTTP on a fixed worker pool (`--workers`, default: the
//! `LRGCN_THREADS` convention): `GET /recs/{user}?k=N`,
//! `GET /similar/{item}?k=N`, `POST /score`, `GET /healthz`,
//! `GET /metrics`, `POST /admin/reload` (hot checkpoint swap) and
//! `POST /admin/shutdown` (graceful drain). Served rankings are
//! byte-identical to the offline evaluator's top-K for any thread count.
//!
//! `serve --quant` switches the read paths to the int8 two-stage
//! rank-then-rescore pipeline (quantized full-catalog scan → exact f32
//! rescore of the top 4·K candidates); its measured recall against the
//! exact scan is reported in `/healthz` and the `serve.quant.recall_ppm`
//! gauge. `--exact` (the default) keeps the byte-identical f32 path.
//!
//! `serve --ann` builds a zero-dependency IVF index over the item
//! embeddings (deterministic k-means coarse quantizer, rebuilt on every
//! hot reload) and serves `/recs` and `/similar` from the `--nprobe N`
//! (default 8) best cells instead of the full catalog — sub-linear
//! candidate generation with a measured recall guardrail in `/healthz`
//! (`ann_recall_ppm`) and the `serve.ann.recall_ppm` gauge. `--ann-cells C`
//! overrides the cell count (default ≈ √n_items). `--quant` composes: the
//! in-cell scan uses the int8 table, survivors get the exact f32 rescore.
//! Candidate sets are bitwise-identical at any `LRGCN_THREADS`.
//!
//! ## Overload control (DESIGN.md §14)
//!
//! `serve --max-inflight N` arms a bounded admission gate over the compute
//! routes (`/recs`, `/similar`, `/score`): at most N execute concurrently,
//! `--max-queue` more may wait, and everything beyond that is shed with a
//! prompt `503` + `Retry-After`. Clients can bound their wait with an
//! `x-lrgcn-deadline-ms` header (`--deadline-default-ms` sets a server
//! default); a request whose deadline passes while queued — or that
//! reaches the scoring kernel already doomed — is dropped early with the
//! same 503 surface. `--brownout` (requires `--slo-p99-ms`) additionally
//! steps the live read path down under sustained pressure: level 1 forces
//! the ANN index (pair with `--ann-standby`, which builds the index
//! without serving through it), level 2 halves the probe width and caps
//! `k`, level 3 serves stale cache entries and stops queueing. Recovery is
//! hysteretic; `lrgcn top` and `/admin/obs` show the level and shed rates.

use lrgcn::data::{kcore, loader, Dataset, InteractionLog, SplitRatios};
use lrgcn::eval::{evaluate_ranking_parallel, Split};
use lrgcn::graph::EdgePruner;
use lrgcn::models::{LayerGcn, LayerGcnConfig, ModelKind};
use lrgcn::train::{train_with_early_stopping, TrainConfig};
use lrgcn_bench::Args;
use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod report;
pub mod retrain;
pub mod top;

/// Exit-style result: user-facing message on failure.
pub type CliResult = Result<(), String>;

/// Installs a panic hook that stamps the crash into the JSONL run log (when
/// one is armed) as a terminal `run_abort` record — run id and epoch from
/// the trainer's last progress note, plus the panic message — then flushes
/// the sink and delegates to the default hook. This is what lets
/// `lrgcn report` distinguish a crashed run from one that merely stopped.
pub fn install_panic_hook() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if lrgcn::obs::sink::enabled() {
            let (run, epoch) = lrgcn::obs::sink::last_progress().unwrap_or((0, 0));
            let msg = if let Some(s) = info.payload().downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = info.payload().downcast_ref::<String>() {
                s.clone()
            } else {
                "panic".to_string()
            };
            lrgcn::obs::sink::emit(&lrgcn::obs::event::run_abort(run, epoch, &msg));
            // Uninstall to flush and drop the writer before the process
            // unwinds away.
            lrgcn::obs::sink::uninstall();
        }
        default_hook(info);
    }));
}

/// Dispatches a full command line (without argv[0]).
pub fn run(tokens: Vec<String>) -> CliResult {
    let Some((cmd, rest)) = tokens.split_first() else {
        return Err(usage());
    };
    let args = Args::from_tokens(rest.to_vec());
    if let Some(t) = args.get("threads") {
        let n: usize = t
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("--threads wants a positive integer, got {t:?}"))?;
        lrgcn::tensor::par::set_threads(n);
    }
    if let Some(name) = args.get("kernel") {
        let k = lrgcn::tensor::kernels::Kernel::parse(name)
            .ok_or_else(|| format!("--kernel wants naive, blocked or simd, got {name:?}"))?;
        lrgcn::tensor::kernels::set_kernel(k);
    }
    // --log-json wins over the environment; either installs the global
    // JSONL sink for the duration of the process.
    let log_json = args.get("log-json").map(String::from).or_else(|| {
        std::env::var("LRGCN_LOG_JSON")
            .ok()
            .filter(|p| !p.is_empty())
    });
    if let Some(path) = log_json {
        lrgcn::obs::sink::install_file(&path)
            .map_err(|e| format!("opening --log-json {path}: {e}"))?;
    }
    // --trace wins over the environment, mirroring --log-json.
    let trace_path = args
        .get("trace")
        .map(String::from)
        .or_else(|| std::env::var("LRGCN_TRACE").ok().filter(|p| !p.is_empty()));
    if let Some(path) = trace_path {
        lrgcn::obs::trace::install_file(&path)
            .map_err(|e| format!("opening --trace {path}: {e}"))?;
    }
    let result = match cmd.as_str() {
        "stats" => cmd_stats(&args),
        "train" => cmd_train(&args),
        "evaluate" => cmd_evaluate(&args),
        "recommend" => cmd_recommend(&args),
        "serve" => cmd_serve(&args, rest),
        "retrain" => retrain::cmd_retrain(&args),
        "report" => report::cmd_report(rest),
        "top" => top::cmd_top(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    };
    // Close the trace JSON array (no-op when tracing is not armed) so the
    // file is loadable even when the command failed.
    lrgcn::obs::trace::finish();
    result
}

fn usage() -> String {
    "usage: lrgcn <stats|train|evaluate|recommend> --input FILE [options]\n\
     \x20      lrgcn serve CKPT --input FILE [--port P] [--events-log DIR]\n\
     \x20      lrgcn retrain --input FILE --checkpoint BASE --follow DIR\n\
     \x20             [--epochs N] [--publish CKPT] [--reload http://HOST:PORT]\n\
     \x20      lrgcn report LOG.jsonl | report --diff A.jsonl B.jsonl\n\
     \x20      lrgcn top http://HOST:PORT [--interval SECS] [--once]\n\
     run `lrgcn help` or see the crate docs for the full option list"
        .to_string()
}

/// Loads the interaction log with optional k-core filtering.
pub fn load_log(args: &Args) -> Result<InteractionLog, String> {
    let path = args.get("input").ok_or("missing --input FILE")?;
    let log = loader::load_interactions(path).map_err(|e| format!("loading {path}: {e}"))?;
    let k: u32 = args.get_parsed("kcore", 0u32);
    Ok(if k > 1 { kcore::k_core(&log, k) } else { log })
}

/// Loads and chronologically splits the dataset.
pub fn load_dataset(args: &Args) -> Result<Dataset, String> {
    let log = load_log(args)?;
    if log.is_empty() {
        return Err("no interactions left after filtering".into());
    }
    Ok(Dataset::chronological_split(
        args.get("input").unwrap_or("dataset"),
        &log,
        SplitRatios::default(),
    ))
}

fn cmd_stats(args: &Args) -> CliResult {
    let log = load_log(args)?;
    let s = lrgcn::data::DatasetStats::of(args.get("input").unwrap_or("dataset"), &log);
    println!("users         {:>12}", s.n_users);
    println!("items         {:>12}", s.n_items);
    println!("interactions  {:>12}", s.n_interactions);
    println!("sparsity      {:>11.4}%", s.sparsity_pct);
    println!("mean user deg {:>12.2}", s.mean_user_degree);
    println!("mean item deg {:>12.2}", s.mean_item_degree);
    let ds = Dataset::chronological_split("d", &log, SplitRatios::default());
    let (v, t) = ds.heldout_sizes();
    println!(
        "70/10/20 split: {} train edges, {} val, {} test interactions",
        ds.train().n_edges(),
        v,
        t
    );
    Ok(())
}

fn layergcn_config(args: &Args) -> LayerGcnConfig {
    let ratio: f32 = args.get_parsed("dropout", 0.1f32);
    LayerGcnConfig {
        n_layers: args.get_parsed("layers", 4usize),
        lambda: args.get_parsed("lambda", 1e-3f32),
        learning_rate: args.get_parsed("lr", 1e-3f32),
        pruner: if ratio > 0.0 {
            EdgePruner::DegreeDrop { ratio }
        } else {
            EdgePruner::None
        },
        ..LayerGcnConfig::default()
    }
}

fn train_config(args: &Args) -> TrainConfig {
    TrainConfig {
        max_epochs: args.get_parsed("epochs", 60usize),
        patience: args.get_parsed("patience", 10usize),
        eval_every: 2,
        criterion_k: 20,
        seed: args.get_parsed("seed", 2023u64),
        verbose: args.has_flag("verbose"),
        restore_best: true,
        // Diagnostics are also computed whenever a JSONL sink is armed;
        // this only forces them for plain console runs.
        record_diagnostics: false,
        ..Default::default()
    }
}

fn cmd_train(args: &Args) -> CliResult {
    let ds = load_dataset(args)?;
    let mut tc = train_config(args);
    tc.checkpoint_every = args.get_parsed("checkpoint-every", 0usize);
    tc.checkpoint = args.get("checkpoint").map(std::path::PathBuf::from);
    tc.resume = args.get("resume").map(std::path::PathBuf::from);
    // --checkpoint (and --resume, which reuses its base) imply per-epoch
    // checkpointing unless --checkpoint-every overrides the cadence; a
    // resumed run keeps writing generations to the base it resumed from.
    if (tc.checkpoint.is_some() || tc.resume.is_some()) && tc.checkpoint_every == 0 {
        tc.checkpoint_every = 1;
    }
    if tc.checkpoint_every > 0 && tc.checkpoint.is_none() && tc.resume.is_none() {
        return Err(
            "--checkpoint-every needs a generation base: add --checkpoint BASE \
             (or --resume BASE)"
                .into(),
        );
    }
    let model_name = args.get("model").unwrap_or("layergcn");
    println!(
        "training {model_name} on {} users / {} items / {} interactions",
        ds.n_users(),
        ds.n_items(),
        ds.train().n_edges()
    );
    if model_name.eq_ignore_ascii_case("layergcn") {
        tc.checkpoint_tag = Some("layergcn".to_string());
        let mut rng = StdRng::seed_from_u64(tc.seed);
        let mut model = LayerGcn::new(&ds, layergcn_config(args), &mut rng);
        let out = train_with_early_stopping(&mut model, &ds, &tc);
        println!(
            "done: {} epochs, best val R@20 {:.4} at epoch {}",
            out.epochs_run, out.best_val_metric, out.best_epoch
        );
        if let Some(path) = args.get("save") {
            model
                .save(path)
                .map_err(|e| format!("saving {path}: {e}"))?;
            println!("checkpoint written to {path}");
        }
    } else {
        let kind =
            ModelKind::parse(model_name).ok_or_else(|| format!("unknown model {model_name:?}"))?;
        // `ModelKind::checkpoint_tag` is the single source of truth for
        // which families have a stable format; `save_model` produces the
        // user-facing SERVABLE_TAGS error for the rest.
        tc.checkpoint_tag = kind.checkpoint_tag().map(String::from);
        let mut rng = StdRng::seed_from_u64(tc.seed);
        let mut model = kind.build(&ds, &mut rng);
        let out = train_with_early_stopping(&mut *model, &ds, &tc);
        println!(
            "done: {} epochs, best val R@20 {:.4} at epoch {}",
            out.epochs_run, out.best_val_metric, out.best_epoch
        );
        if let Some(path) = args.get("save") {
            let tag = kind.checkpoint_tag().unwrap_or("unsupported");
            lrgcn::models::checkpoint::save_model(path, tag, &*model)
                .map_err(|e| format!("--save: {e}"))?;
            println!("checkpoint written to {path}");
        }
    }
    Ok(())
}

/// Engine options mirroring `layergcn_config`: the checkpoint carries the
/// embedding dimension, everything else comes from the flags. `--quant`
/// opts into the int8 read path and `--ann` into the IVF index (they
/// compose); `--exact` (the default) names the full exact scan explicitly,
/// so pairing it with either approximation is an error.
fn engine_options(args: &Args) -> Result<lrgcn_serve::EngineOptions, String> {
    if args.has_flag("quant") && args.has_flag("exact") {
        return Err("--quant and --exact are mutually exclusive".into());
    }
    if args.has_flag("ann") && args.has_flag("exact") {
        return Err("--ann and --exact are mutually exclusive".into());
    }
    if args.has_flag("ann") && args.has_flag("ann-standby") {
        return Err("--ann already serves from the index; drop --ann-standby".into());
    }
    let nprobe = args.get_parsed("nprobe", lrgcn_serve::IvfConfig::default().nprobe);
    if nprobe == 0 {
        return Err("--nprobe must be at least 1".into());
    }
    let ann_built = args.has_flag("ann") || args.has_flag("ann-standby");
    if !ann_built && (args.get("nprobe").is_some() || args.get("ann-cells").is_some()) {
        return Err("--nprobe/--ann-cells only make sense with --ann/--ann-standby".into());
    }
    Ok(lrgcn_serve::EngineOptions {
        n_layers: args.get_parsed("layers", 4usize),
        dropout: args.get_parsed("dropout", 0.1f32),
        seed: args.get_parsed("seed", 2023u64),
        quant: args.has_flag("quant"),
        ann: args.has_flag("ann"),
        ann_standby: args.has_flag("ann-standby"),
        nprobe,
        ann_cells: args.get_parsed("ann-cells", 0usize),
        events_dir: args.get("events-log").map(std::path::PathBuf::from),
    })
}

fn cmd_evaluate(args: &Args) -> CliResult {
    let ds = std::sync::Arc::new(load_dataset(args)?);
    let path = args.get("load").ok_or("missing --load CHECKPOINT")?;
    let engine = lrgcn_serve::Engine::open(path, ds.clone(), engine_options(args)?)?;
    let st = engine.state();
    let ks: Vec<usize> = args
        .get("ks")
        .unwrap_or("10,20,50")
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad K {s:?}")))
        .collect::<Result<_, _>>()?;
    let scorer = |u: &[u32]| st.score_users(u);
    let rep = evaluate_ranking_parallel(&ds, Split::Test, &ks, 256, &scorer);
    println!("model: {} (dim {})", st.model_name, st.dim);
    println!("test users: {}", rep.n_users);
    println!("{}", rep.summary());
    Ok(())
}

/// Parses `--exclude-seen true|false` (absent or bare flag means true).
fn exclude_seen_flag(args: &Args) -> Result<bool, String> {
    match args.get("exclude-seen") {
        None => Ok(true),
        Some("true") | Some("1") => Ok(true),
        Some("false") | Some("0") => Ok(false),
        Some(other) => Err(format!("--exclude-seen wants true or false, got {other:?}")),
    }
}

fn cmd_recommend(args: &Args) -> CliResult {
    let ds = std::sync::Arc::new(load_dataset(args)?);
    let path = args.get("load").ok_or("missing --load CHECKPOINT")?;
    let user: u32 = args
        .get("user")
        .ok_or("missing --user ID")?
        .parse()
        .map_err(|_| "bad --user id")?;
    let k: usize = args.get_parsed("k", 10usize);
    let exclude_seen = exclude_seen_flag(args)?;
    let engine = lrgcn_serve::Engine::open(path, ds.clone(), engine_options(args)?)?;
    let st = engine.state();
    let top = st.top_k(&ds, user, k, exclude_seen)?;
    println!(
        "top-{k} items for user {user} ({}, trained on {} items{}):",
        st.model_name,
        ds.train_items(user).len(),
        if exclude_seen { ", seen items masked" } else { "" }
    );
    for (rank, (item, score)) in top.iter().enumerate() {
        println!("{:>3}. item {:<8} score {score:.6}", rank + 1, item);
    }
    Ok(())
}

fn cmd_serve(args: &Args, rest: &[String]) -> CliResult {
    let ckpt = rest
        .first()
        .filter(|t| !t.starts_with("--"))
        .map(String::as_str)
        .or_else(|| args.get("load"))
        .ok_or("missing checkpoint: lrgcn serve CKPT --input FILE (or --load CKPT)")?;
    let ds = std::sync::Arc::new(load_dataset(args)?);
    let engine = std::sync::Arc::new(lrgcn_serve::Engine::open(
        ckpt,
        ds,
        engine_options(args)?,
    )?);
    let st = engine.state();
    let cfg = lrgcn_serve::ServerConfig {
        addr: format!(
            "{}:{}",
            args.get("host").unwrap_or("127.0.0.1"),
            args.get_parsed("port", 8642u16)
        ),
        workers: args.get_parsed("workers", 0usize),
        cache_capacity: args.get_parsed("cache", 4096usize),
        access_log: args.get("access-log").map(std::path::PathBuf::from),
        access_sample: args.get_parsed("access-sample", 1u64).max(1),
        slo_p99_ms: args.get("slo-p99-ms").map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("could not parse --slo-p99-ms {v}"))
        }),
        slo_err_ppm: args.get("slo-err-ppm").map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("could not parse --slo-err-ppm {v}"))
        }),
        events_log: args.get("events-log").map(std::path::PathBuf::from),
        events_max_pending: args.get_parsed("events-max-pending", 1024u64).max(1),
        max_inflight: args.get_parsed("max-inflight", 0usize),
        max_queue: args.get_parsed("max-queue", 32usize),
        deadline_default_ms: args.get_parsed("deadline-default-ms", 0u64),
        brownout: args.has_flag("brownout"),
        brownout_up_ticks: args.get_parsed("brownout-up-ticks", 3u32).max(1),
        brownout_down_ticks: args.get_parsed("brownout-down-ticks", 10u32).max(1),
        ..lrgcn_serve::ServerConfig::default()
    };
    let handle = lrgcn_serve::serve(engine, cfg)?;
    println!(
        "serving {} — {} users x {} items, dim {}, {} parameters",
        st.model_name, st.n_users, st.n_items, st.dim, st.n_parameters
    );
    if st.ann_available() {
        println!(
            "ann{}: {} IVF cells, nprobe {}, sampled recall@20 {:.4}",
            if st.ann_enabled() { "" } else { " (standby)" },
            st.ann_cells(),
            st.ann_nprobe(),
            st.ann_recall
        );
    }
    if args.get_parsed("max-inflight", 0usize) > 0 {
        println!(
            "admission control on: max {} in flight, queue {}, default deadline {}",
            args.get_parsed("max-inflight", 0usize),
            args.get_parsed("max-queue", 32usize),
            match args.get_parsed("deadline-default-ms", 0u64) {
                0 => "none".to_string(),
                ms => format!("{ms}ms"),
            }
        );
    }
    if args.has_flag("brownout") {
        println!("brownout control armed (watch /admin/obs overload.level)");
    }
    if let Some(dir) = args.get("events-log") {
        println!(
            "streaming ingestion on: POST /events appends to {dir} \
             ({} covered by the checkpoint)",
            st.covered_events
        );
    }
    println!("listening on http://{}", handle.addr());
    println!("POST /admin/shutdown to stop");
    handle.wait();
    println!("shutdown complete");
    Ok(())
}

/// Fixture helpers shared by this crate's test modules (`tests` below and
/// `retrain::tests`).
#[cfg(test)]
pub(crate) mod tests_support {
    use lrgcn::data::{loader, SyntheticConfig};

    pub(crate) fn write_fixture(dir: &std::path::Path) -> std::path::PathBuf {
        std::fs::create_dir_all(dir).expect("mkdir");
        let path = dir.join("interactions.tsv");
        let log = SyntheticConfig::games().scaled(0.1).generate(13);
        loader::save_interactions(&path, &log).expect("write tsv");
        path
    }

    pub(crate) fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tests_support::{argv, write_fixture};

    #[test]
    fn unknown_command_errors_with_usage() {
        let err = run(argv("frobnicate")).expect_err("must fail");
        assert!(err.contains("unknown command"));
        assert!(run(vec![]).is_err());
        assert!(run(argv("help")).is_ok());
    }

    #[test]
    fn stats_runs_on_fixture() {
        let dir = std::env::temp_dir().join("lrgcn_cli_stats");
        let path = write_fixture(&dir);
        run(argv(&format!("stats --input {}", path.display()))).expect("stats");
        run(argv(&format!("stats --input {} --kcore 2", path.display()))).expect("stats kcore");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn train_evaluate_recommend_roundtrip() {
        let dir = std::env::temp_dir().join("lrgcn_cli_roundtrip");
        let path = write_fixture(&dir);
        let ckpt = dir.join("model.ckpt");
        run(argv(&format!(
            "train --input {} --save {} --epochs 3 --seed 5",
            path.display(),
            ckpt.display()
        )))
        .expect("train");
        assert!(ckpt.exists());
        run(argv(&format!(
            "evaluate --input {} --load {} --ks 10,20 --seed 5",
            path.display(),
            ckpt.display()
        )))
        .expect("evaluate");
        run(argv(&format!(
            "recommend --input {} --load {} --user 0 --k 5 --seed 5",
            path.display(),
            ckpt.display()
        )))
        .expect("recommend");
        std::fs::remove_file(&ckpt).ok();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn train_other_models_and_save_support() {
        let dir = std::env::temp_dir().join("lrgcn_cli_other");
        let path = write_fixture(&dir);
        run(argv(&format!(
            "train --input {} --model lightgcn --epochs 2",
            path.display()
        )))
        .expect("train lightgcn");
        // Models without a stable checkpoint format still reject --save.
        let err = run(argv(&format!(
            "train --input {} --model bpr --epochs 1 --save /tmp/x.ckpt",
            path.display()
        )))
        .expect_err("save unsupported");
        assert!(err.contains("--save"), "{err}");
        let err2 = run(argv(&format!(
            "train --input {} --model doesnotexist",
            path.display()
        )))
        .expect_err("unknown model");
        assert!(err2.contains("unknown model"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn lightgcn_save_evaluate_recommend_roundtrip() {
        let dir = std::env::temp_dir().join("lrgcn_cli_lightgcn_ckpt");
        let path = write_fixture(&dir);
        let ckpt = dir.join("lightgcn.ckpt");
        run(argv(&format!(
            "train --input {} --model lightgcn --epochs 2 --seed 5 --save {}",
            path.display(),
            ckpt.display()
        )))
        .expect("train lightgcn with --save");
        assert!(ckpt.exists());
        // evaluate/recommend pick the model family up from the tag.
        run(argv(&format!(
            "evaluate --input {} --load {} --ks 10 --seed 5",
            path.display(),
            ckpt.display()
        )))
        .expect("evaluate lightgcn checkpoint");
        run(argv(&format!(
            "recommend --input {} --load {} --user 0 --k 5 --seed 5",
            path.display(),
            ckpt.display()
        )))
        .expect("recommend lightgcn checkpoint");
        // --exclude-seen is validated.
        run(argv(&format!(
            "recommend --input {} --load {} --user 0 --exclude-seen false",
            path.display(),
            ckpt.display()
        )))
        .expect("recommend unmasked");
        let err = run(argv(&format!(
            "recommend --input {} --load {} --user 0 --exclude-seen maybe",
            path.display(),
            ckpt.display()
        )))
        .expect_err("bad flag value");
        assert!(err.contains("exclude-seen"), "{err}");
        std::fs::remove_file(&ckpt).ok();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn lrgccf_save_evaluate_roundtrip() {
        let dir = std::env::temp_dir().join("lrgcn_cli_lrgccf_ckpt");
        let path = write_fixture(&dir);
        let ckpt = dir.join("lrgccf.ckpt");
        run(argv(&format!(
            "train --input {} --model lrgccf --epochs 2 --seed 5 --save {}",
            path.display(),
            ckpt.display()
        )))
        .expect("train lrgccf with --save");
        assert!(ckpt.exists());
        let entries = lrgcn::tensor::io::load_checkpoint(&ckpt).expect("load");
        assert_eq!(lrgcn::models::model_tag(&entries), Some("lrgccf"));
        run(argv(&format!(
            "evaluate --input {} --load {} --ks 10 --seed 5 --layers 3",
            path.display(),
            ckpt.display()
        )))
        .expect("evaluate lrgccf checkpoint");
        std::fs::remove_file(&ckpt).ok();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn checkpoint_and_resume_flags_roundtrip() {
        let dir = std::env::temp_dir().join("lrgcn_cli_ckpt_resume");
        std::fs::remove_dir_all(&dir).ok();
        let path = write_fixture(&dir);
        let base = dir.join("train.ckpt");
        run(argv(&format!(
            "train --input {} --epochs 4 --seed 5 --checkpoint {} --checkpoint-every 2",
            path.display(),
            base.display()
        )))
        .expect("train with checkpointing");
        let gens = lrgcn::train::resume::list_generations(&base);
        assert!(!gens.is_empty(), "no generations written");
        assert!(gens.len() <= 2, "pruning keeps at most two generations");
        // A generation doubles as a servable model checkpoint.
        run(argv(&format!(
            "evaluate --input {} --load {} --ks 10 --seed 5",
            path.display(),
            gens[0].1.display()
        )))
        .expect("evaluate a training-state generation");
        // Resume continues past the checkpointed epoch.
        run(argv(&format!(
            "train --input {} --epochs 6 --seed 5 --resume {}",
            path.display(),
            base.display()
        )))
        .expect("resume");
        let after = lrgcn::train::resume::list_generations(&base);
        assert!(
            after[0].0 > gens[0].0,
            "resume did not advance the newest generation ({} -> {})",
            gens[0].0,
            after[0].0
        );
        // --checkpoint-every without any base path is a user error.
        let err = run(argv(&format!(
            "train --input {} --epochs 1 --checkpoint-every 2",
            path.display()
        )))
        .expect_err("missing base");
        assert!(err.contains("--checkpoint"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recommend_validates_user_range() {
        let dir = std::env::temp_dir().join("lrgcn_cli_range");
        let path = write_fixture(&dir);
        let ckpt = dir.join("m.ckpt");
        run(argv(&format!(
            "train --input {} --save {} --epochs 1",
            path.display(),
            ckpt.display()
        )))
        .expect("train");
        let err = run(argv(&format!(
            "recommend --input {} --load {} --user 999999",
            path.display(),
            ckpt.display()
        )))
        .expect_err("out of range");
        assert!(err.contains("out of range"));
        std::fs::remove_file(&ckpt).ok();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn log_json_produces_parseable_epoch_records() {
        use lrgcn::obs::{json, sink};
        let dir = std::env::temp_dir().join("lrgcn_cli_logjson");
        let path = write_fixture(&dir);
        let log_path = dir.join("run.jsonl");
        std::fs::remove_file(&log_path).ok();
        run(argv(&format!(
            "train --input {} --epochs 3 --seed 5 --log-json {}",
            path.display(),
            log_path.display()
        )))
        .expect("train with --log-json");
        // Other tests in this process may train concurrently while the
        // global sink is installed; uninstall before reading so the file is
        // complete and flushed.
        sink::uninstall();

        let text = std::fs::read_to_string(&log_path).expect("log file written");
        let mut epochs = 0;
        let mut diags = 0;
        let mut saw_start = false;
        let mut saw_summary = false;
        for line in text.lines() {
            let v = json::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
            match v.get("event").and_then(|e| e.as_str()) {
                Some("run_start") => saw_start = true,
                Some("run_summary") => saw_summary = true,
                Some("diag") => {
                    diags += 1;
                    let model = v.get("model").and_then(|m| m.as_str()).expect("model name");
                    assert!(model.starts_with("LayerGCN"), "unexpected model {model:?}");
                    for key in ["smoothness", "embedding_l2", "grad_norm", "layer_weights"] {
                        assert!(v.get(key).is_some(), "diag record missing {key}: {line}");
                    }
                }
                Some("epoch") => {
                    epochs += 1;
                    assert!(v.get("loss").and_then(|l| l.as_f64()).is_some());
                    let t = v.get("timings_s").expect("timings");
                    assert!(t.get("train").and_then(|x| x.as_f64()).unwrap() >= 0.0);
                    let c = v.get("counters").expect("counters");
                    assert!(
                        c.get("tensor.spmm.calls").and_then(|x| x.as_f64()).unwrap() > 0.0,
                        "layergcn epoch must run SpMM kernels"
                    );
                    assert!(v.get("threads").and_then(|x| x.as_f64()).unwrap() >= 1.0);
                    assert!(v.get("matrix_bytes_peak").and_then(|x| x.as_f64()).unwrap() > 0.0);
                }
                other => panic!("unknown event {other:?} in {line:?}"),
            }
        }
        assert!(saw_start && saw_summary, "missing run_start/run_summary");
        assert!(epochs >= 3, "expected >= 3 epoch records, got {epochs}");
        assert!(diags >= 1, "expected diag records for validated epochs");
        std::fs::remove_file(&log_path).ok();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_input_is_a_clear_error() {
        let err = run(argv("stats")).expect_err("must fail");
        assert!(err.contains("--input"));
        let err2 = run(argv("evaluate --input /nonexistent/file.tsv --load x")).expect_err("fail");
        assert!(err2.contains("loading"));
    }
}
