//! `lrgcn retrain` — the incremental half of the closed streaming loop
//! (DESIGN.md §13).
//!
//! ```text
//! lrgcn retrain --input FILE --checkpoint BASE --follow DIR
//!               [--epochs N] [--min-new N] [--rounds N --interval-ms MS]
//!               [--publish CKPT] [--reload http://HOST:PORT]
//! ```
//!
//! One round folds the crash-safe event log under `--follow DIR` (written
//! by `serve --events-log DIR`) into the training matrices, warm-starts
//! LayerGCN from the newest `--checkpoint BASE` generation, trains a few
//! epochs (`--epochs`, default 3) and emits a **new** generation stamped
//! with the covered-event count (`lrgcn_stream::COVERED_ENTRY`), so a
//! serving engine that reloads it replays only the uncovered log suffix as
//! fold-in deltas. The generation number advances past the previous one —
//! `list_generations` ordering and the keep-2 pruning both keep working.
//!
//! `--publish CKPT` atomically copies the fresh generation over the file a
//! running server was opened with (tmp + fsync + rename — the server never
//! observes a torn checkpoint), and `--reload URL` then POSTs
//! `/admin/reload` so the swap happens with zero dropped requests. With
//! `--rounds 0` the command follows the log forever, sleeping
//! `--interval-ms` (default 1000) between rounds; the default is one round.
//!
//! Warm start copies the previous generation's user rows into the (index
//! shifted) extended universe and keeps the fresh initialization for
//! users/items first seen in the stream — see
//! [`lrgcn::models::LayerGcn::warm_start_from`].

use crate::CliResult;
use lrgcn::data::Dataset;
use lrgcn::models::{LayerGcn, Recommender};
use lrgcn::train::resume::{load_latest_valid, save_generation_with_extras, TrainState};
use lrgcn::train::train_with_early_stopping;
use lrgcn_bench::Args;
use lrgcn_stream::{pack_covered, unpack_covered, EventLog, COVERED_ENTRY};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

pub fn cmd_retrain(args: &Args) -> CliResult {
    let base_ds = crate::load_dataset(args)?;
    let ckpt_base = PathBuf::from(
        args.get("checkpoint")
            .ok_or("missing --checkpoint BASE (the generation base written by `train --checkpoint`)")?,
    );
    let log_dir = PathBuf::from(
        args.get("follow")
            .ok_or("missing --follow DIR (the directory passed to `serve --events-log`)")?,
    );
    let epochs: usize = args.get_parsed("epochs", 3usize).max(1);
    let min_new: u64 = args.get_parsed("min-new", 1u64).max(1);
    // 0 = follow forever; the default is a single one-shot round.
    let rounds: usize = args.get_parsed("rounds", 1usize);
    let interval = Duration::from_millis(args.get_parsed("interval-ms", 1000u64));
    let publish = args.get("publish").map(PathBuf::from);
    let reload_url = args.get("reload").map(String::from);

    let mut round = 0usize;
    loop {
        round += 1;
        match retrain_round(args, &base_ds, &ckpt_base, &log_dir, epochs, min_new)? {
            Some(gen_path) => {
                if let Some(dst) = &publish {
                    publish_checkpoint(&gen_path, dst)?;
                    println!("published {} -> {}", gen_path.display(), dst.display());
                }
                if let Some(url) = &reload_url {
                    println!("reload {url}: {}", trigger_reload(url)?);
                }
            }
            None => println!(
                "round {round}: event log fully covered (< {min_new} new) — nothing to retrain"
            ),
        }
        if rounds != 0 && round >= rounds {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

/// One fold-in + warm-start-train + emit cycle. `Ok(None)` when the log
/// holds fewer than `min_new` events past the newest generation's covered
/// prefix.
fn retrain_round(
    args: &Args,
    base_ds: &Dataset,
    base: &Path,
    log_dir: &Path,
    epochs: usize,
    min_new: u64,
) -> Result<Option<PathBuf>, String> {
    let events = EventLog::replay(log_dir)?;
    let total = events.len() as u64;
    let (prev_path, entries, prev_state) = load_latest_valid(base)?.ok_or_else(|| {
        format!(
            "{}: no checkpoint generation found — run `lrgcn train --checkpoint {}` first",
            base.display(),
            base.display()
        )
    })?;
    match lrgcn::models::model_tag(&entries) {
        Some("layergcn") | None => {}
        Some(other) => {
            return Err(format!(
                "retrain only supports layergcn generations, {} is tagged {other:?}",
                prev_path.display()
            ))
        }
    }
    // A generation from the future of a truncated/reset log covers at most
    // what the log actually holds.
    let prev_covered = unpack_covered(&entries).min(total);
    if total.saturating_sub(prev_covered) < min_new {
        return Ok(None);
    }

    // The universe the previous generation was fit on: base + its covered
    // prefix, replayed in log order (the same rule the serving engine
    // applies, so the row layout matches the checkpoint exactly).
    let pairs: Vec<(u32, u32)> = events.iter().map(|e| (e.user, e.item)).collect();
    let prev_ds = base_ds.extend_with_events(&pairs[..prev_covered as usize]);
    let prev_ego = entries
        .iter()
        .find(|(n, _)| n == "ego")
        .map(|(_, m)| m.clone())
        .ok_or("checkpoint generation has no 'ego' embedding table")?;
    if prev_ego.rows() != prev_ds.n_users() + prev_ds.n_items() {
        return Err(format!(
            "{}: ego has {} rows but its universe (base + {} covered events) \
             wants {} — was the log or --input changed since it was written?",
            prev_path.display(),
            prev_ego.rows(),
            prev_covered,
            prev_ds.n_users() + prev_ds.n_items()
        ));
    }

    let extended = base_ds.extend_with_events(&pairs);
    println!(
        "retraining on {} users x {} items ({} log events, {} new since {}), {epochs} epochs",
        extended.n_users(),
        extended.n_items(),
        total,
        total - prev_covered,
        prev_path.display()
    );
    let mut tc = crate::train_config(args);
    tc.max_epochs = epochs;
    tc.patience = epochs; // a few warm-start epochs never early-stop
    tc.checkpoint_tag = Some("layergcn".to_string());
    let mut rng = StdRng::seed_from_u64(tc.seed);
    let mut model = LayerGcn::new(&extended, crate::layergcn_config(args), &mut rng);
    model.warm_start_from(&prev_ego, prev_ds.n_users(), extended.n_users());
    let out = train_with_early_stopping(&mut model, &extended, &tc);
    println!(
        "done: {} epochs, best val R@20 {:.4} at epoch {}",
        out.epochs_run, out.best_val_metric, out.best_epoch
    );

    // The generation number must advance past the previous one so
    // `list_generations` (and the next retrain round) picks the new file.
    let state = TrainState {
        epoch_next: prev_state.epoch_next + out.epochs_run.max(1),
        strikes: 0,
        best: Some((out.best_epoch, out.best_val_metric)),
        best_params: None,
        rng_state: rng.state(),
        optim: model
            .optim_state()
            .ok_or("layergcn lost its optimizer state")?,
        history: out.history,
        recoveries: 0,
    };
    let path = save_generation_with_extras(
        base,
        Some("layergcn"),
        &model,
        &state,
        &[(COVERED_ENTRY.to_string(), pack_covered(total))],
    )?;
    println!("generation written to {} (covers {total} events)", path.display());
    Ok(Some(path))
}

/// Atomically replaces `dst` with a byte-for-byte copy of the generation:
/// write to a sibling tmp file, fsync, rename. A serving engine re-reading
/// `dst` mid-publish sees either the old or the new checkpoint, never a
/// torn one.
fn publish_checkpoint(src: &Path, dst: &Path) -> Result<(), String> {
    let bytes = std::fs::read(src).map_err(|e| format!("reading {}: {e}", src.display()))?;
    let tmp = dst.with_extension("publish.tmp");
    {
        let mut f =
            std::fs::File::create(&tmp).map_err(|e| format!("creating {}: {e}", tmp.display()))?;
        f.write_all(&bytes)
            .and_then(|()| f.sync_all())
            .map_err(|e| format!("writing {}: {e}", tmp.display()))?;
    }
    std::fs::rename(&tmp, dst).map_err(|e| format!("renaming over {}: {e}", dst.display()))
}

/// POSTs `/admin/reload` to a running server; returns its response body.
fn trigger_reload(url: &str) -> Result<String, String> {
    let (host, port) = crate::top::parse_url(url)?;
    let mut stream = TcpStream::connect((host.as_str(), port))
        .map_err(|e| format!("connect {host}:{port}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!(
                "POST /admin/reload HTTP/1.1\r\nHost: {host}\r\n\
                 Content-Length: 0\r\nConnection: close\r\n\r\n"
            )
            .as_bytes(),
        )
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or("malformed HTTP response")?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("malformed status line")?;
    if status != 200 {
        return Err(format!("/admin/reload returned {status}: {body}"));
    }
    Ok(body.trim().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::{argv, write_fixture};
    use lrgcn_stream::StreamEvent;

    /// The full offline half of the loop: train a base generation, append
    /// events for unseen users to a log, retrain, and check the emitted
    /// generation covers them and serves the new users.
    #[test]
    fn retrain_folds_the_log_and_advances_the_generation() {
        let dir = std::env::temp_dir().join("lrgcn_cli_retrain");
        std::fs::remove_dir_all(&dir).ok();
        let input = write_fixture(&dir);
        let base = dir.join("gen.ckpt");
        crate::run(argv(&format!(
            "train --input {} --epochs 2 --seed 5 --checkpoint {}",
            input.display(),
            base.display()
        )))
        .expect("seed train");
        let gens = lrgcn::train::resume::list_generations(&base);
        let first_gen = gens[0].0;

        // No log at all: a round is a covered no-op, not an error.
        let log_dir = dir.join("events");
        crate::run(argv(&format!(
            "retrain --input {} --checkpoint {} --follow {} --epochs 1 --seed 5",
            input.display(),
            base.display(),
            log_dir.display()
        )))
        .expect("covered no-op round");
        assert_eq!(
            lrgcn::train::resume::list_generations(&base)[0].0,
            first_gen,
            "a no-op round must not write a generation"
        );

        // Events for one unseen user (id past the fixture's universe).
        let ds = crate::load_dataset(&Args::from_tokens(argv(&format!(
            "--input {}",
            input.display()
        ))))
        .expect("dataset");
        let new_user = ds.n_users() as u32;
        let mut log = EventLog::open(&log_dir).expect("open log");
        let events: Vec<StreamEvent> = (0..4)
            .map(|i| StreamEvent {
                user: new_user,
                item: i,
                timestamp: 1_700_000_000 + i as i64,
                client: "t".into(),
                seq: i as u64 + 1,
                request_id: String::new(),
            })
            .collect();
        log.append_batch(&events).expect("append");
        drop(log);

        let publish = dir.join("live.ckpt");
        crate::run(argv(&format!(
            "retrain --input {} --checkpoint {} --follow {} --epochs 1 --seed 5 --publish {}",
            input.display(),
            base.display(),
            log_dir.display(),
            publish.display()
        )))
        .expect("retrain");
        let after = lrgcn::train::resume::list_generations(&base);
        assert!(
            after[0].0 > first_gen,
            "retrain must advance the generation ({} -> {})",
            first_gen,
            after[0].0
        );
        let entries = lrgcn::tensor::io::load_checkpoint(&after[0].1).expect("load gen");
        assert_eq!(unpack_covered(&entries), 4, "covered marker missing");
        // The published copy is byte-identical to the generation.
        assert_eq!(
            std::fs::read(&after[0].1).expect("gen bytes"),
            std::fs::read(&publish).expect("published bytes")
        );
        // And the retrained checkpoint genuinely serves the streamed user:
        // its covered prefix extends the dataset, so /recs needs no delta.
        let engine = lrgcn_serve::Engine::open(
            &publish,
            std::sync::Arc::new(ds),
            lrgcn_serve::EngineOptions {
                events_dir: Some(log_dir.clone()),
                ..Default::default()
            },
        )
        .expect("open retrained");
        let st = engine.state();
        assert_eq!(st.covered_events, 4);
        let mut scratch = lrgcn_serve::Scratch::default();
        let top = st
            .top_k_stream(&st.delta(), new_user, 3, true, &mut scratch)
            .expect("recs for streamed user");
        assert_eq!(top.len(), 3);
        assert!(top.iter().all(|(_, s)| s.is_finite()));
        std::fs::remove_dir_all(&dir).ok();
    }
}
