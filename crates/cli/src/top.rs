//! `lrgcn top URL` — a polling terminal dashboard over a running server's
//! `GET /admin/obs` windowed snapshot (DESIGN.md §12).
//!
//! One frame shows live RPS with a sparkline over the recent polls,
//! windowed latency quantiles per route, cache/ANN/quant counters, SLO
//! burn rates and generation/reload status. `--once` renders a single
//! frame and exits (scriptable, used by verify.sh); otherwise the screen
//! refreshes every `--interval` seconds until interrupted.
//!
//! The HTTP client is the same zero-dependency `std::net` style as the
//! server: one `Connection: close` GET per poll.

use crate::report::{fmt_ns, fmt_si, sparkline};
use crate::CliResult;
use lrgcn::obs::json::{self, Value};
use lrgcn_bench::Args;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// How many polls of RPS history back the sparkline.
const HISTORY: usize = 48;

pub fn cmd_top(tokens: &[String]) -> CliResult {
    let args = Args::from_tokens(tokens.to_vec());
    let url = tokens
        .first()
        .filter(|t| !t.starts_with("--"))
        .map(String::as_str)
        .ok_or("usage: lrgcn top URL [--interval SECS] [--once]")?;
    let (host, port) = parse_url(url)?;
    let interval = args.get_parsed("interval", 2.0f64).max(0.1);
    let once = args.has_flag("once");

    let mut history: Vec<f64> = Vec::new();
    let mut ev_history: Vec<f64> = Vec::new();
    let mut last_accepted: Option<f64> = None;
    loop {
        match poll(&host, port) {
            Ok(obs) => {
                let rps = obs
                    .get("windows")
                    .and_then(|w| w.get("10s"))
                    .and_then(|w| w.get("rps"))
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0);
                history.push(rps);
                if history.len() > HISTORY {
                    let drop = history.len() - HISTORY;
                    history.drain(..drop);
                }
                // Ingestion rate between polls: the accepted counter is
                // cumulative, so the first poll only seeds the baseline.
                let accepted = get_f64(&obs, &["events", "accepted"]);
                if let Some(prev) = last_accepted {
                    ev_history.push(((accepted - prev) / interval).max(0.0));
                    if ev_history.len() > HISTORY {
                        let drop = ev_history.len() - HISTORY;
                        ev_history.drain(..drop);
                    }
                }
                last_accepted = Some(accepted);
                let frame = render_frame(url, &obs, &history, &ev_history);
                if once {
                    print!("{frame}");
                    return Ok(());
                }
                // Clear + home, then the frame: a flicker-free-enough live view.
                print!("\x1b[2J\x1b[H{frame}");
                let _ = std::io::stdout().flush();
            }
            Err(e) if once => return Err(format!("{url}: {e}")),
            Err(e) => {
                println!("\x1b[2J\x1b[H{url}: {e} (retrying)");
                let _ = std::io::stdout().flush();
            }
        }
        std::thread::sleep(Duration::from_secs_f64(interval));
    }
}

/// Accepts `http://host:port[/...]` or bare `host:port`.
pub(crate) fn parse_url(url: &str) -> Result<(String, u16), String> {
    let rest = url.strip_prefix("http://").unwrap_or(url);
    if rest.starts_with("https://") || url.starts_with("https://") {
        return Err("https is not supported; use http://host:port".into());
    }
    let authority = rest.split('/').next().unwrap_or("");
    let (host, port) = authority
        .rsplit_once(':')
        .ok_or_else(|| format!("{url:?}: expected http://host:port"))?;
    let port: u16 = port
        .parse()
        .map_err(|_| format!("{url:?}: bad port {port:?}"))?;
    if host.is_empty() {
        return Err(format!("{url:?}: empty host"));
    }
    Ok((host.to_string(), port))
}

/// One `GET /admin/obs` poll, parsed.
fn poll(host: &str, port: u16) -> Result<Value, String> {
    let body = http_get(host, port, "/admin/obs")?;
    json::parse(&body).map_err(|e| format!("bad /admin/obs JSON: {e}"))
}

/// Minimal HTTP/1.1 GET returning the response body on a 200.
fn http_get(host: &str, port: u16, path: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect((host, port)).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or("malformed HTTP response")?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("malformed status line")?;
    if status != 200 {
        return Err(format!("{path} returned {status}"));
    }
    Ok(body.to_string())
}

fn get_f64(v: &Value, path: &[&str]) -> f64 {
    let mut cur = v;
    for key in path {
        match cur.get(key) {
            Some(next) => cur = next,
            None => return 0.0,
        }
    }
    cur.as_f64().unwrap_or(0.0)
}

fn get_str<'v>(v: &'v Value, path: &[&str]) -> &'v str {
    let mut cur = v;
    for key in path {
        match cur.get(key) {
            Some(next) => cur = next,
            None => return "?",
        }
    }
    cur.as_str().unwrap_or("?")
}

/// Renders one dashboard frame from an `/admin/obs` snapshot. Pure —
/// exercised directly by the unit tests. `ev_history` holds the measured
/// events/sec between recent polls (empty before the second poll).
fn render_frame(url: &str, obs: &Value, rps_history: &[f64], ev_history: &[f64]) -> String {
    let mut out = String::new();
    let pct = |x: f64| format!("{:.2}%", x * 100.0);

    let _ = writeln!(
        out,
        "lrgcn top — {url} — {} gen {} — read path {} — up {}s — reloads {}",
        get_str(obs, &["model"]),
        get_f64(obs, &["generation"]) as u64,
        get_str(obs, &["read_path"]),
        get_f64(obs, &["uptime_s"]) as u64,
        get_f64(obs, &["reloads"]) as u64,
    );
    let _ = writeln!(
        out,
        "rps 10s/60s/300s: {} / {} / {}   err 60s {}   [{}]",
        fmt_si(get_f64(obs, &["windows", "10s", "rps"])),
        fmt_si(get_f64(obs, &["windows", "60s", "rps"])),
        fmt_si(get_f64(obs, &["windows", "300s", "rps"])),
        pct(get_f64(obs, &["windows", "60s", "error_ratio"])),
        sparkline(rps_history),
    );
    let _ = writeln!(
        out,
        "latency 10s p50/p95/p99: {} / {} / {}",
        fmt_ns(get_f64(obs, &["windows", "10s", "p50_ms"]) * 1e6),
        fmt_ns(get_f64(obs, &["windows", "10s", "p95_ms"]) * 1e6),
        fmt_ns(get_f64(obs, &["windows", "10s", "p99_ms"]) * 1e6),
    );

    let (hits, misses) = (
        get_f64(obs, &["cache", "hits"]),
        get_f64(obs, &["cache", "misses"]),
    );
    let mut line = format!(
        "cache hit {} ({} hits / {} misses)",
        pct(get_f64(obs, &["cache", "hit_ratio"])),
        fmt_si(hits),
        fmt_si(misses),
    );
    let ann_recall = get_f64(obs, &["ann", "recall_ppm"]);
    if ann_recall > 0.0 {
        let _ = write!(
            line,
            "   ann recall {} cells {} cand {}",
            pct(ann_recall / 1e6),
            fmt_si(get_f64(obs, &["ann", "cells_probed"])),
            fmt_si(get_f64(obs, &["ann", "candidates"])),
        );
    }
    let quant_recall = get_f64(obs, &["quant", "recall_ppm"]);
    if quant_recall > 0.0 {
        let _ = write!(
            line,
            "   quant recall {} scans {}",
            pct(quant_recall / 1e6),
            fmt_si(get_f64(obs, &["quant", "scans"])),
        );
    }
    let _ = writeln!(out, "{line}");

    // Streaming ingestion health, only when the server runs an event log.
    if let Some(Value::Bool(true)) = obs.get("events").and_then(|e| e.get("enabled")) {
        let ev_rate = ev_history.last().copied().unwrap_or(0.0);
        let mut line = format!(
            "events {}/s  acked {}  dup {}  rej {}  fold-ins {}  log lag {}",
            fmt_si(ev_rate),
            fmt_si(get_f64(obs, &["events", "accepted"])),
            fmt_si(get_f64(obs, &["events", "duplicates"])),
            fmt_si(get_f64(obs, &["events", "rejected"])),
            fmt_si(get_f64(obs, &["events", "fold_ins"])),
            fmt_si(get_f64(obs, &["events", "log_lag"])),
        );
        match obs.get("events").and_then(|e| e.get("last_fold_in_age_ms")) {
            Some(Value::Num(ms)) => {
                let _ = write!(line, "  last fold-in {:.1}s ago", ms / 1e3);
            }
            _ => line.push_str("  no fold-in yet"),
        }
        if !ev_history.is_empty() {
            let _ = write!(line, "  [{}]", sparkline(ev_history));
        }
        let _ = writeln!(out, "{line}");
    }

    // Overload control (DESIGN.md §14), only when the admission gate or
    // the brownout controller is armed. Shed/deadline rates come from the
    // 10s rolling window, not the cumulative counters.
    let gate_on = matches!(
        obs.get("overload").and_then(|o| o.get("admission")),
        Some(Value::Bool(true))
    );
    let brownout_on = matches!(
        obs.get("overload").and_then(|o| o.get("brownout")),
        Some(Value::Bool(true))
    );
    if gate_on || brownout_on {
        let level = get_f64(obs, &["overload", "level"]) as u64;
        let mut line = if brownout_on {
            format!(
                "overload L{level}{}",
                if level > 0 { " (degraded)" } else { "" }
            )
        } else {
            String::from("overload")
        };
        if gate_on {
            let _ = write!(
                line,
                "  inflight {}/{}  queued {}",
                fmt_si(get_f64(obs, &["overload", "inflight"])),
                fmt_si(get_f64(obs, &["overload", "max_inflight"])),
                fmt_si(get_f64(obs, &["overload", "queued"])),
            );
        }
        let _ = write!(
            line,
            "  shed {}/s  deadline {}/s",
            fmt_si(get_f64(obs, &["windows", "10s", "sheds"]) / 10.0),
            fmt_si(get_f64(obs, &["windows", "10s", "deadline_exceeded"]) / 10.0),
        );
        let stale = get_f64(obs, &["overload", "stale_hits"]);
        if stale > 0.0 {
            let _ = write!(line, "  stale {}", fmt_si(stale));
        }
        if brownout_on {
            let _ = write!(
                line,
                "  steps {}↑/{}↓",
                fmt_si(get_f64(obs, &["overload", "step_ups"])),
                fmt_si(get_f64(obs, &["overload", "step_downs"])),
            );
        }
        let _ = writeln!(out, "{line}");
    }

    // SLO section only when the server has targets configured.
    let slo = obs.get("slo");
    let has_lat = slo.and_then(|s| s.get("p99_ms")).and_then(Value::as_f64);
    let has_err = slo.and_then(|s| s.get("err_ppm")).and_then(Value::as_f64);
    if has_lat.is_some() || has_err.is_some() {
        let mut line = String::from("slo");
        if let Some(ms) = has_lat {
            let _ = write!(
                line,
                "  p99<{ms}ms burn 10s/60s: {:.2} / {:.2}",
                get_f64(obs, &["slo", "burn_latency_10s"]),
                get_f64(obs, &["slo", "burn_latency_60s"]),
            );
        }
        if let Some(ppm) = has_err {
            let _ = write!(
                line,
                "  err<{ppm}ppm burn 10s/60s: {:.2} / {:.2}",
                get_f64(obs, &["slo", "burn_err_10s"]),
                get_f64(obs, &["slo", "burn_err_60s"]),
            );
        }
        let _ = writeln!(out, "{line}");
    }

    // Per-route table over the 60s window, busiest first.
    let _ = writeln!(
        out,
        "{:<16} {:>9} {:>8} {:>9} {:>9} {:>9}",
        "route (60s)", "requests", "rps", "p50", "p95", "p99"
    );
    let mut routes: Vec<(String, f64, f64, f64, f64)> = Vec::new();
    if let Some(Value::Obj(m)) = obs.get("windows").and_then(|w| w.get("60s")) {
        if let Some(Value::Obj(rm)) = m.get("routes") {
            for (name, r) in rm {
                routes.push((
                    name.clone(),
                    get_f64(r, &["requests"]),
                    get_f64(r, &["p50_ms"]),
                    get_f64(r, &["p95_ms"]),
                    get_f64(r, &["p99_ms"]),
                ));
            }
        }
    }
    routes.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (name, req, p50, p95, p99) in &routes {
        let _ = writeln!(
            out,
            "{name:<16} {:>9} {:>8} {:>9} {:>9} {:>9}",
            fmt_si(*req),
            fmt_si(req / 60.0),
            fmt_ns(p50 * 1e6),
            fmt_ns(p95 * 1e6),
            fmt_ns(p99 * 1e6),
        );
    }
    if routes.is_empty() {
        let _ = writeln!(out, "(no requests in the last 60s)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_parsing_accepts_http_and_bare_authorities() {
        assert_eq!(
            parse_url("http://127.0.0.1:8642").unwrap(),
            ("127.0.0.1".to_string(), 8642)
        );
        assert_eq!(
            parse_url("http://localhost:80/admin/obs").unwrap(),
            ("localhost".to_string(), 80)
        );
        assert_eq!(
            parse_url("10.0.0.2:9999").unwrap(),
            ("10.0.0.2".to_string(), 9999)
        );
        assert!(parse_url("http://nohost").is_err());
        assert!(parse_url("http://h:notaport").is_err());
        assert!(parse_url("https://h:1").is_err());
    }

    #[test]
    fn frame_renders_routes_quantiles_and_slo_from_a_snapshot() {
        let snapshot = r#"{
            "uptime_s": 12, "model": "layergcn", "generation": 3,
            "read_path": "ann", "reloads": 1,
            "cache": {"hits": 80, "misses": 20, "hit_ratio": 0.8},
            "ann": {"cells_probed": 64, "candidates": 900, "recall_ppm": 986000},
            "quant": {"scans": 0, "rescored": 0, "recall_ppm": 0},
            "slo": {"p99_ms": 50, "err_ppm": 1000,
                    "burn_latency_10s": 0.5, "burn_latency_60s": 0.25,
                    "burn_err_10s": 2.0, "burn_err_60s": 1.0},
            "windows": {
              "10s": {"rps": 42.5, "error_ratio": 0.01,
                      "p50_ms": 1.2, "p95_ms": 4.5, "p99_ms": 9.0},
              "60s": {"rps": 40.0, "error_ratio": 0.005,
                      "p50_ms": 1.1, "p95_ms": 4.0, "p99_ms": 8.0,
                      "routes": {
                        "recs": {"requests": 1200, "p50_ms": 1.0, "p95_ms": 4.0, "p99_ms": 8.0},
                        "score": {"requests": 60, "p50_ms": 0.5, "p95_ms": 1.0, "p99_ms": 2.0}}},
              "300s": {"rps": 10.0, "error_ratio": 0.0,
                       "p50_ms": 1.0, "p95_ms": 3.0, "p99_ms": 6.0}
            }
        }"#;
        let obs = json::parse(snapshot).unwrap();
        let frame = render_frame("http://127.0.0.1:1", &obs, &[10.0, 20.0, 42.5], &[]);
        assert!(frame.contains("layergcn gen 3"));
        // No "events" object in the snapshot: the ingestion line is absent.
        assert!(!frame.contains("fold-ins"));
        assert!(frame.contains("read path ann"));
        assert!(frame.contains("recs"));
        assert!(frame.contains("score"));
        assert!(frame.contains("cache hit 80.00%"));
        assert!(frame.contains("ann recall 98.60%"));
        assert!(frame.contains("p99<50ms"));
        // No "overload" object in the snapshot: the degradation line is
        // absent (servers without the gate or brownout stay uncluttered).
        assert!(!frame.contains("overload"));
        assert!(frame.contains("burn 10s/60s: 0.50 / 0.25"));
        // Busiest route sorts first.
        let recs_at = frame.find("recs").unwrap();
        let score_at = frame.find("score").unwrap();
        assert!(recs_at < score_at);
        // Sparkline rendered something for the history.
        assert!(frame.contains('█') || frame.contains('▁'));
    }

    #[test]
    fn empty_snapshot_renders_without_panicking() {
        let obs = json::parse("{}").unwrap();
        let frame = render_frame("http://h:1", &obs, &[], &[]);
        assert!(frame.contains("no requests in the last 60s"));
    }

    #[test]
    fn overload_line_renders_gate_and_degradation_state() {
        let snapshot = r#"{
            "model": "layergcn", "generation": 1,
            "overload": {"admission": true, "max_inflight": 64,
                         "inflight": 61, "queued": 7,
                         "brownout": true, "level": 2,
                         "step_ups": 4, "step_downs": 2,
                         "sheds": 900, "deadline_exceeded": 30,
                         "stale_hits": 12},
            "windows": {"10s": {"rps": 100.0, "sheds": 250,
                                "deadline_exceeded": 10}}
        }"#;
        let obs = json::parse(snapshot).unwrap();
        let frame = render_frame("http://h:1", &obs, &[], &[]);
        assert!(frame.contains("overload L2 (degraded)"), "{frame}");
        assert!(frame.contains("inflight 61/64"), "{frame}");
        assert!(frame.contains("queued 7"), "{frame}");
        assert!(frame.contains("shed 25/s"), "{frame}");
        assert!(frame.contains("deadline 1/s"), "{frame}");
        assert!(frame.contains("stale 12"), "{frame}");
        assert!(frame.contains("steps 4↑/2↓"), "{frame}");

        // Gate without brownout: no level, still shed visibility.
        let gate_only = r#"{
            "overload": {"admission": true, "max_inflight": 8, "inflight": 2,
                         "queued": 0, "brownout": false, "level": 0,
                         "step_ups": 0, "step_downs": 0,
                         "sheds": 0, "deadline_exceeded": 0, "stale_hits": 0},
            "windows": {"10s": {"sheds": 0, "deadline_exceeded": 0}}
        }"#;
        let frame2 = render_frame("http://h:1", &json::parse(gate_only).unwrap(), &[], &[]);
        assert!(frame2.contains("overload  inflight 2/8"), "{frame2}");
        assert!(!frame2.contains("degraded"), "{frame2}");
        assert!(!frame2.contains("steps"), "{frame2}");

        // Healthy brownout server: level 0, no "(degraded)" tag.
        let healthy = r#"{
            "overload": {"admission": false, "max_inflight": 0, "inflight": 0,
                         "queued": 0, "brownout": true, "level": 0,
                         "step_ups": 0, "step_downs": 0,
                         "sheds": 0, "deadline_exceeded": 0, "stale_hits": 0}
        }"#;
        let frame3 = render_frame("http://h:1", &json::parse(healthy).unwrap(), &[], &[]);
        assert!(frame3.contains("overload L0"), "{frame3}");
        assert!(!frame3.contains("degraded"), "{frame3}");
    }

    #[test]
    fn events_health_line_renders_when_ingestion_is_on() {
        let snapshot = r#"{
            "model": "layergcn", "generation": 1,
            "events": {"enabled": true, "accepted": 1200, "duplicates": 3,
                       "rejected": 1, "fold_ins": 40, "log_lag": 200,
                       "total_events": 1200, "covered_events": 1000,
                       "last_fold_in_age_ms": 2500, "fold_in_p95_ns": 120000}
        }"#;
        let obs = json::parse(snapshot).unwrap();
        let frame = render_frame("http://h:1", &obs, &[], &[5.0, 80.0, 20.0]);
        assert!(frame.contains("events 20/s"), "{frame}");
        assert!(frame.contains("acked 1.2k"));
        assert!(frame.contains("log lag 200"));
        assert!(frame.contains("fold-ins 40"));
        assert!(frame.contains("last fold-in 2.5s ago"));
        assert!(frame.contains('█') || frame.contains('▁'));
        // Never folded: the age shows as a placeholder instead.
        let never = r#"{"events": {"enabled": true, "accepted": 0,
            "duplicates": 0, "rejected": 0, "fold_ins": 0, "log_lag": 0,
            "last_fold_in_age_ms": null}}"#;
        let obs2 = json::parse(never).unwrap();
        let frame2 = render_frame("http://h:1", &obs2, &[], &[]);
        assert!(frame2.contains("no fold-in yet"), "{frame2}");
    }
}
