//! `lrgcn` — train, evaluate and serve LayerGCN recommendations from the
//! command line. See the crate docs (`lrgcn-cli`) for the full usage.

fn main() {
    lrgcn_cli::install_panic_hook();
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    if let Err(msg) = lrgcn_cli::run(tokens) {
        eprintln!("error: {msg}");
        std::process::exit(1);
    }
}
