//! End-to-end fault-tolerance tests against the real `lrgcn` binary:
//! kill a checkpointed training run mid-flight (both with a raw SIGKILL
//! and with a deterministic fault injected mid-checkpoint-write), resume
//! it, and require the stitched JSONL trajectory to be byte-identical to
//! an uninterrupted run — across different `--threads` settings.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn fixture(dir: &Path) -> PathBuf {
    std::fs::create_dir_all(dir).expect("mkdir");
    let path = dir.join("interactions.tsv");
    let log = lrgcn::data::SyntheticConfig::games().scaled(0.1).generate(13);
    lrgcn::data::loader::save_interactions(&path, &log).expect("write tsv");
    path
}

fn lrgcn_cmd(dir: &Path) -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_lrgcn"));
    c.current_dir(dir).stdout(Stdio::null()).stderr(Stdio::null());
    c
}

/// The raw token after `key` up to the next `,` or `}` — compared as text
/// so the bitwise-trajectory assertions are immune to float re-parsing.
fn raw_field(line: &str, key: &str) -> Option<String> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].to_string())
}

/// epoch -> "loss-token + val-object" for every *complete* epoch record in
/// the JSONL files. A line torn by a kill mid-write is skipped; the resumed
/// run re-emits that epoch (the checkpoint for an epoch is only written
/// after its record), so the overlay still covers it.
fn epoch_signatures(path: &Path) -> BTreeMap<u64, String> {
    let text = std::fs::read_to_string(path).unwrap_or_default();
    let mut out = BTreeMap::new();
    for line in text.lines() {
        if !line.contains("\"event\":\"epoch\"") || !line.ends_with('}') {
            continue;
        }
        let (Some(epoch), Some(loss)) =
            (raw_field(line, "\"epoch\":"), raw_field(line, "\"loss\":"))
        else {
            continue;
        };
        let Ok(epoch) = epoch.parse::<u64>() else { continue };
        // The metric is the *object* `"val":{...}` (the scalar `"val":`
        // inside `timings_s` is wall time — nondeterministic); it sorts
        // last in the record, so it runs to end-of-line.
        let val = line
            .find("\"val\":{")
            .map(|i| line[i..].to_string())
            .unwrap_or_default();
        out.insert(epoch, format!("{loss} {val}"));
    }
    out
}

fn count_epoch_records(path: &Path) -> usize {
    std::fs::read_to_string(path)
        .unwrap_or_default()
        .lines()
        .filter(|l| l.contains("\"event\":\"epoch\"") && l.ends_with('}'))
        .count()
}

fn wait_for_epochs(path: &Path, n: usize, timeout: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if count_epoch_records(path) >= n {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

/// Stitches interrupted + resumed logs (later run wins per epoch) and
/// requires the result to match the uninterrupted trajectory exactly.
fn assert_stitched_matches(uninterrupted: &Path, interrupted: &Path, resumed: &Path) {
    let want = epoch_signatures(uninterrupted);
    let before = epoch_signatures(interrupted);
    let after = epoch_signatures(resumed);
    assert!(
        !after.is_empty(),
        "resumed run must re-execute at least the rolled-back epoch"
    );
    let mut got = before;
    got.extend(after);
    assert_eq!(
        got, want,
        "stitched (kill + resume) trajectory must be byte-identical to the \
         uninterrupted run"
    );
}

#[test]
fn sigkill_and_resume_reproduce_the_uninterrupted_trajectory() {
    let dir = std::env::temp_dir().join("lrgcn_cli_sigkill_resume");
    let _ = std::fs::remove_dir_all(&dir);
    let input = fixture(&dir);
    let input = input.display().to_string();

    // A: uninterrupted reference run on a single thread.
    let status = lrgcn_cmd(&dir)
        .args(["train", "--input", &input, "--epochs", "12", "--seed", "5"])
        .args(["--threads", "1", "--log-json", "a.jsonl"])
        .status()
        .expect("spawn reference run");
    assert!(status.success(), "reference run failed");
    assert_eq!(epoch_signatures(&dir.join("a.jsonl")).len(), 12);

    // B: same run with per-epoch checkpoints, SIGKILLed mid-flight.
    let mut child = lrgcn_cmd(&dir)
        .args(["train", "--input", &input, "--epochs", "12", "--seed", "5"])
        .args(["--threads", "2", "--checkpoint", "ckpt", "--log-json", "b.jsonl"])
        .spawn()
        .expect("spawn checkpointed run");
    assert!(
        wait_for_epochs(&dir.join("b.jsonl"), 3, Duration::from_secs(180)),
        "checkpointed run produced no epochs to kill"
    );
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");

    // C: resume from the newest surviving generation on four threads.
    let status = lrgcn_cmd(&dir)
        .args(["train", "--input", &input, "--epochs", "12", "--seed", "5"])
        .args(["--threads", "4", "--resume", "ckpt", "--log-json", "c.jsonl"])
        .status()
        .expect("spawn resumed run");
    assert!(status.success(), "resume after SIGKILL failed");

    assert_stitched_matches(&dir.join("a.jsonl"), &dir.join("b.jsonl"), &dir.join("c.jsonl"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_mid_checkpoint_write_leaves_a_resumable_base() {
    let dir = std::env::temp_dir().join("lrgcn_cli_midsave_kill");
    let _ = std::fs::remove_dir_all(&dir);
    let input = fixture(&dir);
    let input = input.display().to_string();

    let status = lrgcn_cmd(&dir)
        .args(["train", "--input", &input, "--epochs", "8", "--seed", "5"])
        .args(["--threads", "1", "--log-json", "a.jsonl"])
        .status()
        .expect("spawn reference run");
    assert!(status.success(), "reference run failed");

    // Deterministic crash mid-way through the 3rd checkpoint write (the
    // generation for epoch 2): the final file must never appear, only a
    // torn .tmp, and the two earlier generations stay loadable.
    let status = lrgcn_cmd(&dir)
        .args(["train", "--input", &input, "--epochs", "8", "--seed", "5"])
        .args(["--threads", "2", "--checkpoint", "ckpt", "--log-json", "b.jsonl"])
        .env("LRGCN_FAULT", "kill:3")
        .status()
        .expect("spawn faulted run");
    assert!(!status.success(), "kill:3 must abort the process");
    assert_eq!(
        count_epoch_records(&dir.join("b.jsonl")),
        3,
        "run must die saving epoch 2's checkpoint, after its epoch record"
    );
    assert!(
        !dir.join("ckpt.e000003").exists(),
        "a killed save must never produce the final generation file"
    );
    assert!(
        dir.join("ckpt.e000003.tmp").exists(),
        "the killed save leaves a torn .tmp behind"
    );

    let status = lrgcn_cmd(&dir)
        .args(["train", "--input", &input, "--epochs", "8", "--seed", "5"])
        .args(["--threads", "4", "--resume", "ckpt", "--log-json", "c.jsonl"])
        .status()
        .expect("spawn resumed run");
    assert!(status.success(), "resume past a torn generation failed");
    let resumed = epoch_signatures(&dir.join("c.jsonl"));
    assert_eq!(
        resumed.keys().next(),
        Some(&2),
        "resume must restart at the epoch whose checkpoint was torn"
    );

    assert_stitched_matches(&dir.join("a.jsonl"), &dir.join("b.jsonl"), &dir.join("c.jsonl"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panic_mid_save_flushes_a_run_abort_record() {
    let dir = std::env::temp_dir().join("lrgcn_cli_panic_abort");
    let _ = std::fs::remove_dir_all(&dir);
    let input = fixture(&dir);
    let input = input.display().to_string();

    let status = lrgcn_cmd(&dir)
        .args(["train", "--input", &input, "--epochs", "4", "--seed", "5"])
        .args(["--checkpoint", "ckpt", "--log-json", "p.jsonl"])
        .env("LRGCN_FAULT", "panic:1")
        .status()
        .expect("spawn panicking run");
    assert!(!status.success(), "panic:1 must take the process down");

    let text = std::fs::read_to_string(dir.join("p.jsonl")).expect("log survives the panic");
    let abort: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("\"event\":\"run_abort\""))
        .collect();
    assert_eq!(abort.len(), 1, "panic hook emits exactly one run_abort:\n{text}");
    assert!(
        abort[0].contains("injected fault"),
        "run_abort carries the panic message: {}",
        abort[0]
    );
    let _ = std::fs::remove_dir_all(&dir);
}
