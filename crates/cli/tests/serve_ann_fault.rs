//! Subprocess test: `lrgcn serve --ann` under deterministic IO fault
//! injection. A hot reload that hits an injected short read — or a
//! checkpoint overwritten with garbage — must fail with a 500 while the
//! server keeps answering every in-flight request from the *old* ANN
//! index (zero non-200s, generation unchanged), and a later reload of a
//! healthy checkpoint must still succeed.
//!
//! The fault schedule is replayable: `LRGCN_FAULT=short_read:0.5` with
//! `LRGCN_FAULT_SEED=1` draws 0.654, 0.409, 0.644, 0.988 for the first
//! four checkpoint loads, so the initial load (op 1) and the final reload
//! succeed while the op-2 reload is truncated mid-read.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

fn fixture(dir: &Path) -> PathBuf {
    std::fs::create_dir_all(dir).expect("mkdir");
    let path = dir.join("interactions.tsv");
    let log = lrgcn::data::SyntheticConfig::games().scaled(0.15).generate(23);
    lrgcn::data::loader::save_interactions(&path, &log).expect("write tsv");
    path
}

fn http(addr: &str, method: &str, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).ok();
    let req = format!("{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: 0\r\n\r\n");
    s.write_all(req.as_bytes()).expect("send");
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("response");
    let status: u16 = resp
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {resp:?}"));
    let body = resp
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn generation(addr: &str) -> u64 {
    let (status, body) = http(addr, "GET", "/healthz");
    assert_eq!(status, 200, "healthz: {body}");
    let v = lrgcn::obs::json::parse(&body).expect("healthz JSON");
    v.get("generation")
        .and_then(lrgcn::obs::json::Value::as_f64)
        .expect("generation") as u64
}

#[test]
fn faulted_reload_keeps_the_old_ann_index_serving() {
    let dir = std::env::temp_dir().join("lrgcn_cli_serve_ann_fault");
    let _ = std::fs::remove_dir_all(&dir);
    let input = fixture(&dir);
    let input = input.display().to_string();
    let ckpt = dir.join("model.ckpt");

    let status = Command::new(env!("CARGO_BIN_EXE_lrgcn"))
        .current_dir(&dir)
        .args(["train", "--input", &input, "--epochs", "2", "--seed", "5"])
        .args(["--save", "model.ckpt"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("train");
    assert!(status.success(), "training run failed");
    let good_bytes = std::fs::read(&ckpt).expect("read checkpoint");

    let mut child = Command::new(env!("CARGO_BIN_EXE_lrgcn"))
        .current_dir(&dir)
        .args(["serve", "model.ckpt", "--input", &input])
        .args(["--ann", "--ann-cells", "8", "--nprobe", "4"])
        .args(["--port", "0", "--workers", "2"])
        .env("LRGCN_FAULT", "short_read:0.5")
        .env("LRGCN_FAULT_SEED", "1")
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve --ann");

    // Parse the ephemeral address from stdout; require the ANN banner so
    // the test provably exercises the IVF read path.
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut addr = String::new();
    let mut saw_ann_banner = false;
    for _ in 0..32 {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read stdout") == 0 {
            break;
        }
        saw_ann_banner |= line.starts_with("ann: ");
        if let Some(rest) = line.trim().strip_prefix("listening on http://") {
            addr = rest.to_string();
            break;
        }
    }
    assert!(!addr.is_empty(), "server never printed its address");
    assert!(saw_ann_banner, "serve --ann did not report an ANN index");

    assert_eq!(generation(&addr), 0);
    let (status, _) = http(&addr, "GET", "/recs/1?k=5");
    assert_eq!(status, 200, "ANN read path dead before any fault");

    // Hammer the read paths from two clients while the reloads below fail;
    // every single response must be a 200 served from the old index.
    let hammer_addr = addr.clone();
    let clients: Vec<_> = (0..2u32)
        .map(|c| {
            let addr = hammer_addr.clone();
            std::thread::spawn(move || {
                let mut statuses = Vec::new();
                for i in 0..40u32 {
                    let path = if i % 4 == 0 {
                        format!("/similar/{}?k=5", (c + i) % 8)
                    } else {
                        format!("/recs/{}?k=5", (c * 7 + i) % 16)
                    };
                    statuses.push(http(&addr, "GET", &path).0);
                    std::thread::sleep(Duration::from_millis(2));
                }
                statuses
            })
        })
        .collect();

    // Reload 1 (load op 2): the injected short read truncates the
    // checkpoint mid-load — the swap must be rejected wholesale.
    let (status, body) = http(&addr, "POST", "/admin/reload");
    assert_eq!(status, 500, "injected short read must fail the reload: {body}");
    assert_eq!(generation(&addr), 0, "failed reload must not bump the generation");

    // Reload 2 (load op 3, no injected fault): the checkpoint is now
    // garbage on disk — same containment contract.
    std::fs::write(&ckpt, b"not a checkpoint").expect("clobber checkpoint");
    let (status, _) = http(&addr, "POST", "/admin/reload");
    assert_eq!(status, 500, "garbage checkpoint must fail the reload");
    assert_eq!(generation(&addr), 0);

    for c in clients {
        let statuses = c.join().expect("client join");
        assert!(
            statuses.iter().all(|&s| s == 200),
            "requests failed while reloads were faulting: {statuses:?}"
        );
    }

    // Restore the good bytes: reload 3 (load op 4) must go through and the
    // recovered server keeps answering.
    std::fs::write(&ckpt, &good_bytes).expect("restore checkpoint");
    let (status, body) = http(&addr, "POST", "/admin/reload");
    assert_eq!(status, 200, "healthy reload after faults failed: {body}");
    assert_eq!(generation(&addr), 1);
    let (status, _) = http(&addr, "GET", "/recs/1?k=5");
    assert_eq!(status, 200);

    let (status, _) = http(&addr, "POST", "/admin/shutdown");
    assert_eq!(status, 200);
    let exit = child.wait().expect("reap server");
    assert!(exit.success(), "server exited uncleanly: {exit:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
