//! End-to-end checks for `--trace` and `lrgcn report` through the real
//! binary: a short seeded training run must leave a well-formed Chrome
//! trace file (valid JSON array, balanced B/E events, per-thread monotone
//! timestamps) and a JSONL log the report subcommand can render.

use lrgcn::data::{loader, SyntheticConfig};
use lrgcn::obs::json::{self, Value};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(dir: &Path) -> PathBuf {
    std::fs::create_dir_all(dir).expect("mkdir");
    let path = dir.join("interactions.tsv");
    let log = SyntheticConfig::games().scaled(0.1).generate(13);
    loader::save_interactions(&path, &log).expect("write tsv");
    path
}

fn lrgcn() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lrgcn"))
}

/// Asserts `events` is a balanced, per-thread ts-monotone span stream and
/// returns the distinct span names.
fn check_events(events: &[Value]) -> Vec<String> {
    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut names: Vec<String> = Vec::new();
    for ev in events {
        for key in ["name", "cat", "ph", "ts", "pid", "tid"] {
            assert!(ev.get(key).is_some(), "event missing {key}: {ev:?}");
        }
        let name = ev.get("name").unwrap().as_str().unwrap().to_string();
        let ph = ev.get("ph").unwrap().as_str().unwrap();
        let ts = ev.get("ts").unwrap().as_f64().unwrap();
        let tid = ev.get("tid").unwrap().as_f64().unwrap() as u64;
        assert!(ts.is_finite() && ts >= 0.0, "bad ts {ts}");
        if let Some(prev) = last_ts.insert(tid, ts) {
            assert!(ts >= prev, "tid {tid}: ts regressed {ts} < {prev}");
        }
        let stack = stacks.entry(tid).or_default();
        match ph {
            "B" => {
                stack.push(name.clone());
                names.push(name);
            }
            "E" => {
                let open = stack
                    .pop()
                    .unwrap_or_else(|| panic!("tid {tid}: E({name}) without matching B"));
                assert_eq!(open, name, "tid {tid}: spans closed out of order");
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "tid {tid}: unclosed spans {stack:?}");
    }
    names.sort();
    names.dedup();
    names
}

#[test]
fn train_writes_valid_chrome_trace_and_report_renders_the_log() {
    let dir = std::env::temp_dir().join("lrgcn_trace_report_e2e");
    let input = fixture(&dir);
    let trace_path = dir.join("trace.json");
    let log_path = dir.join("run.jsonl");
    std::fs::remove_file(&trace_path).ok();
    std::fs::remove_file(&log_path).ok();

    let out = lrgcn()
        .args([
            "train",
            "--input",
            &input.display().to_string(),
            "--epochs",
            "2",
            "--seed",
            "5",
            "--threads",
            "2",
            "--trace",
            &trace_path.display().to_string(),
            "--log-json",
            &log_path.display().to_string(),
        ])
        .output()
        .expect("spawn lrgcn train");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The trace must be one self-contained JSON array of span events.
    let text = std::fs::read_to_string(&trace_path).expect("trace written");
    let root = json::parse(text.trim()).expect("trace parses as JSON");
    let Value::Arr(events) = &root else {
        panic!("trace root is not an array");
    };
    assert!(!events.is_empty(), "trace has no events");
    let names = check_events(events);
    for expected in ["run", "epoch", "train", "spmm"] {
        assert!(
            names.iter().any(|n| n == expected),
            "trace missing span {expected:?}; saw {names:?}"
        );
    }

    // `report` renders the JSONL log with a non-trivial terminal summary.
    let rep = lrgcn()
        .args(["report", &log_path.display().to_string()])
        .output()
        .expect("spawn lrgcn report");
    assert!(
        rep.status.success(),
        "report failed: {}",
        String::from_utf8_lossy(&rep.stderr)
    );
    let stdout = String::from_utf8_lossy(&rep.stdout);
    for needle in ["trajectory", "loss", "phase breakdown", "train"] {
        assert!(
            stdout.contains(needle),
            "report output missing {needle:?}:\n{stdout}"
        );
    }

    // Self-diff exits 0 with a table whose delta column is zero.
    let diff = lrgcn()
        .args([
            "report",
            "--diff",
            &log_path.display().to_string(),
            &log_path.display().to_string(),
        ])
        .output()
        .expect("spawn lrgcn report --diff");
    assert!(diff.status.success());
    let dtext = String::from_utf8_lossy(&diff.stdout);
    assert!(dtext.contains("final loss"), "diff output:\n{dtext}");

    std::fs::remove_file(&trace_path).ok();
    std::fs::remove_file(&log_path).ok();
    std::fs::remove_file(&input).ok();
}

#[test]
fn trace_env_var_is_honoured_and_flag_wins_over_it() {
    let dir = std::env::temp_dir().join("lrgcn_trace_env_parity");
    let input = fixture(&dir);
    let env_trace = dir.join("env.json");
    let flag_trace = dir.join("flag.json");
    std::fs::remove_file(&env_trace).ok();
    std::fs::remove_file(&flag_trace).ok();

    // Env var alone arms tracing (stats is cheap and still opens the run).
    let out = lrgcn()
        .env("LRGCN_TRACE", env_trace.display().to_string())
        .args(["stats", "--input", &input.display().to_string()])
        .output()
        .expect("spawn lrgcn stats");
    assert!(out.status.success());
    let text = std::fs::read_to_string(&env_trace).expect("env trace written");
    assert!(
        json::parse(text.trim()).is_ok(),
        "env trace must be valid JSON"
    );

    // With both set, the flag path receives the trace.
    std::fs::remove_file(&env_trace).ok();
    let out = lrgcn()
        .env("LRGCN_TRACE", env_trace.display().to_string())
        .args([
            "stats",
            "--input",
            &input.display().to_string(),
            "--trace",
            &flag_trace.display().to_string(),
        ])
        .output()
        .expect("spawn lrgcn stats with flag");
    assert!(out.status.success());
    assert!(flag_trace.exists(), "--trace path must be written");
    assert!(!env_trace.exists(), "flag must win over LRGCN_TRACE");

    std::fs::remove_file(&flag_trace).ok();
    std::fs::remove_file(&input).ok();
}
