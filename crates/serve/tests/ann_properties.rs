//! Property tests bounding the IVF ANN index's recall against the exact
//! scan across random embedding geometries, and pinning the determinism
//! contract (bitwise-identical candidate sets at any thread count).
//!
//! The geometries mirror how trained item embeddings actually look:
//!
//! * **clustered** — items concentrated around a few directions (what
//!   graph-convolution training produces on clustered interaction data);
//!   the friendly case for a coarse quantizer.
//! * **uniform** — isotropic noise with no cluster structure; the hard
//!   case, where cell boundaries cut through every neighborhood.
//! * **anisotropic** — variance concentrated in a few leading dimensions
//!   (low-rank structure typical of matrix-factorization embeddings).
//!
//! The bound under test is the acceptance criterion: mean recall@20 of the
//! probed-cells scan vs the exact full scan ≥ 0.95 per geometry.

use lrgcn_eval::overlap_fraction;
use lrgcn_serve::{IvfConfig, IvfIndex};
use lrgcn_tensor::kernels::dot;
use lrgcn_tensor::par;

const N_ITEMS: usize = 2000;
const DIM: usize = 16;
const N_QUERIES: usize = 64;
const K: usize = 20;
const RECALL_FLOOR: f64 = 0.95;

/// splitmix64-derived pseudo-random floats in [-1, 1).
fn pseudo(n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            (z >> 40) as f32 / (1u64 << 23) as f32 - 1.0
        })
        .collect()
}

/// Items drawn around 32 random centers with small isotropic noise.
fn clustered(seed: u64) -> Vec<f32> {
    let n_centers = 32;
    let centers = pseudo(n_centers * DIM, seed);
    let noise = pseudo(N_ITEMS * DIM, seed + 1);
    (0..N_ITEMS)
        .flat_map(|i| {
            let c = &centers[(i % n_centers) * DIM..(i % n_centers + 1) * DIM];
            let nz = &noise[i * DIM..(i + 1) * DIM];
            c.iter().zip(nz).map(|(&c, &n)| c + 0.15 * n).collect::<Vec<_>>()
        })
        .collect()
}

/// Isotropic uniform noise — no structure for the quantizer to exploit.
fn uniform(seed: u64) -> Vec<f32> {
    pseudo(N_ITEMS * DIM, seed)
}

/// Uniform noise with per-dimension scales decaying 1, 1/2, 1/3, ... —
/// variance concentrated in the leading dimensions.
fn anisotropic(seed: u64) -> Vec<f32> {
    let mut v = pseudo(N_ITEMS * DIM, seed);
    for (i, x) in v.iter_mut().enumerate() {
        *x /= (i % DIM + 1) as f32;
    }
    v
}

/// Exact top-K item ids by dot product, ties toward the lowest id — the
/// same ordering contract as the serving engine.
fn exact_top_k(items: &[f32], query: &[f32], k: usize) -> Vec<u32> {
    let mut scored: Vec<(u32, f32)> = (0..N_ITEMS)
        .map(|i| (i as u32, dot(query, &items[i * DIM..(i + 1) * DIM])))
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("scores must not be NaN")
            .then(a.0.cmp(&b.0))
    });
    scored.truncate(k);
    scored.into_iter().map(|(i, _)| i).collect()
}

/// ANN top-K: exact dots restricted to the probed cells' members.
fn ann_top_k(idx: &IvfIndex, items: &[f32], query: &[f32], k: usize) -> Vec<u32> {
    let mut cells = Vec::new();
    let mut cand = Vec::new();
    idx.candidates_into(query, &mut cells, &mut cand);
    let mut scored: Vec<(u32, f32)> = cand
        .iter()
        .map(|&i| (i, dot(query, &items[i as usize * DIM..(i as usize + 1) * DIM])))
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("scores must not be NaN")
            .then(a.0.cmp(&b.0))
    });
    scored.truncate(k);
    scored.into_iter().map(|(i, _)| i).collect()
}

fn mean_recall(items: &[f32], cfg: &IvfConfig, query_seed: u64) -> f64 {
    let idx = IvfIndex::build(items, N_ITEMS, DIM, cfg);
    // Fewer cells probed than exist — the sub-linear regime, else the test
    // proves nothing.
    assert!(
        idx.nprobe() < idx.n_cells(),
        "nprobe {} must not cover all {} cells",
        idx.nprobe(),
        idx.n_cells()
    );
    let queries = pseudo(N_QUERIES * DIM, query_seed);
    let mut total = 0.0;
    for q in 0..N_QUERIES {
        let query = &queries[q * DIM..(q + 1) * DIM];
        let exact = exact_top_k(items, query, K);
        let ann = ann_top_k(&idx, items, query, K);
        total += overlap_fraction(&ann, &exact);
    }
    total / N_QUERIES as f64
}

#[test]
fn recall_at_20_bounded_on_clustered_geometry() {
    let cfg = IvfConfig {
        n_cells: 0, // auto ≈ √2000 = 45
        nprobe: 16,
        seed: 2023,
    };
    for seed in [11u64, 22, 33] {
        let items = clustered(seed);
        let recall = mean_recall(&items, &cfg, seed + 1000);
        assert!(
            recall >= RECALL_FLOOR,
            "clustered seed {seed}: recall@20 {recall:.4} < {RECALL_FLOOR}"
        );
    }
}

#[test]
fn recall_at_20_bounded_on_uniform_geometry() {
    // The structureless case needs a wider probe: at nprobe=16 (of ~45
    // cells) measured recall is ~0.92; 24 cells clears the 0.95 floor with
    // margin (~0.98). This is exactly the recall/latency trade-off the
    // README table documents.
    let cfg = IvfConfig {
        n_cells: 0,
        nprobe: 24,
        seed: 2023,
    };
    for seed in [44u64, 55, 66] {
        let items = uniform(seed);
        let recall = mean_recall(&items, &cfg, seed + 1000);
        assert!(
            recall >= RECALL_FLOOR,
            "uniform seed {seed}: recall@20 {recall:.4} < {RECALL_FLOOR}"
        );
    }
}

#[test]
fn recall_at_20_bounded_on_anisotropic_geometry() {
    let cfg = IvfConfig {
        n_cells: 0,
        nprobe: 16,
        seed: 2023,
    };
    for seed in [77u64, 88, 99] {
        let items = anisotropic(seed);
        let recall = mean_recall(&items, &cfg, seed + 1000);
        assert!(
            recall >= RECALL_FLOOR,
            "anisotropic seed {seed}: recall@20 {recall:.4} < {RECALL_FLOOR}"
        );
    }
}

#[test]
fn candidate_sets_are_bitwise_identical_across_thread_counts() {
    // The determinism contract behind "served --ann results are
    // deterministic": the index build and the probe must produce the exact
    // same candidate lists at LRGCN_THREADS=1 and 4 — candidate *sets*, not
    // just final top-Ks.
    let cfg = IvfConfig {
        n_cells: 48,
        nprobe: 6,
        seed: 7,
    };
    for (name, items) in [
        ("clustered", clustered(5)),
        ("uniform", uniform(6)),
        ("anisotropic", anisotropic(7)),
    ] {
        let before = par::configured_threads();
        par::set_threads(1);
        let idx1 = IvfIndex::build(&items, N_ITEMS, DIM, &cfg);
        par::set_threads(4);
        let idx4 = IvfIndex::build(&items, N_ITEMS, DIM, &cfg);
        par::set_threads(before);
        let queries = pseudo(32 * DIM, 900);
        for q in 0..32 {
            let query = &queries[q * DIM..(q + 1) * DIM];
            let (mut c1, mut c4) = (Vec::new(), Vec::new());
            let (mut m1, mut m4) = (Vec::new(), Vec::new());
            idx1.candidates_into(query, &mut c1, &mut m1);
            idx4.candidates_into(query, &mut c4, &mut m4);
            assert_eq!(c1, c4, "{name} query {q}: probed cells diverged");
            assert_eq!(m1, m4, "{name} query {q}: candidate set diverged");
        }
    }
}

#[test]
fn probing_more_cells_never_hurts_recall() {
    // Monotonicity property: recall@20 is non-decreasing in nprobe (the
    // candidate set only grows), reaching 1.0 when every cell is probed.
    let items = clustered(3);
    let queries = pseudo(16 * DIM, 1234);
    let mut last = 0.0f64;
    for nprobe in [1usize, 4, 16, 45] {
        let idx = IvfIndex::build(
            &items,
            N_ITEMS,
            DIM,
            &IvfConfig {
                n_cells: 45,
                nprobe,
                seed: 2023,
            },
        );
        let mut total = 0.0;
        for q in 0..16 {
            let query = &queries[q * DIM..(q + 1) * DIM];
            let exact = exact_top_k(items.as_slice(), query, K);
            let ann = ann_top_k(&idx, &items, query, K);
            total += overlap_fraction(&ann, &exact);
        }
        let recall = total / 16.0;
        assert!(
            recall >= last - 1e-12,
            "recall dropped from {last:.4} to {recall:.4} at nprobe={nprobe}"
        );
        last = recall;
    }
    assert_eq!(last, 1.0, "probing every cell must be lossless");
}
