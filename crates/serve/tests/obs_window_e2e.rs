//! End-to-end acceptance for the serving observability middleware.
//!
//! The headline claim: rolling windows see what cumulative histograms
//! cannot. The test drives two traffic phases through one process — a fast
//! exact-read-path phase, then (after the 10s window has drained) a slow
//! ANN phase at full nprobe and k=1000 — and asserts the `/admin/obs` 10s
//! p50/p95 move by ≥2× while the *cumulative* `/metrics` histogram, still
//! dominated by the fast phase's samples, keeps reporting a fast median.
//!
//! Around that core it also asserts: request ids round-trip client →
//! response header → access-log line; served top-K stays byte-identical to
//! the offline evaluator with every observability feature armed; windowed
//! request/error counts in `/admin/obs` match the driven traffic; healthz
//! carries uptime and 60s rate; SLO burn gauges light up when the
//! configured target is violated.
//!
//! Everything lives in ONE `#[test]` because the window rings and the
//! registry are process-global: concurrent tests in the same binary would
//! pollute each other's windows. Keep this file single-test.

use lrgcn_data::{Dataset, SplitRatios, SyntheticConfig};
use lrgcn_eval::top_k_indices;
use lrgcn_models::{LayerGcn, LayerGcnConfig, Recommender};
use lrgcn_obs::json::{self, Value};
use lrgcn_serve::{serve, Engine, EngineOptions, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn tmp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("lrgcn_obs_window_e2e");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Small, fast fixture: the exact read path answers these in well under a
/// bucket of the slow phase's latencies.
fn fast_fixture() -> (Arc<Dataset>, LayerGcn, PathBuf) {
    let log = SyntheticConfig::games().scaled(0.05).generate(99);
    let ds = Arc::new(Dataset::chronological_split(
        "obs_fast",
        &log,
        SplitRatios::default(),
    ));
    let cfg = LayerGcnConfig {
        embedding_dim: 16,
        n_layers: 2,
        ..LayerGcnConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(7);
    let mut model = LayerGcn::new(&ds, cfg, &mut rng);
    model.train_epoch(&ds, 0, &mut rng);
    model.train_epoch(&ds, 1, &mut rng);
    let ckpt = tmp_dir().join("fast.ckpt");
    model.save(&ckpt).expect("save");
    model.refresh(&ds);
    (ds, model, ckpt)
}

/// Large-catalog fixture for the slow phase: full-nprobe IVF over 1411
/// items plus a k=1000 JSON render per request.
fn slow_fixture() -> (Arc<Dataset>, PathBuf) {
    let log = SyntheticConfig::yelp().generate(99);
    let ds = Arc::new(Dataset::chronological_split(
        "obs_slow",
        &log,
        SplitRatios::default(),
    ));
    let cfg = LayerGcnConfig {
        embedding_dim: 16,
        n_layers: 2,
        ..LayerGcnConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(7);
    let mut model = LayerGcn::new(&ds, cfg, &mut rng);
    model.train_epoch(&ds, 0, &mut rng);
    let ckpt = tmp_dir().join("slow.ckpt");
    model.save(&ckpt).expect("save");
    (ds, ckpt)
}

/// Blocking HTTP/1.1 client that keeps the response headers — the shared
/// `http()` helper in e2e.rs throws them away, and this test needs to see
/// the `x-lrgcn-request-id` echo.
fn http_full(
    addr: SocketAddr,
    path: &str,
    extra_headers: &[(&str, &str)],
) -> (u16, HashMap<String, String>, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let mut req = format!("GET {path} HTTP/1.1\r\nHost: test\r\n");
    for (k, v) in extra_headers {
        req.push_str(&format!("{k}: {v}\r\n"));
    }
    req.push_str("\r\n");
    s.write_all(req.as_bytes()).expect("send");
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("response");
    let (head, body) = resp.split_once("\r\n\r\n").expect("header/body split");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {head:?}"));
    let mut headers = HashMap::new();
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
        }
    }
    (status, headers, body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let (status, _, body) = http_full(addr, path, &[]);
    (status, body)
}

fn get_json(addr: SocketAddr, path: &str) -> Value {
    let (status, body) = get(addr, path);
    assert_eq!(status, 200, "{path} failed: {body}");
    json::parse(&body).unwrap_or_else(|e| panic!("bad JSON from {path}: {e}\n{body}"))
}

fn f(v: &Value, path: &[&str]) -> f64 {
    let mut cur = v;
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("missing {key:?} in {v:?}"));
    }
    cur.as_f64().unwrap_or_else(|| panic!("{path:?} not a number"))
}

/// Median from the *cumulative* `/metrics` request histogram: the smallest
/// `le` bound whose cumulative count reaches half the total.
fn cumulative_p50_ns(metrics: &str) -> f64 {
    let mut buckets: Vec<(f64, u64)> = metrics
        .lines()
        .filter_map(|l| l.strip_prefix("lrgcn_serve_request_ns_bucket{le=\""))
        .filter_map(|rest| {
            let (le, val) = rest.split_once("\"} ")?;
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().ok()?
            };
            Some((le, val.trim().parse().ok()?))
        })
        .collect();
    assert!(!buckets.is_empty(), "no request_ns buckets in /metrics");
    buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total = buckets.last().unwrap().1;
    assert!(total > 0, "empty cumulative request histogram");
    let half = total.div_ceil(2);
    buckets
        .iter()
        .find(|&&(_, cum)| cum >= half)
        .expect("median bucket")
        .0
}

/// The offline evaluator's top-K for one user: score, mask, rank.
fn offline_top_k(model: &LayerGcn, ds: &Dataset, user: u32, k: usize) -> Vec<u32> {
    let mut scores = model.score_users(ds, &[user]);
    let row = scores.row_mut(0);
    for &it in ds.train_items(user) {
        row[it as usize] = f32::NEG_INFINITY;
    }
    top_k_indices(row, k)
}

fn served_item_ids(v: &Value) -> Vec<u32> {
    let Some(Value::Arr(items)) = v.get("items") else {
        panic!("no items array in {v:?}");
    };
    items
        .iter()
        .map(|it| it.get("item").and_then(Value::as_f64).expect("item id") as u32)
        .collect()
}

#[test]
fn rolling_windows_expose_latency_shifts_cumulative_histograms_hide() {
    // ---- Phase 1: fast exact traffic, access log + permissive SLO armed.
    let access_log = tmp_dir().join("access.jsonl");
    std::fs::remove_file(&access_log).ok();
    let (ds, model, fast_ckpt) = fast_fixture();
    let engine = Arc::new(
        Engine::open(
            &fast_ckpt,
            ds.clone(),
            EngineOptions {
                n_layers: 2,
                ..EngineOptions::default()
            },
        )
        .expect("open fast"),
    );
    let handle = serve(
        engine,
        ServerConfig {
            access_log: Some(access_log.clone()),
            access_sample: 1,
            slo_p99_ms: Some(1_000), // generous: nothing in phase 1 is slow
            slo_err_ppm: Some(500_000),
            ..ServerConfig::default()
        },
    )
    .expect("serve fast");
    let addr = handle.addr();

    // Parity stays byte-identical with every observability feature armed.
    for u in (0..ds.n_users() as u32).step_by(11).take(6) {
        let v = get_json(addr, &format!("/recs/{u}?k=20"));
        assert_eq!(
            served_item_ids(&v),
            offline_top_k(&model, &ds, u, 20),
            "observability middleware changed the served ranking for user {u}"
        );
    }

    // A request id round-trips: client header → response echo → log line.
    let my_id = "e2e-roundtrip.0042";
    let (status, headers, _) = http_full(
        addr,
        "/recs/1?k=5",
        &[("X-LRGCN-Request-Id", my_id)],
    );
    assert_eq!(status, 200);
    assert_eq!(
        headers.get("x-lrgcn-request-id").map(String::as_str),
        Some(my_id),
        "inbound request id was not echoed"
    );
    // Server-minted ids appear when the client sends none (or junk).
    let (_, headers, _) = http_full(addr, "/recs/2?k=5", &[]);
    let minted = headers.get("x-lrgcn-request-id").expect("minted id");
    assert!(minted.contains('-') && !minted.is_empty());
    let (_, headers, _) = http_full(addr, "/recs/2?k=5", &[("X-LRGCN-Request-Id", "bad id!")]);
    assert_ne!(
        headers.get("x-lrgcn-request-id").map(String::as_str),
        Some("bad id!"),
        "malformed inbound id must be replaced, not echoed"
    );

    // Fast traffic: 300 k=5 requests over a handful of users (cache hits
    // keep them honest-fast, which is the point of the phase).
    const FAST_N: usize = 300;
    for i in 0..FAST_N {
        let (status, _) = get(addr, &format!("/recs/{}?k=5", i % 20));
        assert_eq!(status, 200);
    }
    // A few deliberate 404s so the error accounting has something to count.
    const ERR_N: usize = 5;
    for _ in 0..ERR_N {
        let (status, _) = get(addr, "/recs/999999?k=5");
        assert_eq!(status, 404);
    }

    let obs = get_json(addr, "/admin/obs");
    assert_eq!(obs.get("read_path").and_then(Value::as_str), Some("exact"));
    // Driven counts are all inside the 300s window (the phase takes
    // seconds): ≥ what we sent, ≤ that plus this test's few extras.
    let w300_req = f(&obs, &["windows", "300s", "requests"]);
    assert!(
        (w300_req as usize) >= FAST_N + ERR_N,
        "300s window lost requests: {w300_req} < {}",
        FAST_N + ERR_N
    );
    assert!(
        (w300_req as usize) <= FAST_N + ERR_N + 20,
        "300s window overcounts: {w300_req}"
    );
    let w300_err = f(&obs, &["windows", "300s", "errors"]);
    assert_eq!(w300_err as usize, ERR_N, "error count mismatch");
    let fast_p50 = f(&obs, &["windows", "10s", "p50_ms"]);
    let fast_p95 = f(&obs, &["windows", "10s", "p95_ms"]);
    assert!(fast_p50 > 0.0 && fast_p95 >= fast_p50);
    // Nothing violated the 1000ms target: latency burn is zero.
    assert_eq!(f(&obs, &["slo", "burn_latency_10s"]), 0.0);
    // The per-route breakdown sees recs traffic on the exact path.
    let recs_req = f(&obs, &["windows", "300s", "routes", "recs", "requests"]);
    assert!(recs_req as usize >= FAST_N);
    let exact_reads = f(&obs, &["windows", "300s", "read_paths", "exact"]);
    assert!(exact_reads as usize >= FAST_N);

    // healthz carries uptime and the windowed 60s rate.
    let hz = get_json(addr, "/healthz");
    assert!(f(&hz, &["uptime_s"]) >= 0.0);
    assert!(f(&hz, &["rate_60s"]) > 0.0, "60s rate empty after traffic");
    assert!(f(&hz, &["error_ratio_60s"]) > 0.0, "60s errors not in healthz");

    handle.shutdown();
    handle.wait();

    // The access log holds the round-tripped id, as valid JSONL.
    let log_text = std::fs::read_to_string(&access_log).expect("access log");
    let line = log_text
        .lines()
        .find(|l| l.contains(my_id))
        .expect("round-tripped id missing from access log");
    let rec = json::parse(line).expect("access log line is JSON");
    assert_eq!(rec.get("id").and_then(Value::as_str), Some(my_id));
    assert_eq!(rec.get("route").and_then(Value::as_str), Some("recs"));
    assert_eq!(rec.get("status").and_then(Value::as_f64), Some(200.0));
    assert!(f(&rec, &["latency_ns"]) > 0.0);
    // Sampling at 1 logs everything driven above.
    assert!(log_text.lines().count() >= FAST_N + ERR_N);

    // ---- Drain: let the fast phase leave the 10s window entirely.
    std::thread::sleep(Duration::from_secs(11));

    // ---- Phase 2: slow ANN traffic — full nprobe over the 1411-item
    // catalog, k=1000 responses, no cache — with a 1ms SLO that everything
    // violates.
    let (slow_ds, slow_ckpt) = slow_fixture();
    let engine = Arc::new(
        Engine::open(
            &slow_ckpt,
            slow_ds.clone(),
            EngineOptions {
                n_layers: 2,
                ann: true,
                ann_cells: 0, // auto ≈ 38
                nprobe: 64,   // clamped to every cell: maximum work
                ..EngineOptions::default()
            },
        )
        .expect("open slow"),
    );
    let handle = serve(
        engine,
        ServerConfig {
            cache_capacity: 0, // every request pays the full read path
            slo_p99_ms: Some(1),
            slo_err_ppm: Some(1_000),
            ..ServerConfig::default()
        },
    )
    .expect("serve slow");
    let addr = handle.addr();

    const SLOW_N: usize = 40;
    for i in 0..SLOW_N {
        let (status, body) = get(
            addr,
            &format!("/recs/{}?k=1000&exclude_seen=false", i % 25),
        );
        assert_eq!(status, 200, "{body}");
    }

    let obs = get_json(addr, "/admin/obs");
    assert_eq!(obs.get("read_path").and_then(Value::as_str), Some("ann"));
    let slow_p50 = f(&obs, &["windows", "10s", "p50_ms"]);
    let slow_p95 = f(&obs, &["windows", "10s", "p95_ms"]);

    // The windowed quantiles moved: the 10s view is all slow-phase.
    assert!(
        slow_p50 >= 2.0 * fast_p50,
        "10s p50 did not move: fast {fast_p50}ms vs slow {slow_p50}ms"
    );
    assert!(
        slow_p95 >= 2.0 * fast_p95,
        "10s p95 did not move: fast {fast_p95}ms vs slow {slow_p95}ms"
    );

    // The cumulative histogram — shared across the whole process and still
    // dominated by the 300 fast samples — cannot see the shift: its median
    // stays in the fast phase's range, under half the windowed median.
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let cum_p50_ms = cumulative_p50_ns(&metrics) / 1e6;
    assert!(
        cum_p50_ms <= slow_p50 / 2.0,
        "cumulative p50 {cum_p50_ms}ms moved with the slow phase (w10 p50 \
         {slow_p50}ms) — did the fast phase's samples disappear?"
    );

    // Everything violated the 1ms target: latency burn saturates well past
    // the burn=1 budget line in both the 10s and 60s windows.
    assert!(
        f(&obs, &["slo", "burn_latency_10s"]) > 1.0,
        "slow traffic must burn the 1ms latency SLO"
    );
    assert!(f(&obs, &["slo", "burn_latency_60s"]) > 1.0);
    let ann_reads = f(&obs, &["windows", "10s", "read_paths", "ann"]);
    assert!(ann_reads as usize >= SLOW_N);

    handle.shutdown();
    handle.wait();
    std::fs::remove_file(fast_ckpt).ok();
    std::fs::remove_file(slow_ckpt).ok();
    std::fs::remove_file(access_log).ok();
}
