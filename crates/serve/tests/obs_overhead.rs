//! Overhead guard for the per-request observability middleware.
//!
//! The budget argument, same style as `lrgcn-obs/tests/overhead.rs`: the
//! cheapest request the server can possibly answer — a cache-hit `/recs`
//! over loopback — still pays an `accept`, a socket read, a response write
//! and a close, which is well over 100 µs of syscall traffic even on an
//! idle machine. The 5% regression allowance therefore gives the per-
//! request observability tail a 5 µs wall-clock budget. The tail is:
//!
//!   1. one `window::record_request` (route hist ring + series counter
//!      ring + optional SLO-slow counter — a handful of relaxed RMWs,
//!      plus a claim-CAS once per second),
//!   2. one cumulative `registry::record_ns`,
//!   3. one request-id mint (an atomic sequence bump and a short format),
//!   4. one access-log sampling decision (atomic bump + modulo) when the
//!      log is armed; the sampled-in file write is off the 5% budget by
//!      design — that is what `--access-sample` exists for.
//!
//! Each component is pinned to a per-op ceiling loose enough for debug
//! builds on shared CI boxes, yet orders of magnitude below what a mutex,
//! syscall or allocation sneaking onto the path would cost. A combined
//! simulation then pins the whole tail to the 5 µs budget directly.

use lrgcn_obs::registry::{self, Hist};
use lrgcn_obs::window::{self, ReadPath, Route};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Mean ns/op of `f` over `iters` iterations, after one warm-up call.
fn ns_per_op<F: FnMut()>(iters: u64, mut f: F) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

#[test]
fn windowed_record_request_stays_under_budget() {
    let mut ns = 0u64;
    let per_op = ns_per_op(200_000, || {
        ns = ns.wrapping_add(977) % 50_000_000;
        window::record_request(Route::Recs, 200, ReadPath::Exact, ns, false);
    });
    assert!(
        per_op < 2_000.0,
        "window::record_request costs {per_op:.1} ns/op — rotation protocol \
         or series indexing no longer lock-free relaxed RMWs?"
    );
}

#[test]
fn windowed_record_with_slo_accounting_stays_under_budget() {
    let per_op = ns_per_op(200_000, || {
        window::record_request(Route::Score, 500, ReadPath::Ann, 60_000_000, true);
    });
    assert!(
        per_op < 2_500.0,
        "record_request with error + SLO-slow accounting costs {per_op:.1} ns/op"
    );
}

#[test]
fn cumulative_request_histogram_stays_under_budget() {
    let per_op = ns_per_op(500_000, || {
        registry::record_ns(Hist::ServeRequest, 1_234_567);
    });
    assert!(
        per_op < 500.0,
        "registry::record_ns costs {per_op:.1} ns/op — no longer relaxed atomics?"
    );
}

#[test]
fn request_id_mint_stays_under_budget() {
    // Same shape as the server's id mint: one relaxed sequence bump plus
    // one short format into a fresh String (`{prefix}-{seq:x}`).
    let seq = AtomicU64::new(0);
    let prefix = "1a2b3c4d";
    let per_op = ns_per_op(200_000, || {
        let id = format!("{prefix}-{:x}", seq.fetch_add(1, Ordering::Relaxed));
        std::hint::black_box(id);
    });
    assert!(
        per_op < 1_000.0,
        "request-id mint costs {per_op:.1} ns/op — formatting grew an allocation storm?"
    );
}

#[test]
fn access_log_sampling_decision_stays_under_budget() {
    // The sampled-out path of the access log: one relaxed bump and a
    // modulo against `--access-sample`. Only sampled-in requests pay the
    // (single) buffered write under the log mutex.
    let seq = AtomicU64::new(0);
    let sample = 16u64;
    let mut kept = 0u64;
    let per_op = ns_per_op(500_000, || {
        if seq.fetch_add(1, Ordering::Relaxed).is_multiple_of(sample) {
            kept += 1;
        }
    });
    assert!(kept > 0);
    assert!(
        per_op < 250.0,
        "access-log sampling decision costs {per_op:.1} ns/op"
    );
}

/// End-to-end version of the budget math: the complete per-request tail —
/// windowed recording, cumulative histogram, id mint and sampling decision
/// — must stay under 5 µs per request, i.e. under 5% of the ≥100 µs floor
/// a loopback request actually costs.
#[test]
fn per_request_obs_tail_is_under_five_percent_of_request_floor() {
    const REQUESTS: u64 = 20_000;
    let seq = AtomicU64::new(0);
    let id_seq = AtomicU64::new(0);
    let start = Instant::now();
    for i in 0..REQUESTS {
        let ns = 50_000 + (i % 1024) * 977;
        let id = format!("1a2b3c4d-{:x}", id_seq.fetch_add(1, Ordering::Relaxed));
        std::hint::black_box(&id);
        registry::record_ns(Hist::ServeRequest, ns);
        window::record_request(Route::Recs, 200, ReadPath::Exact, ns, ns > 1_000_000);
        if seq.fetch_add(1, Ordering::Relaxed).is_multiple_of(8) {
            std::hint::black_box(&id);
        }
    }
    let per_request = start.elapsed().as_nanos() as f64 / REQUESTS as f64;
    assert!(
        per_request < 5_000.0,
        "per-request obs tail costs {per_request:.1} ns — over the 5 µs (5%) budget"
    );
}
