//! Overload-control acceptance test (DESIGN.md §14).
//!
//! A small server with a deliberately tiny admission gate is driven at
//! well over saturating load. The contract under that abuse:
//!
//! * every rejected request is a prompt, complete `503` carrying
//!   `Retry-After` — never a connection reset or a hang;
//! * goodput never collapses to zero (admitted requests keep completing,
//!   and their windowed p99 stays under the configured SLO);
//! * the brownout controller steps the read path down (level ≥ 1 forces
//!   the standby ANN index) while pressure lasts, and steps back to
//!   level 0 with hysteresis once load stops;
//! * after recovery the exact read path serves byte-identical responses
//!   to pre-overload — degraded rankings must not leak forward through
//!   the cache.
//!
//! `x-lrgcn-deadline-ms` deadlines are exercised under the same gate:
//! queued requests whose budget expires are dropped at dequeue with 503.

use lrgcn_data::{Dataset, SplitRatios, SyntheticConfig};
use lrgcn_models::{LayerGcn, LayerGcnConfig, Recommender};
use lrgcn_obs::json::{self, Value};
use lrgcn_serve::chaos;
use lrgcn_serve::{serve, Engine, EngineOptions, ServerConfig, ServerHandle};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Yelp-preset checkpoint (1411 items): big enough that an exact scan
/// with a large k does real work per request, and enough catalog for the
/// standby IVF index the brownout path steps down to.
fn fixture(name: &str) -> (Arc<Dataset>, PathBuf) {
    let log = SyntheticConfig::yelp().generate(99);
    let ds = Arc::new(Dataset::chronological_split(
        "overload",
        &log,
        SplitRatios::default(),
    ));
    let cfg = LayerGcnConfig {
        embedding_dim: 16,
        n_layers: 2,
        ..LayerGcnConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(7);
    let mut model = LayerGcn::new(&ds, cfg, &mut rng);
    model.train_epoch(&ds, 0, &mut rng);
    model.train_epoch(&ds, 1, &mut rng);
    let dir = std::env::temp_dir().join("lrgcn_serve_overload");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let ckpt = dir.join(format!("{name}.ckpt"));
    model.save(&ckpt).expect("save");
    (ds, ckpt)
}

fn start(name: &str, cfg: ServerConfig) -> ServerHandle {
    let (ds, ckpt) = fixture(name);
    let engine = Arc::new(
        Engine::open(
            &ckpt,
            ds,
            EngineOptions {
                n_layers: 2,
                ann_standby: true,
                ..EngineOptions::default()
            },
        )
        .expect("engine"),
    );
    serve(engine, cfg).expect("serve")
}

fn get(addr: SocketAddr, path: &str) -> chaos::ChaosResponse {
    chaos::request(addr, "GET", path, &[], b"", Duration::from_secs(10)).expect("clean request")
}

fn get_json(addr: SocketAddr, path: &str) -> Value {
    let resp = get(addr, path);
    json::parse(&resp.body)
        .unwrap_or_else(|e| panic!("bad JSON from {path}: {e}\n{}", resp.body))
}

fn u64_at(v: &Value, keys: &[&str]) -> u64 {
    let mut cur = v;
    for k in keys {
        cur = cur
            .get(k)
            .unwrap_or_else(|| panic!("missing {k} in {cur:?}"));
    }
    cur.as_f64().unwrap_or_else(|| panic!("non-number at {keys:?}")) as u64
}

/// The headline closed-loop test: ≥2× saturating load against a gate of
/// one compute slot. Covers shedding, Retry-After, no-resets, brownout
/// step-down/step-up, and post-recovery exact-path parity.
#[test]
fn overload_sheds_browns_out_and_recovers_cleanly() {
    let handle = start(
        "acceptance",
        ServerConfig {
            workers: 8,
            // Cache off so pre/post parity compares *recomputed* exact
            // rankings (the bitwise-identity contract), not a cache line.
            cache_capacity: 0,
            max_inflight: 1,
            max_queue: 4,
            slo_p99_ms: Some(250),
            brownout: true,
            brownout_up_ticks: 2,
            brownout_down_ticks: 2,
            brownout_tick: Duration::from_millis(25),
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    // Pre-overload baseline on the exact path, at level 0.
    let health = get_json(addr, "/healthz");
    assert_eq!(u64_at(&health, &["brownout_level"]), 0);
    assert_eq!(health.get("ann_standby"), Some(&Value::Bool(true)));
    let baseline = get(addr, "/recs/5?k=10");
    assert_eq!(baseline.status, 200);

    // 16 closed-loop clients vs one compute slot: ≥2× saturating by
    // construction. Each worker samples distinct users with a large k so
    // admitted requests do real scoring work.
    let stop = Arc::new(AtomicBool::new(false));
    let mut clients = Vec::new();
    for t in 0..16u32 {
        let stop = stop.clone();
        clients.push(std::thread::spawn(move || {
            let (mut ok, mut shed, mut i) = (0u64, 0u64, 0u32);
            while !stop.load(Ordering::SeqCst) {
                i += 1;
                let user = (t * 131 + i) % 64;
                let started = Instant::now();
                let resp = chaos::request(
                    addr,
                    "GET",
                    &format!("/recs/{user}?k=600"),
                    &[],
                    b"",
                    Duration::from_secs(10),
                )
                .expect("overloaded server must answer, not reset");
                match resp.status {
                    200 => ok += 1,
                    503 => {
                        assert!(resp.retry_after, "503 without Retry-After");
                        // A shed must be prompt: far under the 2s
                        // queue-wait ceiling, let alone a socket timeout.
                        assert!(
                            started.elapsed() < Duration::from_secs(2),
                            "shed took {:?}",
                            started.elapsed()
                        );
                        shed += 1;
                    }
                    other => panic!("unexpected status {other}: {}", resp.body),
                }
            }
            (ok, shed)
        }));
    }

    // While the storm runs, watch the (ungated) health endpoint: the
    // controller must step off the exact path within a few ticks.
    let mut max_level = 0;
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        let h = get_json(addr, "/healthz");
        max_level = max_level.max(u64_at(&h, &["brownout_level"]));
        if max_level >= 1 && deadline - Instant::now() < Duration::from_secs(3) {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    stop.store(true, Ordering::SeqCst);
    let (mut total_ok, mut total_shed) = (0, 0);
    for c in clients {
        let (ok, shed) = c.join().expect("client panicked");
        total_ok += ok;
        total_shed += shed;
    }
    assert!(total_ok > 0, "goodput collapsed to zero under overload");
    assert!(
        total_shed > 0,
        "a 1-slot gate under 16 clients must shed ({total_ok} oks)"
    );
    assert!(
        max_level >= 1,
        "brownout never left level 0 under sustained saturation"
    );

    // Recovery: with load gone the controller must walk back to level 0
    // (down_ticks=2 per level, 25ms ticks — give it seconds, not ms).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let h = get_json(addr, "/healthz");
        if u64_at(&h, &["brownout_level"]) == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "brownout never recovered to 0");
        std::thread::sleep(Duration::from_millis(25));
    }

    // Post-recovery parity: the exact path recomputes the identical
    // response — brownout left no residue in the read configuration.
    let after = get(addr, "/recs/5?k=10");
    assert_eq!(after.status, 200);
    assert_eq!(after.body, baseline.body, "exact path drifted after brownout");

    // The controller's ledger is visible: sheds and both step directions
    // were counted (registry is process-global, so only assert nonzero).
    let obs = get_json(addr, "/admin/obs");
    assert!(u64_at(&obs, &["overload", "sheds"]) >= total_shed);
    assert!(u64_at(&obs, &["overload", "step_ups"]) >= 1);
    assert!(u64_at(&obs, &["overload", "step_downs"]) >= 1);
    assert_eq!(u64_at(&obs, &["overload", "max_inflight"]), 1);
    // Admitted latency stayed within the SLO: the 300s window saw every
    // admitted request of this test; its p99 must sit under 250ms.
    let p99 = obs
        .get("windows")
        .and_then(|w| w.get("300s"))
        .and_then(|w| w.get("p99_ms"))
        .and_then(Value::as_f64)
        .expect("300s p99");
    assert!(p99 < 250.0, "admitted p99 {p99}ms breached the 250ms SLO");

    handle.shutdown();
    handle.wait();
}

/// Deadlines under queue pressure: requests that spend their entire
/// `x-lrgcn-deadline-ms` budget waiting for a slot are dropped at dequeue
/// with 503 (+ Retry-After), and malformed deadlines are rejected with
/// 400 before touching the gate.
#[test]
fn queued_deadlines_expire_as_503_not_hangs() {
    let handle = start(
        "deadlines",
        ServerConfig {
            workers: 6,
            cache_capacity: 0,
            max_inflight: 1,
            max_queue: 8,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    let before = u64_at(&get_json(addr, "/admin/obs"), &["overload", "deadline_exceeded"]);
    let mut clients = Vec::new();
    for t in 0..6u32 {
        clients.push(std::thread::spawn(move || {
            let mut expired = 0u64;
            for i in 0..60u32 {
                let resp = chaos::request(
                    addr,
                    "GET",
                    &format!("/recs/{}?k=600", (t * 7 + i) % 32),
                    &[("x-lrgcn-deadline-ms", "1")],
                    b"",
                    Duration::from_secs(10),
                )
                .expect("deadline requests must be answered");
                match resp.status {
                    200 => {}
                    503 => {
                        assert!(resp.retry_after, "deadline 503 without Retry-After");
                        expired += 1;
                    }
                    other => panic!("unexpected status {other}: {}", resp.body),
                }
            }
            expired
        }));
    }
    let expired: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
    assert!(
        expired > 0,
        "1ms budgets behind a 1-slot gate must expire in the queue"
    );
    let after = u64_at(&get_json(addr, "/admin/obs"), &["overload", "deadline_exceeded"]);
    assert!(after >= before + expired);

    // Malformed deadline: rejected before admission, not silently ignored.
    let resp = chaos::request(
        addr,
        "GET",
        "/recs/1?k=5",
        &[("x-lrgcn-deadline-ms", "soon")],
        b"",
        Duration::from_secs(10),
    )
    .expect("answered");
    assert_eq!(resp.status, 400);

    handle.shutdown();
    handle.wait();
}
