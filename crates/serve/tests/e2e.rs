//! End-to-end serving test: train → checkpoint → HTTP server → parity.
//!
//! The headline assertion is **serving parity**: `GET /recs/{u}` must
//! return exactly the item ids the offline evaluator would rank top-K for
//! that user — byte-identical scores, same masking, same tie-break — and
//! must keep doing so when `LRGCN_THREADS` changes (the parallel layer's
//! bitwise-identity contract). The rest of the suite covers the health,
//! metrics, error, micro-batch and hot-reload surfaces over a real socket.

use lrgcn_data::{Dataset, SplitRatios, SyntheticConfig};
use lrgcn_eval::top_k_indices;
use lrgcn_models::{LayerGcn, LayerGcnConfig, Recommender};
use lrgcn_obs::json::{self, Value};
use lrgcn_serve::{serve, Engine, EngineOptions, ServerConfig};
use lrgcn_tensor::par;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Trains a small LayerGCN for 2 epochs and checkpoints it.
fn fixture(name: &str) -> (Arc<Dataset>, LayerGcn, PathBuf) {
    let log = SyntheticConfig::games().scaled(0.05).generate(99);
    let ds = Arc::new(Dataset::chronological_split(
        "e2e",
        &log,
        SplitRatios::default(),
    ));
    let cfg = LayerGcnConfig {
        embedding_dim: 16,
        n_layers: 2,
        ..LayerGcnConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(7);
    let mut model = LayerGcn::new(&ds, cfg, &mut rng);
    model.train_epoch(&ds, 0, &mut rng);
    model.train_epoch(&ds, 1, &mut rng);
    let dir = std::env::temp_dir().join("lrgcn_serve_e2e");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let ckpt = dir.join(format!("{name}.ckpt"));
    model.save(&ckpt).expect("save");
    model.refresh(&ds);
    (ds, model, ckpt)
}

/// A larger catalog for the ANN tests: recall@20 on the default fixture's
/// ~33 items would be trivially saturated (top-20 is most of the catalog),
/// so the IVF tests train on the yelp preset (1411 items) where sub-linear
/// probing actually discards most of the catalog per query. `epochs`
/// matters for recall: early in training the embeddings are near-random
/// and their inner-product neighborhoods have little cluster structure for
/// the coarse quantizer to exploit (after 4 epochs, nprobe=12 of the 38
/// auto cells measures ~0.98 recall@20; 1-epoch embeddings need most of
/// the cells for the same recall).
fn ann_fixture(name: &str, epochs: usize) -> (Arc<Dataset>, PathBuf) {
    let log = SyntheticConfig::yelp().generate(99);
    let ds = Arc::new(Dataset::chronological_split(
        "e2e_ann",
        &log,
        SplitRatios::default(),
    ));
    let cfg = LayerGcnConfig {
        embedding_dim: 16,
        n_layers: 2,
        ..LayerGcnConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(7);
    let mut model = LayerGcn::new(&ds, cfg, &mut rng);
    for epoch in 0..epochs {
        model.train_epoch(&ds, epoch, &mut rng);
    }
    let dir = std::env::temp_dir().join("lrgcn_serve_e2e");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let ckpt = dir.join(format!("{name}.ckpt"));
    model.save(&ckpt).expect("save");
    (ds, ckpt)
}

fn engine_opts() -> EngineOptions {
    EngineOptions {
        n_layers: 2,
        ..EngineOptions::default()
    }
}

/// Minimal blocking HTTP/1.1 client: one request, returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).ok();
    let b = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{b}",
        b.len()
    );
    s.write_all(req.as_bytes()).expect("send");
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("response");
    let status: u16 = resp
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {resp:?}"));
    let body = resp
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get_json(addr: SocketAddr, path: &str) -> (u16, Value) {
    let (status, body) = http(addr, "GET", path, None);
    let v = json::parse(&body).unwrap_or_else(|e| panic!("bad JSON from {path}: {e}\n{body}"));
    (status, v)
}

/// Item ids from a /recs or /similar response body.
fn item_ids(v: &Value) -> Vec<u32> {
    let Some(Value::Arr(items)) = v.get("items") else {
        panic!("no items array in {v:?}");
    };
    items
        .iter()
        .map(|it| it.get("item").and_then(Value::as_f64).expect("item id") as u32)
        .collect()
}

/// The offline evaluator's top-K for one user: score, mask, rank.
fn offline_top_k(model: &LayerGcn, ds: &Dataset, user: u32, k: usize) -> Vec<u32> {
    let mut scores = model.score_users(ds, &[user]);
    let row = scores.row_mut(0);
    for &it in ds.train_items(user) {
        row[it as usize] = f32::NEG_INFINITY;
    }
    top_k_indices(row, k)
}

#[test]
fn served_recs_match_offline_evaluator_across_thread_counts() {
    let (ds, model, ckpt) = fixture("parity");
    let engine = Arc::new(Engine::open(&ckpt, ds.clone(), engine_opts()).expect("open"));
    let handle = serve(engine, ServerConfig::default()).expect("serve");
    let addr = handle.addr();

    let users: Vec<u32> = (0..ds.n_users() as u32).step_by(7).take(8).collect();
    for threads in [1usize, 4] {
        par::set_threads(threads);
        for &u in &users {
            let expect = offline_top_k(&model, &ds, u, 20);
            let (status, v) = get_json(addr, &format!("/recs/{u}?k=20"));
            assert_eq!(status, 200, "user {u} at {threads} threads");
            assert_eq!(
                item_ids(&v),
                expect,
                "served top-20 diverged from the offline evaluator for user {u} at {threads} threads"
            );
        }
    }

    // The masked items really are the user's training items.
    let u = users[0];
    let (_, v) = get_json(addr, &format!("/recs/{u}?k={}", ds.n_items()));
    for it in item_ids(&v) {
        assert!(
            !ds.train_items(u).contains(&it),
            "seen item {it} leaked into /recs"
        );
    }
    // exclude_seen=false ranks the full catalogue.
    let (_, v) = get_json(addr, &format!("/recs/{u}?k={}&exclude_seen=false", ds.n_items()));
    assert_eq!(item_ids(&v).len(), ds.n_items());

    handle.shutdown();
    handle.wait();
    std::fs::remove_file(ckpt).ok();
}

#[test]
fn health_metrics_cache_errors_and_scoring() {
    let (ds, model, ckpt) = fixture("surface");
    let engine = Arc::new(Engine::open(&ckpt, ds.clone(), engine_opts()).expect("open"));
    let st = engine.state();
    let handle = serve(engine, ServerConfig::default()).expect("serve");
    let addr = handle.addr();

    // /healthz
    let (status, v) = get_json(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(v.get("tag").and_then(Value::as_str), Some("layergcn"));
    assert_eq!(v.get("generation").and_then(Value::as_f64), Some(0.0));
    assert_eq!(
        v.get("n_users").and_then(Value::as_f64),
        Some(ds.n_users() as f64)
    );

    // Cache: second identical request is a hit.
    let (_, first) = get_json(addr, "/recs/3?k=5");
    assert_eq!(first.get("cached"), Some(&Value::Bool(false)));
    let (_, second) = get_json(addr, "/recs/3?k=5");
    assert_eq!(second.get("cached"), Some(&Value::Bool(true)));
    assert_eq!(item_ids(&first), item_ids(&second));

    // /similar
    let (status, v) = get_json(addr, "/similar/2?k=5");
    assert_eq!(status, 200);
    assert_eq!(item_ids(&v).len(), 5);
    assert!(!item_ids(&v).contains(&2), "query item in its own neighbours");

    // /score equals direct dot products from the model's final embeddings.
    let (status, body) = {
        let (s, b) = http(addr, "POST", "/score", Some("{\"pairs\": [[0, 1], [2, 3]]}"));
        (s, json::parse(&b).expect("score JSON"))
    };
    assert_eq!(status, 200);
    let Some(Value::Arr(scores)) = body.get("scores") else {
        panic!("no scores in {body:?}");
    };
    let all = model.score_users(&ds, &[0, 2]);
    let got: Vec<f32> = scores.iter().map(|s| s.as_f64().unwrap() as f32).collect();
    assert_eq!(got, vec![all[(0, 1)], all[(1, 3)]]);

    // Error surfaces: 400 on malformed input, 404 on unknown things.
    assert_eq!(http(addr, "GET", "/recs/notanumber", None).0, 400);
    assert_eq!(http(addr, "GET", "/recs/0?k=0", None).0, 400);
    assert_eq!(http(addr, "GET", "/recs/0?k=5&exclude_seen=maybe", None).0, 400);
    assert_eq!(http(addr, "POST", "/score", Some("not json")).0, 400);
    assert_eq!(http(addr, "POST", "/score", Some("{\"pairs\": []}")).0, 400);
    assert_eq!(
        http(addr, "POST", "/score", Some("{\"pairs\": [[0, 999999]]}")).0,
        400
    );
    assert_eq!(http(addr, "GET", "/nope", None).0, 404);
    assert_eq!(http(addr, "GET", "/recs/999999?k=5", None).0, 404);
    assert_eq!(http(addr, "GET", &format!("/similar/{}", ds.n_items()), None).0, 404);
    assert_eq!(http(addr, "PUT", "/recs/0", None).0, 405);

    // /metrics is Prometheus text exposing the serve instrumentation.
    let (status, text) = http(addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    for metric in [
        "lrgcn_serve_http_requests_total",
        "lrgcn_serve_http_errors_total",
        "lrgcn_serve_cache_hits_total",
        "lrgcn_serve_score_batches_total",
        "lrgcn_serve_request_ns_count",
        "lrgcn_serve_score_batch_ns_sum",
    ] {
        assert!(text.contains(metric), "missing {metric} in /metrics");
    }
    let hits: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("lrgcn_serve_cache_hits_total "))
        .expect("cache hits line")
        .parse()
        .expect("numeric");
    assert!(hits >= 1, "cache hit above was not counted");

    // st (an old snapshot) is still usable after all of the above.
    assert_eq!(st.generation, 0);
    handle.shutdown();
    handle.wait();
    std::fs::remove_file(ckpt).ok();
}

#[test]
fn quant_read_path_keeps_recall_and_reports_health() {
    let (ds, _model, ckpt) = fixture("quant");
    let exact = Engine::open(&ckpt, ds.clone(), engine_opts()).expect("open exact");
    let quant = Engine::open(
        &ckpt,
        ds.clone(),
        EngineOptions {
            quant: true,
            ..engine_opts()
        },
    )
    .expect("open quant");
    let est = exact.state();
    let qst = quant.state();

    // The build-time guardrail itself must clear the acceptance bar.
    assert!(
        qst.quant_recall >= 0.99,
        "build-time quant recall {} < 0.99",
        qst.quant_recall
    );

    // And so must a direct measurement over a fresh user sample: the
    // two-stage quantized top-20 vs the exact f32 top-20.
    let users: Vec<u32> = (0..ds.n_users() as u32).step_by(50).take(40).collect();
    let mut total = 0.0;
    for &u in &users {
        let e: Vec<u32> = est
            .top_k(&ds, u, 20, true)
            .expect("exact top_k")
            .iter()
            .map(|&(i, _)| i)
            .collect();
        let q: Vec<u32> = qst
            .top_k(&ds, u, 20, true)
            .expect("quant top_k")
            .iter()
            .map(|&(i, _)| i)
            .collect();
        total += lrgcn_eval::overlap_fraction(&q, &e);
    }
    let recall = total / users.len() as f64;
    assert!(recall >= 0.99, "measured quant recall@20 {recall} < 0.99");

    // The quant engine over HTTP: health reports the mode and the gauge,
    // requests succeed, and the quant counters tick.
    let handle = serve(Arc::new(quant), ServerConfig::default()).expect("serve");
    let addr = handle.addr();
    let (status, v) = get_json(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(v.get("quant"), Some(&Value::Bool(true)));
    let ppm = v.get("quant_recall_ppm").and_then(Value::as_f64).expect("ppm");
    assert!(ppm >= 990_000.0, "healthz recall {ppm} ppm < 990000");
    let (status, v) = get_json(addr, "/recs/0?k=20");
    assert_eq!(status, 200);
    assert!(!item_ids(&v).is_empty());
    let (status, v) = get_json(addr, "/similar/1?k=10");
    assert_eq!(status, 200);
    assert!(!item_ids(&v).contains(&1));
    let (_, text) = http(addr, "GET", "/metrics", None);
    let scans: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("lrgcn_serve_quant_scans_total "))
        .expect("quant scans line")
        .parse()
        .expect("numeric");
    assert!(scans >= 2, "quant scans not counted: {scans}");
    assert!(
        text.contains("lrgcn_serve_quant_recall_ppm "),
        "recall gauge missing from /metrics"
    );
    handle.shutdown();
    handle.wait();
    std::fs::remove_file(ckpt).ok();
}

#[test]
fn ann_read_path_recall_determinism_and_health() {
    let (ds, ckpt) = ann_fixture("ann", 4);
    let exact = Engine::open(&ckpt, ds.clone(), engine_opts()).expect("open exact");
    let ann_opts = EngineOptions {
        ann: true,
        ann_cells: 0, // auto: √1411 ≈ 38
        nprobe: 12,
        ..engine_opts()
    };
    let ann = Engine::open(&ckpt, ds.clone(), ann_opts.clone()).expect("open ann");
    let est = exact.state();
    let ast = ann.state();
    assert!(ast.ann_enabled());
    assert_eq!(ast.ann_cells(), 38);
    assert_eq!(ast.ann_nprobe(), 12);

    // Build-time guardrail and a direct measurement over a fresh user
    // sample must both clear the acceptance floor.
    assert!(
        ast.ann_recall >= 0.95,
        "build-time ann recall {} < 0.95",
        ast.ann_recall
    );
    let users: Vec<u32> = (0..ds.n_users() as u32).step_by(50).take(40).collect();
    let mut total = 0.0;
    for &u in &users {
        let e: Vec<u32> = est
            .top_k(&ds, u, 20, true)
            .expect("exact top_k")
            .iter()
            .map(|&(i, _)| i)
            .collect();
        let a: Vec<u32> = ast
            .top_k(&ds, u, 20, true)
            .expect("ann top_k")
            .iter()
            .map(|&(i, _)| i)
            .collect();
        total += lrgcn_eval::overlap_fraction(&a, &e);
    }
    let recall = total / users.len() as f64;
    assert!(recall >= 0.95, "measured ann recall@20 {recall} < 0.95");

    // Determinism: engines built at LRGCN_THREADS=1 and 4 must serve
    // identical results — same items, bitwise-equal scores.
    par::set_threads(1);
    let eng1 = Engine::open(&ckpt, ds.clone(), ann_opts.clone()).expect("open t1");
    par::set_threads(4);
    let eng4 = Engine::open(&ckpt, ds.clone(), ann_opts.clone()).expect("open t4");
    let (st1, st4) = (eng1.state(), eng4.state());
    for &u in &users {
        let a = st1.top_k(&ds, u, 20, true).expect("t1");
        let b = st4.top_k(&ds, u, 20, true).expect("t4");
        assert_eq!(a.len(), b.len(), "user {u}: lengths diverged across threads");
        for ((ia, sa), (ib, sb)) in a.iter().zip(&b) {
            assert_eq!(ia, ib, "user {u}: items diverged across thread counts");
            assert_eq!(
                sa.to_bits(),
                sb.to_bits(),
                "user {u}: scores not bitwise equal across thread counts"
            );
        }
    }

    // ANN composed with quant, over HTTP: health reports both modes, the
    // gauge and counters tick, and the read paths answer.
    let both = Engine::open(
        &ckpt,
        ds.clone(),
        EngineOptions {
            quant: true,
            ..ann_opts
        },
    )
    .expect("open ann+quant");
    let handle = serve(Arc::new(both), ServerConfig::default()).expect("serve");
    let addr = handle.addr();
    let (status, v) = get_json(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(v.get("ann"), Some(&Value::Bool(true)));
    assert_eq!(v.get("quant"), Some(&Value::Bool(true)));
    assert_eq!(v.get("ann_cells").and_then(Value::as_f64), Some(38.0));
    assert_eq!(v.get("ann_nprobe").and_then(Value::as_f64), Some(12.0));
    let ppm = v.get("ann_recall_ppm").and_then(Value::as_f64).expect("ppm");
    assert!(ppm >= 950_000.0, "healthz ann recall {ppm} ppm < 950000");
    let (status, v) = get_json(addr, "/recs/0?k=20");
    assert_eq!(status, 200);
    assert!(!item_ids(&v).is_empty());
    let (status, v) = get_json(addr, "/similar/1?k=10");
    assert_eq!(status, 200);
    assert!(!item_ids(&v).contains(&1));
    let (_, text) = http(addr, "GET", "/metrics", None);
    let probed: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("lrgcn_serve_ann_cells_probed_total "))
        .expect("cells probed line")
        .parse()
        .expect("numeric");
    assert!(probed >= 12, "ann cells probed not counted: {probed}");
    let cands: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("lrgcn_serve_ann_candidates_total "))
        .expect("candidates line")
        .parse()
        .expect("numeric");
    assert!(cands > 0, "ann candidates not counted");
    assert!(
        text.contains("lrgcn_serve_ann_recall_ppm "),
        "ann recall gauge missing from /metrics"
    );
    handle.shutdown();
    handle.wait();
    std::fs::remove_file(ckpt).ok();
}

#[test]
fn ann_quant_hot_reload_under_concurrent_load_fails_nothing() {
    let (ds, ckpt) = ann_fixture("ann_reload", 1);
    let engine = Arc::new(
        Engine::open(
            &ckpt,
            ds.clone(),
            EngineOptions {
                ann: true,
                quant: true,
                ann_cells: 16,
                nprobe: 8,
                ..engine_opts()
            },
        )
        .expect("open"),
    );
    let handle = serve(
        engine,
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .expect("serve");
    let addr = handle.addr();

    // 4 hammer threads × 30 requests against the ANN read paths while the
    // main thread rebuilds the index 3 times via /admin/reload.
    let clients: Vec<_> = (0..4u32)
        .map(|c| {
            std::thread::spawn(move || {
                let mut statuses = Vec::new();
                for i in 0..30u32 {
                    let (status, _) = if i % 3 == 0 {
                        http(addr, "GET", &format!("/similar/{}?k=10", (c + i) % 10), None)
                    } else {
                        http(addr, "GET", &format!("/recs/{}?k=10", (c * 5 + i) % 20), None)
                    };
                    statuses.push(status);
                }
                statuses
            })
        })
        .collect();

    let mut generation = 0;
    for _ in 0..3 {
        std::thread::sleep(Duration::from_millis(10));
        let (status, v) = {
            let (s, b) = http(addr, "POST", "/admin/reload", None);
            (s, json::parse(&b).expect("reload JSON"))
        };
        assert_eq!(status, 200, "reload failed: {v:?}");
        generation = v.get("generation").and_then(Value::as_f64).expect("gen") as u64;
    }
    assert_eq!(generation, 3);

    for c in clients {
        let statuses = c.join().expect("client join");
        assert!(
            statuses.iter().all(|&s| s == 200),
            "requests failed during ANN hot reload: {statuses:?}"
        );
    }

    // The rebuilt index answers exactly like a fresh engine on the same
    // checkpoint — the deterministic build makes reloads idempotent.
    let (_, v) = get_json(addr, "/recs/1?k=10");
    assert_eq!(v.get("generation").and_then(Value::as_f64), Some(3.0));
    let engine2 = Engine::open(
        &ckpt,
        ds,
        EngineOptions {
            ann: true,
            quant: true,
            ann_cells: 16,
            nprobe: 8,
            ..engine_opts()
        },
    )
    .expect("reopen");
    let fresh = engine2
        .state()
        .top_k(engine2.dataset(), 1, 10, true)
        .expect("top_k");
    assert_eq!(
        item_ids(&v),
        fresh.iter().map(|&(it, _)| it).collect::<Vec<_>>(),
        "reload changed ANN answers although the checkpoint did not change"
    );

    let (status, _) = http(addr, "POST", "/admin/shutdown", None);
    assert_eq!(status, 200);
    handle.wait();
    std::fs::remove_file(ckpt).ok();
}

#[test]
fn hot_reload_under_concurrent_load_fails_nothing() {
    let (ds, _model, ckpt) = fixture("reload");
    let engine = Arc::new(Engine::open(&ckpt, ds.clone(), engine_opts()).expect("open"));
    let handle = serve(
        engine,
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .expect("serve");
    let addr = handle.addr();

    // 4 hammer threads × 30 requests, mixing cached recs and batched
    // scoring, while the main thread swaps the checkpoint 3 times.
    let clients: Vec<_> = (0..4u32)
        .map(|c| {
            std::thread::spawn(move || {
                let mut statuses = Vec::new();
                for i in 0..30u32 {
                    let (status, _) = if i % 3 == 0 {
                        http(addr, "POST", "/score", Some("{\"pairs\": [[1, 1], [2, 2]]}"))
                    } else {
                        http(addr, "GET", &format!("/recs/{}?k=10", (c * 5 + i) % 20), None)
                    };
                    statuses.push(status);
                }
                statuses
            })
        })
        .collect();

    let mut generation = 0;
    for _ in 0..3 {
        std::thread::sleep(Duration::from_millis(10));
        let (status, v) = {
            let (s, b) = http(addr, "POST", "/admin/reload", None);
            (s, json::parse(&b).expect("reload JSON"))
        };
        assert_eq!(status, 200, "reload failed: {v:?}");
        generation = v.get("generation").and_then(Value::as_f64).expect("gen") as u64;
    }
    assert_eq!(generation, 3);

    for c in clients {
        let statuses = c.join().expect("client join");
        assert!(
            statuses.iter().all(|&s| s == 200),
            "requests failed during hot reload: {statuses:?}"
        );
    }

    // Post-reload answers match pre-reload answers (same file on disk).
    let (_, v) = get_json(addr, "/recs/1?k=10");
    assert_eq!(v.get("generation").and_then(Value::as_f64), Some(3.0));
    let engine2 = Engine::open(&ckpt, ds, engine_opts()).expect("reopen");
    let fresh = engine2
        .state()
        .top_k(engine2.dataset(), 1, 10, true)
        .expect("top_k");
    assert_eq!(
        item_ids(&v),
        fresh.iter().map(|&(it, _)| it).collect::<Vec<_>>(),
        "reload changed answers although the checkpoint did not change"
    );

    // Graceful shutdown over HTTP: drain, then workers exit.
    let (status, _) = http(addr, "POST", "/admin/shutdown", None);
    assert_eq!(status, 200);
    assert!(handle.is_shutting_down());
    handle.wait();
    std::fs::remove_file(ckpt).ok();
}
