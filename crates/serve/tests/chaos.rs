//! Adversarial HTTP framing soak against a live server.
//!
//! The server's contract under hostile sockets (DESIGN.md §14): no worker
//! ever panics or wedges, every malformed connection is answered (or
//! dropped) with a clean parse error — 400, or 431 for oversized headers
//! — and valid requests interleaved with the abuse keep answering 200
//! with byte-identical rankings. The fault vocabulary comes from
//! `lrgcn_serve::chaos`, so the same seeded plans drive this soak and the
//! `bench_pr10` overload bench.

use lrgcn_data::{Dataset, SplitRatios, SyntheticConfig};
use lrgcn_models::{LayerGcn, LayerGcnConfig, Recommender};
use lrgcn_serve::chaos::{self, ChaosClient, FaultPlan, Outcome};
use lrgcn_serve::{serve, Engine, EngineOptions, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn fixture(name: &str) -> (Arc<Dataset>, PathBuf) {
    let log = SyntheticConfig::games().scaled(0.05).generate(99);
    let ds = Arc::new(Dataset::chronological_split(
        "chaos",
        &log,
        SplitRatios::default(),
    ));
    let cfg = LayerGcnConfig {
        embedding_dim: 16,
        n_layers: 2,
        ..LayerGcnConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(7);
    let mut model = LayerGcn::new(&ds, cfg, &mut rng);
    model.train_epoch(&ds, 0, &mut rng);
    model.train_epoch(&ds, 1, &mut rng);
    let dir = std::env::temp_dir().join("lrgcn_serve_chaos");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let ckpt = dir.join(format!("{name}.ckpt"));
    model.save(&ckpt).expect("save");
    (ds, ckpt)
}

fn start_server(name: &str) -> (Arc<Dataset>, lrgcn_serve::ServerHandle) {
    let (ds, ckpt) = fixture(name);
    let engine = Arc::new(
        Engine::open(
            &ckpt,
            ds.clone(),
            EngineOptions {
                n_layers: 2,
                ..EngineOptions::default()
            },
        )
        .expect("engine"),
    );
    let handle = serve(
        engine,
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .expect("serve");
    (ds, handle)
}

fn clean_get(addr: SocketAddr, path: &str) -> chaos::ChaosResponse {
    chaos::request(addr, "GET", path, &[], b"", Duration::from_secs(10)).expect("clean request")
}

/// The headline soak: four clients interleave planned connection faults
/// (aborts, slow-loris stalls, torn frames, garbage) with valid requests
/// for ~100 connections each. Every clean request must be answered 200,
/// no clean request may die at the transport layer, and the server must
/// come out of the soak serving the same bytes it served before it.
#[test]
fn hostile_sockets_never_take_down_valid_traffic() {
    let (_ds, handle) = start_server("soak");
    let addr = handle.addr();
    let before = clean_get(addr, "/recs/0?k=10");
    assert_eq!(before.status, 200);

    let mut threads = Vec::new();
    for t in 0..4u64 {
        let plan = FaultPlan::parse("abort:0.2,slowloris:0.1,torn:0.2,garbage:0.2", 100 + t)
            .expect("plan");
        threads.push(std::thread::spawn(move || {
            let mut client = ChaosClient::new(addr, plan);
            client.slow_hold = Duration::from_millis(20);
            let (mut ok, mut faulted) = (0u64, 0u64);
            for i in 0..100u32 {
                match client.get(&format!("/recs/{}?k=5", i % 8)) {
                    Outcome::Answered(resp) => {
                        assert_eq!(resp.status, 200, "clean request failed: {}", resp.body);
                        assert!(resp.body.contains("\"items\""), "bad body {}", resp.body);
                        ok += 1;
                    }
                    Outcome::Faulted(_) => faulted += 1,
                    Outcome::TransportError(e) => {
                        panic!("clean request hit a transport error: {e}")
                    }
                }
            }
            (ok, faulted)
        }));
    }
    let (mut total_ok, mut total_faulted) = (0, 0);
    for t in threads {
        let (ok, faulted) = t.join().expect("no soak thread may panic");
        total_ok += ok;
        total_faulted += faulted;
    }
    assert!(total_ok >= 100, "goodput collapsed: {total_ok} clean 200s");
    assert!(
        total_faulted >= 100,
        "soak was vacuous: only {total_faulted} faults fired"
    );

    // The server is intact: health answers, metrics scrape, and the
    // pre-soak ranking is reproduced byte for byte (both responses are
    // cache hits at the same generation, so full-body equality is exact).
    assert_eq!(clean_get(addr, "/healthz").status, 200);
    assert_eq!(clean_get(addr, "/metrics").status, 200);
    let baseline = clean_get(addr, "/recs/0?k=10");
    let after = clean_get(addr, "/recs/0?k=10");
    assert_eq!(after.body, baseline.body, "post-soak ranking drifted");

    let (status, _) = raw(addr, b"POST /admin/shutdown HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    assert_eq!(status, 200);
    handle.wait();
}

/// Writes raw bytes, returns (status, full response text). Tolerates the
/// server hanging up mid-write (it may reject before we finish sending).
fn raw(addr: SocketAddr, bytes: &[u8]) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let _ = s.write_all(bytes);
    let mut resp = String::new();
    let _ = s.read_to_string(&mut resp);
    let status = resp
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {resp:?}"));
    (status, resp)
}

/// Framing edge cases one by one, each against the live server, with a
/// valid request after every abuse proving the worker pool survived.
#[test]
fn framing_abuse_gets_clean_errors_not_resets() {
    let (_ds, handle) = start_server("framing");
    let addr = handle.addr();

    // Oversized headers: 431, not 400, not a reset.
    let mut big = b"GET /healthz HTTP/1.1\r\n".to_vec();
    let pad = format!("X-Pad: {}\r\n", "a".repeat(1000));
    for _ in 0..20 {
        big.extend_from_slice(pad.as_bytes());
    }
    // No terminating blank line: the cap must trip first.
    let (status, resp) = raw(addr, &big);
    assert_eq!(status, 431, "oversized headers: {resp}");
    assert_eq!(clean_get(addr, "/healthz").status, 200);

    // Unparsable Content-Length.
    let (status, _) = raw(
        addr,
        b"POST /score HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
    );
    assert_eq!(status, 400);

    // Garbage that never was HTTP.
    let (status, _) = raw(addr, &[0xFF; 64]);
    assert_eq!(status, 400);

    // A request split into single-byte writes must still parse: framing
    // cannot assume whole-head reads.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        for b in b"GET /recs/1?k=3 HTTP/1.1\r\nHost: drip\r\n\r\n" {
            s.write_all(&[*b]).expect("drip write");
            std::thread::sleep(Duration::from_micros(200));
        }
        let mut resp = String::new();
        s.read_to_string(&mut resp).expect("drip response");
        assert!(resp.starts_with("HTTP/1.1 200"), "split writes: {resp}");
    }

    // Abrupt close mid-request: the worker must shrug and serve the next
    // connection.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(b"GET /recs/1 HTT").expect("partial write");
        drop(s);
    }
    assert_eq!(clean_get(addr, "/recs/1?k=3").status, 200);

    handle.shutdown();
    handle.wait();
}
