//! The serving engine: checkpoint + dataset → an immutable scoring state
//! with atomic hot reload.
//!
//! [`Engine::open`] reads a tagged checkpoint (see
//! `lrgcn_models::checkpoint`), rebuilds the matching model family around
//! it, runs the inference propagation once and keeps only the **final node
//! embedding matrix** — the `(n_users + n_items) × d` table the offline
//! evaluator scores from. Request handling then reuses the *same* kernels
//! as the evaluator ([`lrgcn_models::common::score_from_final`], the same
//! `-inf` masking of training items, [`lrgcn_eval::top_k_with_scores`]), so
//! a served top-K list is byte-identical to the offline ranking — for any
//! `LRGCN_THREADS`, by the parallel layer's bitwise-identity contract.
//!
//! Reload builds a fresh [`EngineState`] off to the side and swaps it in
//! with one `RwLock<Arc<_>>` write: requests in flight keep scoring against
//! the `Arc` snapshot they already cloned, so zero requests fail or observe
//! a torn state during a reload. The generation counter feeds the response
//! cache keys, which is what invalidates cached answers.

use lrgcn_data::Dataset;
use lrgcn_eval::top_k_with_scores;
use lrgcn_graph::EdgePruner;
use lrgcn_models::checkpoint::{model_tag, require_entry, SERVABLE_TAGS};
use lrgcn_models::common::score_from_final;
use lrgcn_models::{
    LayerGcn, LayerGcnConfig, LightGcn, LightGcnConfig, LrGccf, LrGccfConfig, Recommender,
};
use lrgcn_obs::{registry, Counter};
use lrgcn_tensor::matrix::dot;
use lrgcn_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Model hyper-parameters the checkpoint does not record. They must match
/// the training invocation (same contract as `lrgcn evaluate`); the
/// embedding dimension itself is inferred from the checkpoint.
#[derive(Clone, Debug)]
pub struct EngineOptions {
    pub n_layers: usize,
    /// Degree-sensitive dropout ratio used to *construct* LayerGCN (only
    /// training uses it; inference propagates over the full adjacency).
    pub dropout: f32,
    pub seed: u64,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            n_layers: 4,
            dropout: 0.1,
            seed: 2023,
        }
    }
}

/// One immutable, fully-materialized serving snapshot.
pub struct EngineState {
    /// Human-readable model name (`Recommender::name`).
    pub model_name: String,
    /// Checkpoint family tag (see `lrgcn_models::checkpoint::SERVABLE_TAGS`).
    pub tag: String,
    /// Monotone reload counter; part of every cache key.
    pub generation: u64,
    /// Learnable scalar count, for /healthz.
    pub n_parameters: usize,
    pub n_users: usize,
    pub n_items: usize,
    pub dim: usize,
    /// Final node embeddings, users first: `(n_users + n_items) × dim`.
    final_emb: Matrix,
    /// Per-item L2 norms of the item block (cosine for /similar).
    item_norms: Vec<f32>,
}

impl EngineState {
    fn new(
        model_name: String,
        tag: String,
        generation: u64,
        n_parameters: usize,
        n_users: usize,
        n_items: usize,
        final_emb: Matrix,
    ) -> Self {
        let dim = final_emb.cols();
        let item_norms = (n_users..n_users + n_items)
            .map(|r| {
                let row = final_emb.row(r);
                dot(row, row).sqrt()
            })
            .collect();
        Self {
            model_name,
            tag,
            generation,
            n_parameters,
            n_users,
            n_items,
            dim,
            final_emb,
            item_norms,
        }
    }

    /// The raw score matrix for a chunk of users — the exact evaluator
    /// scoring path (`score_from_final`: gather user rows, `U · Iᵀ`).
    pub fn score_users(&self, users: &[u32]) -> Matrix {
        score_from_final(&self.final_emb, self.n_users, users)
    }

    /// Top-K recommendations for one user, optionally masking the items the
    /// user interacted with in training — the same masking and the same
    /// tie-break as the offline evaluator.
    pub fn top_k(
        &self,
        ds: &Dataset,
        user: u32,
        k: usize,
        exclude_seen: bool,
    ) -> Result<Vec<(u32, f32)>, String> {
        if user as usize >= self.n_users {
            return Err(format!("user {user} out of range (0..{})", self.n_users));
        }
        let mut scores = self.score_users(&[user]);
        let row = scores.row_mut(0);
        if exclude_seen {
            for &it in ds.train_items(user) {
                row[it as usize] = f32::NEG_INFINITY;
            }
        }
        Ok(top_k_with_scores(row, k))
    }

    /// Top-K most similar items by embedding cosine (the query item itself
    /// excluded). Zero-norm embeddings score 0 rather than NaN.
    pub fn similar_items(&self, item: u32, k: usize) -> Result<Vec<(u32, f32)>, String> {
        if item as usize >= self.n_items {
            return Err(format!("item {item} out of range (0..{})", self.n_items));
        }
        let q = self.final_emb.row(self.n_users + item as usize);
        let qn = self.item_norms[item as usize];
        let mut scores = vec![0.0f32; self.n_items];
        for (i, s) in scores.iter_mut().enumerate() {
            let n = qn * self.item_norms[i];
            if n > 0.0 {
                *s = dot(q, self.final_emb.row(self.n_users + i)) / n;
            }
        }
        scores[item as usize] = f32::NEG_INFINITY;
        Ok(top_k_with_scores(&scores, k))
    }

    /// Dot-product scores for explicit `(user, item)` pairs — the
    /// micro-batcher's coalesced kernel. Out-of-range ids are an error (the
    /// whole batch is rejected so the caller can 400 it).
    pub fn score_pairs(&self, pairs: &[(u32, u32)]) -> Result<Vec<f32>, String> {
        for &(u, i) in pairs {
            if u as usize >= self.n_users {
                return Err(format!("user {u} out of range (0..{})", self.n_users));
            }
            if i as usize >= self.n_items {
                return Err(format!("item {i} out of range (0..{})", self.n_items));
            }
        }
        Ok(pairs
            .iter()
            .map(|&(u, i)| {
                dot(
                    self.final_emb.row(u as usize),
                    self.final_emb.row(self.n_users + i as usize),
                )
            })
            .collect())
    }
}

/// Loads a tagged checkpoint and materializes an [`EngineState`].
fn build_state(
    ds: &Dataset,
    opts: &EngineOptions,
    ckpt: &Path,
    generation: u64,
) -> Result<EngineState, String> {
    let entries = lrgcn_tensor::io::load_checkpoint(ckpt)
        .map_err(|e| format!("loading {}: {e}", ckpt.display()))?;
    // Untagged files predate the marker and were always LayerGCN.
    let tag = model_tag(&entries).unwrap_or("layergcn").to_string();
    let ego = require_entry(&entries, "ego")?;
    let n_nodes = ds.n_users() + ds.n_items();
    if ego.rows() != n_nodes {
        return Err(format!(
            "checkpoint has {} node embeddings but the dataset has {} users + {} items — \
             pass the same --input/--kcore used at training time",
            ego.rows(),
            ds.n_users(),
            ds.n_items()
        ));
    }
    let dim = ego.cols();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let (model_name, n_parameters, final_emb) = match tag.as_str() {
        "layergcn" => {
            let cfg = LayerGcnConfig {
                embedding_dim: dim,
                n_layers: opts.n_layers,
                pruner: if opts.dropout > 0.0 {
                    EdgePruner::DegreeDrop {
                        ratio: opts.dropout,
                    }
                } else {
                    EdgePruner::None
                },
                ..LayerGcnConfig::default()
            };
            let mut m = LayerGcn::new(ds, cfg, &mut rng);
            m.load_checkpoint_entries(&entries)?;
            (m.name(), m.n_parameters(), m.final_embeddings())
        }
        "lightgcn" => {
            let cfg = LightGcnConfig {
                embedding_dim: dim,
                n_layers: opts.n_layers,
                ..LightGcnConfig::default()
            };
            let mut m = LightGcn::new(ds, cfg, &mut rng);
            m.load_checkpoint_entries(&entries)?;
            (m.name(), m.n_parameters(), m.final_embeddings())
        }
        "lrgccf" => {
            let cfg = LrGccfConfig {
                embedding_dim: dim,
                n_layers: opts.n_layers,
                ..LrGccfConfig::default()
            };
            let mut m = LrGccf::new(ds, cfg, &mut rng);
            m.load_checkpoint_entries(&entries)?;
            (m.name(), m.n_parameters(), m.final_embeddings())
        }
        other => {
            return Err(format!(
                "checkpoint is tagged {other:?}, which this server cannot rebuild \
                 (supported: {})",
                SERVABLE_TAGS.join(", ")
            ))
        }
    };
    Ok(EngineState::new(
        model_name,
        tag,
        generation,
        n_parameters,
        ds.n_users(),
        ds.n_items(),
        final_emb,
    ))
}

/// The live engine: dataset + current [`EngineState`] behind a
/// `RwLock<Arc<_>>` for lock-free-after-clone reads and atomic reloads.
pub struct Engine {
    ds: Arc<Dataset>,
    opts: EngineOptions,
    ckpt_path: Mutex<PathBuf>,
    state: RwLock<Arc<EngineState>>,
    generation: AtomicU64,
}

impl Engine {
    /// Loads the checkpoint once and propagates the final embeddings.
    pub fn open(
        ckpt: impl AsRef<Path>,
        ds: Arc<Dataset>,
        opts: EngineOptions,
    ) -> Result<Engine, String> {
        let ckpt = ckpt.as_ref().to_path_buf();
        let state = build_state(&ds, &opts, &ckpt, 0)?;
        Ok(Engine {
            ds,
            opts,
            ckpt_path: Mutex::new(ckpt),
            state: RwLock::new(Arc::new(state)),
            generation: AtomicU64::new(0),
        })
    }

    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.ds
    }

    /// The current snapshot. Cloning the `Arc` means the caller keeps a
    /// consistent state for its whole request even across a reload.
    pub fn state(&self) -> Arc<EngineState> {
        self.state.read().expect("engine state poisoned").clone()
    }

    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Re-reads the checkpoint file (which may have been replaced on disk)
    /// and atomically swaps the serving state. On any error the old state
    /// stays live. Returns the new state.
    pub fn reload(&self) -> Result<Arc<EngineState>, String> {
        let path = self.ckpt_path.lock().expect("ckpt path poisoned").clone();
        self.reload_from(&path)
    }

    /// [`Engine::reload`] from an explicit path, which becomes the new
    /// checkpoint path on success.
    pub fn reload_from(&self, path: &Path) -> Result<Arc<EngineState>, String> {
        let generation = self.generation.load(Ordering::SeqCst) + 1;
        let state = Arc::new(build_state(&self.ds, &self.opts, path, generation)?);
        *self.ckpt_path.lock().expect("ckpt path poisoned") = path.to_path_buf();
        *self.state.write().expect("engine state poisoned") = state.clone();
        self.generation.store(generation, Ordering::SeqCst);
        registry::add(Counter::ServeReloads, 1);
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrgcn_models::checkpoint::save_model;

    /// 4 users × 6 items, every user trained on `{u, u+1, u+2} mod 6`.
    fn tiny_dataset() -> Arc<Dataset> {
        let mut train = Vec::new();
        for u in 0..4u32 {
            for o in 0..3u32 {
                train.push((u, (u + o) % 6));
            }
        }
        Arc::new(Dataset::from_parts(
            "tiny",
            4,
            6,
            train,
            vec![vec![]; 4],
            vec![vec![4], vec![5], vec![0], vec![1]],
        ))
    }

    fn save_lightgcn(ds: &Dataset, path: &Path) {
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = LightGcn::new(
            ds,
            LightGcnConfig {
                embedding_dim: 8,
                n_layers: 2,
                ..LightGcnConfig::default()
            },
            &mut rng,
        );
        m.train_epoch(ds, 0, &mut rng);
        save_model(path, "lightgcn", &m).expect("save");
    }

    #[test]
    fn open_rebuilds_lrgccf_checkpoints() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("lrgcn_engine_lrgccf");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("m.ckpt");
        let cfg = LrGccfConfig {
            embedding_dim: 8,
            n_layers: 2,
            ..LrGccfConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = LrGccf::new(&ds, cfg.clone(), &mut rng);
        m.train_epoch(&ds, 0, &mut rng);
        save_model(&ckpt, "lrgccf", &m).expect("save");

        let eng = Engine::open(&ckpt, ds.clone(), EngineOptions {
            n_layers: 2,
            ..EngineOptions::default()
        })
        .expect("open");
        let st = eng.state();
        assert_eq!(st.tag, "lrgccf");
        // LR-GCCF serves the concatenated residual layers: (L+1) * d wide.
        assert_eq!(st.dim, 8 * 3);
        m.refresh(&ds);
        let expect = m.score_users(&ds, &[0, 1, 2, 3]);
        assert!(st.score_users(&[0, 1, 2, 3]).approx_eq(&expect, 0.0));
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn unknown_tags_name_every_servable_family() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("lrgcn_engine_badtag");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("m.ckpt");
        let marker = Matrix::zeros(0, 0);
        let ego = Matrix::zeros(10, 4);
        lrgcn_tensor::io::save_checkpoint(
            &ckpt,
            &[("__model__:mystery", &marker), ("ego", &ego)],
        )
        .expect("save");
        let err = match Engine::open(&ckpt, ds, EngineOptions::default()) {
            Ok(_) => panic!("unknown tag must not open"),
            Err(e) => e,
        };
        for tag in SERVABLE_TAGS {
            assert!(err.contains(tag), "error {err:?} does not mention {tag}");
        }
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn open_infers_dim_and_scores_match_the_model() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("lrgcn_engine_open");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("m.ckpt");
        save_lightgcn(&ds, &ckpt);

        let eng = Engine::open(&ckpt, ds.clone(), EngineOptions {
            n_layers: 2,
            ..EngineOptions::default()
        })
        .expect("open");
        let st = eng.state();
        assert_eq!(st.tag, "lightgcn");
        assert_eq!(st.dim, 8);
        assert_eq!((st.n_users, st.n_items), (4, 6));

        // Engine scores == the model's own refresh+score path.
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = LightGcn::new(
            &ds,
            LightGcnConfig {
                embedding_dim: 8,
                n_layers: 2,
                ..LightGcnConfig::default()
            },
            &mut rng,
        );
        let entries = lrgcn_tensor::io::load_checkpoint(&ckpt).expect("entries");
        m.load_checkpoint_entries(&entries).expect("restore");
        m.refresh(&ds);
        let expect = m.score_users(&ds, &[0, 1, 2, 3]);
        assert!(st.score_users(&[0, 1, 2, 3]).approx_eq(&expect, 0.0));
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn top_k_masks_training_items_only_when_asked() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("lrgcn_engine_mask");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("m.ckpt");
        save_lightgcn(&ds, &ckpt);
        let eng = Engine::open(&ckpt, ds.clone(), EngineOptions {
            n_layers: 2,
            ..EngineOptions::default()
        })
        .expect("open");
        let st = eng.state();

        let masked = st.top_k(&ds, 0, 6, true).expect("top_k");
        for &(it, _) in &masked {
            assert!(!ds.train_items(0).contains(&it), "seen item {it} leaked");
        }
        assert_eq!(masked.len(), 3); // 6 items - 3 seen
        let unmasked = st.top_k(&ds, 0, 6, false).expect("top_k");
        assert_eq!(unmasked.len(), 6);
        assert!(st.top_k(&ds, 99, 5, true).is_err());
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn similar_items_excludes_self_and_orders_by_cosine() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("lrgcn_engine_sim");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("m.ckpt");
        save_lightgcn(&ds, &ckpt);
        let eng = Engine::open(&ckpt, ds, EngineOptions {
            n_layers: 2,
            ..EngineOptions::default()
        })
        .expect("open");
        let st = eng.state();
        let sims = st.similar_items(2, 3).expect("similar");
        assert_eq!(sims.len(), 3);
        assert!(sims.iter().all(|&(it, _)| it != 2), "query item in results");
        assert!(sims.windows(2).all(|w| w[0].1 >= w[1].1), "not sorted");
        assert!(sims.iter().all(|&(_, s)| (-1.01..=1.01).contains(&s)));
        assert!(st.similar_items(99, 3).is_err());
        std::fs::remove_file(std::env::temp_dir().join("lrgcn_engine_sim/m.ckpt")).ok();
    }

    #[test]
    fn score_pairs_matches_row_dots_and_validates_range() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("lrgcn_engine_pairs");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("m.ckpt");
        save_lightgcn(&ds, &ckpt);
        let eng = Engine::open(&ckpt, ds, EngineOptions {
            n_layers: 2,
            ..EngineOptions::default()
        })
        .expect("open");
        let st = eng.state();
        let got = st.score_pairs(&[(0, 0), (3, 5)]).expect("score");
        let all = st.score_users(&[0, 3]);
        assert_eq!(got[0], all[(0, 0)]);
        assert_eq!(got[1], all[(1, 5)]);
        assert!(st.score_pairs(&[(0, 6)]).is_err());
        assert!(st.score_pairs(&[(4, 0)]).is_err());
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn reload_swaps_generation_and_survives_bad_files() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("lrgcn_engine_reload");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("m.ckpt");
        save_lightgcn(&ds, &ckpt);
        let eng = Engine::open(&ckpt, ds.clone(), EngineOptions {
            n_layers: 2,
            ..EngineOptions::default()
        })
        .expect("open");
        let before = eng.state();
        assert_eq!(eng.generation(), 0);

        // A held snapshot stays valid across the swap.
        let new = eng.reload().expect("reload");
        assert_eq!(new.generation, 1);
        assert_eq!(eng.generation(), 1);
        assert_eq!(before.generation, 0);
        assert!(before.score_users(&[0]).approx_eq(&new.score_users(&[0]), 0.0));

        // A corrupt file leaves the old state serving.
        std::fs::write(&ckpt, b"garbage").expect("clobber");
        assert!(eng.reload().is_err());
        assert_eq!(eng.generation(), 1);
        assert_eq!(eng.state().generation, 1);
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn mismatched_dataset_is_a_clear_error() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("lrgcn_engine_mismatch");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("m.ckpt");
        save_lightgcn(&ds, &ckpt);
        let other = Arc::new(Dataset::from_parts(
            "other",
            2,
            2,
            vec![(0, 0), (1, 1)],
            vec![vec![]; 2],
            vec![vec![1], vec![0]],
        ));
        let err = match Engine::open(&ckpt, other, EngineOptions::default()) {
            Err(e) => e,
            Ok(_) => panic!("mismatched dataset must fail"),
        };
        assert!(err.contains("users"), "{err}");
        std::fs::remove_file(ckpt).ok();
    }
}
