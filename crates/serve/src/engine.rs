//! The serving engine: checkpoint + dataset → an immutable scoring state
//! with atomic hot reload.
//!
//! [`Engine::open`] reads a tagged checkpoint (see
//! `lrgcn_models::checkpoint`), rebuilds the matching model family around
//! it, runs the inference propagation once and keeps only the **final node
//! embedding matrix** — the `(n_users + n_items) × d` table the offline
//! evaluator scores from. Request handling then reuses the *same* kernels
//! as the evaluator ([`lrgcn_models::common::score_from_final`], the same
//! `-inf` masking of training items, [`lrgcn_eval::top_k_with_scores`]), so
//! a served top-K list is byte-identical to the offline ranking — for any
//! `LRGCN_THREADS`, by the parallel layer's bitwise-identity contract.
//!
//! Reload builds a fresh [`EngineState`] off to the side and swaps it in
//! with one `RwLock<Arc<_>>` write: requests in flight keep scoring against
//! the `Arc` snapshot they already cloned, so zero requests fail or observe
//! a torn state during a reload. The generation counter feeds the response
//! cache keys, which is what invalidates cached answers.
//!
//! With [`EngineOptions::quant`] the state additionally carries an int8
//! [`QuantizedTable`] of the item block (rebuilt on every reload) and the
//! read paths switch to a two-stage rank-then-rescore: the quantized scan
//! ranks the full catalog cheaply, the exact f32 kernel re-scores only the
//! top `4·K` candidates. The measured recall of that path against the exact
//! scan ([`EngineState::quant_recall`]) is computed once per load and
//! exported as the `serve.quant.recall_ppm` gauge.

use crate::ann::{IvfConfig, IvfIndex};
use crate::delta::StreamDelta;
use lrgcn_data::Dataset;
use lrgcn_models::foldin::FoldInBasis;
use lrgcn_stream::{EventLog, StreamEvent};
use lrgcn_eval::{overlap_fraction, top_k_indices_into, top_k_with_scores};
use lrgcn_graph::EdgePruner;
use lrgcn_models::checkpoint::{model_tag, require_entry, SERVABLE_TAGS};
use lrgcn_models::common::score_from_final;
use lrgcn_models::{
    LayerGcn, LayerGcnConfig, LightGcn, LightGcnConfig, LrGccf, LrGccfConfig, Recommender,
};
use lrgcn_obs::{registry, Counter, Gauge};
use lrgcn_tensor::matrix::dot;
use lrgcn_tensor::{kernels, Matrix, QuantizedTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Model hyper-parameters the checkpoint does not record. They must match
/// the training invocation (same contract as `lrgcn evaluate`); the
/// embedding dimension itself is inferred from the checkpoint.
#[derive(Clone, Debug)]
pub struct EngineOptions {
    pub n_layers: usize,
    /// Degree-sensitive dropout ratio used to *construct* LayerGCN (only
    /// training uses it; inference propagates over the full adjacency).
    pub dropout: f32,
    pub seed: u64,
    /// Serve `/recs`, `/similar` and `/score` through the int8 quantized
    /// two-stage read path instead of the exact f32 scan.
    pub quant: bool,
    /// Serve `/recs` and `/similar` through the IVF ANN index (sub-linear
    /// candidate generation; composes with `quant` for the in-cell scan).
    pub ann: bool,
    /// Build the IVF index even when `ann` is off, without serving through
    /// it by default. The brownout controller (DESIGN.md §14) needs a
    /// ready-made cheap read path to step down to under overload; a standby
    /// index makes exact-serving deployments degradable without a reload.
    pub ann_standby: bool,
    /// How many IVF cells a query probes (only meaningful with `ann`).
    pub nprobe: usize,
    /// IVF cell count; `0` auto-sizes to `≈ √n_items`.
    pub ann_cells: usize,
    /// Streaming ingestion (DESIGN.md §13): the event-log directory whose
    /// acknowledged events the engine replays on every open/reload. The
    /// covered prefix (recorded in the checkpoint by `lrgcn retrain`)
    /// extends the training dataset; the uncovered suffix becomes the
    /// state's fold-in [`StreamDelta`]. `None` disables streaming.
    pub events_dir: Option<PathBuf>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            n_layers: 4,
            dropout: 0.1,
            seed: 2023,
            quant: false,
            ann: false,
            ann_standby: false,
            nprobe: IvfConfig::default().nprobe,
            ann_cells: 0,
            events_dir: None,
        }
    }
}

/// First-stage candidate multiplier: the quantized scan keeps `4·K`
/// candidates for the exact rescore.
const CANDIDATE_FACTOR: usize = 4;
/// How many users the build-time recall guardrail samples.
const RECALL_SAMPLE_USERS: usize = 64;
/// The K the guardrail compares at (the paper's headline Recall@20 cut).
const RECALL_K: usize = 20;

/// Reusable per-worker request buffers. Request handling on the hot path
/// writes scores into these instead of allocating an `n_items`-sized score
/// matrix plus an index vector per request; `server.rs` keeps one per
/// worker thread in a `thread_local`.
#[derive(Default)]
pub struct Scratch {
    scores: Vec<f32>,
    idx: Vec<u32>,
    qbuf: Vec<i8>,
    /// Probed IVF cell ids (ANN path only).
    cells: Vec<u32>,
    /// ANN candidate item ids gathered from the probed cells.
    cand: Vec<u32>,
}

/// A per-request read-path override. The default (`ReadOverride::default()`)
/// changes nothing; the brownout controller (DESIGN.md §14) sets `force_ann`
/// to step an exact/quant deployment down to its standby IVF index under
/// overload, and `nprobe` to narrow the probe width below the engine's
/// configured value. The override only ever *cheapens* the read path — it
/// cannot widen a probe past the built index or enable a path that was not
/// built.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReadOverride {
    /// Serve through the IVF index even when the engine default is the
    /// exact or quantized scan. No-op when no index was built
    /// (`EngineOptions::ann` and `ann_standby` both false).
    pub force_ann: bool,
    /// Explicit probe width for the ANN path, clamped to `1..=n_cells`;
    /// `None` uses the index's configured `nprobe`.
    pub nprobe: Option<usize>,
}

/// One immutable, fully-materialized serving snapshot.
///
/// With streaming on, "immutable" means the *trained* part: the snapshot
/// additionally carries a swappable [`StreamDelta`] of folded-in events
/// (see [`EngineState::apply_events`]). Keeping the delta inside the state
/// makes the (state, delta) pair a single consistency domain — a request
/// that cloned the state `Arc` always reads a delta built for exactly that
/// state, even across a hot reload.
pub struct EngineState {
    /// Human-readable model name (`Recommender::name`).
    pub model_name: String,
    /// Checkpoint family tag (see `lrgcn_models::checkpoint::SERVABLE_TAGS`).
    pub tag: String,
    /// Monotone reload counter; part of every cache key.
    pub generation: u64,
    /// Learnable scalar count, for /healthz.
    pub n_parameters: usize,
    pub n_users: usize,
    pub n_items: usize,
    pub dim: usize,
    /// Log events baked into this state's training matrices (the covered
    /// prefix recorded in the checkpoint by `lrgcn retrain`); 0 without
    /// streaming.
    pub covered_events: u64,
    /// The dataset this state was built against: the base dataset extended
    /// with the covered event prefix (identical to the base without
    /// streaming).
    ds: Arc<Dataset>,
    /// Fold-in basis for synthesizing rows of post-training nodes; `None`
    /// when streaming is off or the model family opts out.
    foldin: Option<FoldInBasis>,
    /// Folded-in events on top of this state (always the empty delta at
    /// version 0 without streaming).
    delta: RwLock<Arc<StreamDelta>>,
    /// Final node embeddings, users first: `(n_users + n_items) × dim`.
    final_emb: Matrix,
    /// Per-item L2 norms of the item block (cosine for /similar).
    item_norms: Vec<f32>,
    /// Int8 table of the item block when the quantized read path is on.
    quant: Option<QuantizedTable>,
    /// IVF index over the item block when the ANN read path is on *or*
    /// built on standby for brownout fallback.
    ann: Option<IvfIndex>,
    /// Whether requests without a [`ReadOverride`] serve through the index
    /// (`false` for a standby-only index).
    ann_default: bool,
    /// Mean overlap of the quantized top-20 with the exact top-20 over a
    /// user sample, measured at build time. `1.0` when quant is off.
    pub quant_recall: f64,
    /// Mean overlap of the ANN top-20 with the exact top-20 over a user
    /// sample, measured at build time. `1.0` when ANN is off.
    pub ann_recall: f64,
}

impl EngineState {
    #[allow(clippy::too_many_arguments)] // internal constructor, one call site
    fn new(
        model_name: String,
        tag: String,
        generation: u64,
        n_parameters: usize,
        ds: Arc<Dataset>,
        covered_events: u64,
        foldin: Option<FoldInBasis>,
        final_emb: Matrix,
        opts: &EngineOptions,
    ) -> Self {
        let (n_users, n_items) = (ds.n_users(), ds.n_items());
        let dim = final_emb.cols();
        let item_norms = (n_users..n_users + n_items)
            .map(|r| {
                let row = final_emb.row(r);
                dot(row, row).sqrt()
            })
            .collect();
        let quant = opts
            .quant
            .then(|| QuantizedTable::from_matrix_rows(&final_emb, n_users, n_users + n_items));
        let ann = (opts.ann || opts.ann_standby).then(|| {
            let cfg = IvfConfig {
                n_cells: opts.ann_cells,
                nprobe: opts.nprobe,
                seed: opts.seed,
            };
            let item_block = &final_emb.data()[n_users * dim..];
            IvfIndex::build(item_block, n_items, dim, &cfg)
        });
        Self {
            model_name,
            tag,
            generation,
            n_parameters,
            n_users,
            n_items,
            dim,
            covered_events,
            ds,
            foldin,
            delta: RwLock::new(Arc::new(StreamDelta::default())),
            final_emb,
            item_norms,
            quant,
            ann,
            ann_default: opts.ann,
            quant_recall: 1.0,
            ann_recall: 1.0,
        }
    }

    /// The dataset this state was built against (base + covered events).
    pub fn ds(&self) -> &Arc<Dataset> {
        &self.ds
    }

    /// True when this snapshot can synthesize fold-in rows for
    /// post-training users/items.
    pub fn foldin_enabled(&self) -> bool {
        self.foldin.is_some()
    }

    /// The current fold-in delta. Cloning the `Arc` pins a consistent
    /// snapshot for the whole request.
    pub fn delta(&self) -> Arc<StreamDelta> {
        self.delta.read().expect("stream delta poisoned").clone()
    }

    /// Folds acknowledged log events into this state's delta and returns
    /// the new delta. The caller must serialize calls (the server's ingest
    /// lock does) so fold-ins apply in log order; each call clones the
    /// current delta off to the side and swaps the `Arc`, so concurrent
    /// readers never block or observe a torn delta. All arithmetic runs
    /// serially in event order — folded rows are bitwise identical for any
    /// `LRGCN_THREADS`.
    pub fn apply_events(&self, events: &[StreamEvent]) -> Arc<StreamDelta> {
        let cur = self.delta();
        let mut next = (*cur).clone();
        next.version += 1;
        for ev in events {
            next.events_applied += 1;
            self.fold_event(&mut next, ev.user, ev.item);
        }
        let next = Arc::new(next);
        *self.delta.write().expect("stream delta poisoned") = next.clone();
        next
    }

    /// One event's fold-in (see `lrgcn_models::foldin` for the math).
    /// Repeats of training edges and already-folded pairs are no-ops.
    fn fold_event(&self, d: &mut StreamDelta, user: u32, item: u32) {
        if (user as usize) < self.n_users
            && (item as usize) < self.n_items
            && self.ds.is_train_interaction(user, item)
        {
            return;
        }
        let entry = d.user_items.entry(user).or_default();
        match entry.binary_search(&item) {
            Ok(_) => return,
            Err(pos) => entry.insert(pos, item),
        }
        let items = entry.clone();
        if (item as usize) >= self.n_items {
            let users = d.item_users.entry(item).or_default();
            if let Err(pos) = users.binary_search(&user) {
                users.insert(pos, user);
            }
        }
        let Some(basis) = &self.foldin else { return };
        let row = if (user as usize) < self.n_users {
            basis.updated_user_row(user, self.final_emb.row(user as usize), &items)
        } else {
            basis.synth_user_row(&items)
        };
        d.user_rows.insert(user, row);
        if (item as usize) >= self.n_items {
            let users = d.item_users.get(&item).expect("just inserted").clone();
            d.item_rows.insert(item, basis.synth_item_row(&users));
        }
    }

    /// True when this snapshot serves through the quantized read path.
    pub fn quant_enabled(&self) -> bool {
        self.quant.is_some()
    }

    /// Heap bytes of the int8 table (0 when quant is off).
    pub fn quant_bytes(&self) -> usize {
        self.quant.as_ref().map_or(0, |q| q.bytes())
    }

    /// True when this snapshot serves through the IVF ANN read path *by
    /// default* (a standby index does not count; see
    /// [`EngineState::ann_available`]).
    pub fn ann_enabled(&self) -> bool {
        self.ann.is_some() && self.ann_default
    }

    /// True when an IVF index exists at all — serving default or standby —
    /// so a [`ReadOverride`] can route through it.
    pub fn ann_available(&self) -> bool {
        self.ann.is_some()
    }

    /// Heap bytes of the IVF index (0 when ANN is off).
    pub fn ann_bytes(&self) -> usize {
        self.ann.as_ref().map_or(0, |a| a.bytes())
    }

    /// IVF cell count (0 when ANN is off).
    pub fn ann_cells(&self) -> usize {
        self.ann.as_ref().map_or(0, |a| a.n_cells())
    }

    /// Effective probe width (0 when ANN is off).
    pub fn ann_nprobe(&self) -> usize {
        self.ann.as_ref().map_or(0, |a| a.nprobe())
    }

    /// The contiguous item block of the final embedding table.
    fn item_block(&self) -> &[f32] {
        &self.final_emb.data()[self.n_users * self.dim..]
    }

    fn item_row(&self, item: usize) -> &[f32] {
        self.final_emb.row(self.n_users + item)
    }

    /// The raw score matrix for a chunk of users — the exact evaluator
    /// scoring path (`score_from_final`: gather user rows, `U · Iᵀ`).
    pub fn score_users(&self, users: &[u32]) -> Matrix {
        score_from_final(&self.final_emb, self.n_users, users)
    }

    /// Top-K recommendations for one user, optionally masking the items the
    /// user interacted with in training — the same masking and the same
    /// tie-break as the offline evaluator. Allocating wrapper around
    /// [`EngineState::top_k_into`].
    pub fn top_k(
        &self,
        ds: &Dataset,
        user: u32,
        k: usize,
        exclude_seen: bool,
    ) -> Result<Vec<(u32, f32)>, String> {
        self.top_k_into(ds, user, k, exclude_seen, &mut Scratch::default())
    }

    /// [`EngineState::top_k`] writing all `O(n_items)` intermediates into a
    /// caller-held [`Scratch`]. Dispatches to the quantized two-stage path
    /// when the state carries a table, else to the exact scan.
    pub fn top_k_into(
        &self,
        ds: &Dataset,
        user: u32,
        k: usize,
        exclude_seen: bool,
        scratch: &mut Scratch,
    ) -> Result<Vec<(u32, f32)>, String> {
        self.top_k_into_opts(ds, user, k, exclude_seen, scratch, ReadOverride::default())
    }

    /// [`EngineState::top_k_into`] under a [`ReadOverride`].
    pub fn top_k_into_opts(
        &self,
        ds: &Dataset,
        user: u32,
        k: usize,
        exclude_seen: bool,
        scratch: &mut Scratch,
        ovr: ReadOverride,
    ) -> Result<Vec<(u32, f32)>, String> {
        if user as usize >= self.n_users {
            return Err(format!("user {user} out of range (0..{})", self.n_users));
        }
        let row = self.final_emb.row(user as usize);
        let seen: &[u32] = if exclude_seen { ds.train_items(user) } else { &[] };
        Ok(self.top_k_row(row, seen, k, scratch, ovr))
    }

    /// Top-K against the trained catalog for an arbitrary readout row and a
    /// sorted `seen` mask (empty slice = no masking). Every public top-K
    /// entry point funnels through here, so the streaming path shares the
    /// exact/quant/ANN dispatch — and the brownout override — with the
    /// trained-user path.
    fn top_k_row(
        &self,
        row: &[f32],
        seen: &[u32],
        k: usize,
        scratch: &mut Scratch,
        ovr: ReadOverride,
    ) -> Vec<(u32, f32)> {
        if self.ann.is_some() && (self.ann_default || ovr.force_ann) {
            self.top_k_ann(row, seen, k, scratch, ovr.nprobe)
        } else if self.quant.is_some() {
            self.top_k_quant(row, seen, k, scratch)
        } else {
            self.top_k_exact(row, seen, k, scratch)
        }
    }

    /// Top-K for a user as seen through a streaming fold-in [`StreamDelta`]
    /// (pin one `Arc` per request via [`EngineState::delta`]): post-training
    /// users serve from their synthesized row, trained users with folded-in
    /// events from their updated row, and synthesized new-item rows join the
    /// candidate pool. With `exclude_seen`, folded-in interactions are
    /// masked alongside training ones. With an empty delta this is
    /// byte-identical to [`EngineState::top_k`].
    pub fn top_k_stream(
        &self,
        delta: &StreamDelta,
        user: u32,
        k: usize,
        exclude_seen: bool,
        scratch: &mut Scratch,
    ) -> Result<Vec<(u32, f32)>, String> {
        self.top_k_stream_opts(delta, user, k, exclude_seen, scratch, ReadOverride::default())
    }

    /// [`EngineState::top_k_stream`] under a [`ReadOverride`].
    pub fn top_k_stream_opts(
        &self,
        delta: &StreamDelta,
        user: u32,
        k: usize,
        exclude_seen: bool,
        scratch: &mut Scratch,
        ovr: ReadOverride,
    ) -> Result<Vec<(u32, f32)>, String> {
        let trained = (user as usize) < self.n_users;
        let row: &[f32] = match delta.user_row(user) {
            Some(r) => r,
            None if trained => self.final_emb.row(user as usize),
            None => {
                return Err(format!(
                    "user {user} out of range (0..{}) and not folded in",
                    self.n_users
                ))
            }
        };
        let folded = delta.user_items(user);
        let mut merged: Vec<u32> = Vec::new();
        let seen: &[u32] = if !exclude_seen {
            &[]
        } else {
            let train: &[u32] = if trained { self.ds.train_items(user) } else { &[] };
            if folded.is_empty() {
                train
            } else {
                merged.reserve(train.len() + folded.len());
                merged.extend_from_slice(train);
                merged.extend_from_slice(folded);
                merged.sort_unstable();
                merged.dedup();
                &merged
            }
        };
        let mut out = self.top_k_row(row, seen, k, scratch, ovr);
        let mut extended = false;
        for (it, irow) in delta.item_rows() {
            if seen.binary_search(&it).is_ok() {
                continue;
            }
            out.push((it, dot(row, irow)));
            extended = true;
        }
        if extended {
            out.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("scores must not be NaN")
                    .then(a.0.cmp(&b.0))
            });
            out.truncate(k);
        }
        Ok(out)
    }

    /// Exact f32 scores of a readout row against the whole catalog, written
    /// into `out`. Routes the row against the contiguous item block through
    /// the same `matmul_nt` kernel as [`score_from_final`], so the scores —
    /// and therefore the served ranking — stay byte-identical to the
    /// offline evaluator's.
    fn exact_scores_into(&self, row: &[f32], out: &mut Vec<f32>) {
        out.clear();
        out.resize(self.n_items, 0.0);
        let kern = kernels::active_kernel();
        kernels::count_dispatch(kern);
        kernels::matmul_nt_block(kern, row, self.dim, self.item_block(), self.n_items, out);
    }

    fn top_k_exact(
        &self,
        row: &[f32],
        seen: &[u32],
        k: usize,
        scratch: &mut Scratch,
    ) -> Vec<(u32, f32)> {
        self.exact_scores_into(row, &mut scratch.scores);
        for &it in seen {
            // The mask may carry folded-in ids past the trained catalog.
            if (it as usize) < self.n_items {
                scratch.scores[it as usize] = f32::NEG_INFINITY;
            }
        }
        top_k_indices_into(&scratch.scores, k, &mut scratch.idx);
        scratch
            .idx
            .iter()
            .map(|&i| (i, scratch.scores[i as usize]))
            .filter(|&(_, s)| s != f32::NEG_INFINITY)
            .collect()
    }

    /// The two-stage quantized path: int8 full-catalog scan, keep the
    /// approximate top `CANDIDATE_FACTOR·k`, re-score those candidates with
    /// the exact f32 dot, re-rank with the evaluator's tie-break.
    fn top_k_quant(
        &self,
        row: &[f32],
        seen: &[u32],
        k: usize,
        scratch: &mut Scratch,
    ) -> Vec<(u32, f32)> {
        let qt = self.quant.as_ref().expect("quant table");
        let q_scale = QuantizedTable::quantize_query(row, &mut scratch.qbuf);
        scratch.scores.clear();
        scratch.scores.resize(self.n_items, 0.0);
        qt.scores_into(&scratch.qbuf, q_scale, &mut scratch.scores);
        registry::add(Counter::QuantScans, 1);
        for &it in seen {
            if (it as usize) < self.n_items {
                scratch.scores[it as usize] = f32::NEG_INFINITY;
            }
        }
        top_k_indices_into(
            &scratch.scores,
            k.saturating_mul(CANDIDATE_FACTOR),
            &mut scratch.idx,
        );
        let mut out: Vec<(u32, f32)> = scratch
            .idx
            .iter()
            .filter(|&&i| scratch.scores[i as usize] != f32::NEG_INFINITY)
            .map(|&i| (i, dot(row, self.item_row(i as usize))))
            .collect();
        registry::add(Counter::QuantRescored, out.len() as u64);
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("scores must not be NaN")
                .then(a.0.cmp(&b.0))
        });
        out.truncate(k);
        out
    }

    /// The IVF ANN path: probe `nprobe` cells for the user's embedding and
    /// scan only their members. With quant also on, the in-cell scan is the
    /// int8 table and the top `CANDIDATE_FACTOR·k` survivors get an exact
    /// f32 rescore (the PR 6 rank-then-rescore pipeline, restricted to the
    /// probed candidates); without quant every candidate is scored with the
    /// exact f32 dot directly. Either way the final scores are the exact
    /// dots, bitwise-equal to the full-scan path's, and the candidate set
    /// is a deterministic function of (embeddings, config) — see `ann.rs`.
    fn top_k_ann(
        &self,
        row: &[f32],
        seen: &[u32],
        k: usize,
        scratch: &mut Scratch,
        nprobe: Option<usize>,
    ) -> Vec<(u32, f32)> {
        let ann = self.ann.as_ref().expect("ann index");
        let nprobe = nprobe.unwrap_or_else(|| ann.nprobe());
        let probed = ann.candidates_into_n(row, nprobe, &mut scratch.cells, &mut scratch.cand);
        registry::add(Counter::AnnCellsProbed, probed as u64);
        registry::add(Counter::AnnCandidates, scratch.cand.len() as u64);
        let keep = |it: u32| seen.binary_search(&it).is_err();
        let mut out: Vec<(u32, f32)> = if let Some(qt) = &self.quant {
            let q_scale = QuantizedTable::quantize_query(row, &mut scratch.qbuf);
            registry::add(Counter::QuantScans, 1);
            let mut approx: Vec<(u32, f32)> = scratch
                .cand
                .iter()
                .filter(|&&it| keep(it))
                .map(|&it| (it, qt.score_row(it as usize, &scratch.qbuf, q_scale)))
                .collect();
            approx.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("scores must not be NaN")
                    .then(a.0.cmp(&b.0))
            });
            approx.truncate(k.saturating_mul(CANDIDATE_FACTOR));
            let rescored: Vec<(u32, f32)> = approx
                .iter()
                .map(|&(it, _)| (it, dot(row, self.item_row(it as usize))))
                .collect();
            registry::add(Counter::QuantRescored, rescored.len() as u64);
            rescored
        } else {
            scratch
                .cand
                .iter()
                .filter(|&&it| keep(it))
                .map(|&it| (it, dot(row, self.item_row(it as usize))))
                .collect()
        };
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("scores must not be NaN")
                .then(a.0.cmp(&b.0))
        });
        out.truncate(k);
        out
    }

    /// Top-K most similar items by embedding cosine (the query item itself
    /// excluded). Zero-norm embeddings score 0 rather than NaN. Allocating
    /// wrapper around [`EngineState::similar_items_into`].
    pub fn similar_items(&self, item: u32, k: usize) -> Result<Vec<(u32, f32)>, String> {
        self.similar_items_into(item, k, &mut Scratch::default())
    }

    /// [`EngineState::similar_items`] with caller-held scratch. Under quant
    /// the first stage ranks by int8-approximated cosine, then the exact
    /// f32 cosine re-scores the candidates.
    pub fn similar_items_into(
        &self,
        item: u32,
        k: usize,
        scratch: &mut Scratch,
    ) -> Result<Vec<(u32, f32)>, String> {
        self.similar_items_into_opts(item, k, scratch, ReadOverride::default())
    }

    /// [`EngineState::similar_items_into`] under a [`ReadOverride`].
    pub fn similar_items_into_opts(
        &self,
        item: u32,
        k: usize,
        scratch: &mut Scratch,
        ovr: ReadOverride,
    ) -> Result<Vec<(u32, f32)>, String> {
        if item as usize >= self.n_items {
            return Err(format!("item {item} out of range (0..{})", self.n_items));
        }
        if self.ann.is_some() && (self.ann_default || ovr.force_ann) {
            return Ok(self.similar_ann(item, k, scratch, ovr.nprobe));
        }
        let q = self.item_row(item as usize);
        let qn = self.item_norms[item as usize];
        scratch.scores.clear();
        scratch.scores.resize(self.n_items, 0.0);
        if let Some(qt) = &self.quant {
            let q_scale = QuantizedTable::quantize_query(q, &mut scratch.qbuf);
            qt.scores_into(&scratch.qbuf, q_scale, &mut scratch.scores);
            registry::add(Counter::QuantScans, 1);
            for (i, s) in scratch.scores.iter_mut().enumerate() {
                let n = qn * self.item_norms[i];
                *s = if n > 0.0 { *s / n } else { 0.0 };
            }
            scratch.scores[item as usize] = f32::NEG_INFINITY;
            top_k_indices_into(
                &scratch.scores,
                k.saturating_mul(CANDIDATE_FACTOR),
                &mut scratch.idx,
            );
            let mut out: Vec<(u32, f32)> = scratch
                .idx
                .iter()
                .filter(|&&i| scratch.scores[i as usize] != f32::NEG_INFINITY)
                .map(|&i| {
                    let n = qn * self.item_norms[i as usize];
                    let c = if n > 0.0 {
                        dot(q, self.item_row(i as usize)) / n
                    } else {
                        0.0
                    };
                    (i, c)
                })
                .collect();
            registry::add(Counter::QuantRescored, out.len() as u64);
            out.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("scores must not be NaN")
                    .then(a.0.cmp(&b.0))
            });
            out.truncate(k);
            return Ok(out);
        }
        for (i, s) in scratch.scores.iter_mut().enumerate() {
            let n = qn * self.item_norms[i];
            if n > 0.0 {
                *s = dot(q, self.item_row(i)) / n;
            }
        }
        scratch.scores[item as usize] = f32::NEG_INFINITY;
        Ok(top_k_with_scores(&scratch.scores, k))
    }

    /// `/similar` over the IVF index: probe with the query item's embedding
    /// and rank only the probed cells' members by exact f32 cosine (with
    /// quant on, an int8-approximated cosine pre-ranks the candidates down
    /// to `CANDIDATE_FACTOR·k` first). The query item itself is excluded;
    /// zero-norm embeddings score 0 rather than NaN.
    fn similar_ann(
        &self,
        item: u32,
        k: usize,
        scratch: &mut Scratch,
        nprobe: Option<usize>,
    ) -> Vec<(u32, f32)> {
        let ann = self.ann.as_ref().expect("ann index");
        let q = self.item_row(item as usize);
        let qn = self.item_norms[item as usize];
        let nprobe = nprobe.unwrap_or_else(|| ann.nprobe());
        let probed = ann.candidates_into_n(q, nprobe, &mut scratch.cells, &mut scratch.cand);
        registry::add(Counter::AnnCellsProbed, probed as u64);
        registry::add(Counter::AnnCandidates, scratch.cand.len() as u64);
        let exact_cos = |it: u32| {
            let n = qn * self.item_norms[it as usize];
            if n > 0.0 {
                dot(q, self.item_row(it as usize)) / n
            } else {
                0.0
            }
        };
        let mut out: Vec<(u32, f32)> = if let Some(qt) = &self.quant {
            let q_scale = QuantizedTable::quantize_query(q, &mut scratch.qbuf);
            registry::add(Counter::QuantScans, 1);
            let mut approx: Vec<(u32, f32)> = scratch
                .cand
                .iter()
                .filter(|&&it| it != item)
                .map(|&it| {
                    let n = qn * self.item_norms[it as usize];
                    let s = qt.score_row(it as usize, &scratch.qbuf, q_scale);
                    (it, if n > 0.0 { s / n } else { 0.0 })
                })
                .collect();
            approx.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("scores must not be NaN")
                    .then(a.0.cmp(&b.0))
            });
            approx.truncate(k.saturating_mul(CANDIDATE_FACTOR));
            let rescored: Vec<(u32, f32)> =
                approx.iter().map(|&(it, _)| (it, exact_cos(it))).collect();
            registry::add(Counter::QuantRescored, rescored.len() as u64);
            rescored
        } else {
            scratch
                .cand
                .iter()
                .filter(|&&it| it != item)
                .map(|&it| (it, exact_cos(it)))
                .collect()
        };
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("scores must not be NaN")
                .then(a.0.cmp(&b.0))
        });
        out.truncate(k);
        out
    }

    /// Dot-product scores for explicit `(user, item)` pairs — the
    /// micro-batcher's coalesced kernel. Out-of-range ids are an error (the
    /// whole batch is rejected so the caller can 400 it). Under quant the
    /// dots are int8-approximated (documented serving trade-off); the
    /// default path is exact f32.
    pub fn score_pairs(&self, pairs: &[(u32, u32)]) -> Result<Vec<f32>, String> {
        for &(u, i) in pairs {
            if u as usize >= self.n_users {
                return Err(format!("user {u} out of range (0..{})", self.n_users));
            }
            if i as usize >= self.n_items {
                return Err(format!("item {i} out of range (0..{})", self.n_items));
            }
        }
        if let Some(qt) = &self.quant {
            let mut qbuf = Vec::new();
            registry::add(Counter::QuantScans, 1);
            return Ok(pairs
                .iter()
                .map(|&(u, i)| {
                    let q_scale =
                        QuantizedTable::quantize_query(self.final_emb.row(u as usize), &mut qbuf);
                    qt.score_row(i as usize, &qbuf, q_scale)
                })
                .collect());
        }
        Ok(pairs
            .iter()
            .map(|&(u, i)| {
                dot(
                    self.final_emb.row(u as usize),
                    self.final_emb.row(self.n_users + i as usize),
                )
            })
            .collect())
    }
}

/// Mean overlap of an approximate top-`RECALL_K` path with the exact
/// top-20 over up to [`RECALL_SAMPLE_USERS`] users spread evenly across
/// the id space — the build-time guardrail behind the
/// `serve.quant.recall_ppm` / `serve.ann.recall_ppm` gauges.
fn measure_recall(
    state: &EngineState,
    ds: &Dataset,
    approx: impl Fn(&EngineState, &Dataset, u32, &mut Scratch) -> Vec<(u32, f32)>,
) -> f64 {
    let mut scratch = Scratch::default();
    let samples = state.n_users.min(RECALL_SAMPLE_USERS);
    if samples == 0 {
        return 1.0;
    }
    let stride = (state.n_users / samples).max(1);
    let mut total = 0.0;
    let mut counted = 0usize;
    for s in 0..samples {
        let user = (s * stride) as u32;
        if user as usize >= state.n_users {
            break;
        }
        let exact: Vec<u32> = state
            .top_k_exact(
                state.final_emb.row(user as usize),
                ds.train_items(user),
                RECALL_K,
                &mut scratch,
            )
            .iter()
            .map(|&(i, _)| i)
            .collect();
        let got: Vec<u32> = approx(state, ds, user, &mut scratch)
            .iter()
            .map(|&(i, _)| i)
            .collect();
        total += overlap_fraction(&got, &exact);
        counted += 1;
    }
    if counted == 0 {
        1.0
    } else {
        total / counted as f64
    }
}

/// [`measure_recall`] over the quantized full-catalog scan.
fn measure_quant_recall(state: &EngineState, ds: &Dataset) -> f64 {
    measure_recall(state, ds, |st, ds, u, scratch| {
        st.top_k_quant(
            st.final_emb.row(u as usize),
            ds.train_items(u),
            RECALL_K,
            scratch,
        )
    })
}

/// [`measure_recall`] over the IVF ANN path (composed with quant when on).
fn measure_ann_recall(state: &EngineState, ds: &Dataset) -> f64 {
    measure_recall(state, ds, |st, ds, u, scratch| {
        st.top_k_ann(
            st.final_emb.row(u as usize),
            ds.train_items(u),
            RECALL_K,
            scratch,
            None,
        )
    })
}

/// Loads a tagged checkpoint and materializes an [`EngineState`].
///
/// `events` is the full acknowledged event log (empty without streaming).
/// The checkpoint's covered-prefix entry (written by `lrgcn retrain`, see
/// `lrgcn_stream::COVERED_ENTRY`) says how many of those events its
/// training matrices already include: that prefix extends the dataset the
/// state is built against, and the uncovered suffix is folded into the
/// state's [`StreamDelta`] before the state goes live.
fn build_state(
    base: &Arc<Dataset>,
    opts: &EngineOptions,
    ckpt: &Path,
    generation: u64,
    events: &[StreamEvent],
) -> Result<EngineState, String> {
    let entries = lrgcn_tensor::io::load_checkpoint(ckpt)
        .map_err(|e| format!("loading {}: {e}", ckpt.display()))?;
    // Untagged files predate the marker and were always LayerGCN.
    let tag = model_tag(&entries).unwrap_or("layergcn").to_string();
    let covered = lrgcn_stream::unpack_covered(&entries).min(events.len() as u64);
    let ds: Arc<Dataset> = if covered > 0 {
        let pairs: Vec<(u32, u32)> = events[..covered as usize]
            .iter()
            .map(|e| (e.user, e.item))
            .collect();
        Arc::new(base.extend_with_events(&pairs))
    } else {
        base.clone()
    };
    let ego = require_entry(&entries, "ego")?;
    let n_nodes = ds.n_users() + ds.n_items();
    if ego.rows() != n_nodes {
        return Err(format!(
            "checkpoint has {} node embeddings but the dataset has {} users + {} items — \
             pass the same --input/--kcore used at training time",
            ego.rows(),
            ds.n_users(),
            ds.n_items()
        ));
    }
    let dim = ego.cols();
    let want_foldin = opts.events_dir.is_some();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let (model_name, n_parameters, final_emb, foldin) = match tag.as_str() {
        "layergcn" => {
            let cfg = LayerGcnConfig {
                embedding_dim: dim,
                n_layers: opts.n_layers,
                pruner: if opts.dropout > 0.0 {
                    EdgePruner::DegreeDrop {
                        ratio: opts.dropout,
                    }
                } else {
                    EdgePruner::None
                },
                ..LayerGcnConfig::default()
            };
            let mut m = LayerGcn::new(&ds, cfg, &mut rng);
            m.load_checkpoint_entries(&entries)?;
            let basis = if want_foldin { m.fold_in_basis(&ds) } else { None };
            (m.name(), m.n_parameters(), m.final_embeddings(), basis)
        }
        "lightgcn" => {
            let cfg = LightGcnConfig {
                embedding_dim: dim,
                n_layers: opts.n_layers,
                ..LightGcnConfig::default()
            };
            let mut m = LightGcn::new(&ds, cfg, &mut rng);
            m.load_checkpoint_entries(&entries)?;
            let basis = if want_foldin { m.fold_in_basis(&ds) } else { None };
            (m.name(), m.n_parameters(), m.final_embeddings(), basis)
        }
        "lrgccf" => {
            let cfg = LrGccfConfig {
                embedding_dim: dim,
                n_layers: opts.n_layers,
                ..LrGccfConfig::default()
            };
            let mut m = LrGccf::new(&ds, cfg, &mut rng);
            m.load_checkpoint_entries(&entries)?;
            let basis = if want_foldin { m.fold_in_basis(&ds) } else { None };
            (m.name(), m.n_parameters(), m.final_embeddings(), basis)
        }
        other => {
            return Err(format!(
                "checkpoint is tagged {other:?}, which this server cannot rebuild \
                 (supported: {})",
                SERVABLE_TAGS.join(", ")
            ))
        }
    };
    let mut state = EngineState::new(
        model_name,
        tag,
        generation,
        n_parameters,
        ds.clone(),
        covered,
        foldin,
        final_emb,
        opts,
    );
    if state.quant_enabled() {
        state.quant_recall = measure_quant_recall(&state, &ds);
        registry::gauge_set(
            Gauge::QuantRecallPpm,
            (state.quant_recall * 1_000_000.0).round() as u64,
        );
    }
    // A standby index is measured too: its recall is exactly what the
    // brownout controller trades away when it steps down to ANN.
    if state.ann_available() {
        state.ann_recall = measure_ann_recall(&state, &ds);
        registry::gauge_set(
            Gauge::AnnRecallPpm,
            (state.ann_recall * 1_000_000.0).round() as u64,
        );
    }
    // Events past the covered prefix become the state's starting delta, so
    // a freshly opened (or reloaded) engine serves every acknowledged event.
    if (covered as usize) < events.len() {
        state.apply_events(&events[covered as usize..]);
    }
    Ok(state)
}

/// The live engine: dataset + current [`EngineState`] behind a
/// `RwLock<Arc<_>>` for lock-free-after-clone reads and atomic reloads.
pub struct Engine {
    ds: Arc<Dataset>,
    opts: EngineOptions,
    ckpt_path: Mutex<PathBuf>,
    state: RwLock<Arc<EngineState>>,
    generation: AtomicU64,
}

/// Replays the configured event log (empty without streaming, or before
/// the server has written its first segment).
fn load_events(opts: &EngineOptions) -> Result<Vec<StreamEvent>, String> {
    match &opts.events_dir {
        Some(dir) => EventLog::replay(dir),
        None => Ok(Vec::new()),
    }
}

impl Engine {
    /// Loads the checkpoint once and propagates the final embeddings. With
    /// [`EngineOptions::events_dir`] set, the acknowledged event log is
    /// replayed into the initial state (covered prefix → training matrices,
    /// suffix → fold-in delta), so a restart never forgets an acked event.
    pub fn open(
        ckpt: impl AsRef<Path>,
        ds: Arc<Dataset>,
        opts: EngineOptions,
    ) -> Result<Engine, String> {
        let ckpt = ckpt.as_ref().to_path_buf();
        let events = load_events(&opts)?;
        let state = build_state(&ds, &opts, &ckpt, 0, &events)?;
        Ok(Engine {
            ds,
            opts,
            ckpt_path: Mutex::new(ckpt),
            state: RwLock::new(Arc::new(state)),
            generation: AtomicU64::new(0),
        })
    }

    /// The **base** dataset the engine was opened with (never extended by
    /// streaming; see [`EngineState::ds`] for the state's own view).
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.ds
    }

    /// Folds freshly acknowledged events into the current state's delta.
    /// The server's ingest path calls this after every durable append,
    /// under its log lock — see `EngineState::apply_events` for ordering.
    pub fn fold_in(&self, events: &[StreamEvent]) -> Arc<StreamDelta> {
        self.state().apply_events(events)
    }

    /// The current snapshot. Cloning the `Arc` means the caller keeps a
    /// consistent state for its whole request even across a reload.
    pub fn state(&self) -> Arc<EngineState> {
        self.state.read().expect("engine state poisoned").clone()
    }

    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Re-reads the checkpoint file (which may have been replaced on disk)
    /// and atomically swaps the serving state. On any error the old state
    /// stays live. Returns the new state.
    pub fn reload(&self) -> Result<Arc<EngineState>, String> {
        let path = self.ckpt_path.lock().expect("ckpt path poisoned").clone();
        self.reload_from(&path)
    }

    /// [`Engine::reload`] from an explicit path, which becomes the new
    /// checkpoint path on success.
    pub fn reload_from(&self, path: &Path) -> Result<Arc<EngineState>, String> {
        let generation = self.generation.load(Ordering::SeqCst) + 1;
        let events = load_events(&self.opts)?;
        let state = Arc::new(build_state(&self.ds, &self.opts, path, generation, &events)?);
        *self.ckpt_path.lock().expect("ckpt path poisoned") = path.to_path_buf();
        *self.state.write().expect("engine state poisoned") = state.clone();
        self.generation.store(generation, Ordering::SeqCst);
        registry::add(Counter::ServeReloads, 1);
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrgcn_models::checkpoint::save_model;

    /// 4 users × 6 items, every user trained on `{u, u+1, u+2} mod 6`.
    fn tiny_dataset() -> Arc<Dataset> {
        let mut train = Vec::new();
        for u in 0..4u32 {
            for o in 0..3u32 {
                train.push((u, (u + o) % 6));
            }
        }
        Arc::new(Dataset::from_parts(
            "tiny",
            4,
            6,
            train,
            vec![vec![]; 4],
            vec![vec![4], vec![5], vec![0], vec![1]],
        ))
    }

    fn save_lightgcn(ds: &Dataset, path: &Path) {
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = LightGcn::new(
            ds,
            LightGcnConfig {
                embedding_dim: 8,
                n_layers: 2,
                ..LightGcnConfig::default()
            },
            &mut rng,
        );
        m.train_epoch(ds, 0, &mut rng);
        save_model(path, "lightgcn", &m).expect("save");
    }

    #[test]
    fn open_rebuilds_lrgccf_checkpoints() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("lrgcn_engine_lrgccf");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("m.ckpt");
        let cfg = LrGccfConfig {
            embedding_dim: 8,
            n_layers: 2,
            ..LrGccfConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = LrGccf::new(&ds, cfg.clone(), &mut rng);
        m.train_epoch(&ds, 0, &mut rng);
        save_model(&ckpt, "lrgccf", &m).expect("save");

        let eng = Engine::open(&ckpt, ds.clone(), EngineOptions {
            n_layers: 2,
            ..EngineOptions::default()
        })
        .expect("open");
        let st = eng.state();
        assert_eq!(st.tag, "lrgccf");
        // LR-GCCF serves the concatenated residual layers: (L+1) * d wide.
        assert_eq!(st.dim, 8 * 3);
        m.refresh(&ds);
        let expect = m.score_users(&ds, &[0, 1, 2, 3]);
        assert!(st.score_users(&[0, 1, 2, 3]).approx_eq(&expect, 0.0));
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn unknown_tags_name_every_servable_family() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("lrgcn_engine_badtag");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("m.ckpt");
        let marker = Matrix::zeros(0, 0);
        let ego = Matrix::zeros(10, 4);
        lrgcn_tensor::io::save_checkpoint(
            &ckpt,
            &[("__model__:mystery", &marker), ("ego", &ego)],
        )
        .expect("save");
        let err = match Engine::open(&ckpt, ds, EngineOptions::default()) {
            Ok(_) => panic!("unknown tag must not open"),
            Err(e) => e,
        };
        for tag in SERVABLE_TAGS {
            assert!(err.contains(tag), "error {err:?} does not mention {tag}");
        }
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn open_infers_dim_and_scores_match_the_model() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("lrgcn_engine_open");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("m.ckpt");
        save_lightgcn(&ds, &ckpt);

        let eng = Engine::open(&ckpt, ds.clone(), EngineOptions {
            n_layers: 2,
            ..EngineOptions::default()
        })
        .expect("open");
        let st = eng.state();
        assert_eq!(st.tag, "lightgcn");
        assert_eq!(st.dim, 8);
        assert_eq!((st.n_users, st.n_items), (4, 6));

        // Engine scores == the model's own refresh+score path.
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = LightGcn::new(
            &ds,
            LightGcnConfig {
                embedding_dim: 8,
                n_layers: 2,
                ..LightGcnConfig::default()
            },
            &mut rng,
        );
        let entries = lrgcn_tensor::io::load_checkpoint(&ckpt).expect("entries");
        m.load_checkpoint_entries(&entries).expect("restore");
        m.refresh(&ds);
        let expect = m.score_users(&ds, &[0, 1, 2, 3]);
        assert!(st.score_users(&[0, 1, 2, 3]).approx_eq(&expect, 0.0));
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn top_k_masks_training_items_only_when_asked() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("lrgcn_engine_mask");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("m.ckpt");
        save_lightgcn(&ds, &ckpt);
        let eng = Engine::open(&ckpt, ds.clone(), EngineOptions {
            n_layers: 2,
            ..EngineOptions::default()
        })
        .expect("open");
        let st = eng.state();

        let masked = st.top_k(&ds, 0, 6, true).expect("top_k");
        for &(it, _) in &masked {
            assert!(!ds.train_items(0).contains(&it), "seen item {it} leaked");
        }
        assert_eq!(masked.len(), 3); // 6 items - 3 seen
        let unmasked = st.top_k(&ds, 0, 6, false).expect("top_k");
        assert_eq!(unmasked.len(), 6);
        assert!(st.top_k(&ds, 99, 5, true).is_err());
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn similar_items_excludes_self_and_orders_by_cosine() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("lrgcn_engine_sim");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("m.ckpt");
        save_lightgcn(&ds, &ckpt);
        let eng = Engine::open(&ckpt, ds, EngineOptions {
            n_layers: 2,
            ..EngineOptions::default()
        })
        .expect("open");
        let st = eng.state();
        let sims = st.similar_items(2, 3).expect("similar");
        assert_eq!(sims.len(), 3);
        assert!(sims.iter().all(|&(it, _)| it != 2), "query item in results");
        assert!(sims.windows(2).all(|w| w[0].1 >= w[1].1), "not sorted");
        assert!(sims.iter().all(|&(_, s)| (-1.01..=1.01).contains(&s)));
        assert!(st.similar_items(99, 3).is_err());
        std::fs::remove_file(std::env::temp_dir().join("lrgcn_engine_sim/m.ckpt")).ok();
    }

    #[test]
    fn score_pairs_matches_row_dots_and_validates_range() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("lrgcn_engine_pairs");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("m.ckpt");
        save_lightgcn(&ds, &ckpt);
        let eng = Engine::open(&ckpt, ds, EngineOptions {
            n_layers: 2,
            ..EngineOptions::default()
        })
        .expect("open");
        let st = eng.state();
        let got = st.score_pairs(&[(0, 0), (3, 5)]).expect("score");
        let all = st.score_users(&[0, 3]);
        assert_eq!(got[0], all[(0, 0)]);
        assert_eq!(got[1], all[(1, 5)]);
        assert!(st.score_pairs(&[(0, 6)]).is_err());
        assert!(st.score_pairs(&[(4, 0)]).is_err());
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn reload_swaps_generation_and_survives_bad_files() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("lrgcn_engine_reload");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("m.ckpt");
        save_lightgcn(&ds, &ckpt);
        let eng = Engine::open(&ckpt, ds.clone(), EngineOptions {
            n_layers: 2,
            ..EngineOptions::default()
        })
        .expect("open");
        let before = eng.state();
        assert_eq!(eng.generation(), 0);

        // A held snapshot stays valid across the swap.
        let new = eng.reload().expect("reload");
        assert_eq!(new.generation, 1);
        assert_eq!(eng.generation(), 1);
        assert_eq!(before.generation, 0);
        assert!(before.score_users(&[0]).approx_eq(&new.score_users(&[0]), 0.0));

        // A corrupt file leaves the old state serving.
        std::fs::write(&ckpt, b"garbage").expect("clobber");
        assert!(eng.reload().is_err());
        assert_eq!(eng.generation(), 1);
        assert_eq!(eng.state().generation, 1);
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn scratch_paths_match_the_allocating_wrappers() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("lrgcn_engine_scratch");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("m.ckpt");
        save_lightgcn(&ds, &ckpt);
        let eng = Engine::open(&ckpt, ds.clone(), EngineOptions {
            n_layers: 2,
            ..EngineOptions::default()
        })
        .expect("open");
        let st = eng.state();
        let mut scratch = Scratch::default();
        for user in 0..4u32 {
            let a = st.top_k(&ds, user, 5, true).expect("top_k");
            let b = st
                .top_k_into(&ds, user, 5, true, &mut scratch)
                .expect("top_k_into");
            assert_eq!(a, b, "user {user}: scratch path diverged");
        }
        // The exact scratch path must also match the offline score matrix
        // bitwise, not just approximately.
        let offline = st.score_users(&[2]);
        let served = st.top_k(&ds, 2, 6, false).expect("top_k");
        for &(it, s) in &served {
            assert_eq!(
                s.to_bits(),
                offline[(0, it as usize)].to_bits(),
                "item {it} score drifted from the offline kernel"
            );
        }
        for item in 0..6u32 {
            let a = st.similar_items(item, 4).expect("similar");
            let b = st
                .similar_items_into(item, 4, &mut scratch)
                .expect("similar_into");
            assert_eq!(a, b, "item {item}: scratch path diverged");
        }
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn quant_engine_reranks_with_exact_scores() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("lrgcn_engine_quant");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("m.ckpt");
        save_lightgcn(&ds, &ckpt);
        let exact_eng = Engine::open(&ckpt, ds.clone(), EngineOptions {
            n_layers: 2,
            ..EngineOptions::default()
        })
        .expect("open exact");
        let quant_eng = Engine::open(&ckpt, ds.clone(), EngineOptions {
            n_layers: 2,
            quant: true,
            ..EngineOptions::default()
        })
        .expect("open quant");
        let exact = exact_eng.state();
        let quant = quant_eng.state();
        assert!(!exact.quant_enabled());
        assert!(quant.quant_enabled());
        assert!(quant.quant_bytes() > 0);
        assert_eq!(exact.quant_recall, 1.0);
        assert!(
            quant.quant_recall > 0.9,
            "recall {} too low on a 6-item catalog",
            quant.quant_recall
        );
        // Candidate pool (4·K) covers the whole tiny catalog, so the
        // rescored quant ranking must equal the exact one, scores included.
        for user in 0..4u32 {
            let e = exact.top_k(&ds, user, 3, true).expect("exact");
            let q = quant.top_k(&ds, user, 3, true).expect("quant");
            assert_eq!(e, q, "user {user}: full-coverage rescore diverged");
        }
        let e = exact.similar_items(1, 3).expect("exact similar");
        let q = quant.similar_items(1, 3).expect("quant similar");
        assert_eq!(e, q, "similar: full-coverage rescore diverged");
        // Pair scores are approximate under quant but must stay close.
        let pairs = [(0u32, 0u32), (1, 4), (3, 5)];
        let es = exact.score_pairs(&pairs).expect("exact pairs");
        let qs = quant.score_pairs(&pairs).expect("quant pairs");
        for (i, (a, b)) in es.iter().zip(&qs).enumerate() {
            assert!(
                (a - b).abs() <= 0.05 * a.abs().max(1.0),
                "pair {i}: exact {a} vs quant {b}"
            );
        }
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn ann_engine_with_full_probe_matches_exact() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("lrgcn_engine_ann");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("m.ckpt");
        save_lightgcn(&ds, &ckpt);
        let exact_eng = Engine::open(&ckpt, ds.clone(), EngineOptions {
            n_layers: 2,
            ..EngineOptions::default()
        })
        .expect("open exact");
        // nprobe covers every cell, so the candidate set is the whole
        // catalog and the exact-rescored ANN ranking must equal the exact
        // scan, scores included.
        let ann_eng = Engine::open(&ckpt, ds.clone(), EngineOptions {
            n_layers: 2,
            ann: true,
            nprobe: 6,
            ann_cells: 3,
            ..EngineOptions::default()
        })
        .expect("open ann");
        let exact = exact_eng.state();
        let ann = ann_eng.state();
        assert!(!exact.ann_enabled());
        assert!(ann.ann_enabled());
        assert!(ann.ann_bytes() > 0);
        assert_eq!(ann.ann_cells(), 3);
        assert_eq!(ann.ann_nprobe(), 3, "nprobe must clamp to the cell count");
        assert_eq!(exact.ann_recall, 1.0);
        assert_eq!(ann.ann_recall, 1.0, "full probe must be lossless");
        for user in 0..4u32 {
            let e = exact.top_k(&ds, user, 3, true).expect("exact");
            let a = ann.top_k(&ds, user, 3, true).expect("ann");
            assert_eq!(e, a, "user {user}: full-probe ANN diverged");
        }
        let e = exact.similar_items(1, 3).expect("exact similar");
        let a = ann.similar_items(1, 3).expect("ann similar");
        assert_eq!(e, a, "similar: full-probe ANN diverged");

        // ANN composed with quant still rescores with exact f32 dots.
        let both_eng = Engine::open(&ckpt, ds.clone(), EngineOptions {
            n_layers: 2,
            ann: true,
            quant: true,
            nprobe: 6,
            ann_cells: 3,
            ..EngineOptions::default()
        })
        .expect("open ann+quant");
        let both = both_eng.state();
        assert!(both.ann_enabled() && both.quant_enabled());
        for user in 0..4u32 {
            let e = exact.top_k(&ds, user, 3, true).expect("exact");
            let b = both.top_k(&ds, user, 3, true).expect("ann+quant");
            assert_eq!(e, b, "user {user}: ann+quant full-coverage diverged");
        }
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn standby_index_serves_exact_until_overridden() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("lrgcn_engine_standby");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("m.ckpt");
        save_lightgcn(&ds, &ckpt);
        let exact_eng = Engine::open(&ckpt, ds.clone(), EngineOptions {
            n_layers: 2,
            ..EngineOptions::default()
        })
        .expect("open exact");
        let standby_eng = Engine::open(&ckpt, ds.clone(), EngineOptions {
            n_layers: 2,
            ann_standby: true,
            nprobe: 6,
            ann_cells: 3,
            ..EngineOptions::default()
        })
        .expect("open standby");
        let exact = exact_eng.state();
        let st = standby_eng.state();
        assert!(!st.ann_enabled(), "standby must not change the default path");
        assert!(st.ann_available());
        assert!(st.ann_bytes() > 0);
        assert_eq!(st.ann_recall, 1.0, "standby recall is still measured");

        let mut scratch = Scratch::default();
        for user in 0..4u32 {
            let e = exact.top_k(&ds, user, 3, true).expect("exact");
            // No override: byte-identical to the exact engine.
            let d = st.top_k(&ds, user, 3, true).expect("default");
            assert_eq!(e, d, "user {user}: standby changed the default path");
            // Forced onto the index with a full probe: still identical
            // (every cell covered, exact rescore).
            let f = st
                .top_k_into_opts(
                    &ds,
                    user,
                    3,
                    true,
                    &mut scratch,
                    ReadOverride {
                        force_ann: true,
                        nprobe: None,
                    },
                )
                .expect("forced");
            assert_eq!(e, f, "user {user}: forced full-probe ANN diverged");
            // Narrowed probe: a valid (possibly shorter) ranking whose
            // scores are exact dots for whatever candidates survive.
            let n = st
                .top_k_into_opts(
                    &ds,
                    user,
                    3,
                    true,
                    &mut scratch,
                    ReadOverride {
                        force_ann: true,
                        nprobe: Some(1),
                    },
                )
                .expect("narrowed");
            assert!(n.len() <= 3);
            for (it, s) in &n {
                let hit = e.iter().find(|(ei, _)| ei == it);
                if let Some((_, es)) = hit {
                    assert_eq!(s.to_bits(), es.to_bits(), "narrowed rescore drifted");
                }
            }
        }
        // /similar under a forced override answers too.
        let e = exact.similar_items(1, 3).expect("exact similar");
        let f = st
            .similar_items_into_opts(
                1,
                3,
                &mut scratch,
                ReadOverride {
                    force_ann: true,
                    nprobe: None,
                },
            )
            .expect("forced similar");
        assert_eq!(e, f, "similar: forced full-probe ANN diverged");
        std::fs::remove_file(ckpt).ok();
    }

    fn save_layergcn(ds: &Dataset, path: &Path) {
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = LayerGcn::new(
            ds,
            LayerGcnConfig {
                embedding_dim: 8,
                n_layers: 2,
                pruner: EdgePruner::None,
                ..LayerGcnConfig::default()
            },
            &mut rng,
        );
        m.train_epoch(ds, 0, &mut rng);
        save_model(path, "layergcn", &m).expect("save");
    }

    fn ev(user: u32, item: u32, seq: u64) -> StreamEvent {
        StreamEvent {
            user,
            item,
            timestamp: 1_700_000_000 + seq as i64,
            client: "t".into(),
            seq,
            request_id: String::new(),
        }
    }

    #[test]
    fn streaming_fold_in_serves_new_users_and_items() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("lrgcn_engine_stream");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("m.ckpt");
        save_layergcn(&ds, &ckpt);
        let events_dir = dir.join("events");
        {
            let mut log = EventLog::open(&events_dir).expect("log");
            // New user 4 on trained items, plus a brand-new item 6.
            log.append_batch(&[ev(4, 0, 1), ev(4, 5, 2), ev(0, 6, 3)])
                .expect("append");
        }
        let eng = Engine::open(&ckpt, ds.clone(), EngineOptions {
            n_layers: 2,
            dropout: 0.0,
            events_dir: Some(events_dir.clone()),
            ..EngineOptions::default()
        })
        .expect("open");
        let st = eng.state();
        assert!(st.foldin_enabled());
        assert_eq!(st.covered_events, 0);
        let delta = st.delta();
        assert_eq!(delta.events_applied(), 3);
        assert_eq!(delta.version(), 1);
        assert_eq!(delta.touched_users(), 2);
        assert_eq!(delta.new_items(), 1);
        let mut scratch = Scratch::default();

        // The post-training user serves a non-empty, sorted, finite top-K
        // spanning trained items and the folded-in item 6.
        let recs = st
            .top_k_stream(&delta, 4, 10, false, &mut scratch)
            .expect("stream recs");
        assert_eq!(recs.len(), 7, "all 6 trained items + folded item 6");
        assert!(recs.windows(2).all(|w| w[0].1 >= w[1].1), "not sorted");
        assert!(recs.iter().all(|&(_, s)| s.is_finite()));

        // exclude_seen masks the folded-in interactions too.
        let masked = st
            .top_k_stream(&delta, 4, 10, true, &mut scratch)
            .expect("masked");
        let ids: Vec<u32> = masked.iter().map(|&(i, _)| i).collect();
        assert!(!ids.contains(&0) && !ids.contains(&5), "folded items leaked");
        assert!(ids.contains(&6), "new item should still be servable");

        // Trained user 0 folded in item 6: masked out for them, and their
        // row was refreshed (still a valid ranking over the rest).
        let u0 = st
            .top_k_stream(&delta, 0, 10, true, &mut scratch)
            .expect("u0");
        let u0_ids: Vec<u32> = u0.iter().map(|&(i, _)| i).collect();
        assert!(!u0_ids.contains(&6), "folded item 6 leaked for user 0");
        for &it in ds.train_items(0) {
            assert!(!u0_ids.contains(&it), "trained item {it} leaked");
        }

        // Users far past anything folded in are still a clean error.
        assert!(st.top_k_stream(&delta, 99, 5, true, &mut scratch).is_err());

        // An untouched trained user with exclude_seen and no new-item
        // overlap keeps the plain path's ranking as a prefix.
        let plain = st.top_k(&ds, 2, 3, true).expect("plain");
        let stream = st
            .top_k_stream(&delta, 2, 3, true, &mut scratch)
            .expect("stream");
        // Item 6's score may displace the tail, but the surviving trained
        // items must keep their exact scores.
        for (it, s) in &stream {
            if (*it as usize) < st.n_items {
                let exact = plain.iter().find(|(p, _)| p == it);
                if let Some((_, ps)) = exact {
                    assert_eq!(s.to_bits(), ps.to_bits(), "score drifted for {it}");
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_replays_the_event_log_into_the_new_state() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("lrgcn_engine_stream_reload");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("m.ckpt");
        save_layergcn(&ds, &ckpt);
        let events_dir = dir.join("events");
        let eng = Engine::open(&ckpt, ds.clone(), EngineOptions {
            n_layers: 2,
            dropout: 0.0,
            events_dir: Some(events_dir.clone()),
            ..EngineOptions::default()
        })
        .expect("open");
        // Nothing logged yet: the starting delta is empty at version 0.
        assert!(eng.state().delta().is_empty());
        assert_eq!(eng.state().delta().version(), 0);

        // Log two events (as the server's ingest path would), fold them in.
        let batch = [ev(5, 1, 1), ev(5, 2, 2)];
        {
            let mut log = EventLog::open(&events_dir).expect("log");
            log.append_batch(&batch).expect("append");
        }
        let delta = eng.fold_in(&batch);
        assert_eq!(delta.events_applied(), 2);
        let mut scratch = Scratch::default();
        let st = eng.state();
        let before = st
            .top_k_stream(&delta, 5, 4, true, &mut scratch)
            .expect("before");
        assert!(!before.is_empty());

        // Reload rebuilds the state and replays the log from disk — the
        // folded-in user survives with the identical synthesized ranking.
        let st2 = eng.reload().expect("reload");
        let d2 = st2.delta();
        assert_eq!(d2.events_applied(), 2);
        let after = st2
            .top_k_stream(&d2, 5, 4, true, &mut scratch)
            .expect("after");
        assert_eq!(before, after, "replayed fold-in state diverged");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fold_in_without_a_basis_logs_but_serves_no_rows() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("lrgcn_engine_stream_nobasis");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("m.ckpt");
        save_lightgcn(&ds, &ckpt); // LightGCN opts out of fold-in.
        let events_dir = dir.join("events");
        let eng = Engine::open(&ckpt, ds, EngineOptions {
            n_layers: 2,
            events_dir: Some(events_dir),
            ..EngineOptions::default()
        })
        .expect("open");
        let st = eng.state();
        assert!(!st.foldin_enabled());
        let delta = eng.fold_in(&[ev(7, 0, 1)]);
        assert_eq!(delta.events_applied(), 1);
        // The interaction is tracked (exclude_seen, retrain) but no row is
        // synthesized, so the unseen user stays an error.
        assert_eq!(delta.user_items(7), &[0]);
        let mut scratch = Scratch::default();
        assert!(st.top_k_stream(&delta, 7, 5, true, &mut scratch).is_err());
        std::fs::remove_dir_all(std::env::temp_dir().join("lrgcn_engine_stream_nobasis")).ok();
    }

    #[test]
    fn mismatched_dataset_is_a_clear_error() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("lrgcn_engine_mismatch");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("m.ckpt");
        save_lightgcn(&ds, &ckpt);
        let other = Arc::new(Dataset::from_parts(
            "other",
            2,
            2,
            vec![(0, 0), (1, 1)],
            vec![vec![]; 2],
            vec![vec![1], vec![0]],
        ));
        let err = match Engine::open(&ckpt, other, EngineOptions::default()) {
            Err(e) => e,
            Ok(_) => panic!("mismatched dataset must fail"),
        };
        assert!(err.contains("users"), "{err}");
        std::fs::remove_file(ckpt).ok();
    }
}
