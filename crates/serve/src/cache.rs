//! Sharded LRU cache of per-user top-K responses.
//!
//! Keys carry the engine *generation*, so a hot reload invalidates every
//! cached response without touching the cache: old-generation keys simply
//! stop being requested and age out. Sharding by user id keeps lock
//! contention off the request path — concurrent requests for different
//! users almost never share a shard mutex.
//!
//! Recency is tracked with a monotone per-shard tick (updated on hit);
//! eviction scans the full shard for the minimum tick. That is `O(capacity)`
//! per eviction, which for serving-cache sizes (hundreds to a few thousand
//! entries per shard) is cheaper and simpler than an intrusive list — and
//! never wrong about which entry is coldest.

use lrgcn_obs::{registry, Counter};
use std::collections::HashMap;
use std::sync::Mutex;

/// What makes a cached response reusable: same engine generation, user,
/// cutoff, masking mode — and the same *read-path configuration*. The
/// generation alone is not enough: two engines serving the same checkpoint
/// with different index settings (exact vs quant vs ann, or a different
/// probe width) produce different top-K lists at the same generation, so
/// the quant flag and effective nprobe (0 = ANN off) are part of the key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Key {
    pub generation: u64,
    pub user: u32,
    pub k: usize,
    pub exclude_seen: bool,
    /// Whether the int8 quantized read path produced the entry.
    pub quant: bool,
    /// Effective IVF probe width that produced the entry; `0` = ANN off.
    pub nprobe: u32,
    /// Streaming fold-in delta version the entry was computed against
    /// (`StreamDelta::version`); `0` = nothing folded in. Each `/events`
    /// fold-in bumps it, invalidating cached answers the same way a
    /// reload's generation bump does.
    pub delta: u64,
}

struct Shard {
    map: HashMap<Key, (u64, Vec<(u32, f32)>)>,
    tick: u64,
}

/// The cache. `get`/`insert` record obs hit/miss counters.
pub struct TopKCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
}

impl TopKCache {
    /// `capacity` is the total entry budget, split evenly over `shards`
    /// (both are rounded up to at least 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.div_ceil(shards).max(1);
        Self {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            per_shard_capacity,
        }
    }

    fn shard(&self, key: &Key) -> &Mutex<Shard> {
        &self.shards[key.user as usize % self.shards.len()]
    }

    pub fn get(&self, key: &Key) -> Option<Vec<(u32, f32)>> {
        let mut s = self.shard(key).lock().expect("cache shard poisoned");
        s.tick += 1;
        let tick = s.tick;
        match s.map.get_mut(key) {
            Some((last_used, items)) => {
                *last_used = tick;
                registry::add(Counter::ServeCacheHits, 1);
                Some(items.clone())
            }
            None => {
                registry::add(Counter::ServeCacheMisses, 1);
                None
            }
        }
    }

    /// Brownout-only lookup: any entry for the same `(user, k,
    /// exclude_seen, quant, nprobe)` regardless of generation or delta
    /// version, preferring the entry closest to the requested generation
    /// (newest first). Under deep brownout (DESIGN.md §14, level 3) a
    /// slightly stale ranking beats a shed request; the handler marks the
    /// response `"stale": true` so clients can tell. The scan is
    /// `O(shard entries)` — acceptable exactly because it only runs while
    /// the server is already saturated and shards are small.
    pub fn get_stale(&self, key: &Key) -> Option<(u64, Vec<(u32, f32)>)> {
        let mut s = self.shard(key).lock().expect("cache shard poisoned");
        s.tick += 1;
        let tick = s.tick;
        let found = s
            .map
            .iter()
            .filter(|(k, _)| {
                k.user == key.user
                    && k.k == key.k
                    && k.exclude_seen == key.exclude_seen
                    && k.quant == key.quant
                    && k.nprobe == key.nprobe
            })
            .max_by_key(|(k, _)| (k.generation, k.delta))
            .map(|(k, _)| *k)?;
        let (last_used, items) = s.map.get_mut(&found).expect("key just found");
        *last_used = tick;
        if found.generation != key.generation || found.delta != key.delta {
            registry::add(Counter::ServeStaleHits, 1);
        } else {
            registry::add(Counter::ServeCacheHits, 1);
        }
        Some((found.generation, items.clone()))
    }

    pub fn insert(&self, key: Key, items: Vec<(u32, f32)>) {
        let mut s = self.shard(&key).lock().expect("cache shard poisoned");
        s.tick += 1;
        let tick = s.tick;
        if s.map.len() >= self.per_shard_capacity && !s.map.contains_key(&key) {
            if let Some(coldest) = s
                .map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| *k)
            {
                s.map.remove(&coldest);
            }
        }
        s.map.insert(key, (tick, items));
    }

    /// Live entries across all shards (test/diagnostic aid).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(user: u32, generation: u64) -> Key {
        Key {
            generation,
            user,
            k: 10,
            exclude_seen: true,
            quant: false,
            nprobe: 0,
            delta: 0,
        }
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let c = TopKCache::new(8, 2);
        assert!(c.get(&key(1, 0)).is_none());
        c.insert(key(1, 0), vec![(7, 0.5)]);
        assert_eq!(c.get(&key(1, 0)), Some(vec![(7, 0.5)]));
        // A different generation is a different key: reload invalidates.
        assert!(c.get(&key(1, 1)).is_none());
        // So is a different read-path configuration at the same generation.
        assert!(c.get(&Key { quant: true, ..key(1, 0) }).is_none());
        assert!(c.get(&Key { nprobe: 8, ..key(1, 0) }).is_none());
        // And so is a newer streaming fold-in delta version.
        assert!(c.get(&Key { delta: 1, ..key(1, 0) }).is_none());
    }

    #[test]
    fn stale_lookup_crosses_generations_but_not_shape() {
        let c = TopKCache::new(8, 1);
        c.insert(key(1, 3), vec![(7, 0.5)]);
        c.insert(key(1, 5), vec![(8, 0.9)]);
        // Fresh lookup at generation 9 misses; stale lookup serves the
        // newest matching generation.
        assert!(c.get(&key(1, 9)).is_none());
        assert_eq!(c.get_stale(&key(1, 9)), Some((5, vec![(8, 0.9)])));
        // An exact match is preferred and not counted as stale.
        assert_eq!(c.get_stale(&key(1, 5)), Some((5, vec![(8, 0.9)])));
        // Different k / masking / read path never cross over.
        assert!(c.get_stale(&Key { k: 20, ..key(1, 9) }).is_none());
        assert!(c
            .get_stale(&Key { exclude_seen: false, ..key(1, 9) })
            .is_none());
        assert!(c.get_stale(&Key { quant: true, ..key(1, 9) }).is_none());
        assert!(c.get_stale(&key(2, 9)).is_none(), "other user");
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        // One shard of capacity 2 — deterministic eviction order.
        let c = TopKCache::new(2, 1);
        c.insert(key(1, 0), vec![(1, 1.0)]);
        c.insert(key(2, 0), vec![(2, 1.0)]);
        c.get(&key(1, 0)); // touch 1: now 2 is coldest
        c.insert(key(3, 0), vec![(3, 1.0)]);
        assert!(c.get(&key(1, 0)).is_some());
        assert!(c.get(&key(2, 0)).is_none());
        assert!(c.get(&key(3, 0)).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let c = TopKCache::new(2, 1);
        c.insert(key(1, 0), vec![(1, 1.0)]);
        c.insert(key(2, 0), vec![(2, 1.0)]);
        c.insert(key(2, 0), vec![(2, 2.0)]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&key(2, 0)), Some(vec![(2, 2.0)]));
    }
}
