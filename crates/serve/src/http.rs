//! A deliberately small HTTP/1.1 layer over `std::net::TcpStream`.
//!
//! One request per connection (`Connection: close` on every response) keeps
//! the server loop trivial and makes graceful shutdown exact: a worker that
//! finished writing its response holds no half-open protocol state. Headers
//! are capped at 16 KiB and bodies at 1 MiB, so a hostile peer cannot make
//! a worker allocate unboundedly; reads carry a socket timeout installed by
//! the caller.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;

/// Maximum bytes of request line + headers.
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Maximum bytes of request body (`POST /score` batches).
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request: method, decoded path, query map, headers and raw body.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Percent-decoded path, query string stripped.
    pub path: String,
    /// Percent-decoded `key=value` pairs; later duplicates win.
    pub query: HashMap<String, String>,
    /// Header fields, names lowercased, values trimmed; later duplicates
    /// win. Bounded by the 16 KiB header cap.
    pub headers: HashMap<String, String>,
    pub body: Vec<u8>,
}

impl Request {
    pub fn query_get(&self, key: &str) -> Option<&str> {
        self.query.get(key).map(String::as_str)
    }

    /// Case-insensitive header lookup (`name` must be lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name).map(String::as_str)
    }
}

/// A request-parse failure carrying the HTTP status the server should
/// answer with: `431` when the header section blew its byte cap, `400`
/// for everything else. Keeping the status here (rather than string
/// matching in the server) pins the mapping at the point the defect is
/// detected.
#[derive(Debug)]
pub struct HttpError {
    pub status: u16,
    pub msg: String,
}

impl HttpError {
    fn bad(msg: impl Into<String>) -> HttpError {
        HttpError {
            status: 400,
            msg: msg.into(),
        }
    }
}

/// Reads and parses one request. The caller maps the error to its carried
/// status (400 or 431).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(HttpError {
                status: 431,
                msg: "request headers exceed 16KiB".into(),
            });
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| HttpError::bad(format!("read: {e}")))?;
        if n == 0 {
            return Err(HttpError::bad("connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| HttpError::bad("non-UTF8 request head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| HttpError::bad("empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .ok_or_else(|| HttpError::bad("missing method"))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::bad("missing request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::bad("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad(format!("unsupported version {version:?}")));
    }
    let mut content_length = 0usize;
    let mut headers = HashMap::new();
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            let key = k.trim().to_ascii_lowercase();
            let value = v.trim();
            if key == "content-length" {
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::bad(format!("bad Content-Length {v:?}")))?;
            }
            headers.insert(key, value.to_string());
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::bad("request body exceeds 1MiB"));
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| HttpError::bad(format!("read body: {e}")))?;
        if n == 0 {
            return Err(HttpError::bad("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut query = HashMap::new();
    for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        query.insert(percent_decode(k), percent_decode(v));
    }
    Ok(Request {
        method,
        path: percent_decode(raw_path),
        query,
        headers,
        body,
    })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// `%XX` and `+` decoding; malformed escapes pass through literally.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Writes a complete response and flushes. Always `Connection: close`.
/// `extra` headers (e.g. `x-lrgcn-request-id`) are emitted verbatim after
/// the fixed ones; callers must pass sanitized values (no CR/LF).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status_reason(status),
        body.len()
    );
    for (k, v) in extra {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding_covers_escapes_plus_and_garbage() {
        assert_eq!(percent_decode("/recs/42"), "/recs/42");
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn header_end_detection() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn status_reasons_are_stable() {
        assert_eq!(status_reason(200), "OK");
        assert_eq!(status_reason(404), "Not Found");
        assert_eq!(status_reason(431), "Request Header Fields Too Large");
        assert_eq!(status_reason(599), "Unknown");
    }

    #[test]
    fn oversized_headers_are_rejected_with_431() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET / HTTP/1.1\r\n").unwrap();
            // Trickle headers past the 16 KiB cap without ever sending the
            // terminating blank line.
            let line = format!("X-Pad: {}\r\n", "a".repeat(1000));
            for _ in 0..20 {
                if s.write_all(line.as_bytes()).is_err() {
                    break; // server already hung up after rejecting
                }
            }
            s
        });
        let (mut stream, _) = listener.accept().unwrap();
        let err = read_request(&mut stream).unwrap_err();
        assert_eq!(err.status, 431, "oversized headers must map to 431: {err:?}");
        assert!(err.msg.contains("16KiB"), "unexpected message {:?}", err.msg);
        drop(client.join().unwrap());
    }

    #[test]
    fn malformed_requests_are_400_not_431() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET / SMTP/9\r\n\r\n").unwrap();
            s
        });
        let (mut stream, _) = listener.accept().unwrap();
        let err = read_request(&mut stream).unwrap_err();
        assert_eq!(err.status, 400);
        drop(client.join().unwrap());
    }

    #[test]
    fn headers_are_captured_lowercased_and_trimmed() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(
                b"POST /score HTTP/1.1\r\nHost: x\r\nX-LRGCN-Request-Id:  abc-123 \r\nContent-Length: 2\r\n\r\nhi",
            )
            .unwrap();
            s.flush().unwrap();
            // Keep the stream open until the server side has parsed.
            s
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream).unwrap();
        drop(client.join().unwrap());
        assert_eq!(req.method, "POST");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("x-lrgcn-request-id"), Some("abc-123"));
        assert_eq!(req.header("content-length"), Some("2"));
        assert_eq!(req.header("missing"), None);
        assert_eq!(req.body, b"hi");
    }
}
