//! # lrgcn-serve — zero-dependency online recommendation serving
//!
//! Turns a trained checkpoint (see `lrgcn_models::checkpoint`) into an HTTP
//! service on `std::net` alone — no tokio, no hyper, no serde:
//!
//! * [`engine`] — loads the checkpoint once, materializes the final node
//!   embedding table, and answers `top_k` / `similar_items` /
//!   `score_pairs` through the *same* kernels as the offline evaluator, so
//!   served rankings are byte-identical to `evaluate_ranking` output for
//!   any `LRGCN_THREADS`. Hot reload swaps an `Arc<EngineState>` under a
//!   `RwLock`; requests in flight keep their snapshot.
//! * [`ann`] — a zero-dependency IVF index (deterministic k-means coarse
//!   quantizer + inverted cell lists) for sub-linear `/recs` and
//!   `/similar` candidate generation behind `serve --ann --nprobe N`,
//!   rebuilt on every hot reload and guarded by a build-time sampled
//!   recall measurement (`EngineState::ann_recall`).
//! * [`server`] — a fixed worker pool sharing one nonblocking listener;
//!   routes for recommendations, item similarity, batch scoring, health,
//!   Prometheus-rendered obs metrics, reload and graceful shutdown.
//! * [`batch`] — concurrent `POST /score` requests coalesce into one
//!   scoring kernel per tick through a condvar queue.
//! * [`cache`] — a sharded LRU of per-user top-K responses, keyed by
//!   engine generation so reloads invalidate implicitly.
//! * [`delta`] — the epoch-free streaming fold-in overlay: `POST /events`
//!   appends to a crash-safe `lrgcn_stream::EventLog` and folds the new
//!   interactions into an immutable [`StreamDelta`] the read paths merge
//!   on top of the trained state — see DESIGN.md §13.
//! * [`http`] — the minimal HTTP/1.1 request/response layer.
//! * [`chaos`] — a deterministic socket-level fault injector for tests and
//!   the overload bench: seeded plans of connection faults (abort
//!   mid-write, slow-loris, torn frames, garbage bytes) driven against a
//!   live server — see DESIGN.md §14.
//!
//! Overload control (DESIGN.md §14): [`server`] guards the compute routes
//! with a bounded admission gate (`--max-inflight`/`--max-queue`, sheds
//! are prompt 503 + `Retry-After`), honors per-request
//! `x-lrgcn-deadline-ms` deadlines (checked at dequeue and again before
//! the scoring kernel), and — with `--brownout` — steps the live read
//! path down under sustained pressure (exact → ANN via
//! [`engine::ReadOverride`] → narrower probes + k cap → stale cache) and
//! back up with hysteresis. `--ann-standby` builds the IVF index without
//! serving through it so level 1 has somewhere cheaper to go.
//!
//! Every request path is instrumented with `lrgcn_obs` counters
//! (`serve.http.requests`, `serve.cache.hits`, ...), histograms
//! (`serve.request_ns`, `serve.score.batch_ns`) and trace spans, all
//! exposed at `GET /metrics`. A per-request middleware in [`server`]
//! additionally mints/echoes `x-lrgcn-request-id`, feeds the
//! `lrgcn_obs::window` rolling 10s/60s/300s windows (read at
//! `GET /admin/obs` and by `lrgcn top`), appends an optional sampled JSONL
//! access log, and tracks SLO burn rates — see DESIGN.md §12.

pub mod ann;
pub mod batch;
pub mod cache;
pub mod chaos;
pub mod delta;
pub mod engine;
pub mod http;
pub mod server;

pub use ann::{IvfConfig, IvfIndex};
pub use batch::Batcher;
pub use cache::TopKCache;
pub use chaos::{ChaosClient, ConnFault, FaultPlan};
pub use delta::StreamDelta;
pub use engine::{Engine, EngineOptions, EngineState, ReadOverride, Scratch};
pub use server::{render_metrics, serve, ServerConfig, ServerHandle};
