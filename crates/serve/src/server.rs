//! The HTTP front-end: worker pool, routing, metrics rendering, graceful
//! shutdown.
//!
//! ```text
//! GET  /healthz                     liveness + model/generation + 60s window
//! GET  /metrics                     Prometheus text of the obs registry
//! GET  /admin/obs                   windowed RED snapshot (10s/60s/300s) JSON
//! GET  /recs/{user}?k=N[&exclude_seen=bool]   cached top-K for a user
//! GET  /similar/{item}?k=N          item-item cosine neighbours
//! POST /score                       {"pairs": [[u,i],...]} micro-batched
//! POST /events                      append interaction events (JSON/JSONL)
//! POST /admin/reload                re-read the checkpoint, swap, bump gen
//! POST /admin/shutdown              begin graceful shutdown
//! ```
//!
//! Concurrency model: `workers` threads share one nonblocking listener via
//! `try_clone` and sleep-poll `accept`. A request in flight always runs to
//! completion — shutdown only flips an `AtomicBool` the workers check
//! *between* connections — and reloads swap an `Arc` snapshot, so neither
//! ever fails an accepted request.
//!
//! Every request passes through a thin observability middleware (DESIGN.md
//! §12): it assigns a request id (honoring an inbound
//! `x-lrgcn-request-id`, echoing it on the response), times the full
//! handler, classifies (route × status class × read path), feeds the
//! cumulative registry and the `obs::window` rolling rings, and appends a
//! sampled JSONL access-log line when `--access-log` is armed.

use crate::batch::Batcher;
use crate::cache::{Key, TopKCache};
use crate::engine::{Engine, EngineState, ReadOverride, Scratch};
use crate::http::{read_request, write_response, Request};
use lrgcn_obs::json::Value;
use lrgcn_obs::registry::{bucket_upper_ns, HIST_BUCKETS};
use lrgcn_obs::window::{self, ReadPath, Route, WindowStats, WINDOWS_S};
use lrgcn_obs::{registry, Counter, Gauge, Hist};
use lrgcn_stream::{EventLog, StreamEvent};
use std::cell::RefCell;
use std::fs::{File, OpenOptions};
use std::io::{ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Server knobs. `Default` binds an ephemeral localhost port.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8642`; port 0 picks one.
    pub addr: String,
    /// Worker threads; 0 means the parallel layer's effective thread count
    /// (the `LRGCN_THREADS` convention).
    pub workers: usize,
    /// Total response-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Micro-batch coalescing window.
    pub batch_tick: Duration,
    /// JSONL access-log path (append); `None` disables the access log.
    pub access_log: Option<PathBuf>,
    /// Log one request in N (1 = every request). Ignored without
    /// `access_log`.
    pub access_sample: u64,
    /// Latency SLO threshold: p99 target in milliseconds. Requests slower
    /// than this are "slow" for burn-rate purposes.
    pub slo_p99_ms: Option<u64>,
    /// Availability SLO budget: tolerated error ratio in parts per million.
    pub slo_err_ppm: Option<u64>,
    /// Streaming ingestion: directory of the crash-safe event log behind
    /// `POST /events` (DESIGN.md §13). Should match
    /// `EngineOptions::events_dir` so reloads replay what ingestion wrote.
    /// `None` disables the route (404).
    pub events_log: Option<PathBuf>,
    /// Backpressure threshold: concurrent in-flight `/events` requests at
    /// or above this answer 503 + `Retry-After` instead of queueing on the
    /// log mutex without bound.
    pub events_max_pending: u64,
    /// Admission control (DESIGN.md §14): maximum concurrent compute
    /// requests (`/recs`, `/similar`, `/score`) past the gate. `0` turns
    /// the gate off.
    pub max_inflight: usize,
    /// Bounded admission queue: requests allowed to wait for a slot while
    /// `max_inflight` are executing. Arrivals beyond this shed immediately
    /// with 503 + `Retry-After`.
    pub max_queue: usize,
    /// Default per-request deadline (milliseconds) for compute routes when
    /// the client sends no `x-lrgcn-deadline-ms` header; `0` = none.
    pub deadline_default_ms: u64,
    /// Arms the brownout controller (requires `slo_p99_ms`): under
    /// sustained overload the live read path steps down — exact → ANN →
    /// narrower probes + k cap → stale cache + queue off — and steps back
    /// up with hysteresis once the 10s window is healthy again.
    pub brownout: bool,
    /// Consecutive pressured controller ticks before stepping one level
    /// deeper into degradation.
    pub brownout_up_ticks: u32,
    /// Consecutive calm ticks before stepping one level back toward
    /// healthy. Larger than `brownout_up_ticks` so recovery is cautious.
    pub brownout_down_ticks: u32,
    /// Brownout controller tick interval (tests shrink it to milliseconds).
    pub brownout_tick: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            cache_capacity: 4096,
            batch_tick: Duration::from_millis(1),
            access_log: None,
            access_sample: 1,
            slo_p99_ms: None,
            slo_err_ppm: None,
            events_log: None,
            events_max_pending: 1024,
            max_inflight: 0,
            max_queue: 32,
            deadline_default_ms: 0,
            brownout: false,
            brownout_up_ticks: 3,
            brownout_down_ticks: 10,
            brownout_tick: Duration::from_secs(1),
        }
    }
}

/// A running server. Dropping the handle does NOT stop it; call
/// [`ServerHandle::shutdown`] + [`ServerHandle::wait`] (or POST
/// /admin/shutdown) for a graceful stop.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    batcher: Arc<Batcher>,
    workers: Vec<JoinHandle<()>>,
    scorer: Option<JoinHandle<()>>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins graceful shutdown: workers finish their in-flight request,
    /// the scorer drains the queue.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.batcher.shutdown();
    }

    /// True once shutdown has been requested (by this handle or over HTTP).
    pub fn is_shutting_down(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Blocks until every worker and the scorer have exited.
    pub fn wait(mut self) {
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(s) = self.scorer.take() {
            let _ = s.join();
        }
    }
}

/// How often idle workers re-check the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Per-connection socket timeout: a stalled peer cannot pin a worker.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(5);

/// Binds, spawns the worker pool and the batch scorer, returns immediately.
pub fn serve(engine: Arc<Engine>, cfg: ServerConfig) -> Result<ServerHandle, String> {
    if cfg.brownout && cfg.slo_p99_ms.is_none() {
        return Err("brownout control needs a latency target: set slo_p99_ms".into());
    }
    let listener =
        TcpListener::bind(&cfg.addr).map_err(|e| format!("binding {}: {e}", cfg.addr))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("nonblocking listener: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;

    let n_workers = if cfg.workers == 0 {
        lrgcn_tensor::par::effective_threads()
    } else {
        cfg.workers
    };
    let stop = Arc::new(AtomicBool::new(false));
    let cache = Arc::new(TopKCache::new(cfg.cache_capacity, n_workers.max(1)));
    let batcher = Batcher::new(cfg.batch_tick);
    let obs = Arc::new(ObsState::new(&cfg, read_path_of(&engine))?);
    let overload = Arc::new(Overload::new(&cfg));
    registry::gauge_set(Gauge::BrownoutLevel, 0);
    let ingest = match &cfg.events_log {
        Some(dir) => {
            let log = EventLog::open(dir)?;
            // Retrain staleness at boot: events the serving checkpoint's
            // training matrices don't include yet.
            registry::gauge_set(
                Gauge::EventsLogLag,
                log.len().saturating_sub(engine.state().covered_events),
            );
            Some(Arc::new(EventIngest {
                log: Mutex::new(log),
                pending: AtomicU64::new(0),
                max_pending: cfg.events_max_pending,
                last_fold_in_ms: AtomicU64::new(0),
            }))
        }
        None => None,
    };

    let scorer = {
        let b = batcher.clone();
        let e = engine.clone();
        std::thread::Builder::new()
            .name("lrgcn-serve-scorer".into())
            .spawn(move || b.run_scorer(e))
            .map_err(|e| format!("spawning scorer: {e}"))?
    };

    let mut workers = Vec::with_capacity(n_workers);
    for w in 0..n_workers {
        let listener = listener
            .try_clone()
            .map_err(|e| format!("cloning listener: {e}"))?;
        let ctx = Ctx {
            engine: engine.clone(),
            cache: cache.clone(),
            batcher: batcher.clone(),
            stop: stop.clone(),
            cache_enabled: cfg.cache_capacity > 0,
            obs: obs.clone(),
            ingest: ingest.clone(),
            overload: overload.clone(),
        };
        workers.push(
            std::thread::Builder::new()
                .name(format!("lrgcn-serve-{w}"))
                .spawn(move || worker_loop(listener, ctx))
                .map_err(|e| format!("spawning worker: {e}"))?,
        );
    }

    if cfg.brownout {
        let ov = overload.clone();
        let stop_flag = stop.clone();
        let slo_ns = cfg.slo_p99_ms.unwrap_or(0).saturating_mul(1_000_000);
        let tick = cfg.brownout_tick;
        let mut ctl = BrownoutCtl::new(cfg.brownout_up_ticks, cfg.brownout_down_ticks);
        // The controller joins the worker pool for shutdown purposes: it
        // sleeps at most one tick past the stop flag flipping.
        workers.push(
            std::thread::Builder::new()
                .name("lrgcn-serve-brownout".into())
                .spawn(move || {
                    while !stop_flag.load(Ordering::SeqCst) {
                        std::thread::sleep(tick);
                        let w10 = window::serving_window(window::now_sec(), 10);
                        let old = ov.level.load(Ordering::SeqCst);
                        let new = ctl.tick(old, under_pressure(&w10, slo_ns, &ov));
                        if new != old {
                            ov.level.store(new, Ordering::SeqCst);
                            registry::gauge_set(Gauge::BrownoutLevel, new as u64);
                            registry::add(
                                if new > old {
                                    Counter::ServeBrownoutStepUps
                                } else {
                                    Counter::ServeBrownoutStepDowns
                                },
                                1,
                            );
                        }
                    }
                })
                .map_err(|e| format!("spawning brownout controller: {e}"))?,
        );
    }

    if lrgcn_obs::sink::enabled() {
        let run = lrgcn_obs::sink::next_run_id();
        lrgcn_obs::sink::emit(&lrgcn_obs::event::run_start(
            run,
            &engine.state().model_name,
            "serve",
            n_workers as u64,
        ));
    }

    Ok(ServerHandle {
        addr,
        stop,
        batcher,
        workers,
        scorer: Some(scorer),
    })
}

thread_local! {
    /// Per-worker request buffers: score/index/quant-query scratch reused
    /// across every request a worker thread handles, so the hot path
    /// allocates nothing proportional to the catalog size.
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Everything a worker needs, cloned per thread.
struct Ctx {
    engine: Arc<Engine>,
    cache: Arc<TopKCache>,
    batcher: Arc<Batcher>,
    stop: Arc<AtomicBool>,
    cache_enabled: bool,
    obs: Arc<ObsState>,
    /// Streaming ingestion state; `None` when `--events-log` is off.
    ingest: Option<Arc<EventIngest>>,
    /// Admission gate + brownout level (DESIGN.md §14).
    overload: Arc<Overload>,
}

/// Shared `POST /events` ingestion state: the durable log behind one mutex
/// (appends and fold-ins happen under it, in arrival order — which is also
/// what makes `/admin/reload`'s full-log replay consistent: the reload
/// handler holds this lock too, so disk and memory agree at the swap), plus
/// the backpressure counter the handlers check *before* queueing on it.
struct EventIngest {
    log: Mutex<EventLog>,
    /// `/events` requests currently in flight (parsing, appending, folding).
    pending: AtomicU64,
    /// At or above this many in-flight requests, new ones get 503.
    max_pending: u64,
    /// Unix millis of the last completed fold-in; 0 = none yet.
    last_fold_in_ms: AtomicU64,
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Deepest brownout level; see DESIGN.md §14 for what each level does.
const BROWNOUT_MAX_LEVEL: u8 = 3;
/// Per-request `k` ceiling at brownout levels >= 2.
const BROWNOUT_K_CAP: usize = 20;
/// A queued request with no deadline is shed after this long: rejects must
/// stay prompt even for clients that never set `x-lrgcn-deadline-ms`.
const MAX_QUEUE_WAIT: Duration = Duration::from_secs(2);
/// Minimum 10s-window traffic before a blown p99 counts as pressure —
/// below this a single slow request would flap the controller.
const PRESSURE_MIN_REQUESTS: u64 = 5;
/// Upper bound on a client-supplied deadline; anything larger is a typo.
const MAX_DEADLINE_MS: u64 = 3_600_000;

/// Shared overload-control state (DESIGN.md §14): the admission gate over
/// the compute routes plus the brownout degradation level the controller
/// thread maintains.
#[derive(Debug)]
struct Overload {
    /// Compute requests allowed to execute concurrently; `0` = gate off.
    max_inflight: u64,
    /// Waiters allowed behind a full gate before arrivals shed.
    max_queue: u64,
    /// Deadline applied when the client sends none; `0` = none.
    deadline_default_ms: u64,
    /// Admitted compute requests currently executing.
    inflight: AtomicU64,
    /// Requests currently waiting for a slot.
    queued: AtomicU64,
    /// Pairs with `slot_freed`: waiters re-check `inflight` under this
    /// lock and releasers notify under it, so a freed slot is never
    /// announced between a waiter's check and its sleep.
    gate: Mutex<()>,
    slot_freed: Condvar,
    /// Brownout level, 0 (healthy) ..= [`BROWNOUT_MAX_LEVEL`]. Written
    /// only by the controller thread; read on every gated request.
    level: AtomicU8,
    brownout: bool,
}

impl Overload {
    fn new(cfg: &ServerConfig) -> Self {
        Self {
            max_inflight: cfg.max_inflight as u64,
            max_queue: cfg.max_queue as u64,
            deadline_default_ms: cfg.deadline_default_ms,
            inflight: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            gate: Mutex::new(()),
            slot_freed: Condvar::new(),
            level: AtomicU8::new(0),
            brownout: cfg.brownout,
        }
    }

    fn level(&self) -> u8 {
        if self.brownout {
            self.level.load(Ordering::SeqCst)
        } else {
            0
        }
    }

    /// Resolves the request's absolute deadline: the
    /// `x-lrgcn-deadline-ms` header when present (malformed values are a
    /// 400, not silently ignored — a client that tried to bound its wait
    /// must not wait unboundedly), else the server default, else none.
    fn deadline_of(&self, req: &Request) -> Result<Option<Instant>, Reply> {
        let ms = match req.header("x-lrgcn-deadline-ms") {
            Some(raw) => match raw.parse::<u64>() {
                Ok(ms) if (1..=MAX_DEADLINE_MS).contains(&ms) => ms,
                _ => {
                    return Err(error_response(
                        400,
                        &format!("x-lrgcn-deadline-ms must be 1..={MAX_DEADLINE_MS}, got {raw:?}"),
                    ))
                }
            },
            None => self.deadline_default_ms,
        };
        Ok((ms > 0).then(|| Instant::now() + Duration::from_millis(ms)))
    }

    fn try_slot(&self) -> bool {
        loop {
            let cur = self.inflight.load(Ordering::SeqCst);
            if cur >= self.max_inflight {
                return false;
            }
            if self
                .inflight
                .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return true;
            }
        }
    }

    /// Takes an execution slot, or queues for one within the bounded
    /// queue. `Err` is the finished 503 reply: shed when the queue is
    /// full (or at brownout level 3, where queueing is disabled — worker
    /// time is better spent on requests that can still succeed), or
    /// deadline-exceeded when the deadline passed while queued — the
    /// "checked at dequeue" half of the deadline contract.
    fn admit(&self, deadline: Option<Instant>) -> Result<Option<SlotGuard<'_>>, Reply> {
        if self.max_inflight == 0 {
            return Ok(None);
        }
        if self.try_slot() {
            return Ok(Some(SlotGuard(self)));
        }
        let max_queue = if self.level() >= BROWNOUT_MAX_LEVEL {
            0
        } else {
            self.max_queue
        };
        if self.queued.fetch_add(1, Ordering::SeqCst) >= max_queue {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Err(shed_response("server at capacity, retry later"));
        }
        let give_up_at = deadline.unwrap_or_else(|| Instant::now() + MAX_QUEUE_WAIT);
        let mut guard = self.gate.lock().expect("admission gate poisoned");
        loop {
            if self.try_slot() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Ok(Some(SlotGuard(self)));
            }
            let now = Instant::now();
            if now >= give_up_at {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Err(if deadline.is_some() {
                    deadline_response("deadline expired while queued for admission")
                } else {
                    shed_response("queued past the maximum wait, retry later")
                });
            }
            // Fast-path arrivals may steal a freed slot ahead of us
            // (admission is not FIFO-fair); the bounded wait plus the 503
            // fallback keeps that unfairness from becoming starvation.
            let (g, _) = self
                .slot_freed
                .wait_timeout(guard, give_up_at - now)
                .expect("admission gate poisoned");
            guard = g;
        }
    }
}

/// Releases the admission slot and wakes one queued waiter.
#[derive(Debug)]
struct SlotGuard<'a>(&'a Overload);

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::SeqCst);
        // Lock-then-notify pairs with the waiter's check-then-wait under
        // the same mutex: no wakeup can fall in the gap.
        let _g = self.0.gate.lock().expect("admission gate poisoned");
        self.0.slot_freed.notify_one();
    }
}

/// Hysteresis state machine for the brownout level: one level deeper
/// after `up_ticks` consecutive pressured ticks, one level back after
/// `down_ticks` consecutive calm ticks, both streaks reset on every
/// transition (and on every contrary sample), so one noisy second can
/// neither trigger nor undo a step.
struct BrownoutCtl {
    bad: u32,
    good: u32,
    up_ticks: u32,
    down_ticks: u32,
}

impl BrownoutCtl {
    fn new(up_ticks: u32, down_ticks: u32) -> Self {
        Self {
            bad: 0,
            good: 0,
            up_ticks: up_ticks.max(1),
            down_ticks: down_ticks.max(1),
        }
    }

    /// Feeds one tick's pressure verdict; returns the (possibly stepped)
    /// level.
    fn tick(&mut self, level: u8, pressure: bool) -> u8 {
        if pressure {
            self.bad += 1;
            self.good = 0;
        } else {
            self.good += 1;
            self.bad = 0;
        }
        if pressure && self.bad >= self.up_ticks && level < BROWNOUT_MAX_LEVEL {
            self.bad = 0;
            level + 1
        } else if !pressure && self.good >= self.down_ticks && level > 0 {
            self.good = 0;
            level - 1
        } else {
            level
        }
    }
}

/// One controller tick's verdict: the 10s p99 has blown the SLO with real
/// traffic behind it, or the admission gate is saturated with a backlog
/// queued behind it.
fn under_pressure(w10: &WindowStats, slo_ns: u64, ov: &Overload) -> bool {
    let slow = w10.requests >= PRESSURE_MIN_REQUESTS && w10.hist.quantile_ns(0.99) > slo_ns;
    let saturated = ov.max_inflight > 0
        && ov.inflight.load(Ordering::SeqCst) >= ov.max_inflight
        && ov.queued.load(Ordering::SeqCst) > 0;
    slow || saturated
}

/// What a compute handler receives from the overload layer: the deadline
/// (re-checked right before the scoring kernel), the brownout read-path
/// override and k cap, and the slot guard that holds its admission slot
/// for the handler's whole run.
struct Permit<'a> {
    deadline: Option<Instant>,
    ovr: ReadOverride,
    level: u8,
    _slot: Option<SlotGuard<'a>>,
}

impl Permit<'_> {
    fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Brownout levels >= 2 cap `k` to bound per-request work.
    fn cap_k(&self, k: usize) -> usize {
        if self.level >= 2 {
            k.min(BROWNOUT_K_CAP)
        } else {
            k
        }
    }

    /// Level 3 serves any cached ranking for the user, generations old
    /// included, before spending compute.
    fn stale_ok(&self) -> bool {
        self.level >= BROWNOUT_MAX_LEVEL
    }
}

/// Runs a compute request through deadline resolution and the admission
/// gate; the brownout read override is sampled once, at admission.
fn gated<'a>(req: &Request, ctx: &'a Ctx) -> Result<Permit<'a>, Reply> {
    let deadline = ctx.overload.deadline_of(req)?;
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return Err(deadline_response("deadline expired before admission"));
    }
    let slot = ctx.overload.admit(deadline)?;
    let level = ctx.overload.level();
    Ok(Permit {
        deadline,
        ovr: read_override_for(level, &ctx.engine.state()),
        level,
        _slot: slot,
    })
}

/// Maps a brownout level onto a [`ReadOverride`]. Level 1 forces the ANN
/// index (when one is loaded — `--ann-standby` exists exactly for this);
/// levels 2+ also halve the probe width. A server with no index degrades
/// by shedding alone: the override never makes a request *more* expensive.
fn read_override_for(level: u8, st: &EngineState) -> ReadOverride {
    if level == 0 || !st.ann_available() {
        return ReadOverride::default();
    }
    ReadOverride {
        force_ann: true,
        nprobe: (level >= 2).then(|| (st.ann_nprobe() / 2).max(1)),
    }
}

/// Which scan this engine configuration answers requests with. Fixed per
/// process: reload preserves the engine options, so one label per server.
fn read_path_of(engine: &Engine) -> ReadPath {
    let st = engine.state();
    if st.ann_enabled() {
        ReadPath::Ann
    } else if st.quant_enabled() {
        ReadPath::Quant
    } else {
        ReadPath::Exact
    }
}

/// Per-server observability state shared by every worker: request-id
/// generator, SLO thresholds, and the (optional) sampled access log.
struct ObsState {
    started: Instant,
    read_path: ReadPath,
    slo_p99_ms: Option<u64>,
    slo_err_ppm: Option<u64>,
    access: Option<Mutex<File>>,
    access_sample: u64,
    access_seq: AtomicU64,
    id_prefix: String,
    id_seq: AtomicU64,
}

impl ObsState {
    fn new(cfg: &ServerConfig, read_path: ReadPath) -> Result<Self, String> {
        let access = match &cfg.access_log {
            Some(p) => Some(Mutex::new(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(p)
                    .map_err(|e| format!("opening access log {}: {e}", p.display()))?,
            )),
            None => None,
        };
        let boot_ns = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Ok(Self {
            started: Instant::now(),
            read_path,
            slo_p99_ms: cfg.slo_p99_ms,
            slo_err_ppm: cfg.slo_err_ppm,
            access,
            access_sample: cfg.access_sample.max(1),
            access_seq: AtomicU64::new(0),
            id_prefix: format!("{:08x}", (boot_ns >> 16) as u32 ^ boot_ns as u32),
            id_seq: AtomicU64::new(0),
        })
    }

    /// A fresh process-unique request id: boot-derived prefix + sequence.
    fn fresh_id(&self) -> String {
        format!(
            "{}-{:x}",
            self.id_prefix,
            self.id_seq.fetch_add(1, Ordering::Relaxed)
        )
    }

    /// Honors a well-formed inbound `x-lrgcn-request-id` (propagation from
    /// an upstream caller); anything missing, oversized or containing
    /// header-unsafe bytes gets a fresh id instead.
    fn request_id(&self, req: &Request) -> String {
        if let Some(id) = req.header("x-lrgcn-request-id") {
            let ok = !id.is_empty()
                && id.len() <= 64
                && id
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b':'));
            if ok {
                return id.to_string();
            }
        }
        self.fresh_id()
    }

    /// Appends one JSONL access-log line for every `access_sample`-th
    /// request. The line reuses the `obs::json` bit-exact encoder; a full
    /// line is written with one `write_all`, so concurrent workers never
    /// interleave partial lines.
    #[allow(clippy::too_many_arguments)]
    fn access_log(
        &self,
        id: &str,
        method: &str,
        path: &str,
        route: Route,
        status: u16,
        ns: u64,
        generation: u64,
    ) {
        let Some(file) = &self.access else { return };
        let seq = self.access_seq.fetch_add(1, Ordering::Relaxed);
        if !seq.is_multiple_of(self.access_sample) {
            return;
        }
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut line = Value::obj([
            ("ts_ms", Value::u64(ts_ms)),
            ("id", Value::str(id)),
            ("method", Value::str(method)),
            ("path", Value::str(path)),
            ("route", Value::str(route.name())),
            ("status", Value::u64(status as u64)),
            ("latency_ns", Value::u64(ns)),
            ("read_path", Value::str(self.read_path.name())),
            ("generation", Value::u64(generation)),
        ])
        .render()
        .into_bytes();
        line.push(b'\n');
        if let Ok(mut f) = file.lock() {
            let _ = f.write_all(&line);
        }
    }
}

/// Maps a parsed request onto the closed [`Route`] label space. Must agree
/// with [`route`]'s dispatch so latency series line up with handlers.
fn classify_route(req: &Request) -> Route {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Route::Healthz,
        ("GET", "/metrics") => Route::Metrics,
        ("GET", "/admin/obs") => Route::AdminObs,
        ("POST", "/score") => Route::Score,
        ("POST", "/events") => Route::Events,
        ("POST", "/admin/reload") => Route::AdminReload,
        ("POST", "/admin/shutdown") => Route::AdminShutdown,
        ("GET", p) if p.starts_with("/recs/") => Route::Recs,
        ("GET", p) if p.starts_with("/similar/") => Route::Similar,
        _ => Route::Other,
    }
}

fn worker_loop(listener: TcpListener, ctx: Ctx) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => handle_connection(stream, &ctx),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if ctx.stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                if ctx.stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

fn handle_connection(mut stream: TcpStream, ctx: &Ctx) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_nonblocking(false);
    registry::add(Counter::ServeRequests, 1);
    let _span = lrgcn_obs::trace::span("serve_request", "serve");
    let t0 = Instant::now();

    let (req_id, route_label, method, path, reply) = match read_request(&mut stream) {
        Ok(req) => {
            let id = ctx.obs.request_id(&req);
            let label = classify_route(&req);
            let reply = route(&req, ctx, &id);
            (id, label, req.method, req.path, reply)
        }
        Err(err) => (
            ctx.obs.fresh_id(),
            Route::Other,
            "-".to_string(),
            "-".to_string(),
            error_response(err.status, &err.msg),
        ),
    };
    let (status, content_type, body) = reply;
    if status >= 400 {
        registry::add(Counter::ServeErrors, 1);
    }
    let extra = response_headers(&req_id, status);
    let _ = write_response(&mut stream, status, content_type, &extra, &body);

    // The measurement covers parse → route → respond, exactly what the
    // cumulative `Hist::ServeRequest` always covered; both sinks are fed
    // from the same sample so windows and lifetime histograms agree.
    let ns = t0.elapsed().as_nanos() as u64;
    registry::record_ns(Hist::ServeRequest, ns);
    let slow = ctx
        .obs
        .slo_p99_ms
        .is_some_and(|ms| ns > ms.saturating_mul(1_000_000));
    window::record_request(route_label, status, effective_read_path(ctx, route_label), ns, slow);
    if ctx.obs.access.is_some() {
        let generation = ctx.engine.generation();
        ctx.obs
            .access_log(&req_id, &method, &path, route_label, status, ns, generation);
    }
}

type Reply = (u16, &'static str, Vec<u8>);

const JSON: &str = "application/json";
const TEXT: &str = "text/plain; version=0.0.4";

/// Seconds a 503'd client should back off before retrying.
const RETRY_AFTER_SECS: &str = "1";

/// The one place response headers are assembled: every reply echoes the
/// request id, and every 503 — admission shed, deadline exceeded,
/// ingestion backlog, log append failure — carries `Retry-After`, so a
/// rejected client always knows when to come back. Pinned by
/// `every_503_carries_retry_after`.
fn response_headers<'a>(req_id: &'a str, status: u16) -> Vec<(&'static str, &'a str)> {
    let mut extra: Vec<(&'static str, &'a str)> = vec![("x-lrgcn-request-id", req_id)];
    if status == 503 {
        extra.push(("retry-after", RETRY_AFTER_SECS));
    }
    extra
}

/// The read-path label for a request's window sample: the server's
/// configured path, except compute routes answered under brownout, which
/// were forced onto the ANN index when one is loaded.
fn effective_read_path(ctx: &Ctx, route: Route) -> ReadPath {
    if matches!(route, Route::Recs | Route::Similar)
        && ctx.obs.read_path != ReadPath::Ann
        && ctx.overload.level() >= 1
        && ctx.engine.state().ann_available()
    {
        ReadPath::Ann
    } else {
        ctx.obs.read_path
    }
}

fn error_response(status: u16, msg: &str) -> Reply {
    let body = Value::obj([("error", Value::str(msg))]).render();
    (status, JSON, body.into_bytes())
}

/// An admission shed: 503 + `Retry-After` (added centrally by
/// [`response_headers`]), counted in the cumulative registry and the
/// rolling windows so `/admin/obs` and `lrgcn top` see the rate.
fn shed_response(reason: &str) -> Reply {
    registry::add(Counter::ServeShed, 1);
    window::record_shed();
    error_response(503, reason)
}

/// A request dropped because its deadline passed — same 503 + `Retry-After`
/// surface as a shed (the client's remedy is identical), separate counters.
fn deadline_response(reason: &str) -> Reply {
    registry::add(Counter::ServeDeadlineExceeded, 1);
    window::record_deadline_exceeded();
    error_response(503, reason)
}

fn json_response(v: &Value) -> Reply {
    (200, JSON, v.render().into_bytes())
}

fn route(req: &Request, ctx: &Ctx, req_id: &str) -> Reply {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(ctx),
        ("GET", "/metrics") => {
            let mut text = render_metrics();
            text.push_str(&render_serving_metrics(&ctx.obs));
            (200, TEXT, text.into_bytes())
        }
        ("GET", "/admin/obs") => admin_obs(ctx),
        // Compute routes pass the admission gate; admin, health, metrics
        // and ingestion (which has its own backpressure) never queue —
        // an overloaded server must stay observable and drainable.
        ("POST", "/score") => match gated(req, ctx) {
            Ok(permit) => score(req, ctx, &permit),
            Err(reply) => reply,
        },
        ("POST", "/events") => events(req, ctx, req_id),
        ("POST", "/admin/reload") => reload(ctx),
        ("POST", "/admin/shutdown") => {
            ctx.stop.store(true, Ordering::SeqCst);
            ctx.batcher.shutdown();
            json_response(&Value::obj([("status", Value::str("shutting down"))]))
        }
        ("GET", path) if path.starts_with("/recs/") => match gated(req, ctx) {
            Ok(permit) => recs(req, ctx, &permit),
            Err(reply) => reply,
        },
        ("GET", path) if path.starts_with("/similar/") => match gated(req, ctx) {
            Ok(permit) => similar(req, ctx, &permit),
            Err(reply) => reply,
        },
        ("GET" | "POST", _) => error_response(404, &format!("no route for {}", req.path)),
        _ => error_response(405, &format!("method {} not allowed", req.method)),
    }
}

fn healthz(ctx: &Ctx) -> Reply {
    let st = ctx.engine.state();
    let delta = st.delta();
    // Freshness for load balancers: rate and error ratio over the last
    // 60s, not just liveness.
    let w60 = window::serving_window(window::now_sec(), 60);
    json_response(&Value::obj([
        ("status", Value::str("ok")),
        ("uptime_s", Value::u64(ctx.obs.started.elapsed().as_secs())),
        ("rate_60s", Value::num(w60.rps())),
        ("error_ratio_60s", Value::num(w60.error_ratio())),
        ("model", Value::str(st.model_name.clone())),
        ("tag", Value::str(st.tag.clone())),
        ("generation", Value::u64(st.generation)),
        ("n_users", Value::u64(st.n_users as u64)),
        ("n_items", Value::u64(st.n_items as u64)),
        ("dim", Value::u64(st.dim as u64)),
        ("n_parameters", Value::u64(st.n_parameters as u64)),
        ("quant", Value::Bool(st.quant_enabled())),
        (
            "quant_recall_ppm",
            Value::u64((st.quant_recall * 1_000_000.0).round() as u64),
        ),
        ("ann", Value::Bool(st.ann_enabled())),
        (
            "ann_standby",
            Value::Bool(st.ann_available() && !st.ann_enabled()),
        ),
        ("ann_cells", Value::u64(st.ann_cells() as u64)),
        ("ann_nprobe", Value::u64(st.ann_nprobe() as u64)),
        (
            "ann_recall_ppm",
            Value::u64((st.ann_recall * 1_000_000.0).round() as u64),
        ),
        ("events_log", Value::Bool(ctx.ingest.is_some())),
        // covered + delta = acknowledged log length, without taking the
        // ingest lock on the health path.
        (
            "events_total",
            Value::u64(st.covered_events + delta.events_applied()),
        ),
        ("covered_events", Value::u64(st.covered_events)),
        ("delta_events", Value::u64(delta.events_applied())),
        (
            "brownout_level",
            Value::u64(ctx.overload.level() as u64),
        ),
    ]))
}

/// Static JSON key for one of the supported windows.
fn window_key(w: u64) -> &'static str {
    match w {
        10 => "10s",
        60 => "60s",
        300 => "300s",
        _ => "other",
    }
}

/// One window's RED summary as JSON: totals, rates, merged and per-route
/// latency quantiles (milliseconds), read-path mix.
fn window_json(s: &WindowStats) -> Value {
    let ms = |ns: u64| ns as f64 / 1e6;
    let routes = Value::Obj(
        s.routes
            .iter()
            .filter(|(_, h)| h.count > 0)
            .map(|(r, h)| {
                (
                    r.name().to_string(),
                    Value::obj([
                        ("requests", Value::u64(h.count)),
                        ("p50_ms", Value::num(ms(h.quantile_ns(0.50)))),
                        ("p95_ms", Value::num(ms(h.quantile_ns(0.95)))),
                        ("p99_ms", Value::num(ms(h.quantile_ns(0.99)))),
                    ]),
                )
            })
            .collect(),
    );
    Value::obj([
        ("window_s", Value::u64(s.window_s)),
        ("requests", Value::u64(s.requests)),
        ("errors", Value::u64(s.errors)),
        ("rps", Value::num(s.rps())),
        ("error_ratio", Value::num(s.error_ratio())),
        ("p50_ms", Value::num(ms(s.hist.quantile_ns(0.50)))),
        ("p95_ms", Value::num(ms(s.hist.quantile_ns(0.95)))),
        ("p99_ms", Value::num(ms(s.hist.quantile_ns(0.99)))),
        (
            "read_paths",
            Value::obj(
                ReadPath::ALL.map(|p| (p.name(), Value::u64(s.read_paths[p as usize]))),
            ),
        ),
        ("slo_slow", Value::u64(s.slo_slow)),
        ("sheds", Value::u64(s.sheds)),
        ("deadline_exceeded", Value::u64(s.deadline_exceeded)),
        ("routes", routes),
    ])
}

/// SLO burn rates over the short (10s) and long (60s) windows. Latency
/// burn = slow-request ratio over the 1% budget a p99 target implies;
/// error burn = error ratio over the configured ppm budget. 1.0 = burning
/// the budget exactly at the sustainable rate.
fn slo_json(obs: &ObsState, w10: &WindowStats, w60: &WindowStats) -> Value {
    let lat = |w: &WindowStats| {
        if obs.slo_p99_ms.is_some() {
            window::burn_rate(w.slo_slow, w.requests, window::LATENCY_SLO_BUDGET)
        } else {
            0.0
        }
    };
    let err = |w: &WindowStats| match obs.slo_err_ppm {
        Some(ppm) => window::burn_rate(w.errors, w.requests, ppm as f64 / 1e6),
        None => 0.0,
    };
    Value::obj([
        (
            "p99_ms",
            obs.slo_p99_ms.map_or(Value::Null, Value::u64),
        ),
        (
            "err_ppm",
            obs.slo_err_ppm.map_or(Value::Null, Value::u64),
        ),
        ("burn_latency_10s", Value::num(lat(w10))),
        ("burn_latency_60s", Value::num(lat(w60))),
        ("burn_err_10s", Value::num(err(w10))),
        ("burn_err_60s", Value::num(err(w60))),
    ])
}

/// `GET /admin/obs`: the full windowed observability snapshot — read-only,
/// no admin side effects despite the path prefix.
fn admin_obs(ctx: &Ctx) -> Reply {
    let st = ctx.engine.state();
    let now = window::now_sec();
    let stats: Vec<WindowStats> = WINDOWS_S
        .iter()
        .map(|&w| window::serving_window(now, w))
        .collect();
    let windows = Value::Obj(
        stats
            .iter()
            .map(|s| (window_key(s.window_s).to_string(), window_json(s)))
            .collect(),
    );
    let hits = registry::get(Counter::ServeCacheHits);
    let misses = registry::get(Counter::ServeCacheMisses);
    let lookups = hits + misses;
    json_response(&Value::obj([
        ("uptime_s", Value::u64(ctx.obs.started.elapsed().as_secs())),
        ("model", Value::str(st.model_name.clone())),
        ("generation", Value::u64(st.generation)),
        ("read_path", Value::str(ctx.obs.read_path.name())),
        ("reloads", Value::u64(registry::get(Counter::ServeReloads))),
        (
            "cache",
            Value::obj([
                ("hits", Value::u64(hits)),
                ("misses", Value::u64(misses)),
                (
                    "hit_ratio",
                    Value::num(if lookups == 0 {
                        0.0
                    } else {
                        hits as f64 / lookups as f64
                    }),
                ),
            ]),
        ),
        (
            "quant",
            Value::obj([
                ("scans", Value::u64(registry::get(Counter::QuantScans))),
                ("rescored", Value::u64(registry::get(Counter::QuantRescored))),
                (
                    "recall_ppm",
                    Value::u64(registry::gauge_current(Gauge::QuantRecallPpm)),
                ),
            ]),
        ),
        (
            "ann",
            Value::obj([
                (
                    "cells_probed",
                    Value::u64(registry::get(Counter::AnnCellsProbed)),
                ),
                (
                    "candidates",
                    Value::u64(registry::get(Counter::AnnCandidates)),
                ),
                (
                    "recall_ppm",
                    Value::u64(registry::gauge_current(Gauge::AnnRecallPpm)),
                ),
            ]),
        ),
        (
            "events",
            Value::obj([
                ("enabled", Value::Bool(ctx.ingest.is_some())),
                (
                    "accepted",
                    Value::u64(registry::get(Counter::ServeEventsAccepted)),
                ),
                (
                    "duplicates",
                    Value::u64(registry::get(Counter::ServeEventsDuplicates)),
                ),
                (
                    "rejected",
                    Value::u64(registry::get(Counter::ServeEventsRejected)),
                ),
                (
                    "fold_ins",
                    Value::u64(registry::get(Counter::ServeEventsFoldIns)),
                ),
                (
                    "log_lag",
                    Value::u64(registry::gauge_current(Gauge::EventsLogLag)),
                ),
                (
                    "total_events",
                    Value::u64(st.covered_events + st.delta().events_applied()),
                ),
                (
                    "covered_events",
                    Value::u64(st.covered_events),
                ),
                (
                    "last_fold_in_age_ms",
                    match ctx
                        .ingest
                        .as_ref()
                        .map(|i| i.last_fold_in_ms.load(Ordering::Relaxed))
                    {
                        Some(ms) if ms > 0 => Value::u64(unix_ms().saturating_sub(ms)),
                        _ => Value::Null,
                    },
                ),
                (
                    "fold_in_p95_ns",
                    Value::u64(registry::snapshot().hist(Hist::ServeFoldIn).quantile_ns(0.95)),
                ),
            ]),
        ),
        (
            "overload",
            Value::obj([
                ("admission", Value::Bool(ctx.overload.max_inflight > 0)),
                ("max_inflight", Value::u64(ctx.overload.max_inflight)),
                (
                    "inflight",
                    Value::u64(ctx.overload.inflight.load(Ordering::SeqCst)),
                ),
                (
                    "queued",
                    Value::u64(ctx.overload.queued.load(Ordering::SeqCst)),
                ),
                ("brownout", Value::Bool(ctx.overload.brownout)),
                ("level", Value::u64(ctx.overload.level() as u64)),
                (
                    "step_ups",
                    Value::u64(registry::get(Counter::ServeBrownoutStepUps)),
                ),
                (
                    "step_downs",
                    Value::u64(registry::get(Counter::ServeBrownoutStepDowns)),
                ),
                ("sheds", Value::u64(registry::get(Counter::ServeShed))),
                (
                    "deadline_exceeded",
                    Value::u64(registry::get(Counter::ServeDeadlineExceeded)),
                ),
                (
                    "stale_hits",
                    Value::u64(registry::get(Counter::ServeStaleHits)),
                ),
            ]),
        ),
        ("slo", slo_json(&ctx.obs, &stats[0], &stats[1])),
        ("windows", windows),
    ]))
}

fn reload(ctx: &Ctx) -> Reply {
    // With ingestion on, hold the log mutex across the swap: no event can
    // be acknowledged between the engine's full-log replay and the new
    // state going live, so the replayed state covers every acked event.
    // Requests in flight keep their (state, delta) Arc snapshot — nothing
    // is dropped while the rebuild runs off to the side.
    let _log_guard = ctx
        .ingest
        .as_ref()
        .map(|i| i.log.lock().expect("event log poisoned"));
    match ctx.engine.reload() {
        Ok(st) => {
            if let Some(log) = &_log_guard {
                registry::gauge_set(
                    Gauge::EventsLogLag,
                    log.len().saturating_sub(st.covered_events),
                );
            }
            json_response(&Value::obj([
                ("status", Value::str("reloaded")),
                ("generation", Value::u64(st.generation)),
                ("model", Value::str(st.model_name.clone())),
                ("covered_events", Value::u64(st.covered_events)),
            ]))
        }
        Err(e) => error_response(500, &e),
    }
}

/// Parses one `/events` JSON object: `{"user": u, "item": i[, "ts": t]
/// [, "client": "c", "seq": n]}`. `client`+`seq` arm idempotent retries
/// (monotone per-client sequence numbers); omitting `client` opts out.
fn parse_event(line: &str, req_id: &str) -> Result<StreamEvent, String> {
    let v = lrgcn_obs::json::parse(line).map_err(|e| format!("bad JSON event: {e}"))?;
    let uint = |key: &str, max: f64| -> Result<Option<u64>, String> {
        match v.get(key) {
            None => Ok(None),
            Some(x) => match x.as_f64() {
                Some(n) if n >= 0.0 && n.fract() == 0.0 && n <= max => Ok(Some(n as u64)),
                _ => Err(format!("{key} must be an integer in 0..={max}")),
            },
        }
    };
    let user = uint("user", u32::MAX as f64)?.ok_or("event is missing \"user\"")?;
    let item = uint("item", u32::MAX as f64)?.ok_or("event is missing \"item\"")?;
    let timestamp = match v.get("ts") {
        None => 0,
        Some(x) => match x.as_f64() {
            Some(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => n as i64,
            _ => return Err("ts must be an integer timestamp".into()),
        },
    };
    let client = match v.get("client") {
        None => String::new(),
        Some(c) => match c.as_str() {
            Some(s) if s.len() <= 256 => s.to_string(),
            Some(_) => return Err("client id longer than 256 bytes".into()),
            None => return Err("client must be a string".into()),
        },
    };
    let seq = uint("seq", (1u64 << 53) as f64)?.unwrap_or(0);
    if !client.is_empty() && seq == 0 {
        return Err("seq must be >= 1 when client is set".into());
    }
    Ok(StreamEvent {
        user: user as u32,
        item: item as u32,
        timestamp,
        client,
        seq,
        request_id: req_id.to_string(),
    })
}

/// Decrements the in-flight `/events` counter on every exit path.
struct PendingGuard<'a>(&'a AtomicU64);

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// `POST /events`: the streaming ingestion path (DESIGN.md §13). Body is
/// one JSON event object or a JSONL batch. Under the log mutex the batch
/// is deduplicated, framed, written and fsync'd — only then acknowledged —
/// and the accepted suffix is folded into the live state's delta, so a 200
/// means both "durable" and "already serving".
fn events(req: &Request, ctx: &Ctx, req_id: &str) -> Reply {
    let Some(ingest) = &ctx.ingest else {
        return error_response(404, "streaming ingestion is off (start with --events-log DIR)");
    };
    let in_flight = ingest.pending.fetch_add(1, Ordering::SeqCst);
    let _guard = PendingGuard(&ingest.pending);
    if in_flight >= ingest.max_pending {
        registry::add(Counter::ServeEventsRejected, 1);
        return error_response(503, "event ingestion backlog full, retry later");
    }
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return error_response(400, "body is not UTF-8"),
    };
    let mut batch = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match parse_event(line, req_id) {
            Ok(ev) => batch.push(ev),
            Err(e) => {
                registry::add(Counter::ServeEventsRejected, 1);
                return error_response(400, &e);
            }
        }
    }
    if batch.is_empty() {
        return error_response(400, "body must carry at least one event");
    }
    let mut log = ingest.log.lock().expect("event log poisoned");
    let outcome = match log.append_batch(&batch) {
        Ok(o) => o,
        Err(e) => {
            registry::add(Counter::ServeEventsRejected, batch.len() as u64);
            return error_response(503, &format!("event log append failed: {e}"));
        }
    };
    registry::add(Counter::ServeEventsAccepted, outcome.accepted.len() as u64);
    registry::add(Counter::ServeEventsDuplicates, outcome.duplicates as u64);
    // Fold in while still holding the log lock: fold-ins apply in exactly
    // the order events hit the disk, keeping memory a prefix-replay of the
    // log (and thus identical to what a restart would rebuild).
    let st = ctx.engine.state();
    let delta = if outcome.accepted.is_empty() {
        st.delta()
    } else {
        let t0 = Instant::now();
        let delta = st.apply_events(&outcome.accepted);
        registry::record_ns(Hist::ServeFoldIn, t0.elapsed().as_nanos() as u64);
        registry::add(Counter::ServeEventsFoldIns, 1);
        ingest.last_fold_in_ms.store(unix_ms(), Ordering::Relaxed);
        delta
    };
    registry::gauge_set(
        Gauge::EventsLogLag,
        log.len().saturating_sub(st.covered_events),
    );
    let total = log.len();
    drop(log);
    json_response(&Value::obj([
        ("accepted", Value::u64(outcome.accepted.len() as u64)),
        ("duplicates", Value::u64(outcome.duplicates as u64)),
        ("total_events", Value::u64(total)),
        ("covered_events", Value::u64(st.covered_events)),
        ("delta_version", Value::u64(delta.version())),
        ("delta_events", Value::u64(delta.events_applied())),
    ]))
}

/// Parses the `{id}` tail of `/recs/{id}` / `/similar/{id}`.
fn parse_id(path: &str, prefix: &str) -> Result<u32, Reply> {
    let tail = &path[prefix.len()..];
    if tail.is_empty() || tail.contains('/') {
        return Err(error_response(404, &format!("no route for {path}")));
    }
    tail.parse()
        .map_err(|_| error_response(400, &format!("{tail:?} is not a numeric id")))
}

fn parse_k(req: &Request) -> Result<usize, Reply> {
    match req.query_get("k") {
        None => Ok(10),
        Some(raw) => raw
            .parse::<usize>()
            .ok()
            .filter(|k| (1..=1000).contains(k))
            .ok_or_else(|| error_response(400, &format!("k must be 1..=1000, got {raw:?}"))),
    }
}

fn items_json(items: &[(u32, f32)]) -> Value {
    Value::Arr(
        items
            .iter()
            .map(|&(it, s)| {
                Value::obj([("item", Value::u64(it as u64)), ("score", Value::num(s))])
            })
            .collect(),
    )
}

fn recs(req: &Request, ctx: &Ctx, permit: &Permit) -> Reply {
    let user = match parse_id(&req.path, "/recs/") {
        Ok(u) => u,
        Err(r) => return r,
    };
    let k = match parse_k(req) {
        Ok(k) => permit.cap_k(k),
        Err(r) => return r,
    };
    let exclude_seen = match req.query_get("exclude_seen") {
        None => true,
        Some("true") | Some("1") => true,
        Some("false") | Some("0") => false,
        Some(other) => {
            return error_response(400, &format!("exclude_seen must be true/false, got {other:?}"))
        }
    };
    let st = ctx.engine.state();
    // Pin one delta snapshot for the whole request: the 404 check, the
    // cache key and the computation all agree on what has been folded in.
    let delta = st.delta();
    if user as usize >= st.n_users && delta.user_row(user).is_none() {
        return error_response(404, &format!("user {user} out of range (0..{})", st.n_users));
    }
    // The key encodes the *effective* read configuration for this request:
    // under a brownout override the ANN path (at its effective probe
    // width) must not share entries with the exact/quant path, or a
    // degraded ranking would keep serving after recovery.
    let ann_used = st.ann_enabled() || (permit.ovr.force_ann && st.ann_available());
    let eff_nprobe = if ann_used {
        permit.ovr.nprobe.unwrap_or_else(|| st.ann_nprobe())
    } else {
        0
    };
    let key = Key {
        generation: st.generation,
        user,
        k,
        exclude_seen,
        quant: !ann_used && st.quant_enabled(),
        nprobe: eff_nprobe as u32,
        delta: delta.version(),
    };
    // Deep brownout: any cached ranking for this user and shape — prior
    // generations included — beats spending compute. Marked so clients
    // can tell.
    if permit.stale_ok() && ctx.cache_enabled {
        if let Some((generation, items)) = ctx.cache.get_stale(&key) {
            return json_response(&Value::obj([
                ("user", Value::u64(user as u64)),
                ("k", Value::u64(k as u64)),
                ("generation", Value::u64(generation)),
                ("cached", Value::Bool(true)),
                ("stale", Value::Bool(generation != st.generation)),
                ("items", items_json(&items)),
            ]));
        }
    }
    let ovr = permit.ovr;
    let compute = || {
        SCRATCH.with(|s| {
            if delta.is_empty() {
                st.top_k_into_opts(st.ds(), user, k, exclude_seen, &mut s.borrow_mut(), ovr)
            } else {
                st.top_k_stream_opts(&delta, user, k, exclude_seen, &mut s.borrow_mut(), ovr)
            }
        })
    };
    let (items, cached) = if ctx.cache_enabled {
        match ctx.cache.get(&key) {
            Some(hit) => (hit, true),
            None => {
                // Last deadline check before the scoring kernel: a doomed
                // request must not burn a full catalog scan.
                if permit.expired() {
                    return deadline_response("deadline expired before the scoring kernel");
                }
                let fresh = match compute() {
                    Ok(v) => v,
                    Err(e) => return error_response(404, &e),
                };
                ctx.cache.insert(key, fresh.clone());
                (fresh, false)
            }
        }
    } else {
        if permit.expired() {
            return deadline_response("deadline expired before the scoring kernel");
        }
        match compute() {
            Ok(v) => (v, false),
            Err(e) => return error_response(404, &e),
        }
    };
    json_response(&Value::obj([
        ("user", Value::u64(user as u64)),
        ("k", Value::u64(k as u64)),
        ("generation", Value::u64(st.generation)),
        ("cached", Value::Bool(cached)),
        ("items", items_json(&items)),
    ]))
}

fn similar(req: &Request, ctx: &Ctx, permit: &Permit) -> Reply {
    let item = match parse_id(&req.path, "/similar/") {
        Ok(i) => i,
        Err(r) => return r,
    };
    let k = match parse_k(req) {
        Ok(k) => permit.cap_k(k),
        Err(r) => return r,
    };
    let st = ctx.engine.state();
    if item as usize >= st.n_items {
        return error_response(404, &format!("item {item} out of range (0..{})", st.n_items));
    }
    if permit.expired() {
        return deadline_response("deadline expired before the scoring kernel");
    }
    match SCRATCH.with(|s| st.similar_items_into_opts(item, k, &mut s.borrow_mut(), permit.ovr)) {
        Ok(items) => json_response(&Value::obj([
            ("item", Value::u64(item as u64)),
            ("k", Value::u64(k as u64)),
            ("generation", Value::u64(st.generation)),
            ("items", items_json(&items)),
        ])),
        Err(e) => error_response(404, &e),
    }
}

fn score(req: &Request, ctx: &Ctx, permit: &Permit) -> Reply {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return error_response(400, "body is not UTF-8"),
    };
    let parsed = match lrgcn_obs::json::parse(text) {
        Ok(v) => v,
        Err(e) => return error_response(400, &format!("bad JSON body: {e}")),
    };
    let Some(Value::Arr(raw_pairs)) = parsed.get("pairs") else {
        return error_response(400, "body must be {\"pairs\": [[user, item], ...]}");
    };
    let mut pairs = Vec::with_capacity(raw_pairs.len());
    for p in raw_pairs {
        let Value::Arr(uv) = p else {
            return error_response(400, "each pair must be a [user, item] array");
        };
        let ids: Option<(u32, u32)> = match uv.as_slice() {
            [u, i] => match (u.as_f64(), i.as_f64()) {
                (Some(u), Some(i))
                    if u >= 0.0 && i >= 0.0 && u.fract() == 0.0 && i.fract() == 0.0 =>
                {
                    Some((u as u32, i as u32))
                }
                _ => None,
            },
            _ => None,
        };
        match ids {
            Some(pair) => pairs.push(pair),
            None => return error_response(400, "each pair must be two non-negative integers"),
        }
    }
    if pairs.is_empty() {
        return error_response(400, "pairs must be non-empty");
    }
    if permit.expired() {
        return deadline_response("deadline expired before the scoring kernel");
    }
    let generation = ctx.engine.generation();
    match ctx.batcher.submit(pairs) {
        Ok(scores) => json_response(&Value::obj([
            ("generation", Value::u64(generation)),
            (
                "scores",
                Value::Arr(scores.into_iter().map(Value::num).collect()),
            ),
        ])),
        Err(e) => error_response(400, &e),
    }
}

/// Appends one `# HELP`/`# TYPE`-prefixed sample line.
fn push_family(out: &mut String, name: &str, help: &str, kind: &str, value: impl std::fmt::Display) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
    ));
}

/// Renders every obs counter, gauge and histogram as Prometheus text with
/// full scrape metadata: `# HELP`/`# TYPE` per family, and cumulative
/// `_bucket{le="..."}` series derived from the log2 histogram buckets
/// (bucket `b` covers `[2^b, 2^(b+1))` ns, so its inclusive `le` boundary
/// is `2^(b+1)-1`). Dotted metric names become `lrgcn_`-prefixed
/// snake_case (`serve.cache.hits` → `lrgcn_serve_cache_hits_total`).
pub fn render_metrics() -> String {
    let snap = registry::snapshot();
    let mut out = String::new();
    for c in Counter::ALL {
        let name = format!("lrgcn_{}_total", sanitize(c.name()));
        push_family(&mut out, &name, c.help(), "counter", snap.counter(c));
    }
    for g in Gauge::ALL {
        let name = format!("lrgcn_{}", sanitize(g.name()));
        push_family(&mut out, &name, g.help(), "gauge", registry::gauge_current(g));
        let peak = format!("{name}_peak");
        push_family(
            &mut out,
            &peak,
            "High-water mark of the matching gauge",
            "gauge",
            registry::gauge_peak(g),
        );
    }
    for h in Hist::ALL {
        let hs = snap.hist(h);
        let name = format!("lrgcn_{}", sanitize(h.name()));
        out.push_str(&format!(
            "# HELP {name} {}\n# TYPE {name} histogram\n",
            h.help()
        ));
        let mut cum = 0u64;
        for b in 0..HIST_BUCKETS {
            cum += hs.buckets[b];
            out.push_str(&format!(
                "{name}_bucket{{le=\"{}\"}} {cum}\n",
                bucket_upper_ns(b)
            ));
        }
        // Relaxed reads can momentarily disagree between buckets and
        // count; +Inf takes the max so the cumulative series stays
        // monotone for scrapers.
        out.push_str(&format!(
            "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
            cum.max(hs.count),
            hs.sum_ns,
            hs.count
        ));
        let max = format!("{name}_max");
        push_family(
            &mut out,
            &max,
            "Maximum observed sample, nanoseconds",
            "gauge",
            hs.max_ns,
        );
        let p95 = format!("{name}_p95");
        push_family(
            &mut out,
            &p95,
            "Approximate p95 from the log2 buckets, nanoseconds",
            "gauge",
            hs.quantile_ns(0.95),
        );
    }
    out
}

/// Serving-only extension of [`render_metrics`]: uptime, windowed RED
/// gauges and (when configured) SLO burn rates. Appended by the `/metrics`
/// handler — these need per-server state the registry renderer has no
/// access to.
fn render_serving_metrics(obs: &ObsState) -> String {
    let now = window::now_sec();
    let stats: Vec<WindowStats> = WINDOWS_S
        .iter()
        .map(|&w| window::serving_window(now, w))
        .collect();
    let mut out = String::new();
    push_family(
        &mut out,
        "lrgcn_serve_uptime_seconds",
        "Seconds since this server started",
        "gauge",
        obs.started.elapsed().as_secs(),
    );
    out.push_str(
        "# HELP lrgcn_serve_window_rps Windowed request rate, requests per second\n# TYPE lrgcn_serve_window_rps gauge\n",
    );
    for s in &stats {
        out.push_str(&format!(
            "lrgcn_serve_window_rps{{window=\"{}\"}} {}\n",
            window_key(s.window_s),
            s.rps()
        ));
    }
    out.push_str(
        "# HELP lrgcn_serve_window_error_ratio Windowed non-2xx response ratio\n# TYPE lrgcn_serve_window_error_ratio gauge\n",
    );
    for s in &stats {
        out.push_str(&format!(
            "lrgcn_serve_window_error_ratio{{window=\"{}\"}} {}\n",
            window_key(s.window_s),
            s.error_ratio()
        ));
    }
    out.push_str(
        "# HELP lrgcn_serve_window_p95_ns Windowed p95 request latency, nanoseconds\n# TYPE lrgcn_serve_window_p95_ns gauge\n",
    );
    for s in &stats {
        out.push_str(&format!(
            "lrgcn_serve_window_p95_ns{{window=\"{}\"}} {}\n",
            window_key(s.window_s),
            s.hist.quantile_ns(0.95)
        ));
    }
    if obs.slo_p99_ms.is_some() || obs.slo_err_ppm.is_some() {
        out.push_str(
            "# HELP lrgcn_serve_slo_burn SLO burn rate (1.0 = consuming the error budget exactly at the sustainable rate)\n# TYPE lrgcn_serve_slo_burn gauge\n",
        );
        let (w10, w60) = (&stats[0], &stats[1]);
        if obs.slo_p99_ms.is_some() {
            for w in [w10, w60] {
                out.push_str(&format!(
                    "lrgcn_serve_slo_burn{{slo=\"latency\",window=\"{}\"}} {}\n",
                    window_key(w.window_s),
                    window::burn_rate(w.slo_slow, w.requests, window::LATENCY_SLO_BUDGET)
                ));
            }
        }
        if let Some(ppm) = obs.slo_err_ppm {
            for w in [w10, w60] {
                out.push_str(&format!(
                    "lrgcn_serve_slo_burn{{slo=\"errors\",window=\"{}\"}} {}\n",
                    window_key(w.window_s),
                    window::burn_rate(w.errors, w.requests, ppm as f64 / 1e6)
                ));
            }
        }
    }
    out
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    /// Validates Prometheus text-exposition structure: every sample line
    /// belongs to a family announced by `# HELP` + `# TYPE`, names are
    /// scrape-safe, values parse, histogram `_bucket` series are
    /// cumulative-monotone with increasing `le` boundaries and a `+Inf`
    /// terminator.
    fn validate_scrape(text: &str) {
        let mut help: HashSet<String> = HashSet::new();
        let mut kinds: HashMap<String, String> = HashMap::new();
        // (family → (prev cumulative, prev le, saw +Inf))
        let mut hist_state: HashMap<String, (u64, u64, bool)> = HashMap::new();
        let name_ok = |n: &str| n.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, doc) = rest.split_once(' ').expect("HELP name doc");
                assert!(name_ok(name), "unsafe family name {name:?}");
                assert!(!doc.is_empty(), "empty HELP for {name}");
                help.insert(name.to_string());
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest.split_once(' ').expect("TYPE name kind");
                assert!(
                    matches!(kind, "counter" | "gauge" | "histogram"),
                    "unknown TYPE {kind:?}"
                );
                assert!(help.contains(name), "TYPE before HELP for {name}");
                kinds.insert(name.to_string(), kind.to_string());
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            let v: f64 = value
                .parse()
                .unwrap_or_else(|_| panic!("bad value in {line:?}"));
            let (name, labels) = match series.split_once('{') {
                Some((n, l)) => (n, Some(l.strip_suffix('}').expect("closed label set"))),
                None => (series, None),
            };
            assert!(name_ok(name), "unsafe metric name {name:?}");
            // Resolve the declaring family: exact match, or a histogram
            // child (`_bucket`/`_sum`/`_count`).
            let family = if kinds.contains_key(name) {
                name.to_string()
            } else {
                let parent = name
                    .strip_suffix("_bucket")
                    .or_else(|| name.strip_suffix("_sum"))
                    .or_else(|| name.strip_suffix("_count"))
                    .unwrap_or_else(|| panic!("sample {name} has no TYPE metadata"));
                assert_eq!(
                    kinds.get(parent).map(String::as_str),
                    Some("histogram"),
                    "suffix child {name} outside a histogram family"
                );
                parent.to_string()
            };
            if name.ends_with("_bucket") {
                let cum = v as u64;
                let le = labels
                    .and_then(|l| l.strip_prefix("le=\""))
                    .and_then(|l| l.strip_suffix('"'))
                    .unwrap_or_else(|| panic!("bucket without le label in {line:?}"));
                let entry = hist_state.entry(family.clone()).or_insert((0, 0, false));
                assert!(!entry.2, "{family}: bucket after +Inf");
                assert!(
                    cum >= entry.0,
                    "{family}: non-monotone cumulative bucket at le={le}"
                );
                if le == "+Inf" {
                    entry.2 = true;
                } else {
                    let bound: u64 = le.parse().expect("numeric le");
                    assert!(bound > entry.1, "{family}: le boundaries must increase");
                    entry.1 = bound;
                }
                entry.0 = cum;
            }
        }
        for (family, (_, _, inf)) in &hist_state {
            assert!(inf, "{family}: histogram without +Inf bucket");
        }
    }

    #[test]
    fn registry_renderer_is_scrape_valid_and_keeps_stable_names() {
        let text = render_metrics();
        // Names the dashboards / verify.sh already grep for must not move.
        assert!(text.contains("lrgcn_serve_http_requests_total "));
        assert!(text.contains("lrgcn_serve_cache_hits_total "));
        assert!(text.contains("lrgcn_serve_request_ns_count "));
        assert!(text.contains("lrgcn_tensor_matrix_bytes "));
        // New bucket series from the log2 histograms.
        assert!(text.contains("lrgcn_serve_request_ns_bucket{le=\"1\"}"));
        assert!(text.contains("lrgcn_serve_request_ns_bucket{le=\"+Inf\"}"));
        assert!(text.contains("# TYPE lrgcn_serve_request_ns histogram"));
        validate_scrape(&text);
    }

    #[test]
    fn serving_renderer_is_scrape_valid_with_slo_gauges() {
        let cfg = ServerConfig {
            slo_p99_ms: Some(50),
            slo_err_ppm: Some(1000),
            ..ServerConfig::default()
        };
        let obs = ObsState::new(&cfg, ReadPath::Exact).unwrap();
        window::record_request(Route::Recs, 200, ReadPath::Exact, 1_000_000, false);
        window::record_request(Route::Recs, 500, ReadPath::Exact, 90_000_000, true);
        let text = render_serving_metrics(&obs);
        assert!(text.contains("lrgcn_serve_uptime_seconds "));
        assert!(text.contains("lrgcn_serve_window_rps{window=\"10s\"}"));
        assert!(text.contains("lrgcn_serve_window_error_ratio{window=\"300s\"}"));
        assert!(text.contains("lrgcn_serve_slo_burn{slo=\"latency\",window=\"10s\"}"));
        assert!(text.contains("lrgcn_serve_slo_burn{slo=\"errors\",window=\"60s\"}"));
        validate_scrape(&text);
    }

    fn fake_request(method: &str, path: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            query: Default::default(),
            headers: Default::default(),
            body: Vec::new(),
        }
    }

    #[test]
    fn route_classification_matches_dispatch() {
        let cases = [
            ("GET", "/healthz", Route::Healthz),
            ("GET", "/metrics", Route::Metrics),
            ("GET", "/admin/obs", Route::AdminObs),
            ("POST", "/score", Route::Score),
            ("POST", "/events", Route::Events),
            ("POST", "/admin/reload", Route::AdminReload),
            ("POST", "/admin/shutdown", Route::AdminShutdown),
            ("GET", "/recs/7", Route::Recs),
            ("GET", "/similar/3", Route::Similar),
            ("GET", "/nope", Route::Other),
            ("DELETE", "/recs/7", Route::Other),
        ];
        for (m, p, want) in cases {
            assert_eq!(classify_route(&fake_request(m, p)), want, "{m} {p}");
        }
    }

    #[test]
    fn event_parsing_validates_and_stamps_the_request_id() {
        let ev = parse_event(
            r#"{"user": 7, "item": 3, "ts": 1700000000, "client": "app-1", "seq": 9}"#,
            "rid-1",
        )
        .expect("parse");
        assert_eq!((ev.user, ev.item, ev.timestamp), (7, 3, 1_700_000_000));
        assert_eq!((ev.client.as_str(), ev.seq), ("app-1", 9));
        assert_eq!(ev.request_id, "rid-1");
        // Minimal form: ts/client/seq optional; no-client opts out of dedup.
        let min = parse_event(r#"{"user": 0, "item": 1}"#, "rid-2").expect("minimal");
        assert_eq!((min.timestamp, min.seq), (0, 0));
        assert!(min.client.is_empty());
        for bad in [
            r#"{"item": 1}"#,                                // user missing
            r#"{"user": -1, "item": 1}"#,                    // negative id
            r#"{"user": 0, "item": 1.5}"#,                   // non-integer
            r#"{"user": 0, "item": 1, "client": "c"}"#,      // client without seq
            r#"{"user": 0, "item": 1, "client": 3, "seq": 1}"#, // non-string client
            "not json",
        ] {
            assert!(parse_event(bad, "rid").is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn request_ids_honor_wellformed_inbound_headers_only() {
        let obs = ObsState::new(&ServerConfig::default(), ReadPath::Exact).unwrap();
        let mut req = fake_request("GET", "/healthz");
        req.headers
            .insert("x-lrgcn-request-id".into(), "trace-1.2:a_b".into());
        assert_eq!(obs.request_id(&req), "trace-1.2:a_b");
        // Malformed inbound ids are replaced, not echoed.
        for bad in ["", "has space", "x".repeat(65).as_str(), "new\nline"] {
            req.headers
                .insert("x-lrgcn-request-id".into(), bad.into());
            let got = obs.request_id(&req);
            assert_ne!(got, bad);
            assert!(got.contains('-'), "generated id shape: {got}");
        }
        // Generated ids are unique.
        let a = obs.fresh_id();
        let b = obs.fresh_id();
        assert_ne!(a, b);
    }

    #[test]
    fn every_503_carries_retry_after() {
        let h = response_headers("rid-9", 503);
        assert!(h.contains(&("retry-after", RETRY_AFTER_SECS)));
        assert!(h.contains(&("x-lrgcn-request-id", "rid-9")));
        for status in [200u16, 400, 404, 405, 431, 500] {
            let h = response_headers("rid-9", status);
            assert!(
                !h.iter().any(|(k, _)| *k == "retry-after"),
                "status {status} must not promise a retry"
            );
            assert!(h.contains(&("x-lrgcn-request-id", "rid-9")));
        }
        // The shed and deadline replies both ride the 503 contract.
        assert_eq!(shed_response("x").0, 503);
        assert_eq!(deadline_response("x").0, 503);
    }

    #[test]
    fn admission_gate_sheds_when_full_and_recovers() {
        let ov = Overload::new(&ServerConfig {
            max_inflight: 1,
            max_queue: 0,
            ..ServerConfig::default()
        });
        let slot = ov.admit(None).expect("first request").expect("gate armed");
        assert_eq!(ov.inflight.load(Ordering::SeqCst), 1);
        // Gate full and the queue disabled: an immediate 503 shed.
        let shed = ov.admit(None).expect_err("second request must shed");
        assert_eq!(shed.0, 503);
        drop(slot);
        assert_eq!(ov.inflight.load(Ordering::SeqCst), 0);
        assert!(ov.admit(None).expect("slot after release").is_some());
        // Gate off: no guard, never sheds.
        let off = Overload::new(&ServerConfig::default());
        assert!(off.admit(None).expect("gate off").is_none());
    }

    #[test]
    fn queued_requests_are_dropped_at_dequeue_once_the_deadline_passes() {
        let ov = Overload::new(&ServerConfig {
            max_inflight: 1,
            max_queue: 4,
            ..ServerConfig::default()
        });
        let _slot = ov.admit(None).expect("first").expect("armed");
        // Deadline already reached: the waiter must come back promptly
        // with a deadline 503, not a queue-full shed.
        let before = registry::get(Counter::ServeDeadlineExceeded);
        let reply = ov
            .admit(Some(Instant::now()))
            .expect_err("expired waiter must be dropped");
        assert_eq!(reply.0, 503);
        // `>=`: the registry is process-global and other tests also emit
        // deadline 503s.
        assert!(registry::get(Counter::ServeDeadlineExceeded) > before);
        assert_eq!(ov.queued.load(Ordering::SeqCst), 0, "queue slot returned");
    }

    #[test]
    fn deadline_header_parses_and_rejects_garbage() {
        let ov = Overload::new(&ServerConfig {
            deadline_default_ms: 250,
            ..ServerConfig::default()
        });
        let mut req = fake_request("GET", "/recs/1");
        assert!(ov.deadline_of(&req).expect("default").is_some());
        req.headers
            .insert("x-lrgcn-deadline-ms".into(), "50".into());
        assert!(ov.deadline_of(&req).expect("explicit").is_some());
        for bad in ["0", "-5", "abc", "99999999999", "1.5"] {
            req.headers
                .insert("x-lrgcn-deadline-ms".into(), bad.into());
            let reply = ov.deadline_of(&req).expect_err(bad);
            assert_eq!(reply.0, 400, "{bad}");
        }
        // No header and no default: unbounded.
        let off = Overload::new(&ServerConfig::default());
        let plain = fake_request("GET", "/recs/1");
        assert!(off.deadline_of(&plain).expect("off").is_none());
    }

    #[test]
    fn brownout_hysteresis_steps_one_level_at_a_time() {
        let mut ctl = BrownoutCtl::new(2, 3);
        let mut level = 0u8;
        level = ctl.tick(level, true);
        assert_eq!(level, 0, "one bad tick is not a trend");
        level = ctl.tick(level, true);
        assert_eq!(level, 1, "two consecutive bad ticks step down the path");
        level = ctl.tick(level, true);
        assert_eq!(level, 1, "streak resets after a transition");
        level = ctl.tick(level, true);
        assert_eq!(level, 2);
        // A single calm tick wipes the bad streak.
        level = ctl.tick(level, false);
        level = ctl.tick(level, true);
        assert_eq!(level, 2);
        level = ctl.tick(level, true);
        assert_eq!(level, 3);
        for _ in 0..4 {
            level = ctl.tick(level, true);
        }
        assert_eq!(level, BROWNOUT_MAX_LEVEL, "level saturates");
        // Recovery needs down_ticks calm ticks per level.
        for want in [3, 3, 2, 2, 2, 1, 1, 1, 0, 0, 0, 0] {
            level = ctl.tick(level, false);
            assert_eq!(level, want);
        }
    }
}
