//! The HTTP front-end: worker pool, routing, metrics rendering, graceful
//! shutdown.
//!
//! ```text
//! GET  /healthz                     liveness + model/generation info
//! GET  /metrics                     Prometheus text of the obs registry
//! GET  /recs/{user}?k=N[&exclude_seen=bool]   cached top-K for a user
//! GET  /similar/{item}?k=N          item-item cosine neighbours
//! POST /score                       {"pairs": [[u,i],...]} micro-batched
//! POST /admin/reload                re-read the checkpoint, swap, bump gen
//! POST /admin/shutdown              begin graceful shutdown
//! ```
//!
//! Concurrency model: `workers` threads share one nonblocking listener via
//! `try_clone` and sleep-poll `accept`. A request in flight always runs to
//! completion — shutdown only flips an `AtomicBool` the workers check
//! *between* connections — and reloads swap an `Arc` snapshot, so neither
//! ever fails an accepted request.

use crate::batch::Batcher;
use crate::cache::{Key, TopKCache};
use crate::engine::{Engine, Scratch};
use crate::http::{read_request, write_response, Request};
use lrgcn_obs::json::Value;
use lrgcn_obs::{registry, timer, Counter, Gauge, Hist};
use std::cell::RefCell;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server knobs. `Default` binds an ephemeral localhost port.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8642`; port 0 picks one.
    pub addr: String,
    /// Worker threads; 0 means the parallel layer's effective thread count
    /// (the `LRGCN_THREADS` convention).
    pub workers: usize,
    /// Total response-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Micro-batch coalescing window.
    pub batch_tick: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            cache_capacity: 4096,
            batch_tick: Duration::from_millis(1),
        }
    }
}

/// A running server. Dropping the handle does NOT stop it; call
/// [`ServerHandle::shutdown`] + [`ServerHandle::wait`] (or POST
/// /admin/shutdown) for a graceful stop.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    batcher: Arc<Batcher>,
    workers: Vec<JoinHandle<()>>,
    scorer: Option<JoinHandle<()>>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins graceful shutdown: workers finish their in-flight request,
    /// the scorer drains the queue.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.batcher.shutdown();
    }

    /// True once shutdown has been requested (by this handle or over HTTP).
    pub fn is_shutting_down(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Blocks until every worker and the scorer have exited.
    pub fn wait(mut self) {
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(s) = self.scorer.take() {
            let _ = s.join();
        }
    }
}

/// How often idle workers re-check the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Per-connection socket timeout: a stalled peer cannot pin a worker.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(5);

/// Binds, spawns the worker pool and the batch scorer, returns immediately.
pub fn serve(engine: Arc<Engine>, cfg: ServerConfig) -> Result<ServerHandle, String> {
    let listener =
        TcpListener::bind(&cfg.addr).map_err(|e| format!("binding {}: {e}", cfg.addr))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("nonblocking listener: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;

    let n_workers = if cfg.workers == 0 {
        lrgcn_tensor::par::effective_threads()
    } else {
        cfg.workers
    };
    let stop = Arc::new(AtomicBool::new(false));
    let cache = Arc::new(TopKCache::new(cfg.cache_capacity, n_workers.max(1)));
    let batcher = Batcher::new(cfg.batch_tick);

    let scorer = {
        let b = batcher.clone();
        let e = engine.clone();
        std::thread::Builder::new()
            .name("lrgcn-serve-scorer".into())
            .spawn(move || b.run_scorer(e))
            .map_err(|e| format!("spawning scorer: {e}"))?
    };

    let mut workers = Vec::with_capacity(n_workers);
    for w in 0..n_workers {
        let listener = listener
            .try_clone()
            .map_err(|e| format!("cloning listener: {e}"))?;
        let ctx = Ctx {
            engine: engine.clone(),
            cache: cache.clone(),
            batcher: batcher.clone(),
            stop: stop.clone(),
            cache_enabled: cfg.cache_capacity > 0,
        };
        workers.push(
            std::thread::Builder::new()
                .name(format!("lrgcn-serve-{w}"))
                .spawn(move || worker_loop(listener, ctx))
                .map_err(|e| format!("spawning worker: {e}"))?,
        );
    }

    if lrgcn_obs::sink::enabled() {
        let run = lrgcn_obs::sink::next_run_id();
        lrgcn_obs::sink::emit(&lrgcn_obs::event::run_start(
            run,
            &engine.state().model_name,
            "serve",
            n_workers as u64,
        ));
    }

    Ok(ServerHandle {
        addr,
        stop,
        batcher,
        workers,
        scorer: Some(scorer),
    })
}

thread_local! {
    /// Per-worker request buffers: score/index/quant-query scratch reused
    /// across every request a worker thread handles, so the hot path
    /// allocates nothing proportional to the catalog size.
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Everything a worker needs, cloned per thread.
struct Ctx {
    engine: Arc<Engine>,
    cache: Arc<TopKCache>,
    batcher: Arc<Batcher>,
    stop: Arc<AtomicBool>,
    cache_enabled: bool,
}

fn worker_loop(listener: TcpListener, ctx: Ctx) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => handle_connection(stream, &ctx),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if ctx.stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                if ctx.stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

fn handle_connection(mut stream: TcpStream, ctx: &Ctx) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_nonblocking(false);
    registry::add(Counter::ServeRequests, 1);
    let _t = timer::scoped(Hist::ServeRequest);
    let _span = lrgcn_obs::trace::span("serve_request", "serve");

    let (status, content_type, body) = match read_request(&mut stream) {
        Ok(req) => route(&req, ctx),
        Err(msg) => error_response(400, &msg),
    };
    if status >= 400 {
        registry::add(Counter::ServeErrors, 1);
    }
    let _ = write_response(&mut stream, status, content_type, &body);
}

type Reply = (u16, &'static str, Vec<u8>);

const JSON: &str = "application/json";
const TEXT: &str = "text/plain; version=0.0.4";

fn error_response(status: u16, msg: &str) -> Reply {
    let body = Value::obj([("error", Value::str(msg))]).render();
    (status, JSON, body.into_bytes())
}

fn json_response(v: &Value) -> Reply {
    (200, JSON, v.render().into_bytes())
}

fn route(req: &Request, ctx: &Ctx) -> Reply {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(ctx),
        ("GET", "/metrics") => (200, TEXT, render_metrics().into_bytes()),
        ("POST", "/score") => score(req, ctx),
        ("POST", "/admin/reload") => reload(ctx),
        ("POST", "/admin/shutdown") => {
            ctx.stop.store(true, Ordering::SeqCst);
            ctx.batcher.shutdown();
            json_response(&Value::obj([("status", Value::str("shutting down"))]))
        }
        ("GET", path) if path.starts_with("/recs/") => recs(req, ctx),
        ("GET", path) if path.starts_with("/similar/") => similar(req, ctx),
        ("GET" | "POST", _) => error_response(404, &format!("no route for {}", req.path)),
        _ => error_response(405, &format!("method {} not allowed", req.method)),
    }
}

fn healthz(ctx: &Ctx) -> Reply {
    let st = ctx.engine.state();
    json_response(&Value::obj([
        ("status", Value::str("ok")),
        ("model", Value::str(st.model_name.clone())),
        ("tag", Value::str(st.tag.clone())),
        ("generation", Value::u64(st.generation)),
        ("n_users", Value::u64(st.n_users as u64)),
        ("n_items", Value::u64(st.n_items as u64)),
        ("dim", Value::u64(st.dim as u64)),
        ("n_parameters", Value::u64(st.n_parameters as u64)),
        ("quant", Value::Bool(st.quant_enabled())),
        (
            "quant_recall_ppm",
            Value::u64((st.quant_recall * 1_000_000.0).round() as u64),
        ),
        ("ann", Value::Bool(st.ann_enabled())),
        ("ann_cells", Value::u64(st.ann_cells() as u64)),
        ("ann_nprobe", Value::u64(st.ann_nprobe() as u64)),
        (
            "ann_recall_ppm",
            Value::u64((st.ann_recall * 1_000_000.0).round() as u64),
        ),
    ]))
}

fn reload(ctx: &Ctx) -> Reply {
    match ctx.engine.reload() {
        Ok(st) => json_response(&Value::obj([
            ("status", Value::str("reloaded")),
            ("generation", Value::u64(st.generation)),
            ("model", Value::str(st.model_name.clone())),
        ])),
        Err(e) => error_response(500, &e),
    }
}

/// Parses the `{id}` tail of `/recs/{id}` / `/similar/{id}`.
fn parse_id(path: &str, prefix: &str) -> Result<u32, Reply> {
    let tail = &path[prefix.len()..];
    if tail.is_empty() || tail.contains('/') {
        return Err(error_response(404, &format!("no route for {path}")));
    }
    tail.parse()
        .map_err(|_| error_response(400, &format!("{tail:?} is not a numeric id")))
}

fn parse_k(req: &Request) -> Result<usize, Reply> {
    match req.query_get("k") {
        None => Ok(10),
        Some(raw) => raw
            .parse::<usize>()
            .ok()
            .filter(|k| (1..=1000).contains(k))
            .ok_or_else(|| error_response(400, &format!("k must be 1..=1000, got {raw:?}"))),
    }
}

fn items_json(items: &[(u32, f32)]) -> Value {
    Value::Arr(
        items
            .iter()
            .map(|&(it, s)| {
                Value::obj([("item", Value::u64(it as u64)), ("score", Value::num(s))])
            })
            .collect(),
    )
}

fn recs(req: &Request, ctx: &Ctx) -> Reply {
    let user = match parse_id(&req.path, "/recs/") {
        Ok(u) => u,
        Err(r) => return r,
    };
    let k = match parse_k(req) {
        Ok(k) => k,
        Err(r) => return r,
    };
    let exclude_seen = match req.query_get("exclude_seen") {
        None => true,
        Some("true") | Some("1") => true,
        Some("false") | Some("0") => false,
        Some(other) => {
            return error_response(400, &format!("exclude_seen must be true/false, got {other:?}"))
        }
    };
    let st = ctx.engine.state();
    if user as usize >= st.n_users {
        return error_response(404, &format!("user {user} out of range (0..{})", st.n_users));
    }
    let key = Key {
        generation: st.generation,
        user,
        k,
        exclude_seen,
        quant: st.quant_enabled(),
        nprobe: st.ann_nprobe() as u32,
    };
    let compute = || {
        SCRATCH.with(|s| {
            st.top_k_into(ctx.engine.dataset(), user, k, exclude_seen, &mut s.borrow_mut())
        })
    };
    let (items, cached) = if ctx.cache_enabled {
        match ctx.cache.get(&key) {
            Some(hit) => (hit, true),
            None => {
                let fresh = match compute() {
                    Ok(v) => v,
                    Err(e) => return error_response(404, &e),
                };
                ctx.cache.insert(key, fresh.clone());
                (fresh, false)
            }
        }
    } else {
        match compute() {
            Ok(v) => (v, false),
            Err(e) => return error_response(404, &e),
        }
    };
    json_response(&Value::obj([
        ("user", Value::u64(user as u64)),
        ("k", Value::u64(k as u64)),
        ("generation", Value::u64(st.generation)),
        ("cached", Value::Bool(cached)),
        ("items", items_json(&items)),
    ]))
}

fn similar(req: &Request, ctx: &Ctx) -> Reply {
    let item = match parse_id(&req.path, "/similar/") {
        Ok(i) => i,
        Err(r) => return r,
    };
    let k = match parse_k(req) {
        Ok(k) => k,
        Err(r) => return r,
    };
    let st = ctx.engine.state();
    if item as usize >= st.n_items {
        return error_response(404, &format!("item {item} out of range (0..{})", st.n_items));
    }
    match SCRATCH.with(|s| st.similar_items_into(item, k, &mut s.borrow_mut())) {
        Ok(items) => json_response(&Value::obj([
            ("item", Value::u64(item as u64)),
            ("k", Value::u64(k as u64)),
            ("generation", Value::u64(st.generation)),
            ("items", items_json(&items)),
        ])),
        Err(e) => error_response(404, &e),
    }
}

fn score(req: &Request, ctx: &Ctx) -> Reply {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return error_response(400, "body is not UTF-8"),
    };
    let parsed = match lrgcn_obs::json::parse(text) {
        Ok(v) => v,
        Err(e) => return error_response(400, &format!("bad JSON body: {e}")),
    };
    let Some(Value::Arr(raw_pairs)) = parsed.get("pairs") else {
        return error_response(400, "body must be {\"pairs\": [[user, item], ...]}");
    };
    let mut pairs = Vec::with_capacity(raw_pairs.len());
    for p in raw_pairs {
        let Value::Arr(uv) = p else {
            return error_response(400, "each pair must be a [user, item] array");
        };
        let ids: Option<(u32, u32)> = match uv.as_slice() {
            [u, i] => match (u.as_f64(), i.as_f64()) {
                (Some(u), Some(i))
                    if u >= 0.0 && i >= 0.0 && u.fract() == 0.0 && i.fract() == 0.0 =>
                {
                    Some((u as u32, i as u32))
                }
                _ => None,
            },
            _ => None,
        };
        match ids {
            Some(pair) => pairs.push(pair),
            None => return error_response(400, "each pair must be two non-negative integers"),
        }
    }
    if pairs.is_empty() {
        return error_response(400, "pairs must be non-empty");
    }
    let generation = ctx.engine.generation();
    match ctx.batcher.submit(pairs) {
        Ok(scores) => json_response(&Value::obj([
            ("generation", Value::u64(generation)),
            (
                "scores",
                Value::Arr(scores.into_iter().map(Value::num).collect()),
            ),
        ])),
        Err(e) => error_response(400, &e),
    }
}

/// Renders every obs counter, gauge and histogram as Prometheus text.
/// Dotted metric names become `lrgcn_`-prefixed snake_case
/// (`serve.cache.hits` → `lrgcn_serve_cache_hits_total`).
pub fn render_metrics() -> String {
    let snap = registry::snapshot();
    let mut out = String::new();
    for c in Counter::ALL {
        out.push_str(&format!(
            "lrgcn_{}_total {}\n",
            sanitize(c.name()),
            snap.counter(c)
        ));
    }
    for g in Gauge::ALL {
        let name = sanitize(g.name());
        out.push_str(&format!(
            "lrgcn_{name} {}\nlrgcn_{name}_peak {}\n",
            registry::gauge_current(g),
            registry::gauge_peak(g)
        ));
    }
    for h in Hist::ALL {
        let hs = snap.hist(h);
        let name = sanitize(h.name());
        out.push_str(&format!(
            "lrgcn_{name}_count {}\nlrgcn_{name}_sum {}\nlrgcn_{name}_max {}\nlrgcn_{name}_p95 {}\n",
            hs.count,
            hs.sum_ns,
            hs.max_ns,
            hs.quantile_ns(0.95)
        ));
    }
    out
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_names_are_prometheus_safe() {
        let text = render_metrics();
        assert!(text.contains("lrgcn_serve_http_requests_total "));
        assert!(text.contains("lrgcn_serve_cache_hits_total "));
        assert!(text.contains("lrgcn_serve_request_ns_count "));
        assert!(text.contains("lrgcn_tensor_matrix_bytes "));
        for line in text.lines() {
            let (name, value) = line.split_once(' ').expect("name value");
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "unsafe metric name {name:?}"
            );
            value.parse::<u64>().unwrap_or_else(|_| panic!("bad value in {line:?}"));
        }
    }
}
