//! Zero-dependency IVF (inverted-file) ANN index over the item embeddings.
//!
//! The full-catalog scans behind `/recs` and `/similar` are O(items) per
//! request — the wall between this serving stack and a web-scale catalog
//! (PinSage serves its GCN embeddings through exactly this kind of
//! approximate nearest-neighbor retrieval). This module trades a bounded
//! amount of recall for sub-linear candidate generation:
//!
//! 1. **Build** (once per checkpoint (re)load): a k-means coarse quantizer
//!    clusters the item embeddings into `n_cells` cells (default
//!    `≈ √n_items`) with a fixed number of Lloyd iterations, then stores
//!    per-cell item lists in ascending id order.
//! 2. **Probe** (per request): rank the cells by inner product between the
//!    query and the cell centroid, take the top `nprobe`, and scan only the
//!    items in those cells. The candidates feed the engine's existing
//!    rank-then-rescore pipeline (under `--quant` the in-cell scan is int8,
//!    the survivors get an exact f32 rescore).
//!
//! ## MIPS reduction
//!
//! Serving ranks by **inner product**, not Euclidean distance, and item
//! norms vary widely (popular items have large embeddings) — plain
//! Euclidean k-means cells do not align with inner-product neighborhoods,
//! which wrecks recall. The index therefore clusters in the standard
//! norm-augmented space that reduces MIPS to L2 nearest-neighbor search:
//! each item `x` becomes `x̃ = [x, √(Φ² − ‖x‖²)]` with `Φ = max‖x‖`, and a
//! query `q` becomes `q̃ = [q, 0]`. Then `‖q̃ − x̃‖² = ‖q‖² + Φ² − 2·q·x`,
//! so the L2-nearest augmented item IS the maximum-inner-product item.
//! K-means runs over the augmented vectors; probing ranks cells by the
//! L2 surrogate `½‖c̃‖² − q̃·c̃` ascending.
//!
//! ## Determinism contract (DESIGN.md §11)
//!
//! The index — and therefore every served candidate set — is
//! **bitwise-reproducible at any `LRGCN_THREADS`**:
//!
//! * Initial centroids are `n_cells` distinct items chosen by a seeded
//!   partial Fisher–Yates over item ids (`StdRng::seed_from_u64`).
//! * Assignment minimizes the surrogate `½‖c‖² − x·c` (the squared-distance
//!   argmin with the constant `½‖x‖²` dropped), computed through
//!   [`kernels::centroid_scores_block`] — the same bitwise-thread-invariant
//!   `matmul_nt` kernels as serving. Ties break toward the **lowest
//!   centroid index** ([`kernels::argmin_first`]). The parallel fan-out
//!   only partitions *which rows* a thread computes, never the arithmetic
//!   inside a row.
//! * Centroid updates are serial, accumulating members in ascending item
//!   order; an empty cell keeps its previous centroid.
//! * Probing sorts cells by the L2 surrogate ascending with ties toward
//!   the lowest cell index; each cell's member list is stored ascending,
//!   so the concatenated candidate set is a pure function of
//!   (embeddings, config). The augmentation itself is elementwise and the
//!   max-norm reduction is a serial scan, so both are thread-invariant.

use lrgcn_tensor::{kernels, par};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Fixed Lloyd iteration count — part of the determinism contract (no
/// data-dependent convergence test, so every build does identical work).
const KMEANS_ITERS: usize = 10;
/// Row block size for the assignment pass: amortizes the `matmul_nt`
/// dispatch without growing the per-thread score buffer past L1.
const ASSIGN_BLOCK: usize = 32;

/// Build/probe parameters for [`IvfIndex`].
#[derive(Clone, Copy, Debug)]
pub struct IvfConfig {
    /// Number of k-means cells; `0` picks `≈ √n_items` (min 1), the usual
    /// IVF balance point between probe cost and in-cell scan cost.
    pub n_cells: usize,
    /// How many cells a query scans, in centroid-score order.
    pub nprobe: usize,
    /// Seed for the centroid initialization.
    pub seed: u64,
}

impl Default for IvfConfig {
    fn default() -> Self {
        Self {
            n_cells: 0,
            nprobe: 8,
            seed: 2023,
        }
    }
}

impl IvfConfig {
    /// The concrete cell count for a catalog of `n_items`.
    pub fn resolved_cells(&self, n_items: usize) -> usize {
        let auto = (n_items as f64).sqrt().round() as usize;
        let cells = if self.n_cells == 0 { auto } else { self.n_cells };
        cells.clamp(1, n_items.max(1))
    }
}

/// The built index: centroid table + inverted lists.
pub struct IvfIndex {
    /// The *embedding* dimension; centroids live in `dim + 1` (augmented).
    dim: usize,
    n_cells: usize,
    nprobe: usize,
    /// Row-major `n_cells × (dim + 1)` centroid table in the norm-augmented
    /// space (see the module docs).
    centroids: Vec<f32>,
    /// `Φ = max‖x‖` over the item rows — the augmentation radius; probing
    /// rescales queries to this norm (MIPS order is scale-invariant).
    phi: f32,
    /// `½‖c̃_j‖²` per centroid (the probe surrogate's constant term).
    half_cnorm: Vec<f32>,
    /// `cell_start[j]..cell_start[j+1]` indexes `members` — a CSR layout of
    /// the inverted lists; each cell's slice is ascending item ids.
    cell_start: Vec<usize>,
    members: Vec<u32>,
}

impl IvfIndex {
    /// Clusters `items` (row-major `n_items × dim`) into an IVF index.
    /// Deterministic in `(items, cfg)` — see the module docs.
    pub fn build(items: &[f32], n_items: usize, dim: usize, cfg: &IvfConfig) -> IvfIndex {
        assert_eq!(items.len(), n_items * dim, "item table is not whole rows");
        let n_cells = cfg.resolved_cells(n_items);
        let (aug, phi) = augment(items, n_items, dim);
        let adim = dim + 1;
        let mut centroids = init_centroids(&aug, n_items, adim, n_cells, cfg.seed);
        let mut half_cnorm = vec![0.0f32; n_cells];
        let mut assign = vec![0u32; n_items];
        for _ in 0..KMEANS_ITERS {
            refresh_half_norms(&centroids, adim, &mut half_cnorm);
            assign_items(&aug, adim, &centroids, n_cells, &half_cnorm, &mut assign);
            update_centroids(&aug, adim, &assign, n_cells, &mut centroids);
        }
        refresh_half_norms(&centroids, adim, &mut half_cnorm);
        assign_items(&aug, adim, &centroids, n_cells, &half_cnorm, &mut assign);

        // Counting sort into CSR lists; iterating items in ascending id
        // order keeps each cell's member slice sorted.
        let mut counts = vec![0usize; n_cells];
        for &c in &assign {
            counts[c as usize] += 1;
        }
        let mut cell_start = vec![0usize; n_cells + 1];
        for j in 0..n_cells {
            cell_start[j + 1] = cell_start[j] + counts[j];
        }
        let mut cursor = cell_start[..n_cells].to_vec();
        let mut members = vec![0u32; n_items];
        for (item, &c) in assign.iter().enumerate() {
            members[cursor[c as usize]] = item as u32;
            cursor[c as usize] += 1;
        }
        IvfIndex {
            dim,
            n_cells,
            nprobe: cfg.nprobe.clamp(1, n_cells),
            centroids,
            phi,
            half_cnorm,
            cell_start,
            members,
        }
    }

    pub fn n_cells(&self) -> usize {
        self.n_cells
    }

    /// The effective probe width (the configured `nprobe`, clamped to the
    /// cell count at build time).
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    /// Heap bytes held by the index (centroid table + lists).
    pub fn bytes(&self) -> usize {
        self.centroids.len() * 4
            + self.half_cnorm.len() * 4
            + self.cell_start.len() * std::mem::size_of::<usize>()
            + self.members.len() * 4
    }

    /// Ascending item ids assigned to `cell`.
    pub fn cell_items(&self, cell: usize) -> &[u32] {
        &self.members[self.cell_start[cell]..self.cell_start[cell + 1]]
    }

    /// Ranks cells by the L2 surrogate `½‖c̃‖² − q̃·c̃` **ascending** (ties
    /// toward the lowest cell index) and writes the top
    /// [`IvfIndex::nprobe`] cell ids into `out`. The augmented query is
    /// `[q, 0]`, so its dot against an augmented centroid only touches the
    /// first `dim` coordinates. The scalar-sequential [`kernels::dot`]
    /// makes the ranking thread- and kernel-mode-invariant.
    pub fn probe_cells(&self, query: &[f32], out: &mut Vec<u32>) {
        self.probe_cells_n(query, self.nprobe, out);
    }

    /// [`IvfIndex::probe_cells`] with an explicit probe width, clamped to
    /// `1..=n_cells`. The brownout controller uses this to narrow the scan
    /// below the configured `nprobe` under overload without rebuilding the
    /// index.
    pub fn probe_cells_n(&self, query: &[f32], nprobe: usize, out: &mut Vec<u32>) {
        let nprobe = nprobe.clamp(1, self.n_cells);
        debug_assert_eq!(query.len(), self.dim);
        let adim = self.dim + 1;
        // MIPS item order is invariant to the query's scale, so rescale the
        // query to the augmentation radius Φ before ranking cells: a
        // small-norm query would otherwise shrink the alignment term `q·c̃`
        // until the constant `½‖c̃‖²` term dominates and every query probes
        // the same cells.
        let qnorm = kernels::dot(query, query).sqrt();
        let scale = if qnorm > 0.0 { self.phi / qnorm } else { 1.0 };
        let mut scored: Vec<(f32, u32)> = (0..self.n_cells)
            .map(|j| {
                let c = &self.centroids[j * adim..j * adim + self.dim];
                (self.half_cnorm[j] - scale * kernels::dot(query, c), j as u32)
            })
            .collect();
        scored.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("centroid scores must not be NaN")
                .then(a.1.cmp(&b.1))
        });
        out.clear();
        out.extend(scored.iter().take(nprobe).map(|&(_, j)| j));
    }

    /// Probes for `query` and appends every member of the probed cells to
    /// `out` (cells in probe order, items ascending within a cell).
    /// Returns the number of cells probed.
    pub fn candidates_into(&self, query: &[f32], cells_buf: &mut Vec<u32>, out: &mut Vec<u32>) -> usize {
        self.candidates_into_n(query, self.nprobe, cells_buf, out)
    }

    /// [`IvfIndex::candidates_into`] with an explicit probe width (clamped
    /// to `1..=n_cells`).
    pub fn candidates_into_n(
        &self,
        query: &[f32],
        nprobe: usize,
        cells_buf: &mut Vec<u32>,
        out: &mut Vec<u32>,
    ) -> usize {
        self.probe_cells_n(query, nprobe, cells_buf);
        out.clear();
        for &cell in cells_buf.iter() {
            out.extend_from_slice(self.cell_items(cell as usize));
        }
        cells_buf.len()
    }
}

/// Norm-augments the item table for the MIPS→L2 reduction (module docs):
/// each row `x` becomes `[x, √(Φ² − ‖x‖²)]` with `Φ² = max‖x‖²`. Returns
/// the augmented table and `Φ`. The max is a serial scan and the per-row
/// math is self-contained, so the output is thread-invariant; the radicand
/// is clamped at 0 so float rounding on the max row cannot produce a NaN.
fn augment(items: &[f32], n_items: usize, dim: usize) -> (Vec<f32>, f32) {
    let mut sq_norms = vec![0.0f32; n_items];
    let mut phi2 = 0.0f32;
    for (s, row) in sq_norms.iter_mut().zip(items.chunks_exact(dim.max(1))) {
        *s = kernels::dot(row, row);
        if *s > phi2 {
            phi2 = *s;
        }
    }
    let adim = dim + 1;
    let mut aug = vec![0.0f32; n_items * adim];
    for i in 0..n_items {
        aug[i * adim..i * adim + dim].copy_from_slice(&items[i * dim..(i + 1) * dim]);
        aug[i * adim + dim] = (phi2 - sq_norms[i]).max(0.0).sqrt();
    }
    (aug, phi2.sqrt())
}

/// Seeded initial centroids: a partial Fisher–Yates over item ids picks
/// `n_cells` distinct items, whose rows are copied as the starting table.
fn init_centroids(items: &[f32], n_items: usize, dim: usize, n_cells: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<u32> = (0..n_items as u32).collect();
    for i in 0..n_cells.min(n_items.saturating_sub(1)) {
        let j = rng.random_range(i..n_items);
        ids.swap(i, j);
    }
    let mut centroids = vec![0.0f32; n_cells * dim];
    for (c, &item) in ids.iter().take(n_cells).enumerate() {
        let row = &items[item as usize * dim..(item as usize + 1) * dim];
        centroids[c * dim..(c + 1) * dim].copy_from_slice(row);
    }
    centroids
}

fn refresh_half_norms(centroids: &[f32], dim: usize, half_cnorm: &mut [f32]) {
    for (h, c) in half_cnorm.iter_mut().zip(centroids.chunks_exact(dim)) {
        *h = 0.5 * kernels::dot(c, c);
    }
}

/// Assigns every item to its nearest centroid. Parallel over item rows via
/// the workspace `par` layer; each row's surrogate scores and argmin are
/// computed by self-contained scalar-deterministic code, so the result is
/// identical for every thread count.
fn assign_items(
    items: &[f32],
    dim: usize,
    centroids: &[f32],
    n_cells: usize,
    half_cnorm: &[f32],
    assign: &mut [u32],
) {
    let kern = kernels::active_kernel();
    let threads = par::effective_threads();
    par::par_row_chunks_mut(assign, 1, threads, |start_row, chunk| {
        let mut scores = vec![0.0f32; ASSIGN_BLOCK * n_cells];
        let mut row = 0usize;
        while row < chunk.len() {
            let block = ASSIGN_BLOCK.min(chunk.len() - row);
            let first = start_row + row;
            kernels::centroid_scores_block(
                kern,
                &items[first * dim..(first + block) * dim],
                dim,
                centroids,
                n_cells,
                half_cnorm,
                &mut scores[..block * n_cells],
            );
            for (r, srow) in scores[..block * n_cells].chunks_exact(n_cells).enumerate() {
                chunk[row + r] = kernels::argmin_first(srow) as u32;
            }
            row += block;
        }
    });
}

/// Serial Lloyd update: mean of each cell's members accumulated in
/// ascending item order. Empty cells keep their previous centroid.
fn update_centroids(items: &[f32], dim: usize, assign: &[u32], n_cells: usize, centroids: &mut [f32]) {
    let mut sums = vec![0.0f32; n_cells * dim];
    let mut counts = vec![0u32; n_cells];
    for (item, &c) in assign.iter().enumerate() {
        let row = &items[item * dim..(item + 1) * dim];
        let s = &mut sums[c as usize * dim..(c as usize + 1) * dim];
        for (acc, &x) in s.iter_mut().zip(row) {
            *acc += x;
        }
        counts[c as usize] += 1;
    }
    for j in 0..n_cells {
        if counts[j] == 0 {
            continue;
        }
        let inv = 1.0 / counts[j] as f32;
        for (c, &s) in centroids[j * dim..(j + 1) * dim]
            .iter_mut()
            .zip(&sums[j * dim..(j + 1) * dim])
        {
            *c = s * inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-embeddings (splitmix64 like the bench bins).
    fn pseudo(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                (z >> 40) as f32 / (1u64 << 24) as f32 - 0.5
            })
            .collect()
    }

    #[test]
    fn every_item_lands_in_exactly_one_cell() {
        let (n, d) = (200usize, 8usize);
        let items = pseudo(n * d, 1);
        let idx = IvfIndex::build(&items, n, d, &IvfConfig::default());
        let mut seen = vec![false; n];
        for cell in 0..idx.n_cells() {
            let mut prev = None;
            for &it in idx.cell_items(cell) {
                assert!(!seen[it as usize], "item {it} in two cells");
                seen[it as usize] = true;
                if let Some(p) = prev {
                    assert!(it > p, "cell {cell} member list not ascending");
                }
                prev = Some(it);
            }
        }
        assert!(seen.iter().all(|&s| s), "item missing from the index");
    }

    #[test]
    fn build_is_bitwise_deterministic_across_thread_counts() {
        let (n, d) = (300usize, 12usize);
        let items = pseudo(n * d, 7);
        let cfg = IvfConfig {
            n_cells: 16,
            nprobe: 4,
            seed: 99,
        };
        let before = par::configured_threads();
        par::set_threads(1);
        let a = IvfIndex::build(&items, n, d, &cfg);
        par::set_threads(4);
        let b = IvfIndex::build(&items, n, d, &cfg);
        par::set_threads(before);
        assert_eq!(a.members, b.members, "inverted lists diverged");
        assert_eq!(a.cell_start, b.cell_start);
        let ab: Vec<u32> = a.centroids.iter().map(|x| x.to_bits()).collect();
        let bb: Vec<u32> = b.centroids.iter().map(|x| x.to_bits()).collect();
        assert_eq!(ab, bb, "centroids not bitwise identical");
    }

    #[test]
    fn probe_returns_nprobe_cells_best_first() {
        let (n, d) = (100usize, 6usize);
        let items = pseudo(n * d, 3);
        let idx = IvfIndex::build(
            &items,
            n,
            d,
            &IvfConfig {
                n_cells: 10,
                nprobe: 3,
                seed: 5,
            },
        );
        let query = &items[0..d];
        let mut cells = Vec::new();
        idx.probe_cells(query, &mut cells);
        assert_eq!(cells.len(), 3);
        // The probe surrogate: ½‖c̃‖² − q̃·c̃ over the augmented centroid,
        // where the query's augmentation coordinate is 0 and the query is
        // rescaled to norm Φ (MIPS order is scale-invariant).
        let adim = d + 1;
        let scale = idx.phi / kernels::dot(query, query).sqrt();
        let surrogate = |j: u32| {
            let j = j as usize;
            idx.half_cnorm[j]
                - scale * kernels::dot(query, &idx.centroids[j * adim..j * adim + d])
        };
        assert!(surrogate(cells[0]) <= surrogate(cells[1]));
        assert!(surrogate(cells[1]) <= surrogate(cells[2]));
        // Every unprobed cell scores no better (higher surrogate) than the
        // probed tail.
        for j in 0..idx.n_cells() as u32 {
            if !cells.contains(&j) {
                assert!(surrogate(j) >= surrogate(cells[2]));
            }
        }
    }

    #[test]
    fn nprobe_all_cells_covers_the_catalog() {
        let (n, d) = (64usize, 4usize);
        let items = pseudo(n * d, 11);
        let idx = IvfIndex::build(
            &items,
            n,
            d,
            &IvfConfig {
                n_cells: 8,
                nprobe: 8,
                seed: 1,
            },
        );
        let mut cells = Vec::new();
        let mut cand = Vec::new();
        let probed = idx.candidates_into(&items[0..d], &mut cells, &mut cand);
        assert_eq!(probed, 8);
        assert_eq!(cand.len(), n, "probing every cell must cover every item");
    }

    #[test]
    fn narrowed_probe_is_a_prefix_of_the_full_probe() {
        let (n, d) = (120usize, 6usize);
        let items = pseudo(n * d, 17);
        let idx = IvfIndex::build(
            &items,
            n,
            d,
            &IvfConfig {
                n_cells: 10,
                nprobe: 8,
                seed: 3,
            },
        );
        let query = &items[7 * d..8 * d];
        let (mut full, mut narrow) = (Vec::new(), Vec::new());
        idx.probe_cells(query, &mut full);
        idx.probe_cells_n(query, 3, &mut narrow);
        assert_eq!(narrow.len(), 3);
        assert_eq!(
            narrow,
            full[..3],
            "narrowing must keep the best-first cell order"
        );
        // Clamped at both ends.
        idx.probe_cells_n(query, 0, &mut narrow);
        assert_eq!(narrow.len(), 1);
        idx.probe_cells_n(query, 999, &mut narrow);
        assert_eq!(narrow.len(), 10);
        // Narrowed candidate sets shrink accordingly.
        let (mut cells, mut cand_full, mut cand_narrow) = (Vec::new(), Vec::new(), Vec::new());
        idx.candidates_into(query, &mut cells, &mut cand_full);
        let probed = idx.candidates_into_n(query, 3, &mut cells, &mut cand_narrow);
        assert_eq!(probed, 3);
        assert!(cand_narrow.len() <= cand_full.len());
    }

    #[test]
    fn auto_cells_is_about_sqrt_and_config_clamps() {
        let cfg = IvfConfig::default();
        assert_eq!(cfg.resolved_cells(8000), 89);
        assert_eq!(cfg.resolved_cells(1), 1);
        let wide = IvfConfig {
            n_cells: 500,
            ..IvfConfig::default()
        };
        assert_eq!(wide.resolved_cells(6), 6, "cells must clamp to n_items");
    }
}
