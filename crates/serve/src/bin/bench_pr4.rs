//! PR 4 benchmark: online serving throughput, single worker vs a pooled
//! configuration, over a real loopback socket.
//!
//! Starts the full server twice — `workers = 1` with one sequential client,
//! then `workers = cpus` with several concurrent clients — and drives an
//! identical request mix (3× `GET /recs`, 1× `POST /score`) against each.
//! Emits `BENCH_PR4.json` (override with `--out PATH`). Throughput numbers
//! are bounded by `cpus_available`; on a single-CPU host the pooled
//! configuration cannot beat one worker and the report says so.
//!
//! ```text
//! cargo run -p lrgcn-serve --release --bin bench_pr4 -- \
//!     [--scale F] [--requests N] [--clients C] [--out PATH]
//! ```

use lrgcn_data::{Dataset, SplitRatios, SyntheticConfig};
use lrgcn_models::LayerGcn;
use lrgcn_models::LayerGcnConfig;
use lrgcn_obs::json::Value;
use lrgcn_serve::{serve, Engine, EngineOptions, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// `--key value` flags; everything is optional.
fn arg(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == &format!("--{key}"))
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_parsed<T: std::str::FromStr>(key: &str, default: T) -> T {
    arg(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> u16 {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).ok();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).expect("send");
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("response");
    resp.split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status line")
}

/// The shared request mix: every 4th request is a batched `/score`, the
/// rest are `/recs` cycling over users (so cache behaviour is identical
/// across configurations).
fn fire(addr: SocketAddr, n_users: usize, start: usize, count: usize) {
    for i in start..start + count {
        let status = if i % 4 == 3 {
            let u = i % n_users;
            let body = format!("{{\"pairs\": [[{u}, 0], [{u}, 1]]}}");
            request(addr, "POST", "/score", &body)
        } else {
            request(addr, "GET", &format!("/recs/{}?k=20", i % n_users), "")
        };
        assert_eq!(status, 200, "request {i} failed");
    }
}

struct Throughput {
    workers: usize,
    clients: usize,
    elapsed_s: f64,
    rps: f64,
}

fn measure(engine: &Arc<Engine>, workers: usize, clients: usize, requests: usize) -> Throughput {
    let handle = serve(
        engine.clone(),
        ServerConfig {
            workers,
            ..ServerConfig::default()
        },
    )
    .expect("serve");
    let addr = handle.addr();
    let n_users = engine.dataset().n_users();
    // One warm-up pass so TCP and cache state don't skew the first config.
    fire(addr, n_users, 0, 32.min(requests));

    let per_client = requests / clients;
    let t0 = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || fire(addr, n_users, c * per_client, per_client))
        })
        .collect();
    for t in threads {
        t.join().expect("client");
    }
    let elapsed_s = t0.elapsed().as_secs_f64();
    handle.shutdown();
    handle.wait();
    let total = (per_client * clients) as f64;
    Throughput {
        workers,
        clients,
        elapsed_s,
        rps: total / elapsed_s,
    }
}

fn main() {
    let scale: f64 = arg_parsed("scale", 0.05f64);
    let requests: usize = arg_parsed("requests", 400usize);
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let clients: usize = arg_parsed("clients", 4usize);
    let out_path = arg("out").unwrap_or_else(|| "BENCH_PR4.json".into());

    let log = SyntheticConfig::games().scaled(scale).generate(2023);
    let ds = Arc::new(Dataset::chronological_split(
        "games-like",
        &log,
        SplitRatios::default(),
    ));
    let cfg = LayerGcnConfig {
        embedding_dim: 32,
        n_layers: 2,
        ..LayerGcnConfig::default()
    };
    // Serving throughput does not depend on model quality: a random-init
    // checkpoint scores through exactly the same kernels.
    let mut rng = StdRng::seed_from_u64(2023);
    let model = LayerGcn::new(&ds, cfg, &mut rng);
    let dir = std::env::temp_dir().join("lrgcn_bench_pr4");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let ckpt = dir.join("bench.ckpt");
    model.save(&ckpt).expect("save checkpoint");
    let opts = EngineOptions {
        n_layers: 2,
        ..EngineOptions::default()
    };
    let engine = Arc::new(Engine::open(&ckpt, ds.clone(), opts).expect("open engine"));

    eprintln!(
        "bench_pr4: {} users / {} items, dim 32, cpus={cpus}, {requests} requests, 1 worker vs {cpus} workers x {clients} clients",
        ds.n_users(),
        ds.n_items()
    );
    let single = measure(&engine, 1, 1, requests);
    let pooled = measure(&engine, cpus, clients, requests);
    std::fs::remove_file(&ckpt).ok();

    let report = Value::obj([
        ("bench", Value::str("pr4_serving_throughput")),
        (
            "dataset",
            Value::str(format!("games-like (synthetic, scale {scale})")),
        ),
        ("n_users", Value::u64(ds.n_users() as u64)),
        ("n_items", Value::u64(ds.n_items() as u64)),
        ("embedding_dim", Value::u64(32)),
        ("cpus_available", Value::u64(cpus as u64)),
        ("requests", Value::u64(requests as u64)),
        (
            "request_mix",
            Value::str("3x GET /recs (cached top-20) : 1x POST /score (micro-batched)"),
        ),
        (
            "single",
            Value::obj([
                ("workers", Value::u64(single.workers as u64)),
                ("clients", Value::u64(single.clients as u64)),
                ("elapsed_seconds", Value::num(single.elapsed_s)),
                ("requests_per_second", Value::num(single.rps)),
            ]),
        ),
        (
            "pooled",
            Value::obj([
                ("workers", Value::u64(pooled.workers as u64)),
                ("clients", Value::u64(pooled.clients as u64)),
                ("elapsed_seconds", Value::num(pooled.elapsed_s)),
                ("requests_per_second", Value::num(pooled.rps)),
            ]),
        ),
        ("throughput_speedup", Value::num(pooled.rps / single.rps)),
        (
            "note",
            Value::str(
                "speedup is bounded by cpus_available; on a single-CPU host the pooled configuration cannot beat one worker",
            ),
        ),
    ]);
    let json = report.render();
    std::fs::write(&out_path, &json).expect("writing benchmark report");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
