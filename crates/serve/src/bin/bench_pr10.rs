//! PR 10 benchmark: goodput and tail latency under overload, admission
//! control + brownout ON vs OFF.
//!
//! Closed-loop load: each step runs `c` client threads that issue
//! `GET /recs/{u}?k=K` back-to-back against a live in-process server for a
//! fixed wall-clock slice, for `c` stepping well past saturation. Two
//! server modes answer the same schedule:
//!
//! * **uncontrolled** — no admission gate, no deadlines, no brownout: every
//!   arrival queues somewhere implicit (accept backlog, worker pool) and
//!   eventually computes. Overload shows up as tail-latency collapse.
//! * **controlled** — `max_inflight`-bounded gate with a small queue,
//!   brownout armed over a standby ANN index (DESIGN.md §14). Overload
//!   shows up as prompt 503 + `Retry-After` sheds while admitted requests
//!   keep a bounded p99.
//!
//! Per step the report records client-observed goodput (200s/sec), shed
//! rate, p50/p99 of successful requests, transport errors (must stay 0 in
//! both modes — overload is never an excuse for a reset), and the deepest
//! brownout level the controller reached. Emits `BENCH_PR10.json`
//! (override with `--out PATH`); `--quick` shrinks everything for CI.
//!
//! ```text
//! cargo run -p lrgcn-serve --release --bin bench_pr10 -- \
//!     [--scale F] [--epochs N] [--step-secs F] [--out PATH] [--quick]
//! ```

use lrgcn_data::{Dataset, SplitRatios, SyntheticConfig};
use lrgcn_models::{LayerGcn, LayerGcnConfig, Recommender};
use lrgcn_obs::json::Value;
use lrgcn_serve::{chaos, serve, Engine, EngineOptions, ServerConfig, ServerHandle};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn arg(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == &format!("--{key}"))
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_parsed<T: std::str::FromStr>(key: &str, default: T) -> T {
    arg(key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn has_flag(key: &str) -> bool {
    std::env::args().any(|a| a == format!("--{key}"))
}

struct StepResult {
    clients: usize,
    completed: u64,
    sheds: u64,
    transport_errors: u64,
    goodput_rps: f64,
    shed_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    max_level: u64,
}

/// One closed-loop load step: `clients` threads hammer `/recs` for
/// `secs` seconds; a sampler thread tracks the deepest brownout level.
fn run_step(addr: SocketAddr, clients: usize, secs: f64, n_users: u32, k: usize) -> StepResult {
    let stop = Arc::new(AtomicBool::new(false));
    let max_level = Arc::new(AtomicU64::new(0));

    let sampler = {
        let stop = stop.clone();
        let max_level = max_level.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                if let Ok(resp) =
                    chaos::request(addr, "GET", "/healthz", &[], b"", Duration::from_secs(5))
                {
                    if let Some(at) = resp.body.find("\"brownout_level\":") {
                        let tail = &resp.body[at + "\"brownout_level\":".len()..];
                        let level: u64 = tail
                            .trim_start()
                            .chars()
                            .take_while(char::is_ascii_digit)
                            .collect::<String>()
                            .parse()
                            .unwrap_or(0);
                        max_level.fetch_max(level, Ordering::SeqCst);
                    }
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        })
    };

    let started = Instant::now();
    let mut workers = Vec::new();
    for t in 0..clients {
        let stop = stop.clone();
        workers.push(std::thread::spawn(move || {
            let (mut ok_ns, mut sheds, mut errors, mut i) = (Vec::new(), 0u64, 0u64, 0u32);
            while !stop.load(Ordering::SeqCst) {
                i += 1;
                let user = (t as u32 * 131 + i * 17) % n_users;
                let t0 = Instant::now();
                match chaos::request(
                    addr,
                    "GET",
                    &format!("/recs/{user}?k={k}"),
                    &[],
                    b"",
                    Duration::from_secs(30),
                ) {
                    Ok(resp) if resp.status == 200 => ok_ns.push(t0.elapsed().as_nanos() as u64),
                    Ok(resp) if resp.status == 503 => sheds += 1,
                    Ok(_) | Err(_) => errors += 1,
                }
            }
            (ok_ns, sheds, errors)
        }));
    }
    std::thread::sleep(Duration::from_secs_f64(secs));
    stop.store(true, Ordering::SeqCst);

    let (mut all_ns, mut sheds, mut errors) = (Vec::new(), 0u64, 0u64);
    for w in workers {
        let (ns, s, e) = w.join().expect("load client panicked");
        all_ns.extend(ns);
        sheds += s;
        errors += e;
    }
    sampler.join().expect("sampler panicked");
    let elapsed = started.elapsed().as_secs_f64();
    all_ns.sort_unstable();
    let q = |p: f64| {
        if all_ns.is_empty() {
            0.0
        } else {
            let idx = ((all_ns.len() - 1) as f64 * p).round() as usize;
            all_ns[idx] as f64 / 1e6
        }
    };
    StepResult {
        clients,
        completed: all_ns.len() as u64,
        sheds,
        transport_errors: errors,
        goodput_rps: all_ns.len() as f64 / elapsed,
        shed_rps: sheds as f64 / elapsed,
        p50_ms: q(0.50),
        p99_ms: q(0.99),
        max_level: max_level.load(Ordering::SeqCst),
    }
}

/// Blocks until the brownout level reads 0 again (steps independent).
fn wait_recovered(addr: SocketAddr, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if let Ok(resp) = chaos::request(addr, "GET", "/healthz", &[], b"", Duration::from_secs(5))
        {
            if resp.body.contains("\"brownout_level\":0") || !resp.body.contains("brownout_level") {
                return;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn step_json(s: &StepResult) -> Value {
    Value::obj([
        ("clients", Value::u64(s.clients as u64)),
        ("completed", Value::u64(s.completed)),
        ("sheds", Value::u64(s.sheds)),
        ("transport_errors", Value::u64(s.transport_errors)),
        ("goodput_rps", Value::num(s.goodput_rps)),
        ("shed_rps", Value::num(s.shed_rps)),
        ("p50_ms", Value::num(s.p50_ms)),
        ("p99_ms", Value::num(s.p99_ms)),
        ("max_brownout_level", Value::u64(s.max_level)),
    ])
}

fn main() {
    let quick = has_flag("quick");
    let scale: f64 = arg_parsed("scale", if quick { 0.25 } else { 1.0 });
    let epochs: usize = arg_parsed("epochs", 2);
    let step_secs: f64 = arg_parsed("step-secs", if quick { 1.5 } else { 4.0 });
    let out_path = arg("out").unwrap_or_else(|| "BENCH_PR10.json".into());
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    const DIM: usize = 64;
    const K_LAYERS: usize = 2;
    const K: usize = 800;
    let load_steps: &[usize] = if quick { &[2, 8, 24] } else { &[2, 8, 32, 64] };

    // One trained checkpoint serves both modes. The yelp preset's 1411
    // items with a large k make each admitted request do real scoring and
    // rendering work, so saturation is reachable with a handful of
    // closed-loop clients.
    let log = SyntheticConfig::yelp().scaled(scale).generate(2023);
    let ds = Arc::new(Dataset::chronological_split(
        "yelp-like",
        &log,
        SplitRatios::default(),
    ));
    let n_users = ds.n_users() as u32;
    let cfg = LayerGcnConfig {
        embedding_dim: DIM,
        n_layers: K_LAYERS,
        ..LayerGcnConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(2023);
    let mut model = LayerGcn::new(&ds, cfg, &mut rng);
    for epoch in 0..epochs {
        model.train_epoch(&ds, epoch, &mut rng);
    }
    let dir = std::env::temp_dir().join("lrgcn_bench_pr10");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    let ckpt = dir.join("model.ckpt");
    model.save(&ckpt).expect("save checkpoint");

    let start_server = |controlled: bool| -> ServerHandle {
        let engine = Arc::new(
            Engine::open(
                &ckpt,
                ds.clone(),
                EngineOptions {
                    n_layers: K_LAYERS,
                    ann_standby: controlled,
                    ..EngineOptions::default()
                },
            )
            .expect("open engine"),
        );
        let cfg = if controlled {
            // The queue must be smaller than the worker surplus
            // (workers − max_inflight), or it can never fill and the
            // gate never sheds.
            ServerConfig {
                workers: 8,
                cache_capacity: 0,
                max_inflight: 1,
                max_queue: 2,
                slo_p99_ms: Some(50),
                brownout: true,
                brownout_up_ticks: 2,
                brownout_down_ticks: 4,
                brownout_tick: Duration::from_millis(50),
                ..ServerConfig::default()
            }
        } else {
            ServerConfig {
                workers: 8,
                cache_capacity: 0,
                ..ServerConfig::default()
            }
        };
        serve(engine, cfg).expect("serve")
    };

    let mut modes = Vec::new();
    for controlled in [false, true] {
        let handle = start_server(controlled);
        let addr = handle.addr();
        let label = if controlled { "controlled" } else { "uncontrolled" };
        let mut steps = Vec::new();
        for &clients in load_steps {
            let s = run_step(addr, clients, step_secs, n_users, K);
            eprintln!(
                "{label:>12} c={clients:<3} goodput {:8.1}/s shed {:8.1}/s p99 {:8.2}ms level {}",
                s.goodput_rps, s.shed_rps, s.p99_ms, s.max_level
            );
            steps.push(step_json(&s));
            if controlled {
                wait_recovered(addr, Duration::from_secs(15));
            }
        }
        handle.shutdown();
        handle.wait();
        modes.push((label, Value::Arr(steps)));
    }
    std::fs::remove_dir_all(&dir).ok();

    let report = Value::obj([
        ("bench", Value::str("pr10_overload_goodput_vs_offered_load")),
        ("cpus_available", Value::u64(cpus as u64)),
        ("embedding_dim", Value::u64(DIM as u64)),
        ("k_per_request", Value::u64(K as u64)),
        ("quick", Value::Bool(quick)),
        (
            "dataset",
            Value::str(format!("yelp-like (synthetic, scale {scale})")),
        ),
        ("n_users", Value::u64(n_users as u64)),
        ("n_items", Value::u64(ds.n_items() as u64)),
        ("step_secs", Value::num(step_secs)),
        (
            "controlled_config",
            Value::obj([
                ("max_inflight", Value::u64(1)),
                ("max_queue", Value::u64(2)),
                ("slo_p99_ms", Value::u64(50)),
                ("brownout", Value::Bool(true)),
            ]),
        ),
        (
            "modes",
            Value::Obj(modes.into_iter().map(|(k, v)| (k.to_string(), v)).collect()),
        ),
        (
            "note",
            Value::str(
                "closed-loop clients, client-observed latency; goodput counts only 200s; sheds are 503 + Retry-After from the admission gate; transport_errors must be 0 in both modes; max_brownout_level is the deepest degradation the controller reached during the step (controlled mode only); controlled goodput above saturation counts degraded answers — level >=1 serves ANN and level >=2 caps k at 20, which is why it can exceed the uncontrolled exact path",
            ),
        ),
    ]);
    let json = report.render();
    std::fs::write(&out_path, &json).expect("writing benchmark report");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
