//! PR 9 benchmark: staleness vs recall through the streaming loop, plus
//! sustained ingestion throughput.
//!
//! Simulates users who sign up *after* the model ships: the top 10% of
//! user ids are stripped from the training log, the base model is trained
//! without them, and their interactions then arrive as `/events`-style
//! stream records. Each new user's chronologically-first 70% of
//! interactions become events; the rest is held-out ground truth. Three
//! serving states answer top-20 for those users:
//!
//! * **stale**  — the base checkpoint, no streaming: the users do not
//!   exist, recall is honestly zero. This is the cost of doing nothing.
//! * **fold-in** — the event log replayed into a `StreamDelta` through the
//!   frozen adjacency + layer-refinement weights (DESIGN.md §13), no
//!   gradient steps.
//! * **retrain** — the log folded into the training matrices, LayerGCN
//!   warm-started from the base embeddings and trained a few epochs — the
//!   `lrgcn retrain` path.
//!
//! The throughput half measures durable (fsync'd) append events/sec on the
//! crash-safe log and in-memory fold-in events/sec on the engine delta.
//! Emits `BENCH_PR9.json` (override with `--out PATH`); `--quick` shrinks
//! everything for CI smoke runs.
//!
//! ```text
//! cargo run -p lrgcn-serve --release --bin bench_pr9 -- \
//!     [--scale F] [--epochs N] [--retrain-epochs N] [--out PATH] [--quick]
//! ```

use lrgcn_data::{Dataset, Interaction, InteractionLog, SplitRatios, SyntheticConfig};
use lrgcn_models::{LayerGcn, LayerGcnConfig, Recommender};
use lrgcn_obs::json::Value;
use lrgcn_serve::{Engine, EngineOptions, Scratch};
use lrgcn_stream::{pack_covered, EventLog, StreamEvent, COVERED_ENTRY};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

fn arg(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == &format!("--{key}"))
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_parsed<T: std::str::FromStr>(key: &str, default: T) -> T {
    arg(key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn has_flag(key: &str) -> bool {
    std::env::args().any(|a| a == format!("--{key}"))
}

/// Macro-averaged recall@20 over `(user, truth)` pairs given a per-user
/// top-20 oracle (`None` = the state cannot serve that user at all, which
/// scores zero — the stale engine's honest number).
fn recall_at_20(
    truths: &[(u32, BTreeSet<u32>)],
    mut top20: impl FnMut(u32) -> Option<Vec<(u32, f32)>>,
) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for (user, truth) in truths {
        if truth.is_empty() {
            continue;
        }
        n += 1;
        if let Some(items) = top20(*user) {
            let hits = items.iter().filter(|(i, _)| truth.contains(i)).count();
            sum += hits as f64 / truth.len() as f64;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

fn main() {
    let quick = has_flag("quick");
    let scale: f64 = arg_parsed("scale", if quick { 0.25 } else { 1.0 });
    let epochs: usize = arg_parsed("epochs", if quick { 2 } else { 4 });
    let retrain_epochs: usize = arg_parsed("retrain-epochs", if quick { 1 } else { 2 });
    let out_path = arg("out").unwrap_or_else(|| "BENCH_PR9.json".into());
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    const DIM: usize = 64;
    const K_LAYERS: usize = 2;

    // Full world, then hold the top 10% of user ids out of training: they
    // only ever exist in the stream.
    let cfg = SyntheticConfig::games().scaled(scale);
    let full = cfg.generate(2023);
    let n_items = full.n_items();
    let cut = (full.n_users() * 9).div_ceil(10);
    let base_inter: Vec<Interaction> = full
        .interactions()
        .iter()
        .filter(|it| (it.user as usize) < cut)
        .copied()
        .collect();
    let base_log = InteractionLog::new(cut, n_items, base_inter);
    let ds = Arc::new(Dataset::chronological_split(
        "games-like-minus-late-signups",
        &base_log,
        SplitRatios::default(),
    ));

    // Each post-training user: chronologically-first 70% -> stream events,
    // the rest (minus anything already streamed) -> ground truth.
    let mut per_user: Vec<Vec<Interaction>> = vec![Vec::new(); full.n_users() - cut];
    for it in full.interactions() {
        if (it.user as usize) >= cut {
            per_user[it.user as usize - cut].push(*it);
        }
    }
    let mut stream: Vec<Interaction> = Vec::new();
    let mut truths: Vec<(u32, BTreeSet<u32>)> = Vec::new();
    for (off, inter) in per_user.iter_mut().enumerate() {
        inter.sort_by_key(|it| it.timestamp);
        let feed = (inter.len() * 7).div_ceil(10).max(1).min(inter.len());
        stream.extend_from_slice(&inter[..feed]);
        let fed: BTreeSet<u32> = inter[..feed].iter().map(|it| it.item).collect();
        let truth: BTreeSet<u32> = inter[feed..]
            .iter()
            .map(|it| it.item)
            .filter(|i| !fed.contains(i))
            .collect();
        truths.push(((cut + off) as u32, truth));
    }
    // Events arrive in global timestamp order, like a real feed.
    stream.sort_by_key(|it| it.timestamp);
    let events: Vec<StreamEvent> = stream
        .iter()
        .enumerate()
        .map(|(i, it)| StreamEvent {
            user: it.user,
            item: it.item,
            timestamp: it.timestamp,
            client: "bench".into(),
            seq: i as u64 + 1,
            request_id: String::new(),
        })
        .collect();
    let n_truth: usize = truths.iter().filter(|(_, t)| !t.is_empty()).count();

    // Base model, trained without the late signups.
    let model_cfg = LayerGcnConfig {
        embedding_dim: DIM,
        n_layers: K_LAYERS,
        ..LayerGcnConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(2023);
    let mut model = LayerGcn::new(&ds, model_cfg.clone(), &mut rng);
    for epoch in 0..epochs {
        model.train_epoch(&ds, epoch, &mut rng);
    }
    let dir = std::env::temp_dir().join("lrgcn_bench_pr9");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    let ckpt = dir.join("base.ckpt");
    model.save(&ckpt).expect("save checkpoint");
    let base_ego = model
        .checkpoint_entries()
        .expect("layergcn entries")
        .into_iter()
        .find(|(n, _)| n == "ego")
        .expect("ego entry")
        .1;
    let opts = EngineOptions {
        n_layers: K_LAYERS,
        ..EngineOptions::default()
    };

    // --- Durable ingestion throughput: append + fsync on the event log.
    let log_dir = dir.join("events");
    let t0 = Instant::now();
    {
        let mut log = EventLog::open(&log_dir).expect("open log");
        for batch in events.chunks(64) {
            log.append_batch(batch).expect("append");
        }
    }
    let append_secs = t0.elapsed().as_secs_f64();
    let append_eps = events.len() as f64 / append_secs;

    // --- Stale baseline: the base engine has never heard of these users.
    let stale = Engine::open(&ckpt, ds.clone(), opts.clone()).expect("open stale");
    let stale_st = stale.state();
    let mut scratch = Scratch::default();
    let stale_recall = recall_at_20(&truths, |u| stale_st.top_k(&ds, u, 20, true).ok());

    // --- Fold-in: replay the log into a StreamDelta (no gradient steps).
    let t1 = Instant::now();
    let folded = Engine::open(
        &ckpt,
        ds.clone(),
        EngineOptions {
            events_dir: Some(log_dir.clone()),
            ..opts.clone()
        },
    )
    .expect("open fold-in");
    let foldin_open_secs = t1.elapsed().as_secs_f64();
    let folded_st = folded.state();
    let delta = folded_st.delta();
    assert_eq!(delta.events_applied(), events.len() as u64, "all folded");
    let foldin_recall = recall_at_20(&truths, |u| {
        folded_st.top_k_stream(&delta, u, 20, true, &mut scratch).ok()
    });
    // In-memory fold-in rate, measured on a fresh engine's empty delta.
    let refold = Engine::open(&ckpt, ds.clone(), opts.clone()).expect("open refold");
    let t2 = Instant::now();
    for batch in events.chunks(64) {
        refold.fold_in(batch);
    }
    let foldin_eps = events.len() as f64 / t2.elapsed().as_secs_f64();

    // --- Retrain: fold the log into the matrices, warm-start, few epochs.
    let pairs: Vec<(u32, u32)> = events.iter().map(|e| (e.user, e.item)).collect();
    let extended = Arc::new(ds.extend_with_events(&pairs));
    let t3 = Instant::now();
    let mut rng2 = StdRng::seed_from_u64(2023);
    let mut model2 = LayerGcn::new(&extended, model_cfg, &mut rng2);
    model2.warm_start_from(&base_ego, ds.n_users(), extended.n_users());
    for epoch in 0..retrain_epochs {
        model2.train_epoch(&extended, epoch, &mut rng2);
    }
    let retrain_secs = t3.elapsed().as_secs_f64();
    let ckpt2 = dir.join("retrained.ckpt");
    lrgcn_models::checkpoint::save_model(&ckpt2, "layergcn", &model2).expect("save retrained");
    // Stamp the covered-prefix marker the way `lrgcn retrain` does, so the
    // serving engine rebuilds the extended universe instead of re-folding.
    let mut entries = lrgcn_tensor::io::load_checkpoint(&ckpt2).expect("reload retrained");
    entries.push((COVERED_ENTRY.to_string(), pack_covered(events.len() as u64)));
    let refs: Vec<(&str, &lrgcn_tensor::Matrix)> =
        entries.iter().map(|(n, m)| (n.as_str(), m)).collect();
    lrgcn_tensor::io::save_checkpoint(&ckpt2, &refs).expect("stamp covered");
    let retrained = Engine::open(
        &ckpt2,
        ds.clone(),
        EngineOptions {
            events_dir: Some(log_dir.clone()),
            ..opts
        },
    )
    .expect("open retrained");
    let retr_st = retrained.state();
    assert_eq!(retr_st.covered_events, events.len() as u64);
    let retrain_recall = recall_at_20(&truths, |u| retr_st.top_k(retr_st.ds(), u, 20, true).ok());

    std::fs::remove_dir_all(&dir).ok();

    let report = Value::obj([
        ("bench", Value::str("pr9_streaming_staleness_vs_recall")),
        ("cpus_available", Value::u64(cpus as u64)),
        ("threads", Value::u64(1)),
        ("embedding_dim", Value::u64(DIM as u64)),
        ("quick", Value::Bool(quick)),
        (
            "dataset",
            Value::str(format!(
                "games-like (synthetic, scale {scale}), top 10% of user ids held out of training"
            )),
        ),
        ("n_base_users", Value::u64(ds.n_users() as u64)),
        ("n_stream_users", Value::u64((full.n_users() - cut) as u64)),
        ("n_scored_users", Value::u64(n_truth as u64)),
        ("n_items", Value::u64(n_items as u64)),
        ("n_events", Value::u64(events.len() as u64)),
        ("base_train_epochs", Value::u64(epochs as u64)),
        ("retrain_epochs", Value::u64(retrain_epochs as u64)),
        (
            "staleness_vs_recall",
            Value::obj([
                ("stale_recall_at_20", Value::num(stale_recall)),
                ("foldin_recall_at_20", Value::num(foldin_recall)),
                ("retrain_recall_at_20", Value::num(retrain_recall)),
            ]),
        ),
        (
            "throughput",
            Value::obj([
                ("append_events_per_second_durable", Value::num(append_eps)),
                ("foldin_events_per_second", Value::num(foldin_eps)),
                ("replay_open_seconds", Value::num(foldin_open_secs)),
                ("retrain_seconds", Value::num(retrain_secs)),
            ]),
        ),
        (
            "note",
            Value::str(
                "recall@20 macro-averaged over post-training users' held-out 30%; stale serves them not at all, fold-in synthesizes rows through the frozen adjacency + layer-refinement weights, retrain warm-starts from the base ego table; append throughput includes per-batch fsync",
            ),
        ),
    ]);
    let json = report.render();
    std::fs::write(&out_path, &json).expect("writing benchmark report");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
