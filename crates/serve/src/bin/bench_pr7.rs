//! PR 7 benchmark: exact full-catalog top-20 vs the IVF ANN read path.
//!
//! Opens the same checkpoint through an exact engine and a series of ANN
//! engines across a probe-width sweep, measuring end-to-end top-20
//! throughput and the build-time recall@20 guardrail for each — the
//! recall/latency trade-off curve behind `--nprobe`. One extra row runs
//! the fully composed path (IVF candidates + int8 in-cell scan + exact
//! rescore). The catalog is deliberately serving-scale (8000 items at
//! scale 1.0): the exact scan is O(items) per request, which is exactly
//! the cost the index is meant to beat. Emits `BENCH_PR7.json` (override
//! with `--out PATH`).
//!
//! ```text
//! cargo run -p lrgcn-serve --release --bin bench_pr7 -- \
//!     [--scale F] [--topk-requests N] [--out PATH] [--quick]
//! ```
//!
//! `--quick` shrinks the catalog and request count for CI smoke runs.

use lrgcn_data::{Dataset, SplitRatios, SyntheticConfig};
use lrgcn_models::{LayerGcn, LayerGcnConfig, Recommender};
use lrgcn_obs::json::Value;
use lrgcn_serve::{Engine, EngineOptions, Scratch};
use lrgcn_tensor::kernels::{self, simd_available, Kernel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// `--key value` flags; everything is optional.
fn arg(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == &format!("--{key}"))
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_parsed<T: std::str::FromStr>(key: &str, default: T) -> T {
    arg(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn has_flag(key: &str) -> bool {
    std::env::args().any(|a| a == format!("--{key}"))
}

fn main() {
    let quick = has_flag("quick");
    let scale: f64 = arg_parsed("scale", if quick { 0.25 } else { 1.0 });
    let topk_requests: usize = arg_parsed("topk-requests", if quick { 200 } else { 1000 });
    let out_path = arg("out").unwrap_or_else(|| "BENCH_PR7.json".into());
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    const DIM: usize = 64;

    // The catalog-heavy workload from bench_pr6: serving cost is O(items),
    // so the read-path comparison needs a catalog that dwarfs the training
    // presets.
    let serve_cfg = SyntheticConfig {
        n_items: 8000,
        n_interactions: 120_000,
        n_clusters: 64,
        ..SyntheticConfig::games()
    }
    .scaled(scale);
    let log = serve_cfg.generate(2023);
    let ds = Arc::new(Dataset::chronological_split(
        "games-like",
        &log,
        SplitRatios::default(),
    ));
    let cfg = LayerGcnConfig {
        embedding_dim: DIM,
        n_layers: 2,
        ..LayerGcnConfig::default()
    };
    // Throughput does not depend on model quality, but the IVF recall
    // numbers do: random-init embeddings have near-random inner-product
    // neighborhoods that no coarse quantizer can capture, so a few training
    // epochs are spent making the recall column measure the index on
    // embeddings shaped like the ones a deployment would actually serve.
    let epochs: usize = arg_parsed("epochs", if quick { 1 } else { 4 });
    let mut rng = StdRng::seed_from_u64(2023);
    let mut model = LayerGcn::new(&ds, cfg, &mut rng);
    for epoch in 0..epochs {
        model.train_epoch(&ds, epoch, &mut rng);
    }
    let dir = std::env::temp_dir().join("lrgcn_bench_pr7");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let ckpt = dir.join("bench.ckpt");
    model.save(&ckpt).expect("save checkpoint");
    let opts = EngineOptions {
        n_layers: 2,
        ..EngineOptions::default()
    };

    let serving_kernel = if simd_available() {
        Kernel::Simd
    } else {
        Kernel::Blocked
    };
    kernels::set_kernel(serving_kernel);
    let n_users = ds.n_users();
    let throughput = |eng: &Engine| {
        let st = eng.state();
        let mut scratch = Scratch::default();
        for u in 0..32u32.min(n_users as u32) {
            st.top_k_into(&ds, u, 20, true, &mut scratch).expect("top_k");
        }
        let t0 = Instant::now();
        for i in 0..topk_requests {
            let u = (i % n_users) as u32;
            std::hint::black_box(
                st.top_k_into(&ds, u, 20, true, &mut scratch).expect("top_k"),
            );
        }
        topk_requests as f64 / t0.elapsed().as_secs_f64()
    };

    let exact = Engine::open(&ckpt, ds.clone(), opts.clone()).expect("open exact");
    let exact_rps = throughput(&exact);

    // Probe-width sweep at the auto cell count (≈ √n_items): each row is
    // one point on the recall/latency curve.
    let nprobes: &[usize] = if quick { &[4, 8, 16] } else { &[4, 8, 16, 32] };
    let mut sweep = Vec::new();
    for &nprobe in nprobes {
        let eng = Engine::open(
            &ckpt,
            ds.clone(),
            EngineOptions {
                ann: true,
                nprobe,
                ..opts.clone()
            },
        )
        .expect("open ann");
        let st = eng.state();
        let rps = throughput(&eng);
        sweep.push(Value::obj([
            ("nprobe", Value::u64(nprobe as u64)),
            ("cells", Value::u64(st.ann_cells() as u64)),
            ("topk_per_second", Value::num(rps)),
            ("speedup_vs_exact", Value::num(rps / exact_rps)),
            ("recall_at_20", Value::num(st.ann_recall)),
            ("index_bytes", Value::u64(st.ann_bytes() as u64)),
        ]));
    }

    // The fully composed path: IVF candidates, int8 in-cell scan, exact
    // f32 rescore of the survivors.
    let composed_nprobe = 8usize;
    let composed = Engine::open(
        &ckpt,
        ds.clone(),
        EngineOptions {
            ann: true,
            nprobe: composed_nprobe,
            quant: true,
            ..opts
        },
    )
    .expect("open ann+quant");
    let composed_rps = throughput(&composed);
    let composed_recall = composed.state().ann_recall;
    kernels::set_kernel(Kernel::Naive);
    std::fs::remove_file(&ckpt).ok();

    let report = Value::obj([
        ("bench", Value::str("pr7_ivf_ann_vs_exact_read_path")),
        ("cpus_available", Value::u64(cpus as u64)),
        ("threads", Value::u64(1)),
        ("embedding_dim", Value::u64(DIM as u64)),
        ("kernel", Value::str(serving_kernel.name())),
        ("quick", Value::Bool(quick)),
        ("train_epochs", Value::u64(epochs as u64)),
        (
            "dataset",
            Value::str(format!(
                "games-like, catalog-heavy (synthetic, {} items, scale {scale})",
                serve_cfg.n_items
            )),
        ),
        ("n_users", Value::u64(ds.n_users() as u64)),
        ("n_items", Value::u64(ds.n_items() as u64)),
        ("topk_requests", Value::u64(topk_requests as u64)),
        ("exact_topk_per_second", Value::num(exact_rps)),
        ("ann_sweep", Value::Arr(sweep)),
        (
            "ann_quant_composed",
            Value::obj([
                ("nprobe", Value::u64(composed_nprobe as u64)),
                ("topk_per_second", Value::num(composed_rps)),
                ("speedup_vs_exact", Value::num(composed_rps / exact_rps)),
                ("recall_at_20", Value::num(composed_recall)),
            ]),
        ),
        (
            "note",
            Value::str(
                "single-threaded, one client on the in-process engine — isolates the read path, not the HTTP stack; recall_at_20 is the build-time guardrail (64 sampled users vs the exact scan)",
            ),
        ),
    ]);
    let json = report.render();
    std::fs::write(&out_path, &json).expect("writing benchmark report");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
