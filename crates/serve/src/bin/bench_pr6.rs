//! PR 6 benchmark: micro-kernel GFLOP/s (naive vs blocked vs simd) and the
//! quantized serving read path vs the exact f32 scan.
//!
//! Part 1 times the three kernel modes on the shapes the training loop and
//! the server actually run — `matmul` at d=64, the `matmul_nt` scoring
//! kernel, and CSR `spmm` — single-threaded so the numbers isolate the
//! kernel itself, not the thread pool. Part 2 opens the same checkpoint
//! through an exact and a quantized engine and measures end-to-end top-20
//! throughput plus the measured recall delta of the two-stage path.
//! Emits `BENCH_PR6.json` (override with `--out PATH`).
//!
//! ```text
//! cargo run -p lrgcn-serve --release --bin bench_pr6 -- \
//!     [--scale F] [--reps N] [--topk-requests N] [--out PATH]
//! ```

use lrgcn_data::{Dataset, SplitRatios, SyntheticConfig};
use lrgcn_graph::Csr;
use lrgcn_models::{LayerGcn, LayerGcnConfig};
use lrgcn_obs::json::Value;
use lrgcn_serve::{Engine, EngineOptions, Scratch};
use lrgcn_tensor::kernels::{self, simd_available, Kernel};
use lrgcn_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// `--key value` flags; everything is optional.
fn arg(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == &format!("--{key}"))
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_parsed<T: std::str::FromStr>(key: &str, default: T) -> T {
    arg(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// splitmix64-derived pseudo-random floats in [-1, 1).
fn pseudo(n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            (z >> 40) as f32 / (1u64 << 23) as f32 - 1.0
        })
        .collect()
}

/// Best-of-`reps` wall time of `iters` calls to `f`, in seconds.
fn best_of(reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Kernels measurable on this CPU (simd only where AVX2 exists).
fn modes() -> Vec<Kernel> {
    let mut ks = vec![Kernel::Naive, Kernel::Blocked];
    if simd_available() {
        ks.push(Kernel::Simd);
    }
    ks
}

fn gflops_obj(results: &[(Kernel, f64)]) -> Value {
    Value::obj(
        results
            .iter()
            .map(|&(k, g)| (k.name(), Value::num(g)))
            .collect::<Vec<_>>(),
    )
}

fn speedup_over_naive(results: &[(Kernel, f64)], k: Kernel) -> Option<f64> {
    let naive = results.iter().find(|&&(m, _)| m == Kernel::Naive)?.1;
    let this = results.iter().find(|&&(m, _)| m == k)?.1;
    Some(this / naive)
}

fn main() {
    let scale: f64 = arg_parsed("scale", 1.0f64);
    let reps: usize = arg_parsed("reps", 5usize);
    let topk_requests: usize = arg_parsed("topk-requests", 1000usize);
    let out_path = arg("out").unwrap_or_else(|| "BENCH_PR6.json".into());
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    const DIM: usize = 64;

    // ---- Part 1: micro-kernel GFLOP/s, single thread -------------------

    // matmul: a node-block times a d×d projection, the training-loop shape.
    let (m, k, n) = (512usize, DIM, DIM);
    let a = Matrix::from_vec(m, k, pseudo(m * k, 1));
    let b = Matrix::from_vec(k, n, pseudo(k * n, 2));
    let mm_flops = (2 * m * k * n) as f64;
    let mut mm = Vec::new();
    for mode in modes() {
        kernels::set_kernel(mode);
        let secs = best_of(reps, 40, || {
            std::hint::black_box(a.matmul_with_threads(&b, 1));
        }) / 40.0;
        mm.push((mode, mm_flops / secs / 1e9));
    }

    // matmul_nt: the serving scorer — user rows against the item table.
    let (sm, sn) = (64usize, 2048usize);
    let users = Matrix::from_vec(sm, DIM, pseudo(sm * DIM, 3));
    let items = Matrix::from_vec(sn, DIM, pseudo(sn * DIM, 4));
    let nt_flops = (2 * sm * DIM * sn) as f64;
    let mut nt = Vec::new();
    for mode in modes() {
        kernels::set_kernel(mode);
        let secs = best_of(reps, 20, || {
            std::hint::black_box(users.matmul_nt_with_threads(&items, 1));
        }) / 20.0;
        nt.push((mode, nt_flops / secs / 1e9));
    }

    // spmm: a ragged synthetic adjacency, width d — the propagation kernel.
    let rows = 4000u32;
    let triplets: Vec<(u32, u32, f32)> = (0..rows * 20)
        .map(|e| {
            let r = e % rows;
            let c = (e.wrapping_mul(2654435761)) % rows;
            (r, c, 0.5 - ((e % 7) as f32) * 0.1)
        })
        .collect();
    let csr = Csr::from_coo(rows as usize, rows as usize, triplets);
    let dense = pseudo(rows as usize * DIM, 5);
    let sp_flops = (2 * csr.nnz() * DIM) as f64;
    let mut sp = Vec::new();
    for mode in modes() {
        kernels::set_kernel(mode);
        let secs = best_of(reps, 10, || {
            std::hint::black_box(csr.spmm(&dense, DIM));
        }) / 10.0;
        sp.push((mode, sp_flops / secs / 1e9));
    }
    kernels::set_kernel(Kernel::Naive);

    // ---- Part 2: exact vs quantized serving read path ------------------

    // Catalog-heavy workload: the serving scan cost is O(n_items), and real
    // catalogs dwarf the laptop-scale training presets, so the read-path
    // comparison uses a wider item space than the games preset.
    let serve_cfg = SyntheticConfig {
        n_items: 8000,
        n_interactions: 120_000,
        n_clusters: 64,
        ..SyntheticConfig::games()
    }
    .scaled(scale);
    let log = serve_cfg.generate(2023);
    let ds = Arc::new(Dataset::chronological_split(
        "games-like",
        &log,
        SplitRatios::default(),
    ));
    let cfg = LayerGcnConfig {
        embedding_dim: DIM,
        n_layers: 2,
        ..LayerGcnConfig::default()
    };
    // Read-path throughput does not depend on model quality: a random-init
    // checkpoint scans through exactly the same kernels.
    let mut rng = StdRng::seed_from_u64(2023);
    let model = LayerGcn::new(&ds, cfg, &mut rng);
    let dir = std::env::temp_dir().join("lrgcn_bench_pr6");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let ckpt = dir.join("bench.ckpt");
    model.save(&ckpt).expect("save checkpoint");
    let opts = EngineOptions {
        n_layers: 2,
        ..EngineOptions::default()
    };
    let exact = Engine::open(&ckpt, ds.clone(), opts.clone()).expect("open exact");
    let quant = Engine::open(
        &ckpt,
        ds.clone(),
        EngineOptions {
            quant: true,
            ..opts
        },
    )
    .expect("open quant");
    std::fs::remove_file(&ckpt).ok();

    // Resolve the default (best) kernel for the serving measurement.
    let serving_kernel = if simd_available() {
        Kernel::Simd
    } else {
        Kernel::Blocked
    };
    kernels::set_kernel(serving_kernel);
    let n_users = ds.n_users();
    let throughput = |eng: &Engine| {
        let st = eng.state();
        let mut scratch = Scratch::default();
        // Warm-up pass so page faults don't skew the first engine.
        for u in 0..32u32.min(n_users as u32) {
            st.top_k_into(&ds, u, 20, true, &mut scratch).expect("top_k");
        }
        let t0 = Instant::now();
        for i in 0..topk_requests {
            let u = (i % n_users) as u32;
            std::hint::black_box(
                st.top_k_into(&ds, u, 20, true, &mut scratch).expect("top_k"),
            );
        }
        topk_requests as f64 / t0.elapsed().as_secs_f64()
    };
    let exact_rps = throughput(&exact);
    let quant_rps = throughput(&quant);
    let recall = quant.state().quant_recall;
    kernels::set_kernel(Kernel::Naive);

    let report = Value::obj([
        ("bench", Value::str("pr6_kernels_and_quant_read_path")),
        ("cpus_available", Value::u64(cpus as u64)),
        ("threads", Value::u64(1)),
        ("embedding_dim", Value::u64(DIM as u64)),
        ("simd_available", Value::Bool(simd_available())),
        (
            "kernel_gflops",
            Value::obj([
                ("matmul_512x64x64", gflops_obj(&mm)),
                ("matmul_nt_64x64_x_2048x64T", gflops_obj(&nt)),
                ("spmm_4000x4000_nnz80k_w64", gflops_obj(&sp)),
            ]),
        ),
        (
            "matmul_speedup_vs_naive",
            Value::obj([
                (
                    "blocked",
                    Value::num(speedup_over_naive(&mm, Kernel::Blocked).unwrap_or(0.0)),
                ),
                (
                    "simd",
                    Value::num(speedup_over_naive(&mm, Kernel::Simd).unwrap_or(0.0)),
                ),
            ]),
        ),
        (
            "serve",
            Value::obj([
                (
                    "dataset",
                    Value::str(format!(
                        "games-like, catalog-heavy (synthetic, {} items, scale {scale})",
                        serve_cfg.n_items
                    )),
                ),
                ("n_users", Value::u64(ds.n_users() as u64)),
                ("n_items", Value::u64(ds.n_items() as u64)),
                ("kernel", Value::str(serving_kernel.name())),
                ("topk_requests", Value::u64(topk_requests as u64)),
                ("exact_topk_per_second", Value::num(exact_rps)),
                ("quant_topk_per_second", Value::num(quant_rps)),
                ("quant_speedup", Value::num(quant_rps / exact_rps)),
                ("quant_recall_at_20", Value::num(recall)),
                ("quant_recall_delta", Value::num(1.0 - recall)),
                (
                    "quant_table_bytes",
                    Value::u64(quant.state().quant_bytes() as u64),
                ),
            ]),
        ),
        (
            "note",
            Value::str(
                "kernel GFLOP/s are single-threaded best-of runs; serve throughput is one client on the in-process engine, so it isolates the read path, not the HTTP stack",
            ),
        ),
    ]);
    let json = report.render();
    std::fs::write(&out_path, &json).expect("writing benchmark report");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
