//! Micro-batching queue for `/score` requests.
//!
//! Concurrent scoring requests are coalesced: each request parks its
//! `(user, item)` pairs in a shared queue and blocks on a private reply
//! channel; a single scorer thread wakes on the queue's condvar, waits one
//! short tick so neighbours can pile in, then drains *everything* and runs
//! one coalesced scoring kernel over the concatenated pairs against one
//! engine-state snapshot. Results are split back out per request in
//! submission order.
//!
//! Because the whole batch scores against a single `Arc<EngineState>`
//! snapshot, a reload landing mid-tick cannot tear a batch: every pair in
//! it is answered from the same generation.

use crate::engine::Engine;
use lrgcn_obs::{registry, timer, Counter, Hist};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

struct Pending {
    pairs: Vec<(u32, u32)>,
    reply: mpsc::Sender<Result<Vec<f32>, String>>,
}

struct Queue {
    pending: Vec<Pending>,
    shutdown: bool,
}

/// The shared queue handle. Clone the `Arc` into every worker.
pub struct Batcher {
    queue: Mutex<Queue>,
    wake: Condvar,
    /// How long the scorer lingers after the first arrival to coalesce
    /// concurrent requests into one kernel call.
    tick: Duration,
}

impl Batcher {
    pub fn new(tick: Duration) -> Arc<Batcher> {
        Arc::new(Batcher {
            queue: Mutex::new(Queue {
                pending: Vec::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
            tick,
        })
    }

    /// Enqueues one request's pairs and blocks until the scorer answers.
    pub fn submit(&self, pairs: Vec<(u32, u32)>) -> Result<Vec<f32>, String> {
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.queue.lock().expect("batch queue poisoned");
            if q.shutdown {
                return Err("server is shutting down".into());
            }
            q.pending.push(Pending { pairs, reply: tx });
        }
        self.wake.notify_one();
        rx.recv().map_err(|_| "scorer thread gone".to_string())?
    }

    /// Wakes the scorer for the last time; queued requests still drain.
    pub fn shutdown(&self) {
        self.queue.lock().expect("batch queue poisoned").shutdown = true;
        self.wake.notify_all();
    }

    /// The scorer loop. Runs until [`Batcher::shutdown`] *and* the queue is
    /// empty, so no accepted request is ever dropped.
    pub fn run_scorer(self: &Arc<Self>, engine: Arc<Engine>) {
        loop {
            let batch = {
                let mut q = self.queue.lock().expect("batch queue poisoned");
                while q.pending.is_empty() && !q.shutdown {
                    q = self
                        .wake
                        .wait(q)
                        .expect("batch queue poisoned");
                }
                if q.pending.is_empty() {
                    return; // shutdown with a drained queue
                }
                // Linger one tick so concurrent submitters join this batch.
                if !q.shutdown && !self.tick.is_zero() {
                    let (nq, _) = self
                        .wake
                        .wait_timeout(q, self.tick)
                        .expect("batch queue poisoned");
                    q = nq;
                }
                std::mem::take(&mut q.pending)
            };
            self.score_batch(&engine, batch);
        }
    }

    fn score_batch(&self, engine: &Arc<Engine>, batch: Vec<Pending>) {
        let _t = timer::scoped(Hist::ServeScoreBatch);
        let _span = lrgcn_obs::trace::span("serve_score_batch", "serve");
        let all: Vec<(u32, u32)> = batch.iter().flat_map(|p| p.pairs.iter().copied()).collect();
        registry::add(Counter::ServeScoreBatches, 1);
        registry::add(Counter::ServeScorePairs, all.len() as u64);
        // One snapshot, one kernel call for the whole tick.
        let state = engine.state();
        match state.score_pairs(&all) {
            Ok(scores) => {
                let mut off = 0;
                for p in batch {
                    let n = p.pairs.len();
                    let _ = p.reply.send(Ok(scores[off..off + n].to_vec()));
                    off += n;
                }
            }
            Err(_) => {
                // One bad id poisons only the requests that contain bad
                // ids; well-formed neighbours are re-scored individually.
                for p in batch {
                    let _ = p.reply.send(state.score_pairs(&p.pairs));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use lrgcn_data::Dataset;
    use lrgcn_models::checkpoint::save_model;
    use lrgcn_models::{LightGcn, LightGcnConfig, Recommender};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine() -> Arc<Engine> {
        let ds = Arc::new(Dataset::from_parts(
            "tiny",
            3,
            4,
            vec![(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 3)],
            vec![vec![]; 3],
            vec![vec![2], vec![3], vec![0]],
        ));
        let dir = std::env::temp_dir().join("lrgcn_batch_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("m.ckpt");
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = LightGcn::new(
            &ds,
            LightGcnConfig {
                embedding_dim: 4,
                n_layers: 1,
                ..LightGcnConfig::default()
            },
            &mut rng,
        );
        m.train_epoch(&ds, 0, &mut rng);
        save_model(&ckpt, "lightgcn", &m).expect("save");
        Arc::new(
            Engine::open(&ckpt, ds, EngineOptions {
                n_layers: 1,
                ..EngineOptions::default()
            })
            .expect("open"),
        )
    }

    #[test]
    fn concurrent_submissions_coalesce_and_all_answer() {
        let eng = engine();
        let batcher = Batcher::new(Duration::from_millis(2));
        let scorer = {
            let b = batcher.clone();
            let e = eng.clone();
            std::thread::spawn(move || b.run_scorer(e))
        };
        let expect = eng.state().score_pairs(&[(0, 0), (1, 2), (2, 3)]).unwrap();

        let before = lrgcn_obs::registry::get(Counter::ServeScorePairs);
        let handles: Vec<_> = [(0u32, 0u32), (1, 2), (2, 3)]
            .into_iter()
            .map(|pair| {
                let b = batcher.clone();
                std::thread::spawn(move || b.submit(vec![pair]).expect("scored"))
            })
            .collect();
        let got: Vec<f32> = handles
            .into_iter()
            .map(|h| h.join().expect("join")[0])
            .collect();
        assert_eq!(got, expect);
        assert_eq!(
            lrgcn_obs::registry::get(Counter::ServeScorePairs) - before,
            3
        );

        batcher.shutdown();
        scorer.join().expect("scorer joins");
        assert!(batcher.submit(vec![(0, 0)]).is_err(), "post-shutdown submit");
    }

    #[test]
    fn bad_ids_fail_their_request_without_poisoning_neighbours() {
        let eng = engine();
        let batcher = Batcher::new(Duration::from_millis(5));
        let scorer = {
            let b = batcher.clone();
            let e = eng.clone();
            std::thread::spawn(move || b.run_scorer(e))
        };
        let good = {
            let b = batcher.clone();
            std::thread::spawn(move || b.submit(vec![(0, 1)]))
        };
        let bad = {
            let b = batcher.clone();
            std::thread::spawn(move || b.submit(vec![(99, 0)]))
        };
        assert!(good.join().expect("join").is_ok());
        assert!(bad.join().expect("join").is_err());
        batcher.shutdown();
        scorer.join().expect("scorer joins");
    }
}
