//! The epoch-free streaming delta: what the server has folded in on top of
//! the immutable [`crate::engine::EngineState`] it was built from.
//!
//! A delta is an immutable value — the ingest path builds the next version
//! by cloning and extending the current one under the server's ingest lock
//! (see `EngineState::apply_events`), then swaps the `Arc`. Readers clone
//! the `Arc` once per request, so a request always sees one consistent
//! (state, delta) pair and fold-ins never block the read path.
//!
//! Every collection is a `BTreeMap`/sorted `Vec`, so iteration order — and
//! therefore every merged top-K list — is a deterministic function of the
//! event sequence, independent of hash seeds or thread count.

use std::collections::BTreeMap;

/// Folded-in interactions and the serving rows they synthesize.
/// Constructed only through `EngineState::apply_events`; the fold-in math
/// lives in `lrgcn_models::foldin` (DESIGN.md §13).
#[derive(Clone, Debug, Default)]
pub struct StreamDelta {
    /// Monotone per-state fold-in counter; part of every cache key.
    pub(crate) version: u64,
    /// Log events this delta has consumed (including duplicates of
    /// training edges, so `covered + events_applied` tracks the log
    /// position exactly).
    pub(crate) events_applied: u64,
    /// Per-user folded-in items (sorted; may include ids past the trained
    /// catalog). Feeds `exclude_seen` masking and the fold-in updates.
    pub(crate) user_items: BTreeMap<u32, Vec<u32>>,
    /// Served readout rows for users with folded-in events: synthesized
    /// for unseen users, first-order-updated for trained ones. Absent when
    /// the model has no fold-in basis (events are logged but rows are not
    /// synthesized).
    pub(crate) user_rows: BTreeMap<u32, Vec<f32>>,
    /// Per-new-item user lists (item ids at or past the trained catalog).
    pub(crate) item_users: BTreeMap<u32, Vec<u32>>,
    /// Synthesized rows for new items, served as extra top-K candidates.
    pub(crate) item_rows: BTreeMap<u32, Vec<f32>>,
}

const NO_ITEMS: &[u32] = &[];

impl StreamDelta {
    /// Monotone fold-in version (0 = nothing folded in).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Log events consumed by this delta (beyond the state's covered
    /// prefix).
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    pub fn is_empty(&self) -> bool {
        self.user_items.is_empty() && self.item_users.is_empty()
    }

    /// Users with at least one folded-in interaction.
    pub fn touched_users(&self) -> usize {
        self.user_items.len()
    }

    /// Items unseen at training time that arrived through the stream.
    pub fn new_items(&self) -> usize {
        self.item_users.len()
    }

    /// The served readout row for `user`, if fold-in synthesized one.
    pub fn user_row(&self, user: u32) -> Option<&[f32]> {
        self.user_rows.get(&user).map(Vec::as_slice)
    }

    /// Sorted folded-in items of `user` (empty when untouched).
    pub fn user_items(&self, user: u32) -> &[u32] {
        self.user_items.get(&user).map_or(NO_ITEMS, Vec::as_slice)
    }

    /// Synthesized `(item, row)` pairs for new items, ascending by id.
    pub(crate) fn item_rows(&self) -> impl Iterator<Item = (u32, &[f32])> {
        self.item_rows.iter().map(|(&i, r)| (i, r.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_delta_answers_defaults() {
        let d = StreamDelta::default();
        assert_eq!(d.version(), 0);
        assert_eq!(d.events_applied(), 0);
        assert!(d.is_empty());
        assert_eq!(d.touched_users(), 0);
        assert_eq!(d.new_items(), 0);
        assert!(d.user_row(3).is_none());
        assert!(d.user_items(3).is_empty());
        assert_eq!(d.item_rows().count(), 0);
    }
}
