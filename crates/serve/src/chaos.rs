//! Deterministic socket-level chaos for the serving front-end.
//!
//! Extends the `LRGCN_FAULT` vocabulary (see `lrgcn_tensor::faultfs` for
//! the IO half) to *connection* faults, injected from the client side of a
//! live server socket:
//!
//! ```text
//! abort:<p>      write half the request bytes, then close the connection
//! slowloris:<p>  trickle a request prefix, stall, then hang up
//! torn:<p>       valid head + Content-Length, but a truncated body
//! garbage:<p>    seeded random bytes instead of HTTP
//! ```
//!
//! Clauses are checked in spec order; the first that fires wins, drawing
//! from the same splitmix64 `(seed, clause, op)` scheme as the IO plans,
//! so a given spec + seed injects the same faults on the same connections
//! every run — a chaos soak that fails is replayable byte for byte.
//!
//! [`ChaosClient`] drives one connection per call against a real server:
//! either a clean request (status + headers parsed back) or the planned
//! fault. The adversarial framing tests and the `bench_pr10` overload
//! bench share it, so "the server survives hostile sockets" is exercised
//! by the same code in both places. See DESIGN.md §14.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One kind of injected connection fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnFault {
    /// Close after writing only half of an otherwise valid request.
    AbortMidWrite,
    /// Trickle a few header bytes, stall past any reasonable pace, close.
    SlowLoris,
    /// Send a complete head advertising a body, then only part of the body.
    TornFrame,
    /// Send bytes that were never HTTP.
    Garbage,
}

impl ConnFault {
    fn parse(kind: &str) -> Option<ConnFault> {
        Some(match kind {
            "abort" => ConnFault::AbortMidWrite,
            "slowloris" => ConnFault::SlowLoris,
            "torn" => ConnFault::TornFrame,
            "garbage" => ConnFault::Garbage,
            _ => return None,
        })
    }
}

/// A parsed connection-fault spec plus its draw seed.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    clauses: Vec<(ConnFault, f64)>,
    seed: u64,
}

/// splitmix64-finalized uniform draw in `[0,1)` — identical scheme to
/// `lrgcn_tensor::faultfs` so the two fault families compose predictably.
fn unit(seed: u64, stream: u64, op: u64) -> f64 {
    let mut z = seed
        ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ op.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    /// Parses a spec like `abort:0.1,garbage:0.05`. Unknown clauses and
    /// out-of-range probabilities are errors — a chaos plan that silently
    /// does nothing would make the soak vacuous.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let mut clauses = Vec::new();
        for raw in spec.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let (kind, arg) = raw
                .split_once(':')
                .ok_or_else(|| format!("clause {raw:?} missing ':<p>'"))?;
            let fault = ConnFault::parse(kind)
                .ok_or_else(|| format!("unknown connection fault {raw:?}"))?;
            let p: f64 = arg
                .parse()
                .map_err(|_| format!("clause {raw:?}: bad probability {arg:?}"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("clause {raw:?}: probability {p} out of [0,1]"));
            }
            clauses.push((fault, p));
        }
        Ok(FaultPlan { clauses, seed })
    }

    /// The fault (if any) planned for the `op`-th connection (1-based).
    /// First clause whose draw fires wins, matching the IO fault planner.
    pub fn decide(&self, op: u64) -> Option<ConnFault> {
        self.clauses
            .iter()
            .enumerate()
            .find(|(i, (_, p))| unit(self.seed, *i as u64, op) < *p)
            .map(|(_, (f, _))| *f)
    }
}

/// A parsed clean-request outcome: status line plus the two headers the
/// overload contract is pinned on.
#[derive(Clone, Debug)]
pub struct ChaosResponse {
    pub status: u16,
    /// The `Retry-After` header was present (every 503 must carry it).
    pub retry_after: bool,
    pub body: String,
}

/// What one [`ChaosClient`] connection did.
#[derive(Debug)]
pub enum Outcome {
    /// Clean request, complete response parsed back.
    Answered(ChaosResponse),
    /// The planned fault was injected; the server owes us nothing.
    Faulted(ConnFault),
    /// A *clean* request failed at the transport layer — under an
    /// overload-control contract this is the outcome that must not
    /// happen: rejects are 503s, never resets.
    TransportError(String),
}

/// Issues one complete request and parses the response. Standalone so
/// tests and the bench share one definition of "a well-behaved client".
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
) -> Result<ChaosResponse, String> {
    let mut stream =
        TcpStream::connect_timeout(&addr, timeout).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|_| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| format!("timeout: {e}"))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: chaos\r\n");
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream
        .write_all(head.as_bytes())
        .and_then(|_| stream.write_all(body))
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("unparsable response {:?}", &text[..text.len().min(80)]))?;
    let (head, body) = text.split_once("\r\n\r\n").unwrap_or((&text, ""));
    let retry_after = head
        .lines()
        .any(|l| l.to_ascii_lowercase().starts_with("retry-after:"));
    Ok(ChaosResponse {
        status,
        retry_after,
        body: body.to_string(),
    })
}

/// A client that interleaves clean requests with planned connection
/// faults, one connection per call, deterministic under (plan, seed).
pub struct ChaosClient {
    addr: SocketAddr,
    plan: FaultPlan,
    /// Connections attempted so far (the fault-plan op counter).
    ops: u64,
    /// How long a slow-loris connection stalls before hanging up. Short
    /// in tests; the server's own socket timeout is what's under test,
    /// not ours.
    pub slow_hold: Duration,
    /// Clean-request timeout.
    pub timeout: Duration,
}

impl ChaosClient {
    pub fn new(addr: SocketAddr, plan: FaultPlan) -> Self {
        Self {
            addr,
            plan,
            ops: 0,
            slow_hold: Duration::from_millis(50),
            timeout: Duration::from_secs(10),
        }
    }

    /// Runs the next planned connection as a GET of `path`: either the
    /// clean request or the fault the plan scheduled for this op.
    pub fn get(&mut self, path: &str) -> Outcome {
        self.ops += 1;
        match self.plan.decide(self.ops) {
            None => match request(self.addr, "GET", path, &[], b"", self.timeout) {
                Ok(resp) => Outcome::Answered(resp),
                Err(e) => Outcome::TransportError(e),
            },
            Some(fault) => {
                self.inject(fault, path);
                Outcome::Faulted(fault)
            }
        }
    }

    /// Opens one connection and misbehaves per `fault`. Errors are
    /// swallowed: a hostile client that itself hits a reset has still
    /// delivered its hostility.
    fn inject(&self, fault: ConnFault, path: &str) {
        let Ok(mut stream) = TcpStream::connect_timeout(&self.addr, self.timeout) else {
            return;
        };
        let _ = stream.set_write_timeout(Some(self.timeout));
        let _ = stream.set_read_timeout(Some(self.slow_hold));
        match fault {
            ConnFault::AbortMidWrite => {
                let full = format!("GET {path} HTTP/1.1\r\nHost: chaos\r\nX-Chaos: abort\r\n\r\n");
                let half = &full.as_bytes()[..full.len() / 2];
                let _ = stream.write_all(half);
                // Drop without the terminating CRLFCRLF: the server sees
                // EOF mid-head.
            }
            ConnFault::SlowLoris => {
                for byte in format!("GET {path} HT").bytes() {
                    if stream.write_all(&[byte]).is_err() {
                        return;
                    }
                    std::thread::sleep(self.slow_hold / 12);
                }
                std::thread::sleep(self.slow_hold);
            }
            ConnFault::TornFrame => {
                let head =
                    "POST /score HTTP/1.1\r\nHost: chaos\r\nContent-Length: 64\r\n\r\n".to_string();
                let _ = stream.write_all(head.as_bytes());
                let _ = stream.write_all(b"{\"pairs\": [[1,");
                // EOF with 50 advertised bytes missing.
            }
            ConnFault::Garbage => {
                // Seeded bytes that never were HTTP; deterministic per op.
                let mut bytes = [0u8; 256];
                for (i, b) in bytes.iter_mut().enumerate() {
                    *b = (unit(self.plan.seed, 0xBAD, self.ops * 256 + i as u64) * 256.0) as u8;
                }
                let _ = stream.write_all(&bytes);
                // Read whatever the server answers (a 400) so the write
                // isn't racing the server's reject.
                let mut sink = [0u8; 512];
                let _ = stream.read(&mut sink);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::read_request;
    use std::net::TcpListener;

    #[test]
    fn parses_and_rejects_specs() {
        let plan = FaultPlan::parse("abort:0.25, slowloris:0.1,torn:0.5,garbage:1.0", 7)
            .expect("valid spec");
        assert_eq!(plan.clauses.len(), 4);
        assert!(FaultPlan::parse("", 0).expect("empty ok").clauses.is_empty());
        for bad in ["abort", "abort:2.0", "abort:x", "ddos:0.1"] {
            assert!(FaultPlan::parse(bad, 0).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn decisions_are_deterministic_and_respect_probability() {
        let plan = FaultPlan::parse("garbage:0.3", 42).unwrap();
        let hits: Vec<Option<ConnFault>> = (1..=10_000).map(|op| plan.decide(op)).collect();
        let again: Vec<Option<ConnFault>> = (1..=10_000).map(|op| plan.decide(op)).collect();
        assert_eq!(hits, again, "same plan + op must decide identically");
        let frac = hits.iter().filter(|h| h.is_some()).count() as f64 / hits.len() as f64;
        assert!((frac - 0.3).abs() < 0.02, "hit fraction {frac}");
        // All-on plans fire every op; all-off plans never do.
        let always = FaultPlan::parse("abort:1.0", 1).unwrap();
        let never = FaultPlan::parse("abort:0.0", 1).unwrap();
        for op in 1..=50 {
            assert_eq!(always.decide(op), Some(ConnFault::AbortMidWrite));
            assert_eq!(never.decide(op), None);
        }
    }

    /// Every fault lands on the real parser as a clean `HttpError`, never
    /// a panic — the unit-level half of the adversarial framing contract
    /// (the live-server half is `tests/chaos.rs`).
    #[test]
    fn every_fault_is_a_clean_parse_error_on_the_server_side() {
        for (spec, fault) in [
            ("abort:1.0", ConnFault::AbortMidWrite),
            ("slowloris:1.0", ConnFault::SlowLoris),
            ("torn:1.0", ConnFault::TornFrame),
            ("garbage:1.0", ConnFault::Garbage),
        ] {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let plan = FaultPlan::parse(spec, 9).unwrap();
            let client = std::thread::spawn(move || {
                let mut c = ChaosClient::new(addr, plan);
                c.slow_hold = Duration::from_millis(10);
                match c.get("/healthz") {
                    Outcome::Faulted(f) => f,
                    other => panic!("expected a fault, got {other:?}"),
                }
            });
            let (mut stream, _) = listener.accept().unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(2)))
                .unwrap();
            let err = read_request(&mut stream)
                .expect_err(&format!("{fault:?} must not parse as a request"));
            assert!(
                err.status == 400 || err.status == 431,
                "{fault:?} mapped to {}",
                err.status
            );
            assert_eq!(client.join().unwrap(), fault);
        }
    }

    #[test]
    fn clean_requests_round_trip_through_the_helper() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).expect("clean request parses");
            crate::http::write_response(
                &mut stream,
                503,
                "application/json",
                &[("retry-after", "1")],
                b"{}",
            )
            .unwrap();
            req
        });
        let resp = request(
            addr,
            "GET",
            "/recs/1",
            &[("x-lrgcn-deadline-ms", "250")],
            b"",
            Duration::from_secs(5),
        )
        .expect("round trip");
        assert_eq!(resp.status, 503);
        assert!(resp.retry_after, "retry-after header must be detected");
        let req = server.join().unwrap();
        assert_eq!(req.header("x-lrgcn-deadline-ms"), Some("250"));
    }
}
