//! Property-based tests for the sparse-graph substrate: CSR invariants,
//! kernel correctness against dense references, sampling laws and WL
//! permutation invariance.

#![cfg(feature = "property-tests")]
// Gated off by default: `proptest` cannot be fetched in the offline
// build environment. Re-add the dev-dependency and pass
// `--features property-tests` to run these.
use lrgcn_graph::csr::Csr;
use lrgcn_graph::dropout::{sample_uniform, sample_weighted_without_replacement};
use lrgcn_graph::wl::{wl_colors, wl_distinguishes};
use lrgcn_graph::{BipartiteGraph, EdgePruner};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random COO triplets within a bounded shape.
fn coo_strategy() -> impl Strategy<Value = (usize, usize, Vec<(u32, u32, f32)>)> {
    (1usize..8, 1usize..8).prop_flat_map(|(r, c)| {
        let triplets = proptest::collection::vec(
            (0..r as u32, 0..c as u32, -2.0f32..2.0),
            0..24,
        );
        (Just(r), Just(c), triplets)
    })
}

fn dense_of(triplets: &[(u32, u32, f32)], rows: usize, cols: usize) -> Vec<f32> {
    let mut d = vec![0.0f32; rows * cols];
    for &(r, c, v) in triplets {
        d[r as usize * cols + c as usize] += v;
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// from_coo sums duplicates exactly like a dense accumulation.
    #[test]
    fn csr_matches_dense_reference((rows, cols, triplets) in coo_strategy()) {
        let m = Csr::from_coo(rows, cols, triplets.clone());
        prop_assert!(m.validate().is_ok());
        let dense = dense_of(&triplets, rows, cols);
        let got = m.to_dense();
        for (a, b) in got.iter().zip(&dense) {
            prop_assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    /// transpose is an involution and preserves nnz.
    #[test]
    fn transpose_involution((rows, cols, triplets) in coo_strategy()) {
        let m = Csr::from_coo(rows, cols, triplets);
        let t = m.transpose();
        prop_assert_eq!(t.nnz(), m.nnz());
        prop_assert_eq!(t.transpose(), m);
    }

    /// spmm agrees with the dense matmul reference.
    #[test]
    fn spmm_matches_dense(
        (rows, cols, triplets) in coo_strategy(),
        width in 1usize..4,
        xvals in proptest::collection::vec(-2.0f32..2.0, 32),
    ) {
        let m = Csr::from_coo(rows, cols, triplets.clone());
        let x: Vec<f32> = (0..cols * width).map(|i| xvals[i % xvals.len()]).collect();
        let y = m.spmm(&x, width);
        let dense = dense_of(&triplets, rows, cols);
        for r in 0..rows {
            for w in 0..width {
                let expect: f32 = (0..cols)
                    .map(|c| dense[r * cols + c] * x[c * width + w])
                    .sum();
                prop_assert!((y[r * width + w] - expect).abs() < 1e-3);
            }
        }
    }

    /// SpGEMM agrees with the dense matmul reference.
    #[test]
    fn spgemm_matches_dense(
        (rows, inner, ta) in (1usize..6, 1usize..6).prop_flat_map(|(r, c)| {
            (Just(r), Just(c), proptest::collection::vec((0..r as u32, 0..c as u32, -2.0f32..2.0), 0..16))
        }).prop_map(|(r, c, t)| (r, c, t)),
        (cols, tb_raw) in (1usize..6).prop_flat_map(|c| {
            (Just(c), proptest::collection::vec((0u32..6, 0..c as u32, -2.0f32..2.0), 0..16))
        }),
    ) {
        let a = Csr::from_coo(rows, inner, ta.clone());
        let tb: Vec<(u32, u32, f32)> = tb_raw
            .into_iter()
            .map(|(r, c, v)| (r % inner as u32, c, v))
            .collect();
        let b = Csr::from_coo(inner, cols, tb.clone());
        let c = a.matmul_sparse(&b);
        prop_assert!(c.validate().is_ok());
        let da = dense_of(&ta, rows, inner);
        let db = dense_of(&tb, inner, cols);
        for r in 0..rows {
            for j in 0..cols {
                let expect: f32 = (0..inner).map(|k| da[r * inner + k] * db[k * cols + j]).sum();
                prop_assert!((c.get(r, j as u32) - expect).abs() < 1e-3);
            }
        }
    }

    /// Row sums of the transpose equal column sums of the original.
    #[test]
    fn row_col_sum_duality((rows, cols, triplets) in coo_strategy()) {
        let m = Csr::from_coo(rows, cols, triplets);
        let a = m.col_sums();
        let b = m.transpose().row_sums();
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Symmetric normalization of a bipartite adjacency: every entry equals
    /// 1/sqrt(d_u d_i) and symmetry is preserved.
    #[test]
    fn bipartite_normalization_formula(
        edges in proptest::collection::vec((0u32..6, 0u32..6), 1..20),
    ) {
        let g = BipartiteGraph::new(6, 6, edges);
        let n = g.norm_adjacency();
        prop_assert!(n.is_symmetric(1e-6));
        let ud = g.user_degrees();
        let id = g.item_degrees();
        for &(u, i) in g.edges() {
            let expect = 1.0 / ((ud[u as usize] as f32).sqrt() * (id[i as usize] as f32).sqrt());
            let got = n.get(u as usize, g.item_node(i));
            prop_assert!((got - expect).abs() < 1e-5, "edge ({u},{i}): {got} vs {expect}");
        }
    }

    /// Uniform sampling returns exactly k distinct in-range sorted indices.
    #[test]
    fn uniform_sample_contract(n in 1usize..200, kfrac in 0.0f64..1.0, seed in 0u64..1000) {
        let k = ((n as f64) * kfrac) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let s = sample_uniform(n, k, &mut rng);
        prop_assert_eq!(s.len(), k);
        prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(s.iter().all(|&i| i < n));
    }

    /// Weighted sampling: same contract, any positive weights.
    #[test]
    fn weighted_sample_contract(
        weights in proptest::collection::vec(0.01f64..100.0, 1..100),
        kfrac in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let k = ((weights.len() as f64) * kfrac) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let s = sample_weighted_without_replacement(&weights, k, &mut rng);
        prop_assert_eq!(s.len(), k);
        prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(s.iter().all(|&i| i < weights.len()));
    }

    /// Edge pruners keep the requested number of edges, all real.
    #[test]
    fn pruner_keeps_requested_count(
        edges in proptest::collection::vec((0u32..10, 0u32..10), 4..40),
        ratio in 0.05f32..0.9,
        seed in 0u64..100,
    ) {
        let g = BipartiteGraph::new(10, 10, edges);
        let m = g.n_edges();
        for pruner in [EdgePruner::DegreeDrop { ratio }, EdgePruner::DropEdge { ratio }] {
            let mut rng = StdRng::seed_from_u64(seed);
            let kept = pruner.sample_edges(&g, 0, &mut rng).expect("pruned");
            let expected = m - ((m as f64 * ratio as f64).round() as usize).min(m - 1);
            prop_assert_eq!(kept.len(), expected);
            for e in &kept {
                prop_assert!(g.edges().contains(e));
            }
            // Kept edges are distinct.
            let mut k2 = kept.clone();
            k2.sort_unstable();
            k2.dedup();
            prop_assert_eq!(k2.len(), kept.len());
        }
    }

    /// WL colors are invariant under node relabeling (isomorphism).
    #[test]
    fn wl_permutation_invariance(
        edges in proptest::collection::vec((0u32..7, 0u32..7), 1..15),
        perm_seed in 0u64..50,
    ) {
        let n = 7usize;
        let sym: Vec<(u32, u32, f32)> = edges
            .iter()
            .filter(|(a, b)| a != b)
            .flat_map(|&(a, b)| [(a, b, 1.0), (b, a, 1.0)])
            .collect();
        if sym.is_empty() {
            return Ok(());
        }
        let g1 = Csr::from_coo(n, n, sym.clone());
        // Random permutation of node ids.
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut rng = StdRng::seed_from_u64(perm_seed);
        for i in (1..n).rev() {
            use rand::RngExt;
            let j = rng.random_range(0..=i);
            perm.swap(i, j);
        }
        let g2 = Csr::from_coo(
            n,
            n,
            sym.iter().map(|&(a, b, v)| (perm[a as usize], perm[b as usize], v)),
        );
        prop_assert!(!wl_distinguishes(&g1, &g2, 6), "isomorphic graphs distinguished");
        // Color class sizes must match too.
        let mut h1: Vec<u64> = wl_colors(&g1, 6);
        let mut h2: Vec<u64> = wl_colors(&g2, 6);
        h1.sort_unstable();
        h2.sort_unstable();
        let classes = |h: &[u64]| {
            let mut counts = std::collections::HashMap::new();
            for &c in h {
                *counts.entry(c).or_insert(0usize) += 1;
            }
            let mut v: Vec<usize> = counts.into_values().collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(classes(&h1), classes(&h2));
    }
}
