//! # lrgcn-graph — sparse graph substrate for the LayerGCN reproduction
//!
//! This crate owns everything graph-shaped that the LayerGCN paper (Zhou et
//! al., ICDE 2023) relies on:
//!
//! * [`csr::Csr`] — a compressed-sparse-row `f32` matrix with the propagation
//!   kernel `Â·X` ([`csr::Csr::spmm_into`]) that every GCN layer runs on;
//! * [`kernels`] — the naive / cache-blocked / AVX2 implementations of that
//!   propagation kernel plus the global `LRGCN_KERNEL` mode selection that
//!   the dense kernels in `lrgcn-tensor` also dispatch through;
//! * [`bipartite::BipartiteGraph`] — the user–item interaction graph, its
//!   block adjacency (Eq. 4) and the symmetric normalization
//!   `D^{-1/2} A D^{-1/2}` used by LightGCN and LayerGCN;
//! * [`dropout::EdgePruner`] — the paper's degree-sensitive edge dropout
//!   (DegreeDrop, Eq. 5), the uniform DropEdge baseline, and their Mixed
//!   alternation (§V-C3);
//! * [`components`] — union-find component analysis (the Fig. 7 commentary
//!   on pruning-induced graph splits);
//! * [`khop`] — receptive-field saturation analysis (the structural root
//!   of over-smoothing at depth);
//! * [`wl`] — 1-WL color refinement backing Proposition 1's expressiveness
//!   claim.
//!
//! The crate has no opinion about embeddings or training; those live in
//! `lrgcn-tensor` and `lrgcn-models`.

pub mod bipartite;
pub mod components;
pub mod csr;
pub mod dropout;
pub mod kernels;
pub mod khop;
pub mod wl;

pub use bipartite::{BipartiteGraph, NodeKind};
pub use components::{component_stats, ComponentStats, UnionFind};
pub use csr::Csr;
pub use dropout::EdgePruner;
pub use kernels::Kernel;
