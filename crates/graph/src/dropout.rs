//! Edge-pruning mechanisms (§III-B1 of the paper).
//!
//! * [`EdgePruner::DegreeDrop`] — the paper's degree-sensitive pruning: edge
//!   `e = (i, j)` is *kept* with probability proportional to
//!   `p_e = 1 / (sqrt(d_i) * sqrt(d_j))` (Eq. 5), so edges between two
//!   high-degree ("popular") nodes are the most likely to be removed.
//! * [`EdgePruner::DropEdge`] — the uniform baseline of Rong et al. (ICLR'20).
//! * [`EdgePruner::Mixed`] — alternates DegreeDrop and DropEdge across epochs
//!   (§V-C3).
//!
//! The paper samples `M - m` surviving edges from a multinomial distribution
//! parameterized by the keep probabilities. We implement the equivalent
//! weighted sampling **without replacement** with the Efraimidis–Spirakis
//! exponential-key one-pass algorithm: draw `u ~ U(0,1)` per edge, rank by
//! `ln(u) / w`, keep the `M - m` largest keys. This is distributionally
//! identical to sequential probability-proportional-to-size draws and costs
//! `O(M log M)` regardless of the weight skew.
//!
//! Pruned graphs are re-sampled every epoch during training; inference always
//! uses the full normalized adjacency (§III-B1).

use crate::bipartite::BipartiteGraph;
use crate::csr::Csr;
use rand::{Rng, RngExt};

/// An edge-pruning policy applied to the training graph each epoch.
///
/// ```
/// use lrgcn_graph::{BipartiteGraph, EdgePruner};
/// use rand::SeedableRng;
/// let g = BipartiteGraph::new(4, 4, (0..4).flat_map(|u| [(u, u), (u, (u + 1) % 4)]));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let kept = EdgePruner::DegreeDrop { ratio: 0.25 }
///     .sample_edges(&g, /*epoch*/ 0, &mut rng)
///     .unwrap();
/// assert_eq!(kept.len(), 6); // 8 edges - 25%
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EdgePruner {
    /// Keep every edge (the "LayerGCN w/o Dropout" variant of Table II).
    None,
    /// Degree-sensitive pruning with keep weight `1/sqrt(d_i d_j)` (Eq. 5).
    DegreeDrop {
        /// Fraction of edges removed, `m / M` in the paper; must be in `[0, 1)`.
        ratio: f32,
    },
    /// Uniform pruning (DropEdge baseline).
    DropEdge {
        /// Fraction of edges removed; must be in `[0, 1)`.
        ratio: f32,
    },
    /// DegreeDrop on even epochs, DropEdge on odd epochs (§V-C3).
    Mixed {
        /// Fraction of edges removed; must be in `[0, 1)`.
        ratio: f32,
    },
}

impl EdgePruner {
    /// The dropout ratio of the policy (0 for [`EdgePruner::None`]).
    pub fn ratio(&self) -> f32 {
        match *self {
            EdgePruner::None => 0.0,
            EdgePruner::DegreeDrop { ratio }
            | EdgePruner::DropEdge { ratio }
            | EdgePruner::Mixed { ratio } => ratio,
        }
    }

    /// Validates the ratio; `[0, 1)` is required so at least one edge can
    /// survive.
    pub fn validate(&self) -> Result<(), String> {
        let r = self.ratio();
        if !(0.0..1.0).contains(&r) {
            return Err(format!("edge dropout ratio {r} must be in [0, 1)"));
        }
        Ok(())
    }

    /// Human-readable name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            EdgePruner::None => "None",
            EdgePruner::DegreeDrop { .. } => "DegreeDrop",
            EdgePruner::DropEdge { .. } => "DropEdge",
            EdgePruner::Mixed { .. } => "Mixed",
        }
    }

    /// Samples the edges surviving this epoch, or `None` when the policy
    /// keeps the graph intact (no pruning, or ratio 0).
    pub fn sample_edges<R: Rng + ?Sized>(
        &self,
        graph: &BipartiteGraph,
        epoch: usize,
        rng: &mut R,
    ) -> Option<Vec<(u32, u32)>> {
        let ratio = self.ratio();
        if matches!(self, EdgePruner::None) || ratio <= 0.0 {
            return None;
        }
        debug_assert!(self.validate().is_ok());
        lrgcn_obs::registry::add(lrgcn_obs::Counter::DropoutSamples, 1);
        let _t = lrgcn_obs::timer::scoped(lrgcn_obs::Hist::DropoutSample);
        let _span = lrgcn_obs::trace::span("dropout_sample", "kernel");
        let m_total = graph.n_edges();
        let keep = m_total - ((m_total as f64 * ratio as f64).round() as usize).min(m_total - 1);
        let effective = match self {
            EdgePruner::Mixed { ratio } => {
                if epoch.is_multiple_of(2) {
                    EdgePruner::DegreeDrop { ratio: *ratio }
                } else {
                    EdgePruner::DropEdge { ratio: *ratio }
                }
            }
            other => *other,
        };
        let kept_idx = match effective {
            EdgePruner::DropEdge { .. } => sample_uniform(m_total, keep, rng),
            EdgePruner::DegreeDrop { .. } => {
                let w = degree_keep_weights(graph);
                sample_weighted_without_replacement(&w, keep, rng)
            }
            _ => unreachable!("effective pruner is always DegreeDrop or DropEdge"),
        };
        let edges = graph.edges();
        lrgcn_obs::registry::add(lrgcn_obs::Counter::DropoutEdgesKept, kept_idx.len() as u64);
        Some(kept_idx.into_iter().map(|k| edges[k]).collect())
    }

    /// The normalized adjacency `Â_p` to use for propagation this epoch:
    /// either the pruned re-normalized matrix or the full one.
    pub fn pruned_norm_adjacency<R: Rng + ?Sized>(
        &self,
        graph: &BipartiteGraph,
        epoch: usize,
        rng: &mut R,
    ) -> Csr {
        match self.sample_edges(graph, epoch, rng) {
            Some(edges) => graph.norm_adjacency_of_edges(&edges),
            None => graph.norm_adjacency(),
        }
    }
}

/// The unnormalized keep weights of Eq. 5: `p_e = 1 / sqrt(d_i * d_j)` for
/// edge `e = (i, j)`, with degrees taken in the full training graph.
pub fn degree_keep_weights(graph: &BipartiteGraph) -> Vec<f64> {
    let ud = graph.user_degrees();
    let id = graph.item_degrees();
    graph
        .edges()
        .iter()
        .map(|&(u, i)| {
            let du = ud[u as usize].max(1) as f64;
            let di = id[i as usize].max(1) as f64;
            1.0 / (du.sqrt() * di.sqrt())
        })
        .collect()
}

/// Uniformly samples `k` distinct indices out of `0..n` (Fisher–Yates on a
/// prefix), returned in increasing order.
pub fn sample_uniform<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} of {n}");
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.random_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

/// Weighted sampling without replacement (Efraimidis–Spirakis): returns the
/// indices of `k` items drawn with probability proportional to `weights`,
/// in increasing index order.
///
/// # Panics
/// Panics if `k > weights.len()` or any weight is non-positive/non-finite.
pub fn sample_weighted_without_replacement<R: Rng + ?Sized>(
    weights: &[f64],
    k: usize,
    rng: &mut R,
) -> Vec<usize> {
    assert!(k <= weights.len(), "cannot sample {k} of {}", weights.len());
    if k == 0 {
        return Vec::new();
    }
    let mut keyed: Vec<(f64, usize)> = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            assert!(w.is_finite() && w > 0.0, "weight {w} at index {i} invalid");
            // u in (0, 1]; ln(u)/w is the log of the Efraimidis-Spirakis key
            // u^(1/w); larger is more likely to be kept.
            let u: f64 = 1.0 - rng.random::<f64>();
            (u.ln() / w, i)
        })
        .collect();
    let pivot = (k - 1).min(keyed.len() - 1);
    keyed.select_nth_unstable_by(pivot, |a, b| {
        b.0.partial_cmp(&a.0).expect("keys are finite")
    });
    let mut out: Vec<usize> = keyed[..k].iter().map(|&(_, i)| i).collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star_graph() -> BipartiteGraph {
        // One hub item i0 connected to 8 users; plus 8 leaf items each
        // connected to one user -> hub edges have much higher degree product.
        let mut pairs = Vec::new();
        for u in 0..8u32 {
            pairs.push((u, 0));
            pairs.push((u, 1 + u));
        }
        BipartiteGraph::new(8, 9, pairs)
    }

    #[test]
    fn ratio_and_validation() {
        assert_eq!(EdgePruner::None.ratio(), 0.0);
        assert!(EdgePruner::DegreeDrop { ratio: 0.3 }.validate().is_ok());
        assert!(EdgePruner::DropEdge { ratio: 1.0 }.validate().is_err());
        assert!(EdgePruner::Mixed { ratio: -0.1 }.validate().is_err());
    }

    #[test]
    fn none_and_zero_ratio_keep_graph() {
        let g = star_graph();
        let mut rng = StdRng::seed_from_u64(7);
        assert!(EdgePruner::None.sample_edges(&g, 0, &mut rng).is_none());
        assert!(EdgePruner::DegreeDrop { ratio: 0.0 }
            .sample_edges(&g, 0, &mut rng)
            .is_none());
    }

    #[test]
    fn dropedge_keeps_expected_count() {
        let g = star_graph();
        let mut rng = StdRng::seed_from_u64(1);
        let kept = EdgePruner::DropEdge { ratio: 0.25 }
            .sample_edges(&g, 0, &mut rng)
            .expect("pruned");
        assert_eq!(kept.len(), g.n_edges() - (g.n_edges() as f64 * 0.25).round() as usize);
        // All kept edges are real edges.
        for e in &kept {
            assert!(g.edges().contains(e));
        }
    }

    #[test]
    fn degreedrop_prefers_removing_hub_edges() {
        let g = star_graph();
        let hub_edges: usize = 8;
        let mut hub_kept_deg = 0usize;
        let mut hub_kept_uni = 0usize;
        let trials = 400;
        let mut rng = StdRng::seed_from_u64(42);
        for t in 0..trials {
            let kd = EdgePruner::DegreeDrop { ratio: 0.5 }
                .sample_edges(&g, t, &mut rng)
                .expect("pruned");
            hub_kept_deg += kd.iter().filter(|&&(_, i)| i == 0).count();
            let ku = EdgePruner::DropEdge { ratio: 0.5 }
                .sample_edges(&g, t, &mut rng)
                .expect("pruned");
            hub_kept_uni += ku.iter().filter(|&&(_, i)| i == 0).count();
        }
        // Under uniform dropping the hub keeps about half its edges; under
        // DegreeDrop distinctly fewer.
        assert!(
            hub_kept_deg * 10 < hub_kept_uni * 8,
            "DegreeDrop kept {hub_kept_deg}/{} hub edges vs DropEdge {hub_kept_uni}",
            hub_edges * trials
        );
    }

    #[test]
    fn mixed_alternates_between_policies() {
        let g = star_graph();
        // With a fixed seed per call, even epochs must reproduce DegreeDrop
        // and odd epochs DropEdge exactly.
        let mixed = EdgePruner::Mixed { ratio: 0.5 };
        let kd = mixed.sample_edges(&g, 0, &mut StdRng::seed_from_u64(5));
        let kd_ref = EdgePruner::DegreeDrop { ratio: 0.5 }
            .sample_edges(&g, 0, &mut StdRng::seed_from_u64(5));
        assert_eq!(kd, kd_ref);
        let ku = mixed.sample_edges(&g, 1, &mut StdRng::seed_from_u64(5));
        let ku_ref = EdgePruner::DropEdge { ratio: 0.5 }
            .sample_edges(&g, 1, &mut StdRng::seed_from_u64(5));
        assert_eq!(ku, ku_ref);
    }

    #[test]
    fn weighted_sampling_respects_weights_statistically() {
        // Two items, weight 9:1; sampling 1 of 2 should pick item 0 ~90%.
        let mut rng = StdRng::seed_from_u64(99);
        let mut zero = 0;
        let n = 5000;
        for _ in 0..n {
            let s = sample_weighted_without_replacement(&[9.0, 1.0], 1, &mut rng);
            if s == [0] {
                zero += 1;
            }
        }
        let frac = zero as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.02, "observed {frac}");
    }

    #[test]
    fn weighted_sampling_k_equals_n_returns_all() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = sample_weighted_without_replacement(&[1.0, 2.0, 3.0], 3, &mut rng);
        assert_eq!(s, vec![0, 1, 2]);
    }

    #[test]
    fn uniform_sampling_is_unbiased_enough() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            for i in sample_uniform(4, 2, &mut rng) {
                counts[i] += 1;
            }
        }
        for &c in &counts {
            let frac = c as f64 / (8000.0 * 2.0);
            assert!((frac - 0.25).abs() < 0.02, "counts {counts:?}");
        }
    }

    #[test]
    fn pruned_adjacency_shapes() {
        let g = star_graph();
        let mut rng = StdRng::seed_from_u64(11);
        let a = EdgePruner::DegreeDrop { ratio: 0.5 }.pruned_norm_adjacency(&g, 0, &mut rng);
        assert_eq!(a.n_rows(), g.n_nodes());
        assert!(a.is_symmetric(1e-6));
        assert!(a.nnz() < 2 * g.n_edges());
        let full = EdgePruner::None.pruned_norm_adjacency(&g, 0, &mut rng);
        assert_eq!(full.nnz(), 2 * g.n_edges());
    }

    #[test]
    fn keep_weights_match_eq5() {
        let g = BipartiteGraph::new(2, 2, vec![(0, 0), (0, 1), (1, 1)]);
        // degrees: u0=2, u1=1, i0=1, i1=2
        let w = degree_keep_weights(&g);
        assert!((w[0] - 1.0 / (2.0f64.sqrt() * 1.0)).abs() < 1e-12); // (u0,i0)
        assert!((w[1] - 1.0 / (2.0f64.sqrt() * 2.0f64.sqrt())).abs() < 1e-12); // (u0,i1)
        assert!((w[2] - 1.0 / (1.0 * 2.0f64.sqrt())).abs() < 1e-12); // (u1,i1)
    }
}
