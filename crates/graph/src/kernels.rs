//! Kernel-implementation selection and the sparse propagation micro-kernels.
//!
//! Every hot loop in the workspace (dense matmuls in `lrgcn-tensor`, the
//! CSR propagation kernel here) is implemented three times behind the
//! [`Kernel`] enum:
//!
//! * [`Kernel::Naive`] — the original scalar reference loops, kept verbatim
//!   as the bitwise ground truth;
//! * [`Kernel::Blocked`] — cache-blocked, register-tiled loops written so
//!   LLVM can autovectorize them;
//! * [`Kernel::Simd`] — explicit AVX2 intrinsics (`std::arch`), selected
//!   only when the CPU reports the feature at runtime.
//!
//! ## Determinism contract
//!
//! All three implementations compute **every output cell with the same
//! single-accumulator, ascending-index accumulation order**. Tiling changes
//! *which* cells are in flight together (independent accumulators), never
//! the order of adds within one cell, and the SIMD paths use separate
//! multiply and add instructions (no FMA), which are lane-wise identical to
//! the scalar ops. For finite inputs the three kernels are therefore
//! bitwise identical — the golden-trajectory, grad-check and
//! thread-equality suites pass unchanged under every `LRGCN_KERNEL` value.
//! (The one caveat: the naive reference skips zero multipliers, so a
//! non-finite value multiplied by zero would produce NaN only in the tiled
//! paths. Training data is guarded finite by the divergence sentinel.)
//!
//! ## Mode resolution
//!
//! The active kernel is resolved once, in priority order: `LRGCN_KERNEL`
//! environment variable (`naive` / `blocked` / `simd`) → [`set_kernel`]
//! override (the CLI `--kernel` flag) → the fastest supported default
//! (`simd` when AVX2 is detected, else `blocked`). Requesting `simd` on a
//! machine without AVX2 falls back to `blocked` with a warning.

use lrgcn_obs::registry::{self, Counter};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Which implementation of the hot kernels to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// Scalar reference loops (the bitwise ground truth).
    Naive,
    /// Cache-blocked, register-tiled, autovectorization-friendly loops.
    Blocked,
    /// Explicit AVX2 intrinsics; requires runtime CPU support.
    Simd,
}

impl Kernel {
    /// All kernels, in escalation order.
    pub const ALL: [Kernel; 3] = [Kernel::Naive, Kernel::Blocked, Kernel::Simd];

    /// The name accepted by `LRGCN_KERNEL` and printed in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Naive => "naive",
            Kernel::Blocked => "blocked",
            Kernel::Simd => "simd",
        }
    }

    /// Parses a `LRGCN_KERNEL` / `--kernel` value.
    pub fn parse(s: &str) -> Option<Kernel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "naive" => Some(Kernel::Naive),
            "blocked" => Some(Kernel::Blocked),
            "simd" => Some(Kernel::Simd),
            _ => None,
        }
    }
}

/// Resolved kernel; `0` means "not resolved yet", otherwise discriminant+1.
static KERNEL: AtomicUsize = AtomicUsize::new(0);

/// Whether the explicit-SIMD kernels can run on this CPU (AVX2 detected at
/// runtime; always `false` off x86-64).
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Downgrades `simd` to `blocked` when the CPU cannot run it.
fn supported(k: Kernel) -> Kernel {
    if k == Kernel::Simd && !simd_available() {
        eprintln!("warning: LRGCN_KERNEL=simd requested but AVX2 is unavailable; using blocked");
        Kernel::Blocked
    } else {
        k
    }
}

/// The kernel implementation all hot loops dispatch to (cached after the
/// first call; see the module docs for the resolution order).
pub fn active_kernel() -> Kernel {
    match KERNEL.load(Ordering::Relaxed) {
        1 => Kernel::Naive,
        2 => Kernel::Blocked,
        3 => Kernel::Simd,
        _ => {
            let resolved = resolve_default();
            // Racing first calls resolve identically; any store may win.
            KERNEL.store(resolved as usize + 1, Ordering::Relaxed);
            resolved
        }
    }
}

fn resolve_default() -> Kernel {
    if let Ok(s) = std::env::var("LRGCN_KERNEL") {
        match Kernel::parse(&s) {
            Some(k) => return supported(k),
            None => eprintln!(
                "warning: ignoring invalid LRGCN_KERNEL={s:?} (want naive|blocked|simd)"
            ),
        }
    }
    if simd_available() {
        Kernel::Simd
    } else {
        Kernel::Blocked
    }
}

/// Overrides the active kernel (the CLI `--kernel` flag). `simd` is
/// downgraded to `blocked` when unsupported.
pub fn set_kernel(k: Kernel) {
    KERNEL.store(supported(k) as usize + 1, Ordering::Relaxed);
}

/// Records one kernel dispatch in the metrics registry. Called once per
/// public kernel entry point (not per row), so counter overhead stays off
/// the hot path.
#[inline]
pub fn count_dispatch(k: Kernel) {
    registry::add(
        match k {
            Kernel::Naive => Counter::KernelNaive,
            Kernel::Blocked => Counter::KernelBlocked,
            Kernel::Simd => Counter::KernelSimd,
        },
        1,
    );
}

// ---------------------------------------------------------------------------
// SpMM row kernels
// ---------------------------------------------------------------------------

/// Width of the widest column tile: 32 floats = 4 AVX2 lanes = half a
/// typical L1 set, small enough that a tile's accumulators live in
/// registers.
pub const TILE: usize = 32;

/// Computes a contiguous block of output rows of `out = csr * dense`.
///
/// `out_block` covers rows `start_row ..` of the product and is overwritten.
/// Per output cell the accumulation order is the CSR nnz order in all three
/// modes, so results are bitwise identical across kernels and across any
/// row partitioning.
#[allow(clippy::too_many_arguments)]
pub fn spmm_block(
    kernel: Kernel,
    indptr: &[usize],
    indices: &[u32],
    values: &[f32],
    start_row: usize,
    dense: &[f32],
    width: usize,
    out_block: &mut [f32],
) {
    if width == 0 || out_block.is_empty() {
        return;
    }
    debug_assert_eq!(out_block.len() % width, 0);
    for (local, orow) in out_block.chunks_exact_mut(width).enumerate() {
        let r = start_row + local;
        let (s, e) = (indptr[r], indptr[r + 1]);
        let (cols, vals) = (&indices[s..e], &values[s..e]);
        match kernel {
            Kernel::Naive => spmm_row_naive(cols, vals, dense, width, orow),
            Kernel::Blocked => spmm_row_blocked(cols, vals, dense, width, orow),
            Kernel::Simd => {
                #[cfg(target_arch = "x86_64")]
                // Safety: Kernel::Simd is only resolved when AVX2 was
                // detected at runtime (see `supported`).
                unsafe {
                    spmm_row_avx2(cols, vals, dense, width, orow)
                }
                #[cfg(not(target_arch = "x86_64"))]
                spmm_row_blocked(cols, vals, dense, width, orow)
            }
        }
    }
}

/// Reference kernel: the original axpy-per-nonzero loop.
fn spmm_row_naive(cols: &[u32], vals: &[f32], dense: &[f32], width: usize, orow: &mut [f32]) {
    orow.fill(0.0);
    for (&c, &v) in cols.iter().zip(vals) {
        let drow = &dense[c as usize * width..(c as usize + 1) * width];
        for (o, d) in orow.iter_mut().zip(drow) {
            *o += v * d;
        }
    }
}

/// Column-blocked kernel: each `TILE`-wide stripe of the output row is
/// accumulated in a register-resident array across all nonzeros, so the
/// output is written once instead of once per nonzero.
fn spmm_row_blocked(cols: &[u32], vals: &[f32], dense: &[f32], width: usize, orow: &mut [f32]) {
    let mut j = 0;
    while j + TILE <= width {
        let mut acc = [0.0f32; TILE];
        for (&c, &v) in cols.iter().zip(vals) {
            let d = &dense[c as usize * width + j..c as usize * width + j + TILE];
            for (a, &dv) in acc.iter_mut().zip(d) {
                *a += v * dv;
            }
        }
        orow[j..j + TILE].copy_from_slice(&acc);
        j += TILE;
    }
    if j < width {
        let tail = width - j;
        let mut acc = [0.0f32; TILE];
        for (&c, &v) in cols.iter().zip(vals) {
            let d = &dense[c as usize * width + j..c as usize * width + width];
            for (a, &dv) in acc[..tail].iter_mut().zip(d) {
                *a += v * dv;
            }
        }
        orow[j..].copy_from_slice(&acc[..tail]);
    }
}

/// AVX2 kernel: same stripe structure as [`spmm_row_blocked`] with explicit
/// 8-lane multiply-then-add (no FMA — lane-wise identical to scalar).
///
/// # Safety
/// The CPU must support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn spmm_row_avx2(cols: &[u32], vals: &[f32], dense: &[f32], width: usize, orow: &mut [f32]) {
    use std::arch::x86_64::*;
    let dp = dense.as_ptr();
    let mut j = 0;
    while j + TILE <= width {
        let mut a0 = _mm256_setzero_ps();
        let mut a1 = _mm256_setzero_ps();
        let mut a2 = _mm256_setzero_ps();
        let mut a3 = _mm256_setzero_ps();
        for (&c, &v) in cols.iter().zip(vals) {
            let base = dp.add(c as usize * width + j);
            let vv = _mm256_set1_ps(v);
            a0 = _mm256_add_ps(a0, _mm256_mul_ps(vv, _mm256_loadu_ps(base)));
            a1 = _mm256_add_ps(a1, _mm256_mul_ps(vv, _mm256_loadu_ps(base.add(8))));
            a2 = _mm256_add_ps(a2, _mm256_mul_ps(vv, _mm256_loadu_ps(base.add(16))));
            a3 = _mm256_add_ps(a3, _mm256_mul_ps(vv, _mm256_loadu_ps(base.add(24))));
        }
        let op = orow.as_mut_ptr().add(j);
        _mm256_storeu_ps(op, a0);
        _mm256_storeu_ps(op.add(8), a1);
        _mm256_storeu_ps(op.add(16), a2);
        _mm256_storeu_ps(op.add(24), a3);
        j += TILE;
    }
    while j + 8 <= width {
        let mut a0 = _mm256_setzero_ps();
        for (&c, &v) in cols.iter().zip(vals) {
            let base = dp.add(c as usize * width + j);
            a0 = _mm256_add_ps(a0, _mm256_mul_ps(_mm256_set1_ps(v), _mm256_loadu_ps(base)));
        }
        _mm256_storeu_ps(orow.as_mut_ptr().add(j), a0);
        j += 8;
    }
    if j < width {
        let tail = width - j;
        let mut acc = [0.0f32; 8];
        for (&c, &v) in cols.iter().zip(vals) {
            let d = &dense[c as usize * width + j..c as usize * width + width];
            for (a, &dv) in acc[..tail].iter_mut().zip(d) {
                *a += v * dv;
            }
        }
        orow[j..].copy_from_slice(&acc[..tail]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for k in Kernel::ALL {
            assert_eq!(Kernel::parse(k.name()), Some(k));
        }
        assert_eq!(Kernel::parse(" Blocked "), Some(Kernel::Blocked));
        assert_eq!(Kernel::parse("fast"), None);
    }

    #[test]
    fn set_kernel_overrides() {
        let before = active_kernel();
        set_kernel(Kernel::Naive);
        assert_eq!(active_kernel(), Kernel::Naive);
        set_kernel(Kernel::Blocked);
        assert_eq!(active_kernel(), Kernel::Blocked);
        set_kernel(before);
    }

    fn pseudo(n: usize, seed: u64) -> Vec<f32> {
        // splitmix64-derived pseudo-random floats in [-1, 1).
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^= z >> 31;
                (z >> 40) as f32 / (1u64 << 23) as f32 - 1.0
            })
            .collect()
    }

    #[test]
    fn spmm_kernels_are_bitwise_equal() {
        // A small ragged CSR: rows with 0, 1 and many nonzeros.
        let n_rows = 5;
        let n_cols = 7;
        let indptr = vec![0usize, 3, 3, 4, 9, 12];
        let indices = vec![0u32, 2, 6, 5, 0, 1, 2, 3, 4, 1, 3, 6];
        let values = pseudo(indices.len(), 11);
        for width in [0usize, 1, 3, 8, 31, 32, 33, 64, 70] {
            let dense = pseudo(n_cols * width, 100 + width as u64);
            let mut reference = vec![f32::NAN; n_rows * width];
            spmm_block(
                Kernel::Naive,
                &indptr,
                &indices,
                &values,
                0,
                &dense,
                width,
                &mut reference,
            );
            for k in [Kernel::Blocked, Kernel::Simd] {
                if k == Kernel::Simd && !simd_available() {
                    continue;
                }
                let mut out = vec![f32::NAN; n_rows * width];
                spmm_block(k, &indptr, &indices, &values, 0, &dense, width, &mut out);
                if width == 0 {
                    continue; // nothing written; buffers are empty
                }
                assert!(
                    out.iter().zip(&reference).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "spmm kernel {k:?} drifted from naive at width {width}"
                );
            }
        }
    }
}
