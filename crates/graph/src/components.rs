//! Connected components of the (pruned) interaction graph.
//!
//! The paper's Fig. 7 commentary attributes the performance drop at high
//! edge-dropout ratios to the graph splitting into disconnected subgraphs,
//! which blocks information propagation. This module quantifies that:
//! count components of any edge subset and measure isolation.

use crate::bipartite::BipartiteGraph;

/// Union–find over `n` elements with path compression + union by size.
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Representative of `x`'s component.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Merges the components of `a` and `b`; returns true if they were
    /// previously disjoint.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// Number of disjoint components (isolated nodes count individually).
    pub fn n_components(&self) -> usize {
        self.components
    }

    /// Size of the component containing `x`.
    pub fn component_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }
}

/// Summary of the component structure of an edge subset of a bipartite
/// graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ComponentStats {
    /// Total components over all `N` nodes (isolated nodes included).
    pub n_components: usize,
    /// Nodes with no incident edge in the subset.
    pub n_isolated: usize,
    /// Size of the largest component.
    pub largest: usize,
}

/// Computes component statistics for a subset of a graph's edges.
pub fn component_stats(graph: &BipartiteGraph, edges: &[(u32, u32)]) -> ComponentStats {
    let n = graph.n_nodes();
    let mut uf = UnionFind::new(n);
    let mut touched = vec![false; n];
    for &(u, i) in edges {
        let iu = graph.item_node(i);
        touched[u as usize] = true;
        touched[iu as usize] = true;
        uf.union(u, iu);
    }
    let n_isolated = touched.iter().filter(|&&t| !t).count();
    let largest = (0..n as u32)
        .map(|v| uf.component_size(v) as usize)
        .max()
        .unwrap_or(0);
    ComponentStats {
        n_components: uf.n_components(),
        n_isolated,
        largest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.n_components(), 4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert_eq!(uf.n_components(), 2);
        assert!(uf.union(0, 3));
        assert_eq!(uf.n_components(), 1);
        assert_eq!(uf.component_size(2), 4);
    }

    #[test]
    fn full_graph_single_component_when_connected() {
        // u0-i0, u0-i1, u1-i1: one component of 4 nodes.
        let g = BipartiteGraph::new(2, 2, vec![(0, 0), (0, 1), (1, 1)]);
        let s = component_stats(&g, g.edges());
        assert_eq!(s.n_components, 1);
        assert_eq!(s.n_isolated, 0);
        assert_eq!(s.largest, 4);
    }

    #[test]
    fn pruning_splits_components() {
        let g = BipartiteGraph::new(2, 2, vec![(0, 0), (0, 1), (1, 1)]);
        // Keep only u0-i0: nodes u1 and i1 become isolated.
        let s = component_stats(&g, &[(0, 0)]);
        assert_eq!(s.n_isolated, 2);
        assert_eq!(s.largest, 2);
        assert_eq!(s.n_components, 3); // {u0,i0}, {u1}, {i1}
    }

    #[test]
    fn empty_edge_set_all_isolated() {
        let g = BipartiteGraph::new(3, 2, vec![(0, 0), (1, 1), (2, 0)]);
        let s = component_stats(&g, &[]);
        assert_eq!(s.n_components, 5);
        assert_eq!(s.n_isolated, 5);
        assert_eq!(s.largest, 1);
    }

    #[test]
    fn heavier_pruning_never_reduces_components() {
        use crate::dropout::EdgePruner;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut pairs = Vec::new();
        for u in 0..30u32 {
            for k in 0..3u32 {
                pairs.push((u, (u + k * 7) % 20));
            }
        }
        let g = BipartiteGraph::new(30, 20, pairs);
        let mut prev = 0usize;
        for ratio in [0.1f32, 0.5, 0.8] {
            let mut rng = StdRng::seed_from_u64(1);
            let kept = EdgePruner::DegreeDrop { ratio }
                .sample_edges(&g, 0, &mut rng)
                .expect("pruned");
            let s = component_stats(&g, &kept);
            assert!(
                s.n_components >= prev,
                "components decreased under heavier pruning"
            );
            prev = s.n_components;
        }
        assert!(prev > 1, "heavy pruning should fragment this sparse graph");
    }
}
