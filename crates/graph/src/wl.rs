//! 1-dimensional Weisfeiler–Lehman (WL) color refinement.
//!
//! Proposition 1 of the paper states that LayerGCN's representational
//! capacity matches the WL graph-isomorphism test (via GIN's Theorem 3: sum
//! aggregation + injective update). This module provides the classical WL
//! refinement so the property can be exercised empirically: graphs that WL
//! distinguishes must receive different LayerGCN-style sum-aggregated
//! signatures (see the integration tests in `crates/models`).

use crate::csr::Csr;
use std::collections::HashMap;

/// One round of WL refinement: each node's new color is the canonical id of
/// `(old color, sorted multiset of neighbor colors)`.
fn refine(adj: &Csr, colors: &[u64]) -> Vec<u64> {
    let mut canon: HashMap<(u64, Vec<u64>), u64> = HashMap::new();
    let mut out = Vec::with_capacity(colors.len());
    for v in 0..adj.n_rows() {
        let mut neigh: Vec<u64> = adj.row(v).map(|(c, _)| colors[c as usize]).collect();
        neigh.sort_unstable();
        let key = (colors[v], neigh);
        let next = canon.len() as u64;
        out.push(*canon.entry(key).or_insert(next));
    }
    out
}

/// Runs WL refinement for at most `max_iters` rounds (or until the coloring
/// stabilizes) and returns the final node colors.
///
/// # Panics
/// Panics if `adj` is not square.
pub fn wl_colors(adj: &Csr, max_iters: usize) -> Vec<u64> {
    assert_eq!(adj.n_rows(), adj.n_cols(), "WL requires a square adjacency");
    let mut colors = vec![0u64; adj.n_rows()];
    for _ in 0..max_iters {
        let next = refine(adj, &colors);
        let classes = |c: &[u64]| {
            let mut s: Vec<u64> = c.to_vec();
            s.sort_unstable();
            s.dedup();
            s.len()
        };
        let stable = classes(&next) == classes(&colors);
        colors = next;
        if stable {
            break;
        }
    }
    colors
}

/// The canonical color histogram of a graph after WL refinement. Two
/// isomorphic graphs always share a histogram; two graphs with different
/// histograms are certainly non-isomorphic.
pub fn wl_histogram(adj: &Csr, max_iters: usize) -> Vec<(u64, usize)> {
    // Canonicalize colors across graphs by re-labeling with the sorted
    // multiset signature: histogram of class sizes plus per-class neighbor
    // structure is already captured by the refinement, so the comparable
    // invariant is the sorted vector of class sizes together with iteration
    // count. For cross-graph comparison we instead run refinement jointly.
    let colors = wl_colors(adj, max_iters);
    let mut hist: HashMap<u64, usize> = HashMap::new();
    for c in colors {
        *hist.entry(c).or_insert(0) += 1;
    }
    let mut v: Vec<(u64, usize)> = hist.into_iter().collect();
    v.sort_unstable();
    v
}

/// Whether the WL test distinguishes the two graphs as non-isomorphic within
/// `max_iters` rounds. Runs refinement *jointly* on the disjoint union so the
/// color ids are comparable.
pub fn wl_distinguishes(a: &Csr, b: &Csr, max_iters: usize) -> bool {
    if a.n_rows() != b.n_rows() {
        return true;
    }
    let n = a.n_rows();
    // Disjoint union adjacency.
    let triplets = (0..n)
        .flat_map(|r| a.row(r).map(move |(c, v)| (r as u32, c, v)))
        .chain(
            (0..n).flat_map(|r| {
                b.row(r)
                    .map(move |(c, v)| ((n + r) as u32, n as u32 + c, v))
            }),
        );
    let union = Csr::from_coo(2 * n, 2 * n, triplets);
    let mut colors = vec![0u64; 2 * n];
    for _ in 0..max_iters {
        let next = refine(&union, &colors);
        let differs = {
            let mut ha: Vec<u64> = next[..n].to_vec();
            let mut hb: Vec<u64> = next[n..].to_vec();
            ha.sort_unstable();
            hb.sort_unstable();
            ha != hb
        };
        if differs {
            return true;
        }
        if next == colors {
            break;
        }
        colors = next;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Csr {
        Csr::from_coo(
            n,
            n,
            (0..n).flat_map(|i| {
                let j = (i + 1) % n;
                [(i as u32, j as u32, 1.0), (j as u32, i as u32, 1.0)]
            }),
        )
    }

    fn path(n: usize) -> Csr {
        Csr::from_coo(
            n,
            n,
            (0..n - 1).flat_map(|i| {
                [(i as u32, (i + 1) as u32, 1.0), ((i + 1) as u32, i as u32, 1.0)]
            }),
        )
    }

    #[test]
    fn regular_graph_stays_monochromatic() {
        let c = cycle(6);
        let colors = wl_colors(&c, 5);
        assert!(colors.iter().all(|&x| x == colors[0]));
    }

    #[test]
    fn path_distinguishes_endpoints() {
        let p = path(4);
        let colors = wl_colors(&p, 5);
        assert_eq!(colors[0], colors[3]); // symmetric endpoints
        assert_eq!(colors[1], colors[2]);
        assert_ne!(colors[0], colors[1]);
    }

    #[test]
    fn distinguishes_cycle_from_path() {
        assert!(wl_distinguishes(&cycle(4), &path(4), 5));
    }

    #[test]
    fn identical_graphs_not_distinguished() {
        assert!(!wl_distinguishes(&cycle(5), &cycle(5), 10));
    }

    #[test]
    fn classic_wl_failure_case() {
        // Two 6-node 2-regular graphs: one 6-cycle vs two disjoint triangles.
        // 1-WL famously cannot distinguish them.
        let hexagon = cycle(6);
        let triangles = Csr::from_coo(
            6,
            6,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 4),
                (4, 5),
                (5, 3),
            ]
            .into_iter()
            .flat_map(|(a, b)| [(a as u32, b as u32, 1.0), (b as u32, a as u32, 1.0)]),
        );
        assert!(!wl_distinguishes(&hexagon, &triangles, 10));
    }

    #[test]
    fn histogram_is_deterministic() {
        let p = path(5);
        assert_eq!(wl_histogram(&p, 4), wl_histogram(&p, 4));
    }

    #[test]
    fn different_sizes_trivially_distinguished() {
        assert!(wl_distinguishes(&cycle(4), &cycle(6), 3));
    }
}
