//! Compressed Sparse Row (CSR) matrices over `f32`.
//!
//! The CSR matrix is the workhorse of every GCN in this workspace: the
//! (normalized) adjacency matrix `Â` is stored in CSR form and the hot kernel
//! of all propagation steps is [`Csr::spmm_into`], a sparse × dense product.
//! The representation is deliberately minimal — three flat vectors — which
//! keeps construction cheap enough to rebuild the pruned adjacency every
//! epoch (see [`crate::dropout`]).

use crate::kernels;
use std::fmt;

/// A sparse matrix in Compressed Sparse Row format.
///
/// ```
/// use lrgcn_graph::Csr;
/// // [[0, 2], [1, 0]]
/// let m = Csr::from_coo(2, 2, vec![(0, 1, 2.0), (1, 0, 1.0)]);
/// assert_eq!(m.nnz(), 2);
/// assert_eq!(m.get(0, 1), 2.0);
/// // Â·X — the propagation kernel behind every GCN layer here:
/// assert_eq!(m.spmm(&[10.0, 20.0], 1), vec![40.0, 10.0]);
/// ```
///
/// Invariants (checked by [`Csr::validate`], upheld by all constructors):
/// * `indptr.len() == n_rows + 1`, `indptr[0] == 0`, `indptr` is
///   non-decreasing and `indptr[n_rows] == indices.len() == values.len()`;
/// * within each row, column `indices` are strictly increasing (no
///   duplicates) and `< n_cols`.
#[derive(Clone, PartialEq)]
pub struct Csr {
    n_rows: usize,
    n_cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl fmt::Debug for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Csr({}x{}, nnz={})",
            self.n_rows,
            self.n_cols,
            self.nnz()
        )
    }
}

impl Csr {
    /// Builds a CSR matrix from coordinate-format triplets.
    ///
    /// Duplicate `(row, col)` entries are summed, matching the convention of
    /// scipy's `coo_matrix.tocsr()`. Entries may arrive in any order.
    ///
    /// # Panics
    /// Panics if any coordinate is out of bounds.
    pub fn from_coo(
        n_rows: usize,
        n_cols: usize,
        triplets: impl IntoIterator<Item = (u32, u32, f32)>,
    ) -> Self {
        lrgcn_obs::registry::add(lrgcn_obs::Counter::CsrBuilds, 1);
        let _t = lrgcn_obs::timer::scoped(lrgcn_obs::Hist::CsrBuild);
        let _span = lrgcn_obs::trace::span("csr_build", "kernel");
        let mut entries: Vec<(u32, u32, f32)> = triplets.into_iter().collect();
        for &(r, c, _) in &entries {
            assert!(
                (r as usize) < n_rows && (c as usize) < n_cols,
                "coordinate ({r},{c}) out of bounds for {n_rows}x{n_cols} matrix"
            );
        }
        entries.sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);

        let mut indptr = vec![0usize; n_rows + 1];
        let mut indices = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        for (r, c, v) in entries {
            if let (Some(&last_c), true) = (indices.last(), indptr[r as usize + 1] > 0) {
                // Same row (indptr for this row already started) and same col:
                // accumulate duplicates.
                if last_c == c && indices.len() > indptr[r as usize] {
                    *values.last_mut().expect("non-empty") += v;
                    continue;
                }
            }
            indices.push(c);
            values.push(v);
            indptr[r as usize + 1] = indices.len();
        }
        // Fill gaps for empty rows: make indptr cumulative.
        for i in 1..=n_rows {
            if indptr[i] < indptr[i - 1] {
                indptr[i] = indptr[i - 1];
            }
        }
        let csr = Self {
            n_rows,
            n_cols,
            indptr,
            indices,
            values,
        };
        debug_assert!(csr.validate().is_ok(), "{:?}", csr.validate());
        csr
    }

    /// Builds a CSR matrix directly from its raw parts.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn from_parts(
        n_rows: usize,
        n_cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self, String> {
        let csr = Self {
            n_rows,
            n_cols,
            indptr,
            indices,
            values,
        };
        csr.validate()?;
        Ok(csr)
    }

    /// The `n_rows x n_cols` matrix with no stored entries.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            indptr: vec![0; n_rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Self {
            n_rows: n,
            n_cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Checks every representation invariant; returns the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.indptr.len() != self.n_rows + 1 {
            return Err(format!(
                "indptr length {} != n_rows + 1 = {}",
                self.indptr.len(),
                self.n_rows + 1
            ));
        }
        if self.indptr[0] != 0 {
            return Err("indptr[0] != 0".into());
        }
        if *self.indptr.last().expect("non-empty indptr") != self.indices.len() {
            return Err("indptr does not terminate at nnz".into());
        }
        if self.indices.len() != self.values.len() {
            return Err("indices/values length mismatch".into());
        }
        for r in 0..self.n_rows {
            let (s, e) = (self.indptr[r], self.indptr[r + 1]);
            if s > e {
                return Err(format!("indptr decreasing at row {r}"));
            }
            for k in s..e {
                if self.indices[k] as usize >= self.n_cols {
                    return Err(format!("column {} out of bounds in row {r}", self.indices[k]));
                }
                if k > s && self.indices[k] <= self.indices[k - 1] {
                    return Err(format!("columns not strictly increasing in row {r}"));
                }
            }
        }
        Ok(())
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of explicitly stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// The `(column, value)` pairs of row `r`, in increasing column order.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        let (s, e) = (self.indptr[r], self.indptr[r + 1]);
        self.indices[s..e]
            .iter()
            .copied()
            .zip(self.values[s..e].iter().copied())
    }

    /// Number of stored entries in row `r` (the out-degree when the matrix is
    /// a 0/1 adjacency).
    pub fn row_nnz(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Value at `(r, c)`, or 0.0 if not stored. O(log row_nnz).
    pub fn get(&self, r: usize, c: u32) -> f32 {
        let (s, e) = (self.indptr[r], self.indptr[r + 1]);
        match self.indices[s..e].binary_search(&c) {
            Ok(k) => self.values[s + k],
            Err(_) => 0.0,
        }
    }

    /// Row sums of the matrix (the weighted out-degree vector).
    pub fn row_sums(&self) -> Vec<f32> {
        (0..self.n_rows)
            .map(|r| self.row(r).map(|(_, v)| v).sum())
            .collect()
    }

    /// Column sums of the matrix (the weighted in-degree vector).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.n_cols];
        for k in 0..self.nnz() {
            sums[self.indices[k] as usize] += self.values[k];
        }
        sums
    }

    /// The transposed matrix, built in O(nnz + n_cols).
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.n_cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 1..=self.n_cols {
            counts[i] += counts[i - 1];
        }
        let indptr = counts.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        let mut next = counts;
        for r in 0..self.n_rows {
            for (c, v) in self.row(r) {
                let slot = next[c as usize];
                indices[slot] = r as u32;
                values[slot] = v;
                next[c as usize] += 1;
            }
        }
        let t = Csr {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            indptr,
            indices,
            values,
        };
        debug_assert!(t.validate().is_ok());
        t
    }

    /// Whether the matrix equals its transpose up to `tol` on every entry.
    pub fn is_symmetric(&self, tol: f32) -> bool {
        if self.n_rows != self.n_cols {
            return false;
        }
        let t = self.transpose();
        if t.indptr != self.indptr || t.indices != self.indices {
            return false;
        }
        self.values
            .iter()
            .zip(&t.values)
            .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Sparse × dense product: `out = self * dense`, where `dense` is a
    /// row-major `n_cols x width` buffer and `out` a row-major
    /// `n_rows x width` buffer. This is the propagation kernel `Â·X`.
    ///
    /// Dispatches through [`crate::kernels`] (naive / column-blocked /
    /// AVX2); all modes accumulate each output cell in CSR nnz order, so
    /// results are bitwise identical across `LRGCN_KERNEL` values.
    ///
    /// # Panics
    /// Panics if the buffer shapes do not line up.
    pub fn spmm_into(&self, dense: &[f32], width: usize, out: &mut [f32]) {
        assert_eq!(dense.len(), self.n_cols * width, "dense operand shape");
        assert_eq!(out.len(), self.n_rows * width, "output shape");
        let kernel = kernels::active_kernel();
        kernels::count_dispatch(kernel);
        kernels::spmm_block(
            kernel,
            &self.indptr,
            &self.indices,
            &self.values,
            0,
            dense,
            width,
            out,
        );
    }

    /// Allocating wrapper over [`Csr::spmm_into`].
    pub fn spmm(&self, dense: &[f32], width: usize) -> Vec<f32> {
        let mut out = vec![0.0; self.n_rows * width];
        self.spmm_into(dense, width, &mut out);
        out
    }

    /// Multi-threaded [`Csr::spmm_into`]: output rows are split into
    /// contiguous chunks, one scoped thread per chunk. Row-parallelism is
    /// race-free because each output row depends only on its own CSR row.
    /// Falls back to the serial kernel for `threads <= 1` or tiny inputs.
    pub fn spmm_into_parallel(&self, dense: &[f32], width: usize, out: &mut [f32], threads: usize) {
        assert_eq!(dense.len(), self.n_cols * width, "dense operand shape");
        assert_eq!(out.len(), self.n_rows * width, "output shape");
        if threads <= 1 || self.n_rows < 2 * threads {
            self.spmm_into(dense, width, out);
            return;
        }
        let kernel = kernels::active_kernel();
        kernels::count_dispatch(kernel);
        let rows_per = self.n_rows.div_ceil(threads);
        let mut slices: Vec<(usize, &mut [f32])> = Vec::with_capacity(threads);
        let mut rest = out;
        let mut row0 = 0usize;
        while row0 < self.n_rows {
            let take = rows_per.min(self.n_rows - row0);
            let (head, tail) = rest.split_at_mut(take * width);
            slices.push((row0, head));
            rest = tail;
            row0 += take;
        }
        std::thread::scope(|scope| {
            for (start, chunk) in slices {
                scope.spawn(move || {
                    kernels::spmm_block(
                        kernel,
                        &self.indptr,
                        &self.indices,
                        &self.values,
                        start,
                        dense,
                        width,
                        chunk,
                    );
                });
            }
        });
    }

    /// Sparse × sparse product (SpGEMM) via row-wise merge with a dense
    /// accumulator. Used to build co-occurrence graphs like `RᵀR` without
    /// densifying. Output rows keep the CSR invariants (sorted, deduped).
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul_sparse(&self, other: &Csr) -> Csr {
        assert_eq!(
            self.n_cols, other.n_rows,
            "matmul_sparse shape mismatch: {self:?} x {other:?}"
        );
        let mut indptr = Vec::with_capacity(self.n_rows + 1);
        indptr.push(0usize);
        let mut indices: Vec<u32> = Vec::new();
        let mut values: Vec<f32> = Vec::new();
        // Dense accumulator + touched list (Gustavson's algorithm).
        let mut acc = vec![0.0f32; other.n_cols];
        let mut touched: Vec<u32> = Vec::new();
        for r in 0..self.n_rows {
            for (k, va) in self.row(r) {
                for (c, vb) in other.row(k as usize) {
                    if acc[c as usize] == 0.0 && !touched.contains(&c) {
                        touched.push(c);
                    }
                    acc[c as usize] += va * vb;
                }
            }
            touched.sort_unstable();
            for &c in &touched {
                let v = acc[c as usize];
                // Keep exact zeros out (cancellation) to preserve sparsity.
                if v != 0.0 {
                    indices.push(c);
                    values.push(v);
                }
                acc[c as usize] = 0.0;
            }
            touched.clear();
            indptr.push(indices.len());
        }
        let out = Csr {
            n_rows: self.n_rows,
            n_cols: other.n_cols,
            indptr,
            indices,
            values,
        };
        debug_assert!(out.validate().is_ok());
        out
    }

    /// Removes the diagonal of a square matrix (e.g. self-co-occurrence).
    pub fn without_diagonal(&self) -> Csr {
        assert_eq!(self.n_rows, self.n_cols, "diagonal requires square matrix");
        Csr::from_coo(
            self.n_rows,
            self.n_cols,
            (0..self.n_rows).flat_map(|r| {
                self.row(r)
                    .filter(move |&(c, _)| c as usize != r)
                    .map(move |(c, v)| (r as u32, c, v))
            }),
        )
    }

    /// Sparse matrix–vector product `self * x`.
    pub fn spmv(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.n_cols);
        (0..self.n_rows)
            .map(|r| self.row(r).map(|(c, v)| v * x[c as usize]).sum())
            .collect()
    }

    /// Returns `D_r^{-1/2} * self * D_c^{-1/2}` where `D_r`/`D_c` are the
    /// diagonal row-/column-sum matrices of `self`. Zero-degree rows/columns
    /// are left untouched (their scaling factor is defined as 0, matching the
    /// convention of LightGCN's implementation).
    pub fn sym_normalized(&self) -> Csr {
        let inv_sqrt = |s: Vec<f32>| -> Vec<f32> {
            s.into_iter()
                .map(|d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
                .collect()
        };
        let ri = inv_sqrt(self.row_sums());
        let ci = inv_sqrt(self.col_sums());
        let mut out = self.clone();
        for (r, &scale_r) in ri.iter().enumerate() {
            let (s, e) = (out.indptr[r], out.indptr[r + 1]);
            for k in s..e {
                out.values[k] *= scale_r * ci[out.indices[k] as usize];
            }
        }
        out
    }

    /// Returns `self + I` (square matrices only), used by the vanilla-GCN
    /// re-normalization trick `Â = D̂^{-1/2}(A + I)D̂^{-1/2}`.
    pub fn add_identity(&self) -> Csr {
        assert_eq!(self.n_rows, self.n_cols, "add_identity requires square matrix");
        let triplets = (0..self.n_rows)
            .flat_map(|r| self.row(r).map(move |(c, v)| (r as u32, c, v)))
            .chain((0..self.n_rows as u32).map(|i| (i, i, 1.0)));
        Csr::from_coo(self.n_rows, self.n_cols, triplets)
    }

    /// Scales every stored value by `s`.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.values {
            *v *= s;
        }
    }

    /// Converts to a dense row-major buffer. Intended for tests and tiny
    /// matrices only.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut d = vec![0.0; self.n_rows * self.n_cols];
        for r in 0..self.n_rows {
            for (c, v) in self.row(r) {
                d[r * self.n_cols + c as usize] = v;
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [[1 0 2]
        //  [0 0 0]
        //  [3 4 0]]
        Csr::from_coo(3, 3, vec![(0, 0, 1.0), (2, 1, 4.0), (0, 2, 2.0), (2, 0, 3.0)])
    }

    #[test]
    fn from_coo_sorts_and_indexes() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.get(2, 0), 3.0);
        assert_eq!(m.get(2, 1), 4.0);
        assert_eq!(m.row_nnz(1), 0);
    }

    #[test]
    fn from_coo_sums_duplicates() {
        let m = Csr::from_coo(2, 2, vec![(0, 1, 1.0), (0, 1, 2.5), (1, 0, 1.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), 3.5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_coo_rejects_out_of_bounds() {
        let _ = Csr::from_coo(2, 2, vec![(0, 2, 1.0)]);
    }

    #[test]
    fn from_parts_validates() {
        assert!(Csr::from_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]).is_ok());
        // Decreasing indptr.
        assert!(Csr::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
        // Duplicate column in a row.
        assert!(Csr::from_parts(1, 2, vec![0, 2], vec![1, 1], vec![1.0, 1.0]).is_err());
        // Column out of bounds.
        assert!(Csr::from_parts(1, 2, vec![0, 1], vec![2], vec![1.0]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.get(1, 2), 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn spmm_matches_dense_reference() {
        let m = sample();
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 3x2
        let y = m.spmm(&x, 2);
        // Row 0: 1*[1,2] + 2*[5,6] = [11,14]; row 1: 0; row 2: 3*[1,2]+4*[3,4]=[15,22]
        assert_eq!(y, vec![11.0, 14.0, 0.0, 0.0, 15.0, 22.0]);
    }

    #[test]
    fn parallel_spmm_matches_serial() {
        // A larger random-ish matrix exercised across thread counts.
        let triplets: Vec<(u32, u32, f32)> = (0..500)
            .map(|k| (((k * 37) % 97) as u32, ((k * 53) % 61) as u32, (k % 7) as f32 - 3.0))
            .collect();
        let m = Csr::from_coo(97, 61, triplets);
        let x: Vec<f32> = (0..61 * 8).map(|i| (i % 13) as f32 * 0.25 - 1.0).collect();
        let serial = m.spmm(&x, 8);
        for threads in [1usize, 2, 3, 8, 64] {
            let mut out = vec![0.0f32; 97 * 8];
            m.spmm_into_parallel(&x, 8, &mut out, threads);
            assert_eq!(out, serial, "threads={threads}");
        }
    }

    #[test]
    fn spgemm_matches_dense_reference() {
        let a = sample(); // 3x3
        let b = Csr::from_coo(3, 2, vec![(0, 0, 2.0), (1, 1, -1.0), (2, 0, 0.5), (2, 1, 3.0)]);
        let c = a.matmul_sparse(&b);
        assert_eq!(c.n_rows(), 3);
        assert_eq!(c.n_cols(), 2);
        // Dense reference: A (3x3) * B (3x2).
        let da = a.to_dense();
        let db = b.to_dense();
        for r in 0..3 {
            for col in 0..2usize {
                let expect: f32 = (0..3).map(|k| da[r * 3 + k] * db[k * 2 + col]).sum();
                assert!(
                    (c.get(r, col as u32) - expect).abs() < 1e-5,
                    "({r},{col}): {} vs {expect}",
                    c.get(r, col as u32)
                );
            }
        }
    }

    #[test]
    fn spgemm_identity_is_noop() {
        let m = sample();
        assert_eq!(Csr::identity(3).matmul_sparse(&m), m);
        assert_eq!(m.matmul_sparse(&Csr::identity(3)), m);
    }

    #[test]
    fn spgemm_builds_cooccurrence() {
        // R: 3 users x 2 items; RᵀR counts co-interactions.
        let r = Csr::from_coo(3, 2, vec![(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (2, 1, 1.0)]);
        let cooc = r.transpose().matmul_sparse(&r);
        assert_eq!(cooc.get(0, 0), 2.0); // item 0 degree
        assert_eq!(cooc.get(1, 1), 2.0);
        assert_eq!(cooc.get(0, 1), 1.0); // co-occur via user 0
        assert_eq!(cooc.get(1, 0), 1.0);
        let off = cooc.without_diagonal();
        assert_eq!(off.get(0, 0), 0.0);
        assert_eq!(off.get(0, 1), 1.0);
        assert_eq!(off.nnz(), 2);
    }

    #[test]
    fn spgemm_drops_exact_cancellations() {
        // [1, -1] * [[1],[1]] = [0]: the zero must not be stored.
        let a = Csr::from_coo(1, 2, vec![(0, 0, 1.0), (0, 1, -1.0)]);
        let b = Csr::from_coo(2, 1, vec![(0, 0, 1.0), (1, 0, 1.0)]);
        let c = a.matmul_sparse(&b);
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.get(0, 0), 0.0);
    }

    #[test]
    fn spmv_matches_spmm_width_one() {
        let m = sample();
        let x = vec![1.0, -1.0, 2.0];
        assert_eq!(m.spmv(&x), m.spmm(&x, 1));
    }

    #[test]
    fn identity_is_noop_under_spmm() {
        let i = Csr::identity(4);
        let x: Vec<f32> = (0..12).map(|v| v as f32).collect();
        assert_eq!(i.spmm(&x, 3), x);
    }

    #[test]
    fn row_and_col_sums() {
        let m = sample();
        assert_eq!(m.row_sums(), vec![3.0, 0.0, 7.0]);
        assert_eq!(m.col_sums(), vec![4.0, 4.0, 2.0]);
    }

    #[test]
    fn sym_normalized_rows_of_symmetric_adjacency() {
        // Path graph 0-1-2: degrees 1,2,1.
        let a = Csr::from_coo(
            3,
            3,
            vec![(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)],
        );
        let n = a.sym_normalized();
        let inv = 1.0 / 2.0f32.sqrt();
        assert!((n.get(0, 1) - inv).abs() < 1e-6);
        assert!((n.get(1, 0) - inv).abs() < 1e-6);
        assert!((n.get(1, 2) - inv).abs() < 1e-6);
        assert!(n.is_symmetric(1e-6));
    }

    #[test]
    fn sym_normalized_handles_isolated_nodes() {
        let a = Csr::from_coo(3, 3, vec![(0, 1, 1.0), (1, 0, 1.0)]);
        let n = a.sym_normalized();
        assert_eq!(n.row_nnz(2), 0);
        assert_eq!(n.get(0, 1), 1.0);
    }

    #[test]
    fn add_identity_adds_diagonal() {
        let m = sample();
        let mi = m.add_identity();
        assert_eq!(mi.get(0, 0), 2.0);
        assert_eq!(mi.get(1, 1), 1.0);
        assert_eq!(mi.get(2, 2), 1.0);
        assert_eq!(mi.get(2, 1), 4.0);
        assert_eq!(mi.nnz(), m.nnz() + 2); // (0,0) merged, (1,1) & (2,2) new
    }

    #[test]
    fn to_dense_roundtrip() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d, vec![1.0, 0.0, 2.0, 0.0, 0.0, 0.0, 3.0, 4.0, 0.0]);
    }

    #[test]
    fn symmetric_detection() {
        let sym = Csr::from_coo(2, 2, vec![(0, 1, 2.0), (1, 0, 2.0)]);
        assert!(sym.is_symmetric(0.0));
        let asym = Csr::from_coo(2, 2, vec![(0, 1, 2.0), (1, 0, 1.0)]);
        assert!(!asym.is_symmetric(1e-6));
        let rect = Csr::zeros(2, 3);
        assert!(!rect.is_symmetric(0.0));
    }

    #[test]
    fn empty_rows_in_middle_are_preserved() {
        let m = Csr::from_coo(5, 2, vec![(0, 0, 1.0), (4, 1, 1.0)]);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.row_nnz(2), 0);
        assert_eq!(m.row_nnz(3), 0);
        assert_eq!(m.get(4, 1), 1.0);
    }
}
