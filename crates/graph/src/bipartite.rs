//! User–item bipartite interaction graphs.
//!
//! The recommendation graph of the paper (§III-A) has `N = N_U + N_I` nodes:
//! users occupy ids `0..n_users` and items occupy ids
//! `n_users..n_users+n_items`. The symmetric adjacency of Eq. 4,
//!
//! ```text
//! A = [ 0   R ]
//!     [ R^T 0 ]
//! ```
//!
//! is materialized in CSR form by [`BipartiteGraph::adjacency`], and the
//! LightGCN/LayerGCN transition matrix `Â = D^{-1/2} A D^{-1/2}` by
//! [`BipartiteGraph::norm_adjacency`].

use crate::csr::Csr;

/// An undirected user–item interaction graph.
///
/// ```
/// use lrgcn_graph::BipartiteGraph;
/// let g = BipartiteGraph::new(2, 3, vec![(0, 0), (0, 1), (1, 1)]);
/// assert_eq!(g.n_nodes(), 5);
/// let adj = g.norm_adjacency(); // D^{-1/2} A D^{-1/2}, Eq. 4 normalized
/// assert!(adj.is_symmetric(1e-6));
/// // Edge (u0, i1): both endpoints have degree 2 -> weight 1/2.
/// assert!((adj.get(0, g.item_node(1)) - 0.5).abs() < 1e-6);
/// ```
///
/// Edges are stored deduplicated as `(user, item)` pairs with item ids in the
/// *item-local* space `0..n_items` (not offset by `n_users`).
#[derive(Clone, Debug)]
pub struct BipartiteGraph {
    n_users: usize,
    n_items: usize,
    edges: Vec<(u32, u32)>,
}

impl BipartiteGraph {
    /// Builds a graph from raw interaction pairs, deduplicating repeats.
    ///
    /// # Panics
    /// Panics if any id is out of range.
    pub fn new(
        n_users: usize,
        n_items: usize,
        pairs: impl IntoIterator<Item = (u32, u32)>,
    ) -> Self {
        let mut edges: Vec<(u32, u32)> = pairs.into_iter().collect();
        for &(u, i) in &edges {
            assert!(
                (u as usize) < n_users && (i as usize) < n_items,
                "interaction ({u},{i}) out of range ({n_users} users, {n_items} items)"
            );
        }
        edges.sort_unstable();
        edges.dedup();
        Self {
            n_users,
            n_items,
            edges,
        }
    }

    pub fn n_users(&self) -> usize {
        self.n_users
    }

    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Total node count `N = N_U + N_I`.
    pub fn n_nodes(&self) -> usize {
        self.n_users + self.n_items
    }

    /// Number of undirected user–item edges `M`.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// The deduplicated `(user, item)` edge list (item ids item-local).
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Sparsity as reported in Table I: `1 - M / (N_U * N_I)`.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.n_edges() as f64 / (self.n_users as f64 * self.n_items as f64)
    }

    /// Per-user interaction counts.
    pub fn user_degrees(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.n_users];
        for &(u, _) in &self.edges {
            d[u as usize] += 1;
        }
        d
    }

    /// Per-item interaction counts.
    pub fn item_degrees(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.n_items];
        for &(_, i) in &self.edges {
            d[i as usize] += 1;
        }
        d
    }

    /// Degree of each node in the unified `N`-node id space.
    pub fn node_degrees(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.n_nodes()];
        for &(u, i) in &self.edges {
            d[u as usize] += 1;
            d[self.n_users + i as usize] += 1;
        }
        d
    }

    /// The interaction matrix `R` (`n_users x n_items`) in CSR form.
    pub fn interaction_matrix(&self) -> Csr {
        Csr::from_coo(
            self.n_users,
            self.n_items,
            self.edges.iter().map(|&(u, i)| (u, i, 1.0)),
        )
    }

    /// The symmetric block adjacency `A` of Eq. 4 over all `N` nodes.
    pub fn adjacency(&self) -> Csr {
        self.adjacency_of_edges(&self.edges)
    }

    /// As [`BipartiteGraph::adjacency`], but restricted to a subset of edges
    /// (used by the edge-pruning mechanisms of [`crate::dropout`]).
    pub fn adjacency_of_edges(&self, edges: &[(u32, u32)]) -> Csr {
        let off = self.n_users as u32;
        let n = self.n_nodes();
        Csr::from_coo(
            n,
            n,
            edges.iter().flat_map(|&(u, i)| {
                [(u, off + i, 1.0f32), (off + i, u, 1.0f32)]
            }),
        )
    }

    /// The LightGCN/LayerGCN transition matrix `Â = D^{-1/2} A D^{-1/2}`
    /// (no self loops), used for propagation at inference time.
    pub fn norm_adjacency(&self) -> Csr {
        self.adjacency().sym_normalized()
    }

    /// The vanilla-GCN re-normalized adjacency
    /// `Â = D̂^{-1/2}(A + I)D̂^{-1/2}` (with self loops).
    pub fn renorm_adjacency_with_self_loops(&self) -> Csr {
        self.adjacency().add_identity().sym_normalized()
    }

    /// Normalized adjacency of a pruned edge subset, per §III-B1: the pruned
    /// graph is re-normalized using *its own* degree matrix.
    pub fn norm_adjacency_of_edges(&self, edges: &[(u32, u32)]) -> Csr {
        self.adjacency_of_edges(edges).sym_normalized()
    }

    /// The item–item co-occurrence matrix `G = RᵀR` with the diagonal
    /// removed: `G[i][j]` counts users who interacted with both `i` and `j`.
    /// Built sparsely via SpGEMM; feeds UltraGCN's item-item constraint
    /// graph and ItemKNN's similarity neighbourhoods.
    pub fn item_cooccurrence(&self) -> Csr {
        let r = self.interaction_matrix();
        r.transpose().matmul_sparse(&r).without_diagonal()
    }

    /// Splits a node id in the unified space back into `User(u)`/`Item(i)`.
    pub fn node_kind(&self, node: u32) -> NodeKind {
        if (node as usize) < self.n_users {
            NodeKind::User(node)
        } else {
            NodeKind::Item(node - self.n_users as u32)
        }
    }

    /// The global node id of item `i`.
    pub fn item_node(&self, i: u32) -> u32 {
        self.n_users as u32 + i
    }
}

/// Discriminates the two node types of the bipartite graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    User(u32),
    Item(u32),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BipartiteGraph {
        // 2 users, 3 items; u0-{i0,i1}, u1-{i1,i2}
        BipartiteGraph::new(2, 3, vec![(0, 0), (0, 1), (1, 1), (1, 2)])
    }

    #[test]
    fn counts_and_sparsity() {
        let g = tiny();
        assert_eq!(g.n_nodes(), 5);
        assert_eq!(g.n_edges(), 4);
        assert!((g.sparsity() - (1.0 - 4.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn dedup_on_construction() {
        let g = BipartiteGraph::new(2, 2, vec![(0, 0), (0, 0), (1, 1)]);
        assert_eq!(g.n_edges(), 2);
    }

    #[test]
    fn degrees() {
        let g = tiny();
        assert_eq!(g.user_degrees(), vec![2, 2]);
        assert_eq!(g.item_degrees(), vec![1, 2, 1]);
        assert_eq!(g.node_degrees(), vec![2, 2, 1, 2, 1]);
    }

    #[test]
    fn adjacency_is_symmetric_block_matrix() {
        let g = tiny();
        let a = g.adjacency();
        assert!(a.is_symmetric(0.0));
        // User-user and item-item blocks must be empty.
        for u in 0..2u32 {
            for u2 in 0..2u32 {
                assert_eq!(a.get(u as usize, u2), 0.0);
            }
        }
        for i in 0..3u32 {
            for i2 in 0..3u32 {
                assert_eq!(a.get(2 + i as usize, 2 + i2), 0.0);
            }
        }
        assert_eq!(a.get(0, 2), 1.0); // u0-i0
        assert_eq!(a.get(3, 1), 1.0); // i1-u1
        assert_eq!(a.nnz(), 2 * g.n_edges());
    }

    #[test]
    fn norm_adjacency_entries_match_degree_formula() {
        let g = tiny();
        let n = g.norm_adjacency();
        // Edge u0-i1: d(u0)=2, d(i1)=2 -> 1/2.
        assert!((n.get(0, 3) - 0.5).abs() < 1e-6);
        // Edge u0-i0: d(u0)=2, d(i0)=1 -> 1/sqrt(2).
        assert!((n.get(0, 2) - 1.0 / 2.0f32.sqrt()).abs() < 1e-6);
        assert!(n.is_symmetric(1e-6));
    }

    #[test]
    fn renorm_with_self_loops_has_diagonal() {
        let g = tiny();
        let n = g.renorm_adjacency_with_self_loops();
        for v in 0..g.n_nodes() {
            assert!(n.get(v, v as u32) > 0.0);
        }
        assert!(n.is_symmetric(1e-6));
    }

    #[test]
    fn pruned_adjacency_renormalizes_with_own_degrees() {
        let g = tiny();
        // Keep only u0-i0.
        let n = g.norm_adjacency_of_edges(&[(0, 0)]);
        // Both endpoints now have degree 1 -> entry is 1.
        assert!((n.get(0, 2) - 1.0).abs() < 1e-6);
        assert_eq!(n.nnz(), 2);
    }

    #[test]
    fn item_cooccurrence_counts_shared_users() {
        let g = tiny(); // u0-{i0,i1}, u1-{i1,i2}
        let c = g.item_cooccurrence();
        assert_eq!(c.get(0, 1), 1.0); // i0,i1 share u0
        assert_eq!(c.get(1, 2), 1.0); // i1,i2 share u1
        assert_eq!(c.get(0, 2), 0.0); // no shared user
        assert_eq!(c.get(1, 1), 0.0); // diagonal removed
        assert!(c.is_symmetric(0.0));
    }

    #[test]
    fn node_kind_roundtrip() {
        let g = tiny();
        assert_eq!(g.node_kind(1), NodeKind::User(1));
        assert_eq!(g.node_kind(2), NodeKind::Item(0));
        assert_eq!(g.item_node(2), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_items() {
        let _ = BipartiteGraph::new(1, 1, vec![(0, 1)]);
    }
}
