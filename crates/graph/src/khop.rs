//! K-hop receptive-field analysis.
//!
//! Over-smoothing has a simple structural driver: after `k` propagation
//! steps, a node's representation mixes information from its entire k-hop
//! neighbourhood. On small-world interaction graphs the receptive field
//! saturates within a few hops — at that point additional layers can only
//! blend already-shared information, which is the paper's §I/§IV intuition
//! made quantitative.

use crate::csr::Csr;
use std::collections::VecDeque;

/// Number of nodes reachable from `start` within each hop count
/// `0..=max_hops` (cumulative, BFS). `result[0]` is always 1.
pub fn khop_reach(adj: &Csr, start: u32, max_hops: usize) -> Vec<usize> {
    assert_eq!(adj.n_rows(), adj.n_cols(), "adjacency must be square");
    assert!((start as usize) < adj.n_rows(), "start node out of range");
    let mut dist = vec![usize::MAX; adj.n_rows()];
    let mut queue = VecDeque::new();
    dist[start as usize] = 0;
    queue.push_back(start);
    let mut counts = vec![0usize; max_hops + 1];
    counts[0] = 1;
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        if d >= max_hops {
            continue;
        }
        for (u, _) in adj.row(v as usize) {
            if dist[u as usize] == usize::MAX {
                dist[u as usize] = d + 1;
                counts[d + 1] += 1;
                queue.push_back(u);
            }
        }
    }
    // Make cumulative.
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    counts
}

/// Mean fraction of the graph reachable within each hop count, averaged
/// over an evenly spaced sample of `n_samples` start nodes.
pub fn mean_receptive_fraction(adj: &Csr, max_hops: usize, n_samples: usize) -> Vec<f64> {
    let n = adj.n_rows();
    if n == 0 || n_samples == 0 {
        return vec![0.0; max_hops + 1];
    }
    let stride = (n / n_samples.min(n)).max(1);
    let mut sums = vec![0.0f64; max_hops + 1];
    let mut count = 0usize;
    let mut v = 0usize;
    while v < n && count < n_samples {
        let reach = khop_reach(adj, v as u32, max_hops);
        for (s, r) in sums.iter_mut().zip(&reach) {
            *s += *r as f64 / n as f64;
        }
        count += 1;
        v += stride;
    }
    for s in &mut sums {
        *s /= count as f64;
    }
    sums
}

/// The smallest hop count at which the mean receptive fraction reaches
/// `threshold` (e.g. 0.9), or `None` within `max_hops`.
pub fn saturation_depth(adj: &Csr, threshold: f64, max_hops: usize, n_samples: usize) -> Option<usize> {
    mean_receptive_fraction(adj, max_hops, n_samples)
        .iter()
        .position(|&f| f >= threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Csr {
        Csr::from_coo(
            n,
            n,
            (0..n - 1).flat_map(|i| {
                [(i as u32, (i + 1) as u32, 1.0), ((i + 1) as u32, i as u32, 1.0)]
            }),
        )
    }

    #[test]
    fn path_graph_reach_grows_linearly() {
        let p = path(7);
        // From the left end: reach grows by 1 per hop.
        assert_eq!(khop_reach(&p, 0, 6), vec![1, 2, 3, 4, 5, 6, 7]);
        // From the middle: grows by 2 per hop until the ends.
        assert_eq!(khop_reach(&p, 3, 3), vec![1, 3, 5, 7]);
    }

    #[test]
    fn star_graph_saturates_in_two_hops() {
        let star = Csr::from_coo(
            5,
            5,
            (1..5u32).flat_map(|i| [(0, i, 1.0), (i, 0, 1.0)]),
        );
        assert_eq!(khop_reach(&star, 1, 3), vec![1, 2, 5, 5]);
        assert_eq!(saturation_depth(&star, 0.99, 4, 5), Some(2));
    }

    #[test]
    fn disconnected_nodes_unreachable() {
        let g = Csr::from_coo(4, 4, vec![(0, 1, 1.0), (1, 0, 1.0)]);
        let reach = khop_reach(&g, 0, 5);
        assert_eq!(reach[5], 2, "components must not leak");
    }

    #[test]
    fn receptive_fraction_monotone_and_bounded() {
        let p = path(20);
        let f = mean_receptive_fraction(&p, 8, 10);
        assert!(f.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        assert!(f.iter().all(|&x| (0.0..=1.0).contains(&x)));
        assert!(f[0] > 0.0);
    }

    #[test]
    fn bipartite_interaction_graph_saturates_fast() {
        // A dense-ish bipartite graph saturates within ~4 hops — the
        // structural root of over-smoothing at the paper's default depth.
        use crate::bipartite::BipartiteGraph;
        // Every user shares the hub item 0 plus two long-tail items, so all
        // nodes sit within 2 hops of the hub: a miniature of a real
        // interaction graph's small-world core.
        let mut pairs = Vec::new();
        for u in 0..30u32 {
            pairs.push((u, 0));
            pairs.push((u, 1 + u % 14));
            pairs.push((u, 1 + (u + 7) % 14));
        }
        let g = BipartiteGraph::new(30, 15, pairs);
        let adj = g.adjacency();
        let depth = saturation_depth(&adj, 0.9, 8, 16);
        assert!(depth.is_some(), "graph should saturate");
        assert!(depth.expect("checked") <= 4, "depth {depth:?}");
    }
}
