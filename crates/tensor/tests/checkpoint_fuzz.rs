//! Property test hardening `tensor::io` against hostile checkpoint files.
//!
//! A valid multi-entry checkpoint is perturbed hundreds of ways — truncated
//! at every prefix length class and bit-flipped at random offsets — and fed
//! back through both the bounded (file-backed) and unbounded readers. The
//! contract under attack is:
//!
//! 1. the reader never panics and never allocates unboundedly,
//! 2. every accepted result contains only finite values with consistent
//!    shapes,
//! 3. a *truncated* file is always rejected (some declared payload is
//!    missing by construction).
//!
//! The crate is dependency-free, so randomness comes from an inline
//! splitmix64 (same idiom as the obs sink property tests).

use lrgcn_tensor::io::{
    load_checkpoint, read_checkpoint, read_checkpoint_bounded, save_checkpoint, write_checkpoint,
};
use lrgcn_tensor::Matrix;

/// splitmix64 — deterministic, seedable. Reference constants from Vigna.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A well-formed three-entry checkpoint to perturb.
fn valid_checkpoint() -> Vec<u8> {
    let a = Matrix::from_vec(4, 3, (0..12).map(|i| i as f32 * 0.25 - 1.0).collect());
    let b = Matrix::full(2, 8, 0.5);
    let c = Matrix::zeros(0, 5);
    let mut buf = Vec::new();
    write_checkpoint(&mut buf, &[("ego", &a), ("weights", &b), ("empty", &c)]).expect("write");
    buf
}

/// The acceptance half of the contract: whatever the reader returns must be
/// structurally sound.
fn assert_sound(entries: &[(String, Matrix)]) {
    for (name, m) in entries {
        assert!(name.len() <= 4096);
        assert_eq!(m.data().len(), m.rows() * m.cols(), "{name}: shape lies");
        assert!(
            m.data().iter().all(|v| v.is_finite()),
            "{name}: accepted a non-finite value"
        );
    }
}

#[test]
fn truncated_checkpoints_never_parse_and_never_panic() {
    let full = valid_checkpoint();
    // Every strictly-shorter prefix is missing bytes some header declared.
    for cut in 0..full.len() {
        let prefix = &full[..cut];
        let res = read_checkpoint_bounded(prefix, Some(cut as u64));
        assert!(res.is_err(), "accepted a {cut}-byte truncation of {} bytes", full.len());
        assert!(read_checkpoint(prefix).is_err(), "unbounded reader accepted cut={cut}");
    }
    // The untruncated file still parses.
    let back = read_checkpoint_bounded(&full[..], Some(full.len() as u64)).expect("valid file");
    assert_eq!(back.len(), 3);
    assert_sound(&back);
}

#[test]
fn bit_flipped_checkpoints_parse_soundly_or_fail_cleanly() {
    let full = valid_checkpoint();
    let mut rng = Rng(0xC0FFEE);
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for _ in 0..400 {
        let mut mutant = full.clone();
        // 1..=3 random single-bit flips anywhere in the file.
        for _ in 0..=rng.below(2) {
            let byte = rng.below(mutant.len() as u64) as usize;
            let bit = rng.below(8) as u32;
            mutant[byte] ^= 1 << bit;
        }
        match read_checkpoint_bounded(&mutant[..], Some(mutant.len() as u64)) {
            Ok(entries) => {
                accepted += 1;
                assert_sound(&entries);
            }
            Err(_) => rejected += 1,
        }
    }
    // Both branches must actually be exercised: flips in the f32 payload
    // usually survive as a different finite float, flips in headers or
    // exponent bits must be caught.
    assert!(accepted > 0, "no mutant parsed — the generator is too hot");
    assert!(rejected > 0, "no mutant rejected — validation is not firing");
}

#[test]
fn file_backed_loader_applies_the_size_bound() {
    let dir = std::env::temp_dir().join("lrgcn_ckpt_fuzz");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("mutant.ckpt");

    // A shape header inflated far beyond the file size must be rejected by
    // the budget check, not by an EOF after allocating the declared buffer.
    let m = Matrix::full(3, 3, 1.0);
    save_checkpoint(&path, &[("w", &m)]).expect("save");
    let mut bytes = std::fs::read(&path).expect("read back");
    // rows field of the first entry sits after MAGIC(8)+ver(4)+n(4)+len(4)+"w"(1).
    let rows_off = 8 + 4 + 4 + 4 + 1;
    bytes[rows_off..rows_off + 8].copy_from_slice(&(1u64 << 20).to_le_bytes());
    std::fs::write(&path, &bytes).expect("write mutant");
    let err = load_checkpoint(&path).expect_err("must reject");
    assert!(
        matches!(err, lrgcn_tensor::io::IoError::Corrupt(_)),
        "wanted Corrupt, got {err}"
    );

    // And random truncations of the valid file fail through the same path.
    save_checkpoint(&path, &[("w", &m)]).expect("save");
    let bytes = std::fs::read(&path).expect("read back");
    let mut rng = Rng(7);
    for _ in 0..32 {
        let cut = rng.below(bytes.len() as u64) as usize;
        std::fs::write(&path, &bytes[..cut]).expect("write truncation");
        assert!(load_checkpoint(&path).is_err(), "accepted cut={cut}");
    }
    std::fs::remove_file(&path).ok();
}
