//! Stress and edge-case tests for the autodiff tape: deep graphs, extreme
//! values, and independence of consecutive tapes.

use lrgcn_graph::Csr;
use lrgcn_tensor::tape::SharedCsr;
use lrgcn_tensor::{Matrix, Tape};

/// A 100-layer linear propagation chain has an exact analytic gradient:
/// with S = I/2, L = sum(S^100 X) so dL/dX = (1/2)^100 * ones — tiny but
/// exactly representable.
#[test]
fn deep_chain_gradient_exact() {
    let half_identity = {
        let mut m = Csr::identity(3);
        m.scale(0.5);
        SharedCsr::new(m)
    };
    let mut tape = Tape::new();
    let x = tape.leaf(Matrix::full(3, 2, 1.0));
    let mut h = x;
    for _ in 0..100 {
        h = tape.spmm(&half_identity, h);
    }
    let l = tape.sum(h);
    tape.backward(l);
    let g = tape.grad(x).expect("grad");
    let expect = 0.5f32.powi(100);
    for &v in g.data() {
        assert_eq!(v, expect);
    }
}

/// Gradients accumulate across an arbitrarily wide fan-out: L = sum of k
/// copies of x gives dL/dx = k.
#[test]
fn wide_fanout_accumulates() {
    let mut tape = Tape::new();
    let x = tape.leaf(Matrix::full(2, 2, 3.0));
    let mut acc = x;
    for _ in 0..63 {
        acc = tape.add(acc, x);
    }
    let l = tape.sum(acc);
    tape.backward(l);
    let g = tape.grad(x).expect("grad");
    for &v in g.data() {
        assert_eq!(v, 64.0);
    }
}

#[test]
fn softplus_extreme_inputs_stay_finite() {
    let mut tape = Tape::new();
    let x = tape.leaf(Matrix::from_vec(1, 4, vec![-1e4, -50.0, 50.0, 1e4]));
    let y = tape.softplus(x);
    let v = tape.value(y);
    assert!(!v.has_non_finite());
    assert!(v[(0, 0)] >= 0.0);
    assert!((v[(0, 3)] - 1e4).abs() < 1.0);
    let l = tape.sum(y);
    tape.backward(l);
    assert!(!tape.grad(x).expect("grad").has_non_finite());
}

#[test]
fn sigmoid_saturation_gradients_vanish_not_nan() {
    let mut tape = Tape::new();
    let x = tape.leaf(Matrix::from_vec(1, 2, vec![-100.0, 100.0]));
    let y = tape.sigmoid(x);
    let l = tape.sum(y);
    tape.backward(l);
    let g = tape.grad(x).expect("grad");
    assert!(!g.has_non_finite());
    assert!(g.max_abs() < 1e-20, "saturated sigmoid should have ~0 grad");
}

#[test]
fn ln_clamp_region_has_zero_gradient() {
    let mut tape = Tape::new();
    let x = tape.leaf(Matrix::from_vec(1, 2, vec![1e-30, 2.0]));
    let y = tape.ln(x, 1e-8);
    let l = tape.sum(y);
    tape.backward(l);
    let g = tape.grad(x).expect("grad");
    assert_eq!(g[(0, 0)], 0.0, "clamped element must get zero grad");
    assert!((g[(0, 1)] - 0.5).abs() < 1e-6);
}

#[test]
fn consecutive_tapes_are_independent() {
    let base = Matrix::full(2, 2, 2.0);
    let grad_of = |scale: f32| {
        let mut tape = Tape::new();
        let x = tape.leaf(base.clone());
        let y = tape.mul_scalar(x, scale);
        let sq = tape.mul(y, y);
        let l = tape.sum(sq);
        tape.backward(l);
        tape.take_grad(x).expect("grad")
    };
    let g1 = grad_of(1.0);
    let g2 = grad_of(3.0);
    // d/dx (s x)^2 = 2 s^2 x.
    assert_eq!(g1.data()[0], 4.0);
    assert_eq!(g2.data()[0], 36.0);
}

#[test]
fn backward_twice_from_different_losses_accumulates() {
    // Calling backward twice accumulates into existing grads (documented
    // behavior: fresh tapes per step are the intended pattern).
    let mut tape = Tape::new();
    let x = tape.leaf(Matrix::full(1, 1, 5.0));
    let l1 = tape.sum(x);
    tape.backward(l1);
    assert_eq!(tape.grad(x).expect("g").data()[0], 1.0);
    tape.backward(l1);
    // The loss seed is reset to 1 but leaf grads accumulate: 1 + 1.
    assert_eq!(tape.grad(x).expect("g").data()[0], 2.0);
}

#[test]
fn large_gather_scatter_roundtrip() {
    let n = 10_000usize;
    let mut tape = Tape::new();
    let x = tape.leaf(Matrix::full(n, 8, 1.0));
    let idx: Vec<u32> = (0..n as u32).rev().collect();
    let g = tape.gather(x, std::rc::Rc::new(idx));
    let l = tape.sq_frobenius(g);
    tape.backward(l);
    let dx = tape.grad(x).expect("grad");
    assert_eq!(dx.shape(), (n, 8));
    for &v in dx.data() {
        assert_eq!(v, 2.0);
    }
}
