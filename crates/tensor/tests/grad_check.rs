//! Finite-difference validation of every backward rule on the tape,
//! including proptest-randomized inputs for the numerically delicate ops
//! (row-wise cosine, L2 normalization) that LayerGCN's refinement relies on.

use lrgcn_graph::Csr;
use lrgcn_tensor::grad_check::assert_grads_close;
use lrgcn_tensor::tape::{SharedCsr, Tape, Var};
use lrgcn_tensor::Matrix;
use std::rc::Rc;

fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
    Matrix::from_vec(rows, cols, v.to_vec())
}

#[test]
fn grad_add_sub_mul() {
    let a = m(2, 3, &[0.5, -1.2, 2.0, 0.3, 1.1, -0.7]);
    let b = m(2, 3, &[1.5, 0.2, -1.0, 0.9, -0.4, 0.6]);
    assert_grads_close(
        &|t: &mut Tape, v: &[Var]| {
            let s = t.add(v[0], v[1]);
            let d = t.sub(s, v[1]);
            let p = t.mul(d, v[1]);
            t.sum(p)
        },
        &[a, b],
    );
}

#[test]
fn grad_scalar_ops() {
    let a = m(2, 2, &[0.5, -1.2, 2.0, 0.3]);
    assert_grads_close(
        &|t, v| {
            let x = t.mul_scalar(v[0], -1.7);
            let y = t.add_scalar(x, 0.3);
            let z = t.mul(y, y);
            t.mean_all(z)
        },
        &[a],
    );
}

#[test]
fn grad_matmul() {
    let a = m(2, 3, &[0.5, -1.2, 2.0, 0.3, 1.1, -0.7]);
    let b = m(3, 2, &[1.5, 0.2, -1.0, 0.9, -0.4, 0.6]);
    assert_grads_close(
        &|t, v| {
            let c = t.matmul(v[0], v[1]);
            let sq = t.mul(c, c);
            t.sum(sq)
        },
        &[a, b],
    );
}

#[test]
fn grad_matmul_tn_nt() {
    let a = m(3, 2, &[0.5, -1.2, 2.0, 0.3, 1.1, -0.7]);
    let b = m(3, 2, &[1.5, 0.2, -1.0, 0.9, -0.4, 0.6]);
    assert_grads_close(
        &|t, v| {
            let c = t.matmul_tn(v[0], v[1]); // 2x2
            let d = t.matmul_nt(v[0], v[1]); // 3x3
            let sc = t.sum(c);
            let sd = t.sum(d);
            let both = t.add(sc, sd);
            let sq = t.mul(both, both);
            t.sum(sq)
        },
        &[a, b],
    );
}

#[test]
fn grad_spmm_symmetric_and_asymmetric() {
    let sym = SharedCsr::new(Csr::from_coo(
        3,
        3,
        vec![(0, 1, 0.5), (1, 0, 0.5), (1, 2, 1.5), (2, 1, 1.5)],
    ));
    let asym = SharedCsr::new(Csr::from_coo(2, 3, vec![(0, 0, 1.0), (0, 2, -2.0), (1, 1, 0.7)]));
    let x = m(3, 2, &[0.5, -1.2, 2.0, 0.3, 1.1, -0.7]);
    assert_grads_close(
        &move |t, v| {
            let y = t.spmm(&sym, v[0]);
            let z = t.spmm(&asym, y);
            let sq = t.mul(z, z);
            t.sum(sq)
        },
        &[x],
    );
}

#[test]
fn grad_gather_with_repeats() {
    let e = m(4, 2, &[0.5, -1.2, 2.0, 0.3, 1.1, -0.7, 0.2, 0.9]);
    assert_grads_close(
        &|t, v| {
            let g = t.gather(v[0], Rc::new(vec![3, 1, 3, 0]));
            let sq = t.mul(g, g);
            t.sum(sq)
        },
        &[e],
    );
}

#[test]
fn grad_concat() {
    let a = m(2, 2, &[0.5, -1.2, 2.0, 0.3]);
    let b = m(2, 1, &[1.4, -0.6]);
    assert_grads_close(
        &|t, v| {
            let c = t.concat_cols(&[v[0], v[1], v[0]]);
            let sq = t.mul(c, c);
            t.mean_all(sq)
        },
        &[a, b],
    );
}

#[test]
fn grad_activations() {
    let a = m(2, 3, &[0.5, -1.2, 2.0, 0.3, 1.1, -0.7]);
    assert_grads_close(
        &|t, v| {
            let s = t.sigmoid(v[0]);
            let sp = t.softplus(s);
            let th = t.tanh(sp);
            let lr = t.leaky_relu(th, 0.2);
            t.sum(lr)
        },
        std::slice::from_ref(&a),
    );
    // ReLU checked away from the kink.
    let b = m(1, 4, &[0.8, -0.9, 1.7, -2.2]);
    assert_grads_close(
        &|t, v| {
            let r = t.relu(v[0]);
            let sq = t.mul(r, r);
            t.sum(sq)
        },
        &[b],
    );
}

#[test]
fn grad_exp_ln() {
    let a = m(1, 3, &[0.5, 1.2, 2.0]);
    assert_grads_close(
        &|t, v| {
            let e = t.exp(v[0]);
            let l = t.ln(e, 1e-12);
            let sq = t.mul(l, e);
            t.sum(sq)
        },
        &[a],
    );
}

#[test]
fn grad_row_dot() {
    let a = m(3, 2, &[0.5, -1.2, 2.0, 0.3, 1.1, -0.7]);
    let b = m(3, 2, &[1.5, 0.2, -1.0, 0.9, -0.4, 0.6]);
    assert_grads_close(
        &|t, v| {
            let d = t.row_dot(v[0], v[1]);
            let sq = t.mul(d, d);
            t.sum(sq)
        },
        &[a, b],
    );
}

#[test]
fn grad_row_cosine() {
    let a = m(3, 3, &[0.5, -1.2, 2.0, 0.3, 1.1, -0.7, 0.9, 0.8, -0.3]);
    let b = m(3, 3, &[1.5, 0.2, -1.0, 0.9, -0.4, 0.6, -0.2, 1.3, 0.4]);
    assert_grads_close(
        &|t, v| {
            let c = t.row_cosine(v[0], v[1], 1e-8);
            let sq = t.mul(c, c);
            t.sum(sq)
        },
        &[a, b],
    );
}

#[test]
fn grad_layer_refinement_composite() {
    // The exact composite LayerGCN uses per layer:
    // X' = (cos(ÂX, X0) + eps) ⊙_rows (ÂX).
    let adj = SharedCsr::new(Csr::from_coo(
        3,
        3,
        vec![(0, 1, 0.7), (1, 0, 0.7), (1, 2, 0.7), (2, 1, 0.7)],
    ));
    let x0 = m(3, 2, &[0.5, -1.2, 2.0, 0.3, 1.1, -0.7]);
    assert_grads_close(
        &move |t, v| {
            let prop = t.spmm(&adj, v[0]);
            let sim = t.row_cosine(prop, v[0], 1e-8);
            let sim_eps = t.add_scalar(sim, 1e-4);
            let refined = t.mul_row_broadcast(prop, sim_eps);
            let sq = t.mul(refined, refined);
            t.sum(sq)
        },
        &[x0],
    );
}

#[test]
fn grad_row_l2_normalize() {
    let a = m(2, 3, &[0.5, -1.2, 2.0, 0.3, 1.1, -0.7]);
    assert_grads_close(
        &|t, v| {
            let n = t.row_l2_normalize(v[0], 1e-10);
            let sq = t.mul(n, n);
            t.mean_all(sq)
        },
        std::slice::from_ref(&a),
    );
    // Also through a dot with a second operand (asymmetric flow).
    let b = m(2, 3, &[1.5, 0.2, -1.0, 0.9, -0.4, 0.6]);
    assert_grads_close(
        &|t, v| {
            let n = t.row_l2_normalize(v[0], 1e-10);
            let d = t.row_dot(n, v[1]);
            let sq = t.mul(d, d);
            t.sum(sq)
        },
        &[a, b],
    );
}

#[test]
fn grad_broadcasts() {
    let a = m(3, 2, &[0.5, -1.2, 2.0, 0.3, 1.1, -0.7]);
    let s = m(3, 1, &[0.4, -1.5, 0.8]);
    let bias = m(1, 2, &[0.25, -0.75]);
    assert_grads_close(
        &|t, v| {
            let x = t.mul_row_broadcast(v[0], v[1]);
            let y = t.add_col_broadcast(x, v[2]);
            let sq = t.mul(y, y);
            t.sum(sq)
        },
        &[a, s, bias],
    );
}

#[test]
fn grad_dropout_mask_is_constant_scale() {
    let a = m(2, 2, &[0.5, -1.2, 2.0, 0.3]);
    let mask = Rc::new(vec![2.0, 0.0, 2.0, 2.0]);
    assert_grads_close(
        &move |t, v| {
            let d = t.dropout(v[0], Rc::clone(&mask));
            let sq = t.mul(d, d);
            t.sum(sq)
        },
        &[a],
    );
}

#[test]
fn grad_reductions() {
    let a = m(2, 3, &[0.5, -1.2, 2.0, 0.3, 1.1, -0.7]);
    assert_grads_close(
        &|t, v| {
            let rs = t.row_sum(v[0]);
            let sq = t.mul(rs, rs);
            t.sum(sq)
        },
        std::slice::from_ref(&a),
    );
    assert_grads_close(&|t, v| t.sq_frobenius(v[0]), &[a]);
}

#[test]
fn grad_bpr_loss_full_pipeline() {
    // Embedding table -> gather u/i/j -> scores -> softplus BPR + L2 reg.
    let e = m(
        5,
        2,
        &[0.5, -1.2, 2.0, 0.3, 1.1, -0.7, 0.2, 0.9, -0.8, 0.4],
    );
    assert_grads_close(
        &|t, v| {
            let u = t.gather(v[0], Rc::new(vec![0, 1]));
            let i = t.gather(v[0], Rc::new(vec![2, 3]));
            let j = t.gather(v[0], Rc::new(vec![4, 2]));
            let ps = t.row_dot(u, i);
            let ns = t.row_dot(u, j);
            let diff = t.sub(ns, ps);
            let sp = t.softplus(diff);
            let bpr = t.mean_all(sp);
            let reg = t.sq_frobenius(v[0]);
            let reg_scaled = t.mul_scalar(reg, 1e-3);
            t.add(bpr, reg_scaled)
        },
        &[e],
    );
}

#[test]
fn grad_sub_row_broadcast_and_recip() {
    let a = m(2, 3, &[0.5, -1.2, 2.0, 0.3, 1.1, -0.7]);
    let s = m(2, 1, &[0.4, -0.9]);
    assert_grads_close(
        &|t, v| {
            let x = t.sub_row_broadcast(v[0], v[1]);
            let sq = t.mul(x, x);
            t.sum(sq)
        },
        &[a.clone(), s],
    );
    let pos = m(1, 3, &[0.8, 1.5, 2.2]);
    assert_grads_close(
        &|t, v| {
            let r = t.recip(v[0], 1e-6);
            let sq = t.mul(r, r);
            t.sum(sq)
        },
        &[pos],
    );
}

#[test]
fn grad_mul_scalar_var() {
    let a = m(2, 2, &[0.5, -1.2, 2.0, 0.3]);
    let s = m(1, 1, &[0.7]);
    assert_grads_close(
        &|t, v| {
            let x = t.mul_scalar_var(v[0], v[1]);
            let sq = t.mul(x, x);
            t.sum(sq)
        },
        &[a, s],
    );
}

#[test]
fn grad_row_softmax_and_log_softmax() {
    let a = m(2, 3, &[0.5, -1.2, 2.0, 0.3, 1.1, -0.7]);
    assert_grads_close(
        &|t, v| {
            let sm = t.row_softmax(v[0]);
            let sq = t.mul(sm, sm);
            t.sum(sq)
        },
        std::slice::from_ref(&a),
    );
    // Cross-entropy shape: -(mask ⊙ log_softmax).sum()
    let mask = Rc::new(Matrix::from_vec(2, 3, vec![1.0, 0.0, 0.0, 0.0, 1.0, 1.0]));
    assert_grads_close(
        &move |t, v| {
            let ls = t.row_log_softmax(v[0]);
            let mk = t.constant((*mask).clone());
            let picked = t.mul(ls, mk);
            let s = t.sum(picked);
            t.neg(s)
        },
        &[a],
    );
}

/// Restores the globally configured thread count on drop, so a failing
/// assertion inside the thread-sweep test cannot leak a pinned count into
/// concurrently running tests.
struct ThreadGuard(usize);

impl Drop for ThreadGuard {
    fn drop(&mut self) {
        lrgcn_tensor::par::set_threads(self.0);
    }
}

#[test]
fn grads_check_out_at_one_and_four_threads() {
    // The numerically delicate ops LayerGCN leans on (row-cosine, the
    // row/col broadcasts, embedding gather) re-checked under pinned thread
    // counts: the analytic gradient must match finite differences whether
    // the kernels run serial or fanned out. The global kernel contract says
    // results are bitwise identical for any thread count — this test is
    // where that contract meets the backward pass.
    use lrgcn_tensor::par;
    let _restore = ThreadGuard(par::configured_threads());

    let a = m(3, 3, &[0.5, -1.2, 2.0, 0.3, 1.1, -0.7, 0.9, 0.8, -0.3]);
    let b = m(3, 3, &[1.5, 0.2, -1.0, 0.9, -0.4, 0.6, -0.2, 1.3, 0.4]);
    let s = m(3, 1, &[0.4, -1.5, 0.8]);
    let bias = m(1, 3, &[0.25, -0.75, 0.5]);
    let e = m(4, 2, &[0.5, -1.2, 2.0, 0.3, 1.1, -0.7, 0.2, 0.9]);

    for threads in [1usize, 4] {
        par::set_threads(threads);
        assert_eq!(par::configured_threads(), threads);
        assert_grads_close(
            &|t, v| {
                let c = t.row_cosine(v[0], v[1], 1e-8);
                let sq = t.mul(c, c);
                t.sum(sq)
            },
            &[a.clone(), b.clone()],
        );
        assert_grads_close(
            &|t, v| {
                let x = t.mul_row_broadcast(v[0], v[1]);
                let y = t.add_col_broadcast(x, v[2]);
                let sq = t.mul(y, y);
                t.sum(sq)
            },
            &[a.clone(), s.clone(), bias.clone()],
        );
        assert_grads_close(
            &|t, v| {
                let g = t.gather(v[0], Rc::new(vec![3, 1, 3, 0]));
                let sq = t.mul(g, g);
                t.sum(sq)
            },
            std::slice::from_ref(&e),
        );
    }
}

#[test]
fn gradients_are_bitwise_identical_across_thread_counts() {
    // Stronger than the finite-difference check: the backward pass itself
    // (spmm + cosine + broadcast composite, the per-layer refinement) must
    // produce the exact same bits at 1 and 4 threads.
    use lrgcn_tensor::par;
    let _restore = ThreadGuard(par::configured_threads());

    let grad_at = |threads: usize| -> Vec<f32> {
        par::set_threads(threads);
        let adj = SharedCsr::new(Csr::from_coo(
            3,
            3,
            vec![(0, 1, 0.7), (1, 0, 0.7), (1, 2, 0.7), (2, 1, 0.7)],
        ));
        let mut t = Tape::new();
        let x0 = t.leaf(m(3, 2, &[0.5, -1.2, 2.0, 0.3, 1.1, -0.7]));
        let prop = t.spmm(&adj, x0);
        let sim = t.row_cosine(prop, x0, 1e-8);
        let sim_eps = t.add_scalar(sim, 1e-4);
        let refined = t.mul_row_broadcast(prop, sim_eps);
        let sq = t.mul(refined, refined);
        let loss = t.sum(sq);
        t.backward(loss);
        t.grad(x0).expect("leaf grad").data().to_vec()
    };

    let g1 = grad_at(1);
    let g4 = grad_at(4);
    assert_eq!(g1, g4, "backward pass diverges across thread counts");
}

#[test]
fn softmax_rows_sum_to_one() {
    let mut t = Tape::new();
    let a = t.leaf(m(2, 4, &[10.0, 10.5, -3.0, 0.0, 100.0, 99.0, 98.0, 97.0]));
    let sm = t.row_softmax(a);
    let v = t.value(sm);
    for r in 0..2 {
        let s: f32 = v.row(r).iter().sum();
        assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        assert!(v.row(r).iter().all(|&x| x >= 0.0));
    }
}

// Gated off by default: `proptest` cannot be fetched in the offline build
// environment. Re-add `proptest` to `[dev-dependencies]` and build with
// `--features property-tests` to run the randomized grad checks below.
#[cfg(feature = "property-tests")]
mod property_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random well-conditioned inputs through the cosine refinement: the
    /// analytic gradient must match finite differences.
    #[test]
    fn prop_row_cosine_grads(
        vals in proptest::collection::vec(0.2f32..2.0, 12),
        signs in proptest::collection::vec(prop::bool::ANY, 12),
    ) {
        let data: Vec<f32> = vals
            .iter()
            .zip(&signs)
            .map(|(&v, &s)| if s { v } else { -v })
            .collect();
        let a = Matrix::from_vec(2, 3, data[..6].to_vec());
        let b = Matrix::from_vec(2, 3, data[6..].to_vec());
        assert_grads_close(
            &|t, v| {
                let c = t.row_cosine(v[0], v[1], 1e-8);
                let sq = t.mul(c, c);
                t.sum(sq)
            },
            &[a, b],
        );
    }

    /// Matmul gradients hold for random shapes and values.
    #[test]
    fn prop_matmul_grads(
        rows in 1usize..4,
        inner in 1usize..4,
        cols in 1usize..4,
        seedvals in proptest::collection::vec(-1.5f32..1.5, 32),
    ) {
        let a = Matrix::from_vec(rows, inner, seedvals[..rows * inner].to_vec());
        let b = Matrix::from_vec(
            inner,
            cols,
            seedvals[rows * inner..rows * inner + inner * cols].to_vec(),
        );
        assert_grads_close(
            &|t, v| {
                let c = t.matmul(v[0], v[1]);
                let sq = t.mul(c, c);
                t.sum(sq)
            },
            &[a, b],
        );
    }

    /// row_l2_normalize produces unit rows and exact gradients for
    /// non-degenerate inputs.
    #[test]
    fn prop_row_normalize_grads(
        vals in proptest::collection::vec(0.3f32..2.0, 6),
        signs in proptest::collection::vec(prop::bool::ANY, 6),
    ) {
        let data: Vec<f32> = vals
            .iter()
            .zip(&signs)
            .map(|(&v, &s)| if s { v } else { -v })
            .collect();
        let a = Matrix::from_vec(2, 3, data);
        assert_grads_close(
            &|t, v| {
                let n = t.row_l2_normalize(v[0], 1e-10);
                let s = t.sum(n);
                let sq = t.mul(s, s);
                t.sum(sq)
            },
            &[a],
        );
    }
    }
}
