//! Algebraic property tests for the dense matrix type: the laws the models
//! silently rely on (distributivity for gradient accumulation, transpose
//! duality for the backward rules, concat/slice inverses).

#![cfg(feature = "property-tests")]
// Gated off by default: `proptest` cannot be fetched in the offline
// build environment. Re-add the dev-dependency and pass
// `--features property-tests` to run these.
use lrgcn_tensor::Matrix;
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (A + B) C = AC + BC within f32 tolerance.
    #[test]
    fn matmul_right_distributive(
        a in matrix(3, 4),
        b in matrix(3, 4),
        c in matrix(4, 2),
    ) {
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    /// (AB)C = A(BC) within f32 tolerance.
    #[test]
    fn matmul_associative(
        a in matrix(2, 3),
        b in matrix(3, 2),
        c in matrix(2, 3),
    ) {
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-2));
    }

    /// (AB)^T = B^T A^T.
    #[test]
    fn transpose_antidistributes(a in matrix(3, 4), b in matrix(4, 2)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    /// matmul_tn and matmul_nt agree with their explicit-transpose forms.
    #[test]
    fn fused_transpose_matmuls(a in matrix(4, 3), b in matrix(4, 2), d in matrix(5, 3)) {
        prop_assert!(a.matmul_tn(&b).approx_eq(&a.transpose().matmul(&b), 1e-3));
        prop_assert!(a.matmul_nt(&d).approx_eq(&a.matmul(&d.transpose()), 1e-3));
    }

    /// concat_cols then slice-by-row reconstructs both parts.
    #[test]
    fn concat_slice_roundtrip(a in matrix(3, 2), b in matrix(3, 4)) {
        let c = Matrix::concat_cols(&[&a, &b]);
        prop_assert_eq!(c.shape(), (3, 6));
        for r in 0..3 {
            prop_assert_eq!(&c.row(r)[..2], a.row(r));
            prop_assert_eq!(&c.row(r)[2..], b.row(r));
        }
    }

    /// slice_rows inverts vertical composition via gather.
    #[test]
    fn slice_rows_consistent_with_gather(a in matrix(5, 3)) {
        let top = a.slice_rows(0, 2);
        let bottom = a.slice_rows(2, 5);
        prop_assert_eq!(top.rows() + bottom.rows(), 5);
        let regathered = a.gather_rows(&[0, 1]);
        prop_assert!(top.approx_eq(&regathered, 0.0));
        let last = a.gather_rows(&[2, 3, 4]);
        prop_assert!(bottom.approx_eq(&last, 0.0));
    }

    /// Frobenius norm is subadditive (triangle inequality).
    #[test]
    fn frobenius_triangle(a in matrix(3, 3), b in matrix(3, 3)) {
        let sum = a.add(&b);
        prop_assert!(sum.frobenius() <= a.frobenius() + b.frobenius() + 1e-4);
    }

    /// row_max really is the per-row maximum.
    #[test]
    fn row_max_law(a in matrix(4, 5)) {
        let m = a.row_max();
        for r in 0..4 {
            let expect = a.row(r).iter().fold(f32::NEG_INFINITY, |x, &y| x.max(y));
            prop_assert_eq!(m[(r, 0)], expect);
        }
    }

    /// add_scaled is the affine combination it claims to be.
    #[test]
    fn add_scaled_law(a in matrix(2, 3), b in matrix(2, 3), s in -2.0f32..2.0) {
        let mut lhs = a.clone();
        lhs.add_scaled(&b, s);
        let mut scaled_b = b.clone();
        scaled_b.scale(s);
        let rhs = a.add(&scaled_b);
        prop_assert!(lhs.approx_eq(&rhs, 1e-5));
    }
}
