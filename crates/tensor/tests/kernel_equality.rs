//! Property tests pinning the kernel-dispatch determinism contract:
//! the blocked and SIMD kernels must be **bitwise** equal to the naive
//! scalar reference for every matmul variant, across shapes that exercise
//! tile boundaries (non-multiple-of-tile dims, empty, 1×N), sparsity
//! dispatch, and thread counts.

use lrgcn_tensor::kernels::{simd_available, Kernel};
use lrgcn_tensor::matrix::dot;
use lrgcn_tensor::Matrix;
use std::sync::Mutex;

/// The kernel override is process-global, so tests that sweep it must not
/// interleave. (A poisoned lock just means another test already failed.)
static KERNEL_LOCK: Mutex<()> = Mutex::new(());

/// splitmix64-derived pseudo-random floats in [-1, 1).
fn pseudo(n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            (z >> 40) as f32 / (1u64 << 23) as f32 - 1.0
        })
        .collect()
}

/// Same distribution with ~95% of entries zeroed: exercises the sparse
/// dispatch path in the blocked/simd kernels.
fn sparse(n: usize, seed: u64) -> Vec<f32> {
    let mut v = pseudo(n, seed);
    let mut s = seed ^ 0xdead_beef;
    for x in v.iter_mut() {
        s = s.wrapping_add(0x9e3779b97f4a7c15);
        if s % 100 < 95 {
            *x = 0.0;
        }
    }
    v
}

fn assert_bitwise_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} drifted ({x} vs {y})"
        );
    }
}

fn kernels_under_test() -> Vec<Kernel> {
    let mut ks = vec![Kernel::Blocked];
    if simd_available() {
        ks.push(Kernel::Simd);
    }
    ks
}

/// Shapes chosen to hit: empty operands, single rows/cols, exact tile
/// multiples (32), every tail tier (8-wide, scalar), odd sizes, and the
/// degenerate boundaries of the dispatch paths — `k = 0` (no shared dim:
/// the kernels must produce a well-defined all-zero product), `n = 0`
/// (empty right operand), and single-row/single-column operands that keep
/// every tile loop in its tail case.
const SHAPES: [(usize, usize, usize); 15] = [
    (0, 3, 4),
    (1, 1, 1),
    (1, 64, 33),
    (3, 5, 7),
    (4, 64, 64),
    (5, 2, 32),
    (7, 13, 41),
    (8, 64, 96),
    (2, 31, 70),
    (6, 17, 9),
    (3, 0, 5),
    (4, 7, 0),
    (0, 0, 0),
    (1, 40, 1),
    (9, 1, 9),
];

#[test]
fn matmul_kernels_bitwise_match_naive() {
    let _guard = KERNEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for (round, &(m, k, n)) in SHAPES.iter().enumerate() {
        for (dense_a, tag) in [(true, "dense"), (false, "sparse")] {
            let seed = 1000 + round as u64;
            let a_data = if dense_a {
                pseudo(m * k, seed)
            } else {
                sparse(m * k, seed)
            };
            let a = Matrix::from_vec(m, k, a_data);
            let b = Matrix::from_vec(k, n, pseudo(k * n, seed + 500));
            lrgcn_tensor::kernels::set_kernel(Kernel::Naive);
            let reference = a.matmul_with_threads(&b, 1);
            for kern in kernels_under_test() {
                lrgcn_tensor::kernels::set_kernel(kern);
                for threads in [1usize, 3] {
                    let got = a.matmul_with_threads(&b, threads);
                    assert_bitwise_eq(
                        &reference,
                        &got,
                        &format!("matmul {m}x{k}x{n} {tag} {kern:?} t={threads}"),
                    );
                }
            }
        }
    }
    lrgcn_tensor::kernels::set_kernel(Kernel::Naive);
}

#[test]
fn matmul_tn_kernels_bitwise_match_naive() {
    let _guard = KERNEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for (round, &(m, k, n)) in SHAPES.iter().enumerate() {
        // tn: A is k x m (shared dim is A's rows), out is m x n.
        for (dense_a, tag) in [(true, "dense"), (false, "sparse")] {
            let seed = 2000 + round as u64;
            let a_data = if dense_a {
                pseudo(k * m, seed)
            } else {
                sparse(k * m, seed)
            };
            let a = Matrix::from_vec(k, m, a_data);
            let b = Matrix::from_vec(k, n, pseudo(k * n, seed + 500));
            lrgcn_tensor::kernels::set_kernel(Kernel::Naive);
            let reference = a.matmul_tn_with_threads(&b, 1);
            for kern in kernels_under_test() {
                lrgcn_tensor::kernels::set_kernel(kern);
                for threads in [1usize, 3] {
                    let got = a.matmul_tn_with_threads(&b, threads);
                    assert_bitwise_eq(
                        &reference,
                        &got,
                        &format!("matmul_tn {k}x{m} x {k}x{n} {tag} {kern:?} t={threads}"),
                    );
                }
            }
        }
    }
    lrgcn_tensor::kernels::set_kernel(Kernel::Naive);
}

#[test]
fn matmul_nt_kernels_bitwise_match_naive() {
    let _guard = KERNEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for (round, &(m, k, n)) in SHAPES.iter().enumerate() {
        // nt: B is n x k, out is m x n.
        let seed = 3000 + round as u64;
        let a = Matrix::from_vec(m, k, pseudo(m * k, seed));
        let b = Matrix::from_vec(n, k, pseudo(n * k, seed + 500));
        lrgcn_tensor::kernels::set_kernel(Kernel::Naive);
        let reference = a.matmul_nt_with_threads(&b, 1);
        for kern in kernels_under_test() {
            lrgcn_tensor::kernels::set_kernel(kern);
            for threads in [1usize, 3] {
                let got = a.matmul_nt_with_threads(&b, threads);
                assert_bitwise_eq(
                    &reference,
                    &got,
                    &format!("matmul_nt {m}x{k} x {n}x{k}^T {kern:?} t={threads}"),
                );
            }
        }
    }
    lrgcn_tensor::kernels::set_kernel(Kernel::Naive);
}

#[test]
fn nt_blocked_cells_equal_plain_dot_chains() {
    let _guard = KERNEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // The nt speedup keeps eight cells in flight, but each cell must still
    // be the plain sequential dot of its row pair.
    let (m, k, n) = (3, 37, 19);
    let a = Matrix::from_vec(m, k, pseudo(m * k, 42));
    let b = Matrix::from_vec(n, k, pseudo(n * k, 43));
    for kern in kernels_under_test() {
        lrgcn_tensor::kernels::set_kernel(kern);
        let got = a.matmul_nt_with_threads(&b, 1);
        for i in 0..m {
            for j in 0..n {
                let want = dot(a.row(i), b.row(j));
                assert_eq!(got[(i, j)].to_bits(), want.to_bits(), "cell ({i},{j})");
            }
        }
    }
    lrgcn_tensor::kernels::set_kernel(Kernel::Naive);
}

#[test]
fn all_zero_blocks_stay_bitwise_equal_across_kernels() {
    let _guard = KERNEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Fully-zero operands push the blocked/simd block-density dispatch
    // (nz*8 < len) to its extreme: every block takes the sparse branch.
    // The result must still be bitwise-identical to naive — all +0.0, no
    // stray -0.0 from a vectorized path.
    let (m, k, n) = (6, 40, 35);
    let zero_a = Matrix::zeros(m, k);
    let zero_b = Matrix::zeros(k, n);
    let dense_a = Matrix::from_vec(m, k, pseudo(m * k, 77));
    let dense_b = Matrix::from_vec(k, n, pseudo(k * n, 78));
    let cases: [(&Matrix, &Matrix, &str); 3] = [
        (&zero_a, &dense_b, "zero_a"),
        (&dense_a, &zero_b, "zero_b"),
        (&zero_a, &zero_b, "zero_both"),
    ];
    for (a, b, tag) in cases {
        lrgcn_tensor::kernels::set_kernel(Kernel::Naive);
        let reference = a.matmul_with_threads(b, 1);
        for kern in kernels_under_test() {
            lrgcn_tensor::kernels::set_kernel(kern);
            for threads in [1usize, 3] {
                let got = a.matmul_with_threads(b, threads);
                assert_bitwise_eq(&reference, &got, &format!("matmul {tag} {kern:?} t={threads}"));
            }
        }
    }
    // Same boundary for the nt variant (B stored row-major n x k).
    let zero_bt = Matrix::zeros(n, k);
    let dense_bt = Matrix::from_vec(n, k, pseudo(n * k, 79));
    let nt_cases: [(&Matrix, &Matrix, &str); 2] =
        [(&zero_a, &dense_bt, "zero_a"), (&dense_a, &zero_bt, "zero_b")];
    for (a, b, tag) in nt_cases {
        lrgcn_tensor::kernels::set_kernel(Kernel::Naive);
        let reference = a.matmul_nt_with_threads(b, 1);
        for kern in kernels_under_test() {
            lrgcn_tensor::kernels::set_kernel(kern);
            let got = a.matmul_nt_with_threads(b, 1);
            assert_bitwise_eq(&reference, &got, &format!("matmul_nt {tag} {kern:?}"));
        }
    }
    lrgcn_tensor::kernels::set_kernel(Kernel::Naive);
}

#[test]
fn spmm_kernels_bitwise_match_naive_through_csr() {
    let _guard = KERNEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    use lrgcn_graph::Csr;
    // Ragged sparse matrix covering empty rows and long rows.
    let triplets: Vec<(u32, u32, f32)> = (0..200u32)
        .map(|e| {
            let r = (e * 7) % 23;
            let c = (e * 13) % 17;
            (r, c, ((e % 11) as f32 - 5.0) * 0.25)
        })
        .collect();
    let csr = Csr::from_coo(23, 17, triplets);
    for width in [1usize, 8, 31, 32, 33, 64, 70] {
        let dense = pseudo(17 * width, width as u64);
        lrgcn_tensor::kernels::set_kernel(Kernel::Naive);
        let reference = csr.spmm(&dense, width);
        for kern in kernels_under_test() {
            lrgcn_tensor::kernels::set_kernel(kern);
            let serial = csr.spmm(&dense, width);
            let mut parallel = vec![0.0f32; 23 * width];
            csr.spmm_into_parallel(&dense, width, &mut parallel, 4);
            for (what, got) in [("serial", &serial), ("parallel", &parallel)] {
                assert!(
                    got.iter()
                        .zip(&reference)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "spmm {what} {kern:?} width={width} drifted from naive"
                );
            }
        }
    }
    lrgcn_tensor::kernels::set_kernel(Kernel::Naive);
}
