//! Bitwise-equality guarantees of the parallel kernels: for every thread
//! count, the parallel matmul family and the tape's SpMM forward/backward
//! must produce *bit-for-bit* the same floats as serial execution. This is
//! the contract that makes `LRGCN_THREADS` a pure performance knob.

use lrgcn_graph::Csr;
use lrgcn_tensor::{par, Matrix, SharedCsr, Tape};

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Deterministic pseudo-random matrix (splitmix64-style mixing, no RNG
/// state shared between tests).
fn pseudo_random(rows: usize, cols: usize, salt: u64) -> Matrix {
    let data = (0..rows * cols)
        .map(|i| {
            let mut z = (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            ((z >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn assert_bitwise_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x} vs {y})"
        );
    }
}

#[test]
fn matmul_family_is_bitwise_identical_across_threads() {
    let a = pseudo_random(37, 19, 1);
    let b = pseudo_random(19, 23, 2);
    let c = pseudo_random(37, 23, 3);
    let serial_nn = a.matmul_with_threads(&b, 1);
    let serial_tn = a.matmul_tn_with_threads(&c, 1);
    let serial_nt = a.matmul_nt_with_threads(&pseudo_random(41, 19, 4), 1);
    for &t in &THREAD_COUNTS {
        assert_bitwise_eq(
            &a.matmul_with_threads(&b, t),
            &serial_nn,
            &format!("matmul threads={t}"),
        );
        assert_bitwise_eq(
            &a.matmul_tn_with_threads(&c, t),
            &serial_tn,
            &format!("matmul_tn threads={t}"),
        );
        assert_bitwise_eq(
            &a.matmul_nt_with_threads(&pseudo_random(41, 19, 4), t),
            &serial_nt,
            &format!("matmul_nt threads={t}"),
        );
    }
}

#[test]
fn matmul_with_threads_matches_plain_methods() {
    // The plain methods route through the globally configured thread count;
    // values must equal the explicit-threads variants bit-for-bit.
    let a = pseudo_random(24, 16, 7);
    let b = pseudo_random(16, 24, 8);
    assert_bitwise_eq(&a.matmul(&b), &a.matmul_with_threads(&b, 1), "matmul");
    assert_bitwise_eq(&a.matmul_tn(&a), &a.matmul_tn_with_threads(&a, 1), "matmul_tn");
    assert_bitwise_eq(&a.matmul_nt(&b.transpose()), &a.matmul_nt_with_threads(&b.transpose(), 1), "matmul_nt");
}

/// Builds a ring-of-users adjacency big enough that the parallel SpMM
/// actually splits across threads.
fn ring_adjacency(n: usize) -> SharedCsr {
    let mut coo = Vec::new();
    for i in 0..n {
        let j = (i + 1) % n;
        coo.push((i as u32, j as u32, 0.5));
        coo.push((j as u32, i as u32, 0.5));
    }
    SharedCsr::new(Csr::from_coo(n, n, coo))
}

fn spmm_value_and_grad(adj: &SharedCsr, x0: &Matrix) -> (Matrix, Matrix) {
    let mut tape = Tape::new();
    let x = tape.leaf(x0.clone());
    let y = tape.spmm(adj, x);
    let sq = tape.mul(y, y);
    let loss = tape.sum(sq);
    tape.backward(loss);
    let value = tape.value(y).clone();
    let grad = tape.take_grad(x).expect("leaf grad");
    (value, grad)
}

#[test]
fn spmm_forward_and_gradient_bitwise_identical_across_threads() {
    let n = 96;
    let adj = ring_adjacency(n);
    let x0 = pseudo_random(n, 8, 11);
    par::set_threads(1);
    let (v1, g1) = spmm_value_and_grad(&adj, &x0);
    for &t in &THREAD_COUNTS {
        par::set_threads(t);
        let (vt, gt) = spmm_value_and_grad(&adj, &x0);
        assert_bitwise_eq(&vt, &v1, &format!("spmm forward threads={t}"));
        assert_bitwise_eq(&gt, &g1, &format!("spmm gradient threads={t}"));
    }
    par::set_threads(1);
}

#[test]
fn elementwise_map_bitwise_identical_across_threads() {
    let a = pseudo_random(200, 16, 21);
    par::set_threads(1);
    let serial = a.map(|x| 1.0 / (1.0 + (-x).exp()));
    for &t in &THREAD_COUNTS {
        par::set_threads(t);
        let par_out = a.map(|x| 1.0 / (1.0 + (-x).exp()));
        assert_bitwise_eq(&par_out, &serial, &format!("map threads={t}"));
        let mut inplace = a.clone();
        inplace.map_inplace(|x| 1.0 / (1.0 + (-x).exp()));
        assert_bitwise_eq(&inplace, &serial, &format!("map_inplace threads={t}"));
    }
    par::set_threads(1);
}
