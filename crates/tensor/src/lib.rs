//! # lrgcn-tensor — dense linear algebra and autodiff for the LayerGCN reproduction
//!
//! A deliberately small deep-learning substrate, sized for the models of the
//! LayerGCN paper (Zhou et al., ICDE 2023):
//!
//! * [`matrix::Matrix`] — row-major dense `f32` matrices;
//! * [`kernels`] — the naive / cache-blocked / AVX2 micro-kernels behind
//!   every hot loop, selected by `LRGCN_KERNEL` and bitwise identical to
//!   each other for finite inputs;
//! * [`quant::QuantizedTable`] — int8 symmetric row quantization with an
//!   i32-accumulate dot kernel, the serving read path's first stage;
//! * [`tape::Tape`] — tape-based reverse-mode autodiff whose op set covers
//!   every model in `lrgcn-models` (sparse propagation, embedding gathers,
//!   LayerGCN's row-wise cosine refinement, MLP layers, BPR/VAE losses);
//! * [`optim`] — Adam / SGD and BUIR's EMA target update;
//! * [`init`] — Xavier initializers (§V-A4 of the paper);
//! * [`grad_check`] — finite-difference validation used heavily in tests.
//!
//! ## Example: one BPR step on raw embeddings
//! ```
//! use lrgcn_tensor::{Matrix, Tape, optim::{Adam, Param}};
//! use std::rc::Rc;
//!
//! let mut emb = Param::new(Matrix::from_vec(4, 2, vec![0.1; 8]));
//! let mut adam = Adam::new(0.01);
//!
//! let mut tape = Tape::new();
//! let e = tape.leaf(emb.value().clone());
//! let u = tape.gather(e, Rc::new(vec![0, 1]));
//! let pos = tape.gather(e, Rc::new(vec![2, 3]));
//! let neg = tape.gather(e, Rc::new(vec![3, 2]));
//! let ps = tape.row_dot(u, pos);
//! let ns = tape.row_dot(u, neg);
//! let diff = tape.sub(ns, ps);
//! let sp = tape.softplus(diff);
//! let loss = tape.mean_all(sp);
//! tape.backward(loss);
//! let g = tape.take_grad(e).unwrap();
//! adam.begin_step();
//! adam.update(&mut emb, &g);
//! ```

pub mod faultfs;
pub mod grad_check;
pub mod init;
pub mod io;
pub mod kernels;
pub mod matrix;
pub mod optim;
pub mod par;
pub mod quant;
pub mod tape;

pub use kernels::Kernel;
pub use matrix::Matrix;
pub use quant::QuantizedTable;
pub use optim::{Adam, Param, Sgd};
pub use tape::{SharedCsr, Tape, Var};
