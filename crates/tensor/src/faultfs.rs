//! Deterministic IO fault injection for checkpoint save/load paths.
//!
//! Enabled by the `LRGCN_FAULT` environment variable, a comma-separated
//! list of clauses:
//!
//! ```text
//! io_error:<p>     probabilistic write failure during save (torn .tmp left)
//! short_read:<p>   probabilistic truncated read during load
//! torn_write:save  every save fails after a partial write (deterministic)
//! kill:<n>         abort the process mid-way through the n-th save (1-based)
//! panic:<n>        panic mid-way through the n-th save (1-based)
//! ```
//!
//! Probabilistic clauses draw from a splitmix64 keyed by `LRGCN_FAULT_SEED`
//! (default `0x5eed`) and a per-operation counter, so a given spec + seed
//! injects the same faults at the same operations on every run — fault
//! scenarios are replayable. Clauses are checked in spec order; the first
//! that fires wins.
//!
//! A fault during save always leaves a *torn* temporary file (the first half
//! of the serialized bytes) and never the final path, which is what the
//! crash-consistency tests rely on: the newest complete generation stays
//! loadable no matter where the fault lands.
//!
//! Tests that need injection without touching the process environment can
//! install a thread-local plan with [`set_thread_override`]; it shadows the
//! env-derived plan on that thread only, so parallel tests don't interfere.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// One parsed clause of a fault spec.
#[derive(Clone, Debug, PartialEq)]
enum Clause {
    IoError(f64),
    ShortRead(f64),
    TornWriteSave,
    Kill(u64),
    Panic(u64),
}

/// A parsed `LRGCN_FAULT` spec plus its draw seed.
#[derive(Clone, Debug)]
pub struct Plan {
    clauses: Vec<Clause>,
    seed: u64,
}

impl Plan {
    /// Parses a spec like `io_error:0.1,torn_write:save`. Unknown clause
    /// kinds or malformed arguments are errors — a fault plan that silently
    /// does nothing would make the injection tests vacuous.
    pub fn parse(spec: &str, seed: u64) -> Result<Plan, String> {
        let mut clauses = Vec::new();
        for raw in spec.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let (kind, arg) = raw
                .split_once(':')
                .ok_or_else(|| format!("clause {raw:?} missing ':<arg>'"))?;
            let prob = |a: &str| -> Result<f64, String> {
                let p: f64 = a
                    .parse()
                    .map_err(|_| format!("clause {raw:?}: bad probability {a:?}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("clause {raw:?}: probability {p} out of [0,1]"));
                }
                Ok(p)
            };
            let count = |a: &str| -> Result<u64, String> {
                a.parse()
                    .map_err(|_| format!("clause {raw:?}: bad count {a:?}"))
            };
            clauses.push(match kind {
                "io_error" => Clause::IoError(prob(arg)?),
                "short_read" => Clause::ShortRead(prob(arg)?),
                "torn_write" if arg == "save" => Clause::TornWriteSave,
                "kill" => Clause::Kill(count(arg)?),
                "panic" => Clause::Panic(count(arg)?),
                _ => return Err(format!("unknown fault clause {raw:?}")),
            });
        }
        Ok(Plan { clauses, seed })
    }
}

/// The injected outcome for a save operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum SaveFault {
    /// Leave a torn `.tmp` and return an IO error.
    Error,
    /// Leave a torn `.tmp` and abort the process (simulated SIGKILL).
    Kill,
    /// Leave a torn `.tmp` and panic (exercises the panic hook).
    Panic,
}

struct ThreadState {
    plan: Plan,
    save_ops: u64,
    read_ops: u64,
    append_ops: u64,
}

thread_local! {
    static OVERRIDE: RefCell<Option<ThreadState>> = const { RefCell::new(None) };
}

static SAVE_OPS: AtomicU64 = AtomicU64::new(0);
static READ_OPS: AtomicU64 = AtomicU64::new(0);
static APPEND_OPS: AtomicU64 = AtomicU64::new(0);

fn env_plan() -> Option<&'static Plan> {
    static PLAN: OnceLock<Option<Plan>> = OnceLock::new();
    PLAN.get_or_init(|| {
        let spec = std::env::var("LRGCN_FAULT").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        let seed = std::env::var("LRGCN_FAULT_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5eed);
        match Plan::parse(&spec, seed) {
            Ok(plan) => Some(plan),
            Err(err) => {
                eprintln!("lrgcn: ignoring invalid LRGCN_FAULT: {err}");
                None
            }
        }
    })
    .as_ref()
}

/// Installs (or with `None`, removes) a thread-local fault plan that shadows
/// the `LRGCN_FAULT` environment variable on the current thread. Intended
/// for tests; operation counters restart at zero on each install.
pub fn set_thread_override(spec: Option<&str>) -> Result<(), String> {
    let state = match spec {
        Some(s) => Some(ThreadState {
            plan: Plan::parse(s, 0x5eed)?,
            save_ops: 0,
            read_ops: 0,
            append_ops: 0,
        }),
        None => None,
    };
    OVERRIDE.with(|o| *o.borrow_mut() = state);
    Ok(())
}

/// splitmix64-finalized uniform draw in `[0,1)`, keyed by (seed, clause
/// index, operation index) so every clause sees an independent stream.
fn unit(seed: u64, stream: u64, op: u64) -> f64 {
    let mut z = seed
        ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ op.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn decide_save(plan: &Plan, op: u64) -> Option<SaveFault> {
    for (i, clause) in plan.clauses.iter().enumerate() {
        match clause {
            Clause::TornWriteSave => return Some(SaveFault::Error),
            Clause::IoError(p) if unit(plan.seed, i as u64, op) < *p => {
                return Some(SaveFault::Error)
            }
            Clause::Kill(n) if op == *n => return Some(SaveFault::Kill),
            Clause::Panic(n) if op == *n => return Some(SaveFault::Panic),
            _ => {}
        }
    }
    None
}

/// Appends share the probabilistic `io_error` clauses with saves (on an
/// independent draw stream / op counter); the save-specific clauses
/// (`torn_write:save`, `kill`, `panic`) do not apply to appends.
fn decide_append(plan: &Plan, op: u64) -> bool {
    plan.clauses.iter().enumerate().any(|(i, clause)| {
        matches!(clause, Clause::IoError(p) if unit(plan.seed, i as u64 ^ 0xA99E, op) < *p)
    })
}

fn decide_read(plan: &Plan, op: u64) -> bool {
    plan.clauses.iter().enumerate().any(|(i, clause)| {
        matches!(clause, Clause::ShortRead(p) if unit(plan.seed, i as u64, op) < *p)
    })
}

/// Consulted once per [`crate::io::save_checkpoint`] call.
pub(crate) fn save_fault() -> Option<SaveFault> {
    OVERRIDE.with(|o| {
        if let Some(st) = o.borrow_mut().as_mut() {
            st.save_ops += 1;
            return decide_save(&st.plan, st.save_ops);
        }
        let plan = env_plan()?;
        let op = SAVE_OPS.fetch_add(1, Ordering::SeqCst) + 1;
        decide_save(plan, op)
    })
}

/// Consulted once per [`crate::io::load_checkpoint`] call; `true` means the
/// read must be truncated.
pub(crate) fn read_fault() -> bool {
    OVERRIDE.with(|o| {
        if let Some(st) = o.borrow_mut().as_mut() {
            st.read_ops += 1;
            return decide_read(&st.plan, st.read_ops);
        }
        match env_plan() {
            Some(plan) => {
                let op = READ_OPS.fetch_add(1, Ordering::SeqCst) + 1;
                decide_read(plan, op)
            }
            None => false,
        }
    })
}

/// Consulted once per event-log append (see `lrgcn-stream`); `true` means
/// the append must fail after a partial (torn) write.
pub fn append_fault() -> bool {
    OVERRIDE.with(|o| {
        if let Some(st) = o.borrow_mut().as_mut() {
            st.append_ops += 1;
            return decide_append(&st.plan, st.append_ops);
        }
        match env_plan() {
            Some(plan) => {
                let op = APPEND_OPS.fetch_add(1, Ordering::SeqCst) + 1;
                decide_append(plan, op)
            }
            None => false,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_clause_kind() {
        let plan =
            Plan::parse("io_error:0.25, short_read:1.0,torn_write:save,kill:3,panic:1", 7)
                .expect("valid spec");
        assert_eq!(
            plan.clauses,
            vec![
                Clause::IoError(0.25),
                Clause::ShortRead(1.0),
                Clause::TornWriteSave,
                Clause::Kill(3),
                Clause::Panic(1),
            ]
        );
        assert!(Plan::parse("", 0).expect("empty ok").clauses.is_empty());
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "io_error",
            "io_error:nan_is_fine_no",
            "io_error:1.5",
            "torn_write:load",
            "kill:-1",
            "flip_bits:0.1",
        ] {
            assert!(Plan::parse(bad, 0).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn draws_are_deterministic_and_respect_probability() {
        let plan = Plan::parse("io_error:0.3", 42).unwrap();
        let hits: Vec<bool> = (1..=10_000)
            .map(|op| decide_save(&plan, op).is_some())
            .collect();
        let again: Vec<bool> = (1..=10_000)
            .map(|op| decide_save(&plan, op).is_some())
            .collect();
        assert_eq!(hits, again, "same plan + op must draw identically");
        let frac = hits.iter().filter(|&&h| h).count() as f64 / hits.len() as f64;
        assert!((frac - 0.3).abs() < 0.02, "hit fraction {frac}");
    }

    #[test]
    fn kill_and_panic_target_exact_ops() {
        let plan = Plan::parse("kill:3,panic:5", 0).unwrap();
        assert_eq!(decide_save(&plan, 1), None);
        assert_eq!(decide_save(&plan, 3), Some(SaveFault::Kill));
        assert_eq!(decide_save(&plan, 5), Some(SaveFault::Panic));
        assert_eq!(decide_save(&plan, 6), None);
    }

    #[test]
    fn torn_write_fires_every_save_but_not_reads() {
        let plan = Plan::parse("torn_write:save", 0).unwrap();
        for op in 1..=5 {
            assert_eq!(decide_save(&plan, op), Some(SaveFault::Error));
            assert!(!decide_read(&plan, op));
        }
    }

    #[test]
    fn thread_override_shadows_env_and_counts_ops() {
        set_thread_override(Some("kill:2")).unwrap();
        assert_eq!(save_fault(), None, "op 1 clean");
        assert_eq!(save_fault(), Some(SaveFault::Kill), "op 2 killed");
        set_thread_override(None).unwrap();
        assert_eq!(save_fault(), None, "override removed");
    }
}
