//! Zero-dependency parallel execution layer on [`std::thread::scope`].
//!
//! Every data-parallel kernel in the workspace (dense matmul, tape SpMM,
//! ranking evaluation, batch scoring) fans out through the helpers in this
//! module. Three invariants keep parallel execution **bitwise identical**
//! to serial execution:
//!
//! 1. Work is split by *rows* into contiguous blocks with a fixed
//!    partitioning scheme ([`partition`]) — a pure function of
//!    `(n_rows, threads)`.
//! 2. Each output row is written by exactly one thread; threads never share
//!    a reduction.
//! 3. Within a row, the arithmetic (loop order, accumulation order) is the
//!    same code path as the serial kernel.
//!
//! Since every row's value is computed by identical scalar code regardless
//! of which thread runs it, the result cannot depend on the thread count.
//!
//! ## Thread-count resolution
//!
//! The global thread count is resolved once, in priority order:
//! `LRGCN_THREADS` environment variable → [`set_threads`] override (e.g.
//! from the CLI `--threads` flag) → [`std::thread::available_parallelism`].
//! Kernels take an explicit `threads` argument in their `*_with_threads`
//! variants (used by the equality tests); the plain variants use
//! [`effective_threads`].
//!
//! ## Nested parallelism
//!
//! Worker closures run with a thread-local "inside a parallel region" flag
//! set, and [`effective_threads`] reports `1` while the flag is active, so
//! a kernel invoked from inside another parallel region (e.g. a model's
//! `matmul_nt` called from a parallel ranking-evaluation worker) runs
//! serially instead of oversubscribing the machine with nested spawns.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global thread count; `0` means "not resolved yet".
static THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// The resolved global thread count (≥ 1).
///
/// First call reads `LRGCN_THREADS` (a positive integer) and falls back to
/// [`std::thread::available_parallelism`]; the result is cached. A later
/// [`set_threads`] call replaces it.
pub fn configured_threads() -> usize {
    let cur = THREADS.load(Ordering::Relaxed);
    if cur != 0 {
        return cur;
    }
    let resolved = resolve_default();
    // Racing first calls resolve to the same value, so which store wins
    // does not matter.
    THREADS.store(resolved, Ordering::Relaxed);
    resolved
}

fn resolve_default() -> usize {
    if let Ok(s) = std::env::var("LRGCN_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
        eprintln!("warning: ignoring invalid LRGCN_THREADS={s:?} (want a positive integer)");
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Overrides the global thread count (clamped to ≥ 1). Used by the CLI
/// `--threads` flag; takes precedence over everything resolved before it.
pub fn set_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Whether the current thread is executing inside one of this module's
/// parallel regions.
pub fn in_parallel_region() -> bool {
    IN_PARALLEL_REGION.with(|c| c.get())
}

/// The thread count kernels should use *right now*: `1` inside a parallel
/// region (no nested spawning), [`configured_threads`] otherwise.
pub fn effective_threads() -> usize {
    if in_parallel_region() {
        1
    } else {
        configured_threads()
    }
}

fn with_region_flag<R>(f: impl FnOnce() -> R) -> R {
    IN_PARALLEL_REGION.with(|c| c.set(true));
    let out = f();
    IN_PARALLEL_REGION.with(|c| c.set(false));
    out
}

/// Fixed row partitioning: splits `0..n` into at most `parts` contiguous
/// ranges of `ceil(n / parts)` rows each (the last may be shorter). Pure in
/// `(n, parts)` — the same inputs always produce the same split.
pub fn partition(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1);
    let per = n.div_ceil(parts).max(1);
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    while start < n {
        let end = (start + per).min(n);
        out.push(start..end);
        start = end;
    }
    out
}

/// How many threads a kernel over `n_rows` rows should actually spawn:
/// `requested`, clamped so tiny workloads (fewer than two rows per thread)
/// stay serial. Only affects *where* rows run, never their values.
fn clamp_threads(requested: usize, n_rows: usize) -> usize {
    let requested = requested.max(1);
    if requested == 1 || n_rows < 2 * requested {
        1
    } else {
        requested
    }
}

/// Runs `f` on contiguous row ranges of `0..n_rows`, fanning out across up
/// to `threads` scoped threads. `f` must only touch state it owns per-range
/// (use [`par_row_chunks_mut`] when ranges need disjoint mutable output).
pub fn par_ranges(n_rows: usize, threads: usize, f: impl Fn(Range<usize>) + Sync) {
    let threads = clamp_threads(threads, n_rows);
    if threads <= 1 {
        if n_rows > 0 {
            f(0..n_rows);
        }
        return;
    }
    let ranges = partition(n_rows, threads);
    std::thread::scope(|scope| {
        for r in ranges {
            let f = &f;
            scope.spawn(move || with_region_flag(|| f(r)));
        }
    });
}

/// Splits `data` (a row-major buffer of `row_width`-element rows) into
/// contiguous row blocks and runs `f(start_row, block)` on each, fanning
/// out across up to `threads` scoped threads. Blocks are disjoint `&mut`
/// slices, so each row is written by exactly one thread.
///
/// # Panics
/// Panics if `row_width` is zero or does not divide `data.len()`.
pub fn par_row_chunks_mut<T: Send>(
    data: &mut [T],
    row_width: usize,
    threads: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(row_width > 0, "row_width must be positive");
    assert_eq!(data.len() % row_width, 0, "buffer is not whole rows");
    let n_rows = data.len() / row_width;
    let threads = clamp_threads(threads, n_rows);
    if threads <= 1 {
        if !data.is_empty() {
            f(0, data);
        }
        return;
    }
    let ranges = partition(n_rows, threads);
    std::thread::scope(|scope| {
        let mut rest = data;
        for r in ranges {
            let (chunk, tail) = rest.split_at_mut((r.end - r.start) * row_width);
            rest = tail;
            let f = &f;
            let start_row = r.start;
            scope.spawn(move || with_region_flag(|| f(start_row, chunk)));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_contiguous_and_complete() {
        for n in [0usize, 1, 2, 3, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 8, 64] {
                let ranges = partition(n, parts);
                assert!(ranges.len() <= parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(r.end > r.start);
                    next = r.end;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn partition_is_deterministic() {
        assert_eq!(partition(10, 3), partition(10, 3));
        assert_eq!(partition(10, 3), vec![0..4, 4..8, 8..10]);
    }

    #[test]
    fn row_chunks_cover_all_rows_once() {
        for threads in [1usize, 2, 3, 8] {
            let mut buf = vec![0u32; 40 * 3];
            par_row_chunks_mut(&mut buf, 3, threads, |start_row, chunk| {
                for (i, row) in chunk.chunks_exact_mut(3).enumerate() {
                    for x in row.iter_mut() {
                        *x += (start_row + i) as u32;
                    }
                }
            });
            let want: Vec<u32> = (0..40u32).flat_map(|r| [r, r, r]).collect();
            assert_eq!(buf, want, "threads={threads}");
        }
    }

    #[test]
    fn nested_regions_run_serial() {
        let flags = std::sync::Mutex::new(Vec::new());
        par_ranges(8, 2, |_r| {
            // Inside a region: effective_threads must report 1 so nested
            // kernels do not spawn again.
            flags.lock().unwrap().push(effective_threads());
        });
        let flags = flags.into_inner().unwrap();
        assert!(!flags.is_empty());
        assert!(flags.iter().all(|&t| t == 1), "{flags:?}");
        // Back outside: the flag is cleared.
        assert!(!in_parallel_region());
    }

    #[test]
    fn set_threads_overrides() {
        // Other tests share the global, so only check the set->get contract.
        let before = configured_threads();
        set_threads(5);
        assert_eq!(configured_threads(), 5);
        set_threads(0); // clamped
        assert_eq!(configured_threads(), 1);
        set_threads(before);
    }

    #[test]
    fn tiny_workloads_stay_serial() {
        assert_eq!(clamp_threads(8, 15), 1);
        assert_eq!(clamp_threads(8, 16), 8);
        assert_eq!(clamp_threads(1, 1_000_000), 1);
    }
}
