//! Optimizers.
//!
//! The paper trains every model with Adam (§V-A4); [`Adam`] follows Kingma &
//! Ba (2015) with bias correction. [`Sgd`] exists for tests and ablations,
//! and [`ema_update`] implements the momentum (exponential-moving-average)
//! target-network update that BUIR requires.

use crate::matrix::Matrix;

/// A trainable parameter: its value plus per-element Adam moments.
#[derive(Clone, Debug)]
pub struct Param {
    value: Matrix,
    m: Matrix,
    v: Matrix,
}

impl Param {
    /// Wraps an initialized value with zeroed optimizer state.
    pub fn new(value: Matrix) -> Self {
        let (r, c) = value.shape();
        Self {
            value,
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
        }
    }

    pub fn value(&self) -> &Matrix {
        &self.value
    }

    pub fn value_mut(&mut self) -> &mut Matrix {
        &mut self.value
    }

    /// Replaces the value, resetting optimizer state if the shape changed.
    pub fn set_value(&mut self, value: Matrix) {
        if value.shape() != self.value.shape() {
            let (r, c) = value.shape();
            self.m = Matrix::zeros(r, c);
            self.v = Matrix::zeros(r, c);
        }
        self.value = value;
    }

    /// The Adam first-moment estimate (`m`), for checkpointing.
    pub fn adam_m(&self) -> &Matrix {
        &self.m
    }

    /// The Adam second-moment estimate (`v`), for checkpointing.
    pub fn adam_v(&self) -> &Matrix {
        &self.v
    }

    /// Restores previously checkpointed Adam moments. Both matrices must
    /// match the parameter's shape; an exact resume is impossible otherwise.
    pub fn set_adam_state(&mut self, m: Matrix, v: Matrix) -> Result<(), String> {
        if m.shape() != self.value.shape() || v.shape() != self.value.shape() {
            return Err(format!(
                "adam moment shape mismatch: param {:?}, m {:?}, v {:?}",
                self.value.shape(),
                m.shape(),
                v.shape()
            ));
        }
        self.m = m;
        self.v = v;
        Ok(())
    }
}

/// Adam optimizer (Kingma & Ba, ICLR 2015) with bias-corrected moments.
#[derive(Clone, Debug)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    t: u64,
}

impl Adam {
    /// Default hyper-parameters (`β1 = 0.9`, `β2 = 0.999`, `ε = 1e-8`).
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }

    /// Number of completed steps.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Restores the step counter from a checkpoint. Bias correction depends
    /// on `t`, so an exact resume must bring it back verbatim.
    pub fn set_steps(&mut self, t: u64) {
        self.t = t;
    }

    /// Starts a new optimization step (increments the shared timestep). Call
    /// once per batch, before updating the batch's parameters.
    pub fn begin_step(&mut self) {
        self.t += 1;
    }

    /// Applies one Adam update to `param` given gradient `grad`.
    ///
    /// # Panics
    /// Panics if shapes mismatch or `begin_step` was never called.
    pub fn update(&self, param: &mut Param, grad: &Matrix) {
        assert!(self.t > 0, "call begin_step() before update()");
        assert_eq!(param.value.shape(), grad.shape(), "gradient shape mismatch");
        let (b1, b2) = (self.beta1, self.beta2);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let vd = param.value.data_mut();
        let md = param.m.data_mut();
        let sd = param.v.data_mut();
        for i in 0..vd.len() {
            let g = grad.data()[i];
            md[i] = b1 * md[i] + (1.0 - b1) * g;
            sd[i] = b2 * sd[i] + (1.0 - b2) * g * g;
            let mhat = md[i] / bc1;
            let vhat = sd[i] / bc2;
            vd[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

/// Plain stochastic gradient descent.
#[derive(Clone, Debug)]
pub struct Sgd {
    pub lr: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self { lr }
    }

    pub fn update(&self, param: &mut Param, grad: &Matrix) {
        param.value.add_scaled(grad, -self.lr);
    }
}

/// Rescales `grad` in place so its global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm. Standard stabilizer for losses with
/// occasionally exploding gradients (e.g. contrastive terms on
/// small-magnitude embeddings).
pub fn clip_grad_norm(grad: &mut Matrix, max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let norm = grad.frobenius();
    if norm > max_norm {
        grad.scale(max_norm / norm);
    }
    norm
}

/// Exponential-moving-average update used for BUIR's target network:
/// `target = momentum * target + (1 - momentum) * online`.
pub fn ema_update(target: &mut Matrix, online: &Matrix, momentum: f32) {
    assert!((0.0..=1.0).contains(&momentum), "momentum must be in [0,1]");
    assert_eq!(target.shape(), online.shape(), "ema shape mismatch");
    for (t, &o) in target.data_mut().iter_mut().zip(online.data()) {
        *t = momentum * *t + (1.0 - momentum) * o;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)^2 and check convergence to 3.
    #[test]
    fn adam_minimizes_quadratic() {
        let mut p = Param::new(Matrix::from_vec(1, 1, vec![0.0]));
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            let x = p.value().data()[0];
            let grad = Matrix::from_vec(1, 1, vec![2.0 * (x - 3.0)]);
            adam.begin_step();
            adam.update(&mut p, &grad);
        }
        assert!((p.value().data()[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, |Δx| of the very first step equals lr
        // (for any nonzero gradient, up to eps).
        let mut p = Param::new(Matrix::from_vec(1, 1, vec![1.0]));
        let mut adam = Adam::new(0.05);
        adam.begin_step();
        adam.update(&mut p, &Matrix::from_vec(1, 1, vec![123.0]));
        assert!((p.value().data()[0] - (1.0 - 0.05)).abs() < 1e-4);
    }

    #[test]
    fn sgd_step_is_linear() {
        let mut p = Param::new(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        Sgd::new(0.5).update(&mut p, &Matrix::from_vec(1, 2, vec![2.0, -4.0]));
        assert_eq!(p.value().data(), &[0.0, 4.0]);
    }

    #[test]
    fn ema_blends() {
        let mut t = Matrix::from_vec(1, 2, vec![0.0, 10.0]);
        let o = Matrix::from_vec(1, 2, vec![10.0, 0.0]);
        ema_update(&mut t, &o, 0.9);
        assert!(t.approx_eq(&Matrix::from_vec(1, 2, vec![1.0, 9.0]), 1e-6));
        // momentum = 1 freezes the target.
        let before = t.clone();
        ema_update(&mut t, &o, 1.0);
        assert_eq!(t, before);
    }

    #[test]
    fn set_value_resets_state_on_reshape() {
        let mut p = Param::new(Matrix::zeros(2, 2));
        let mut adam = Adam::new(0.1);
        adam.begin_step();
        adam.update(&mut p, &Matrix::full(2, 2, 1.0));
        p.set_value(Matrix::zeros(3, 3));
        assert_eq!(p.value().shape(), (3, 3));
        adam.begin_step();
        adam.update(&mut p, &Matrix::full(3, 3, 1.0));
        assert!(!p.value().has_non_finite());
    }

    #[test]
    fn clipping_preserves_direction_and_caps_norm() {
        let mut g = Matrix::from_vec(1, 2, vec![3.0, 4.0]); // norm 5
        let pre = clip_grad_norm(&mut g, 1.0);
        assert_eq!(pre, 5.0);
        assert!((g.frobenius() - 1.0).abs() < 1e-6);
        assert!((g.data()[0] / g.data()[1] - 0.75).abs() < 1e-6);
        // Below the cap: untouched.
        let mut small = Matrix::from_vec(1, 2, vec![0.3, 0.4]);
        clip_grad_norm(&mut small, 1.0);
        assert_eq!(small.data(), &[0.3, 0.4]);
    }

    #[test]
    fn adam_state_roundtrip_resumes_exactly() {
        // Train 10 steps; checkpoint at step 5; replay the tail from the
        // checkpoint and require bitwise-equal parameters.
        let grad_at = |x: f32| Matrix::from_vec(1, 1, vec![2.0 * (x - 3.0)]);
        let mut p = Param::new(Matrix::from_vec(1, 1, vec![0.0]));
        let mut adam = Adam::new(0.1);
        let mut mid = None;
        for step in 0..10 {
            if step == 5 {
                mid = Some((p.value().clone(), p.adam_m().clone(), p.adam_v().clone(), adam.steps()));
            }
            let g = grad_at(p.value().data()[0]);
            adam.begin_step();
            adam.update(&mut p, &g);
        }
        let (val, m, v, t) = mid.unwrap();
        let mut q = Param::new(val);
        q.set_adam_state(m, v).unwrap();
        let mut adam2 = Adam::new(0.1);
        adam2.set_steps(t);
        for _ in 5..10 {
            let g = grad_at(q.value().data()[0]);
            adam2.begin_step();
            adam2.update(&mut q, &g);
        }
        assert_eq!(p.value().data(), q.value().data());
        assert_eq!(p.adam_m().data(), q.adam_m().data());
        assert_eq!(p.adam_v().data(), q.adam_v().data());
    }

    #[test]
    fn set_adam_state_rejects_shape_mismatch() {
        let mut p = Param::new(Matrix::zeros(2, 2));
        let err = p.set_adam_state(Matrix::zeros(1, 2), Matrix::zeros(2, 2));
        assert!(err.is_err());
    }

    #[test]
    #[should_panic(expected = "begin_step")]
    fn update_requires_begin_step() {
        let mut p = Param::new(Matrix::zeros(1, 1));
        Adam::new(0.1).update(&mut p, &Matrix::zeros(1, 1));
    }
}
