//! Tape-based reverse-mode automatic differentiation.
//!
//! Every training step in this workspace builds a fresh [`Tape`], records a
//! computation over [`Matrix`] values, calls [`Tape::backward`] on a scalar
//! loss, and reads gradients back for the optimizer. Nodes store an op
//! enum (not closures), which keeps the tape a plain data structure: parents
//! always precede children, so backward is a single reverse sweep with a
//! `match` per node.
//!
//! The op set is exactly what the paper's ten models need: dense/sparse
//! matmuls, row gathering (embedding lookup), the row-wise cosine similarity
//! of LayerGCN's refinement step (Eq. 6–8), broadcasts, standard
//! nonlinearities and reductions. Every backward rule is verified against
//! central finite differences by the tests in [`crate::grad_check`].

use crate::matrix::{dot, Matrix};
use crate::par;
use lrgcn_graph::Csr;
use std::rc::Rc;
use std::sync::Arc;

/// Handle to a node on a [`Tape`]. Only valid for the tape that created it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

/// A sparse matrix shared with the tape, with its transpose precomputed for
/// the backward pass. For symmetric matrices (every normalized adjacency in
/// this workspace) the transpose shares the same allocation. `Arc`-backed so
/// models holding one are `Send + Sync` and can be scored from the parallel
/// evaluation workers.
#[derive(Clone)]
pub struct SharedCsr {
    fwd: Arc<Csr>,
    bwd: Arc<Csr>,
}

impl SharedCsr {
    /// Wraps a sparse matrix, computing (or aliasing) its transpose.
    pub fn new(m: Csr) -> Self {
        if m.is_symmetric(0.0) {
            let fwd = Arc::new(m);
            Self {
                bwd: Arc::clone(&fwd),
                fwd,
            }
        } else {
            let bwd = Arc::new(m.transpose());
            Self {
                fwd: Arc::new(m),
                bwd,
            }
        }
    }

    pub fn matrix(&self) -> &Csr {
        &self.fwd
    }

    pub fn transpose(&self) -> &Csr {
        &self.bwd
    }
}

/// The operation that produced a tape node.
enum Op {
    Leaf,
    Add(Var, Var),
    Sub(Var, Var),
    /// Elementwise product.
    Mul(Var, Var),
    // The scalar is only needed in the forward pass (d(x+s)/dx = 1), but is
    // kept for debuggability of recorded tapes.
    AddScalar(Var, #[allow(dead_code)] f32),
    MulScalar(Var, f32),
    /// `A * B`.
    MatMul(Var, Var),
    /// `A^T * B`.
    MatMulTN(Var, Var),
    /// `A * B^T`.
    MatMulNT(Var, Var),
    /// `S * A` for sparse `S`.
    SpMM(SharedCsr, Var),
    /// Row lookup (embedding gather); repeated indices accumulate on backward.
    Gather(Var, Rc<Vec<u32>>),
    /// Horizontal concatenation.
    ConcatCols(Vec<Var>),
    Sigmoid(Var),
    /// `ln(1 + e^x)`, computed stably.
    Softplus(Var),
    Relu(Var),
    LeakyRelu(Var, f32),
    Tanh(Var),
    Exp(Var),
    /// `ln(max(x, eps))`.
    Ln(Var, f32),
    /// Per-row dot product: `(n,t),(n,t) -> (n,1)`.
    RowDot(Var, Var),
    /// Per-row cosine similarity with `eps` clamp (Eq. 8): `(n,t),(n,t) -> (n,1)`.
    RowCosine(Var, Var, f32),
    /// Rows scaled to unit L2 norm (`eps`-clamped).
    RowL2Normalize(Var, f32),
    /// `(n,t) * (n,1)` broadcast over columns.
    MulRowBroadcast(Var, Var),
    /// `(n,t) + (1,t)` broadcast over rows (bias add).
    AddColBroadcast(Var, Var),
    /// `(n,t) - (n,1)` broadcast over columns (e.g. log-softmax shift).
    SubRowBroadcast(Var, Var),
    /// Multiply every element by a `(1,1)` scalar node.
    MulScalarVar(Var, Var),
    /// `1 / max(x, eps)` elementwise.
    Recip(Var, f32),
    /// Elementwise product with a constant mask (inverted dropout).
    Dropout(Var, Rc<Vec<f32>>),
    /// Sum of all elements `-> (1,1)`.
    Sum(Var),
    /// Mean of all elements `-> (1,1)`.
    MeanAll(Var),
    /// Per-row sum: `(n,t) -> (n,1)`.
    RowSum(Var),
    /// Squared Frobenius norm `-> (1,1)`.
    SqFrobenius(Var),
}

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
    needs_grad: bool,
}

/// A reverse-mode autodiff tape over [`Matrix`] values.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Matrix, op: Op, needs_grad: bool) -> Var {
        debug_assert!(!value.has_non_finite(), "non-finite value entering tape");
        self.nodes.push(Node {
            value,
            grad: None,
            op,
            needs_grad,
        });
        Var(self.nodes.len() - 1)
    }

    fn child_needs_grad(&self, parents: &[Var]) -> bool {
        parents.iter().any(|&Var(p)| self.nodes[p].needs_grad)
    }

    /// Registers a differentiable leaf (a parameter).
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, true)
    }

    /// Registers a non-differentiable constant input.
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, false)
    }

    /// The current value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// The accumulated gradient of a node, if backward reached it.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Takes ownership of a node's gradient (useful to avoid a clone before
    /// the optimizer step).
    pub fn take_grad(&mut self, v: Var) -> Option<Matrix> {
        self.nodes[v.0].grad.take()
    }

    // ----- op builders ------------------------------------------------------

    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).add(self.value(b));
        let ng = self.child_needs_grad(&[a, b]);
        self.push(value, Op::Add(a, b), ng)
    }

    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).sub(self.value(b));
        let ng = self.child_needs_grad(&[a, b]);
        self.push(value, Op::Sub(a, b), ng)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.shape(), vb.shape(), "mul shape mismatch");
        let mut value = va.clone();
        for (x, y) in value.data_mut().iter_mut().zip(vb.data()) {
            *x *= y;
        }
        let ng = self.child_needs_grad(&[a, b]);
        self.push(value, Op::Mul(a, b), ng)
    }

    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let value = self.value(a).map(|x| x + s);
        let ng = self.child_needs_grad(&[a]);
        self.push(value, Op::AddScalar(a, s), ng)
    }

    pub fn mul_scalar(&mut self, a: Var, s: f32) -> Var {
        let value = self.value(a).map(|x| x * s);
        let ng = self.child_needs_grad(&[a]);
        self.push(value, Op::MulScalar(a, s), ng)
    }

    pub fn neg(&mut self, a: Var) -> Var {
        self.mul_scalar(a, -1.0)
    }

    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul(self.value(b));
        let ng = self.child_needs_grad(&[a, b]);
        self.push(value, Op::MatMul(a, b), ng)
    }

    /// `A^T * B`.
    pub fn matmul_tn(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul_tn(self.value(b));
        let ng = self.child_needs_grad(&[a, b]);
        self.push(value, Op::MatMulTN(a, b), ng)
    }

    /// `A * B^T`.
    pub fn matmul_nt(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul_nt(self.value(b));
        let ng = self.child_needs_grad(&[a, b]);
        self.push(value, Op::MatMulNT(a, b), ng)
    }

    /// Sparse-dense product `S * A` — the GCN propagation step. Fans out
    /// across row blocks (bitwise identical to serial for any thread
    /// count, see [`Csr::spmm_into_parallel`]).
    pub fn spmm(&mut self, s: &SharedCsr, a: Var) -> Var {
        let va = self.value(a);
        let width = va.cols();
        lrgcn_obs::registry::add(lrgcn_obs::Counter::SpmmCalls, 1);
        lrgcn_obs::registry::add(
            lrgcn_obs::Counter::SpmmMacs,
            (s.matrix().nnz() * width) as u64,
        );
        let _span = lrgcn_obs::trace::span("spmm", "kernel");
        let mut out = vec![0.0; s.matrix().n_rows() * width];
        s.matrix()
            .spmm_into_parallel(va.data(), width, &mut out, par::effective_threads());
        let value = Matrix::from_vec(s.matrix().n_rows(), width, out);
        let ng = self.child_needs_grad(&[a]);
        self.push(value, Op::SpMM(s.clone(), a), ng)
    }

    /// Embedding lookup: selects `indices` rows of `a`.
    pub fn gather(&mut self, a: Var, indices: Rc<Vec<u32>>) -> Var {
        let value = self.value(a).gather_rows(&indices);
        let ng = self.child_needs_grad(&[a]);
        self.push(value, Op::Gather(a, indices), ng)
    }

    /// Horizontal concatenation of equally-tall matrices.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        let mats: Vec<&Matrix> = parts.iter().map(|&p| self.value(p)).collect();
        let value = Matrix::concat_cols(&mats);
        let ng = self.child_needs_grad(parts);
        self.push(value, Op::ConcatCols(parts.to_vec()), ng)
    }

    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.value(a).map(sigmoid);
        let ng = self.child_needs_grad(&[a]);
        self.push(value, Op::Sigmoid(a), ng)
    }

    /// Numerically stable `ln(1 + e^x)`; note `-ln(sigmoid(x)) = softplus(-x)`.
    pub fn softplus(&mut self, a: Var) -> Var {
        let value = self.value(a).map(softplus);
        let ng = self.child_needs_grad(&[a]);
        self.push(value, Op::Softplus(a), ng)
    }

    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| x.max(0.0));
        let ng = self.child_needs_grad(&[a]);
        self.push(value, Op::Relu(a), ng)
    }

    pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
        let value = self.value(a).map(|x| if x > 0.0 { x } else { slope * x });
        let ng = self.child_needs_grad(&[a]);
        self.push(value, Op::LeakyRelu(a, slope), ng)
    }

    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::tanh);
        let ng = self.child_needs_grad(&[a]);
        self.push(value, Op::Tanh(a), ng)
    }

    pub fn exp(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::exp);
        let ng = self.child_needs_grad(&[a]);
        self.push(value, Op::Exp(a), ng)
    }

    /// `ln(max(x, eps))` — the clamp keeps log-likelihood losses finite.
    pub fn ln(&mut self, a: Var, eps: f32) -> Var {
        let value = self.value(a).map(|x| x.max(eps).ln());
        let ng = self.child_needs_grad(&[a]);
        self.push(value, Op::Ln(a, eps), ng)
    }

    /// Per-row dot product, producing an `(n, 1)` column. This is the
    /// interaction score `r̂_ui = x_u · x_i` of Eq. 10 evaluated batch-wise.
    pub fn row_dot(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.shape(), vb.shape(), "row_dot shape mismatch");
        let data: Vec<f32> = (0..va.rows()).map(|r| dot(va.row(r), vb.row(r))).collect();
        let value = Matrix::col_vector(data);
        let ng = self.child_needs_grad(&[a, b]);
        self.push(value, Op::RowDot(a, b), ng)
    }

    /// Per-row cosine similarity (Eq. 8):
    /// `sim_r = (a_r · b_r) / max(|a_r| |b_r|, eps)`, producing `(n, 1)`.
    pub fn row_cosine(&mut self, a: Var, b: Var, eps: f32) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.shape(), vb.shape(), "row_cosine shape mismatch");
        let data: Vec<f32> = (0..va.rows())
            .map(|r| {
                let (ar, br) = (va.row(r), vb.row(r));
                dot(ar, br) / (dot(ar, ar).sqrt() * dot(br, br).sqrt()).max(eps)
            })
            .collect();
        let value = Matrix::col_vector(data);
        let ng = self.child_needs_grad(&[a, b]);
        self.push(value, Op::RowCosine(a, b, eps), ng)
    }

    /// Scales each row to unit L2 norm (`eps`-clamped denominator).
    pub fn row_l2_normalize(&mut self, a: Var, eps: f32) -> Var {
        let va = self.value(a);
        let mut value = va.clone();
        for r in 0..value.rows() {
            let n = va.row_norm(r).max(eps);
            for x in value.row_mut(r) {
                *x /= n;
            }
        }
        let ng = self.child_needs_grad(&[a]);
        self.push(value, Op::RowL2Normalize(a, eps), ng)
    }

    /// Broadcast multiply: `(n,t) * (n,1)` — LayerGCN's refinement scaling
    /// `X^{l+1} = (a^{l+1} + ε) ⊙ X^{l+1}` (Eq. 6).
    pub fn mul_row_broadcast(&mut self, a: Var, s: Var) -> Var {
        let (va, vs) = (self.value(a), self.value(s));
        assert_eq!(vs.cols(), 1, "broadcast operand must be a column");
        assert_eq!(va.rows(), vs.rows(), "broadcast row mismatch");
        let mut value = va.clone();
        for r in 0..value.rows() {
            let f = vs[(r, 0)];
            for x in value.row_mut(r) {
                *x *= f;
            }
        }
        let ng = self.child_needs_grad(&[a, s]);
        self.push(value, Op::MulRowBroadcast(a, s), ng)
    }

    /// Broadcast add of a `(1,t)` bias row onto every row of `(n,t)`.
    pub fn add_col_broadcast(&mut self, a: Var, bias: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(bias));
        assert_eq!(vb.rows(), 1, "bias must be a single row");
        assert_eq!(va.cols(), vb.cols(), "bias width mismatch");
        let mut value = va.clone();
        for r in 0..value.rows() {
            for (x, b) in value.row_mut(r).iter_mut().zip(vb.row(0)) {
                *x += b;
            }
        }
        let ng = self.child_needs_grad(&[a, bias]);
        self.push(value, Op::AddColBroadcast(a, bias), ng)
    }

    /// Broadcast subtract of an `(n,1)` column from every column of `(n,t)`
    /// — the shift inside a row-wise log-softmax.
    pub fn sub_row_broadcast(&mut self, a: Var, s: Var) -> Var {
        let (va, vs) = (self.value(a), self.value(s));
        assert_eq!(vs.cols(), 1, "broadcast operand must be a column");
        assert_eq!(va.rows(), vs.rows(), "broadcast row mismatch");
        let mut value = va.clone();
        for r in 0..value.rows() {
            let f = vs[(r, 0)];
            for x in value.row_mut(r) {
                *x -= f;
            }
        }
        let ng = self.child_needs_grad(&[a, s]);
        self.push(value, Op::SubRowBroadcast(a, s), ng)
    }

    /// Multiplies every element of `a` by the `(1,1)` node `s`.
    pub fn mul_scalar_var(&mut self, a: Var, s: Var) -> Var {
        assert_eq!(self.value(s).shape(), (1, 1), "scalar operand must be (1,1)");
        let f = self.value(s).data()[0];
        let value = self.value(a).map(|x| x * f);
        let ng = self.child_needs_grad(&[a, s]);
        self.push(value, Op::MulScalarVar(a, s), ng)
    }

    /// Elementwise reciprocal `1 / max(x, eps)`.
    pub fn recip(&mut self, a: Var, eps: f32) -> Var {
        assert!(eps > 0.0, "recip eps must be positive");
        let value = self.value(a).map(|x| 1.0 / x.max(eps));
        let ng = self.child_needs_grad(&[a]);
        self.push(value, Op::Recip(a, eps), ng)
    }

    /// Row-wise softmax composed from primitive ops (differentiable).
    /// Rows are shifted by their (constant) max for stability.
    pub fn row_softmax(&mut self, a: Var) -> Var {
        let row_max = self.value(a).row_max();
        let shift = self.constant(row_max);
        let shifted = self.sub_row_broadcast(a, shift);
        let e = self.exp(shifted);
        let z = self.row_sum(e);
        let zr = self.recip(z, 1e-30);
        self.mul_row_broadcast(e, zr)
    }

    /// Row-wise log-softmax composed from primitive ops (differentiable),
    /// max-shifted for stability.
    pub fn row_log_softmax(&mut self, a: Var) -> Var {
        let row_max = self.value(a).row_max();
        let shift = self.constant(row_max);
        let shifted = self.sub_row_broadcast(a, shift);
        let e = self.exp(shifted);
        let z = self.row_sum(e);
        let lz = self.ln(z, 1e-30);
        self.sub_row_broadcast(shifted, lz)
    }

    /// Inverted dropout with a caller-supplied mask whose entries are either
    /// `0` or `1/(1-p)`. The mask is treated as a constant.
    pub fn dropout(&mut self, a: Var, mask: Rc<Vec<f32>>) -> Var {
        let va = self.value(a);
        assert_eq!(va.len(), mask.len(), "dropout mask length mismatch");
        let mut value = va.clone();
        for (x, m) in value.data_mut().iter_mut().zip(mask.iter()) {
            *x *= m;
        }
        let ng = self.child_needs_grad(&[a]);
        self.push(value, Op::Dropout(a, mask), ng)
    }

    /// Sum of all elements, as a `(1,1)` matrix.
    pub fn sum(&mut self, a: Var) -> Var {
        let value = Matrix::from_vec(1, 1, vec![self.value(a).sum()]);
        let ng = self.child_needs_grad(&[a]);
        self.push(value, Op::Sum(a), ng)
    }

    /// Mean of all elements, as a `(1,1)` matrix.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let value = Matrix::from_vec(1, 1, vec![self.value(a).mean()]);
        let ng = self.child_needs_grad(&[a]);
        self.push(value, Op::MeanAll(a), ng)
    }

    /// Per-row sum, producing `(n,1)`.
    pub fn row_sum(&mut self, a: Var) -> Var {
        let va = self.value(a);
        let data: Vec<f32> = (0..va.rows()).map(|r| va.row(r).iter().sum()).collect();
        let value = Matrix::col_vector(data);
        let ng = self.child_needs_grad(&[a]);
        self.push(value, Op::RowSum(a), ng)
    }

    /// Squared Frobenius norm, as a `(1,1)` matrix — the `‖X‖²` of Eq. 12.
    pub fn sq_frobenius(&mut self, a: Var) -> Var {
        let value = Matrix::from_vec(1, 1, vec![self.value(a).sq_frobenius()]);
        let ng = self.child_needs_grad(&[a]);
        self.push(value, Op::SqFrobenius(a), ng)
    }

    /// Scalar value of a `(1,1)` node — typically the loss.
    pub fn scalar(&self, v: Var) -> f32 {
        let m = self.value(v);
        assert_eq!(m.shape(), (1, 1), "scalar() on non-scalar node");
        m.data()[0]
    }

    // ----- backward ---------------------------------------------------------

    /// Runs the reverse sweep from scalar node `loss`, accumulating gradients
    /// into every node with `needs_grad`.
    ///
    /// # Panics
    /// Panics if `loss` is not `(1,1)`.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward from non-scalar"
        );
        let (r, c) = self.nodes[loss.0].value.shape();
        self.nodes[loss.0].grad = Some(Matrix::full(r, c, 1.0));
        for i in (0..=loss.0).rev() {
            if self.nodes[i].grad.is_none() || !self.nodes[i].needs_grad {
                continue;
            }
            // Take the op out temporarily to appease the borrow checker; the
            // grad is cloned (cheap relative to the matmuls below).
            let g = self.nodes[i].grad.clone().expect("checked above");
            let op = std::mem::replace(&mut self.nodes[i].op, Op::Leaf);
            self.backprop_node(i, &g, &op);
            self.nodes[i].op = op;
        }
    }

    fn accum(&mut self, v: Var, delta: Matrix) {
        if !self.nodes[v.0].needs_grad {
            return;
        }
        match &mut self.nodes[v.0].grad {
            Some(g) => g.add_assign(&delta),
            slot @ None => *slot = Some(delta),
        }
    }

    fn backprop_node(&mut self, i: usize, g: &Matrix, op: &Op) {
        match op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                self.accum(*a, g.clone());
                self.accum(*b, g.clone());
            }
            Op::Sub(a, b) => {
                self.accum(*a, g.clone());
                let mut n = g.clone();
                n.scale(-1.0);
                self.accum(*b, n);
            }
            Op::Mul(a, b) => {
                let mut da = g.clone();
                for (x, y) in da.data_mut().iter_mut().zip(self.value(*b).data()) {
                    *x *= y;
                }
                let mut db = g.clone();
                for (x, y) in db.data_mut().iter_mut().zip(self.value(*a).data()) {
                    *x *= y;
                }
                self.accum(*a, da);
                self.accum(*b, db);
            }
            Op::AddScalar(a, _) => self.accum(*a, g.clone()),
            Op::MulScalar(a, s) => {
                let mut da = g.clone();
                da.scale(*s);
                self.accum(*a, da);
            }
            Op::MatMul(a, b) => {
                let da = g.matmul_nt(self.value(*b)); // dC B^T
                let db = self.value(*a).matmul_tn(g); // A^T dC
                self.accum(*a, da);
                self.accum(*b, db);
            }
            Op::MatMulTN(a, b) => {
                // C = A^T B: dA = B dC^T, dB = A dC.
                let da = self.value(*b).matmul_nt(g);
                let db = self.value(*a).matmul(g);
                self.accum(*a, da);
                self.accum(*b, db);
            }
            Op::MatMulNT(a, b) => {
                // C = A B^T: dA = dC B, dB = dC^T A.
                let da = g.matmul(self.value(*b));
                let db = g.matmul_tn(self.value(*a));
                self.accum(*a, da);
                self.accum(*b, db);
            }
            Op::SpMM(s, a) => {
                // C = S A: dA = S^T dC. Row-parallel like the forward.
                let width = g.cols();
                lrgcn_obs::registry::add(lrgcn_obs::Counter::SpmmCalls, 1);
                lrgcn_obs::registry::add(
                    lrgcn_obs::Counter::SpmmMacs,
                    (s.transpose().nnz() * width) as u64,
                );
                let _span = lrgcn_obs::trace::span("spmm_bwd", "kernel");
                let mut da = vec![0.0; s.transpose().n_rows() * width];
                s.transpose()
                    .spmm_into_parallel(g.data(), width, &mut da, par::effective_threads());
                self.accum(*a, Matrix::from_vec(s.transpose().n_rows(), width, da));
            }
            Op::Gather(a, idx) => {
                let (rows, cols) = self.value(*a).shape();
                let mut da = Matrix::zeros(rows, cols);
                for (r, &src) in idx.iter().enumerate() {
                    let grow = g.row(r);
                    let drow = da.row_mut(src as usize);
                    for (d, x) in drow.iter_mut().zip(grow) {
                        *d += x;
                    }
                }
                self.accum(*a, da);
            }
            Op::ConcatCols(parts) => {
                let mut off = 0;
                for &p in parts {
                    let w = self.value(p).cols();
                    let rows = g.rows();
                    let mut dp = Matrix::zeros(rows, w);
                    for r in 0..rows {
                        dp.row_mut(r).copy_from_slice(&g.row(r)[off..off + w]);
                    }
                    off += w;
                    self.accum(p, dp);
                }
            }
            Op::Sigmoid(a) => {
                let y = &self.nodes[i].value;
                let mut da = g.clone();
                for (x, &yy) in da.data_mut().iter_mut().zip(y.data()) {
                    *x *= yy * (1.0 - yy);
                }
                self.accum(*a, da);
            }
            Op::Softplus(a) => {
                let mut da = g.clone();
                for (x, &xx) in da.data_mut().iter_mut().zip(self.value(*a).data()) {
                    *x *= sigmoid(xx);
                }
                self.accum(*a, da);
            }
            Op::Relu(a) => {
                let mut da = g.clone();
                for (x, &xx) in da.data_mut().iter_mut().zip(self.value(*a).data()) {
                    if xx <= 0.0 {
                        *x = 0.0;
                    }
                }
                self.accum(*a, da);
            }
            Op::LeakyRelu(a, slope) => {
                let mut da = g.clone();
                for (x, &xx) in da.data_mut().iter_mut().zip(self.value(*a).data()) {
                    if xx <= 0.0 {
                        *x *= slope;
                    }
                }
                self.accum(*a, da);
            }
            Op::Tanh(a) => {
                let y = &self.nodes[i].value;
                let mut da = g.clone();
                for (x, &yy) in da.data_mut().iter_mut().zip(y.data()) {
                    *x *= 1.0 - yy * yy;
                }
                self.accum(*a, da);
            }
            Op::Exp(a) => {
                let y = &self.nodes[i].value;
                let mut da = g.clone();
                for (x, &yy) in da.data_mut().iter_mut().zip(y.data()) {
                    *x *= yy;
                }
                self.accum(*a, da);
            }
            Op::Ln(a, eps) => {
                let mut da = g.clone();
                for (x, &xx) in da.data_mut().iter_mut().zip(self.value(*a).data()) {
                    // Zero slope inside the clamp region, 1/x outside.
                    *x = if xx > *eps { *x / xx } else { 0.0 };
                }
                self.accum(*a, da);
            }
            Op::RowDot(a, b) => {
                let (va, vb) = (self.value(*a).clone(), self.value(*b).clone());
                let mut da = Matrix::zeros(va.rows(), va.cols());
                let mut db = Matrix::zeros(vb.rows(), vb.cols());
                for r in 0..va.rows() {
                    let gr = g[(r, 0)];
                    for (d, &bv) in da.row_mut(r).iter_mut().zip(vb.row(r)) {
                        *d = gr * bv;
                    }
                    for (d, &av) in db.row_mut(r).iter_mut().zip(va.row(r)) {
                        *d = gr * av;
                    }
                }
                self.accum(*a, da);
                self.accum(*b, db);
            }
            Op::RowCosine(a, b, eps) => {
                let (va, vb) = (self.value(*a).clone(), self.value(*b).clone());
                let mut da = Matrix::zeros(va.rows(), va.cols());
                let mut db = Matrix::zeros(vb.rows(), vb.cols());
                for r in 0..va.rows() {
                    let gr = g[(r, 0)];
                    if gr == 0.0 {
                        continue;
                    }
                    let (ar, br) = (va.row(r), vb.row(r));
                    let na2 = dot(ar, ar);
                    let nb2 = dot(br, br);
                    let (na, nb) = (na2.sqrt(), nb2.sqrt());
                    let prod = na * nb;
                    let d = dot(ar, br);
                    if prod > *eps {
                        // cos = d / (na nb);
                        // dcos/da = b/(na nb) - cos * a / na^2.
                        let cos = d / prod;
                        for (k, (dar, dbr)) in
                            da.row_mut(r).iter_mut().zip(db.row_mut(r)).enumerate()
                        {
                            *dar = gr * (br[k] / prod - cos * ar[k] / na2);
                            *dbr = gr * (ar[k] / prod - cos * br[k] / nb2);
                        }
                    } else {
                        // Denominator clamped at eps (a constant): d(cos)/da = b/eps.
                        for (k, (dar, dbr)) in
                            da.row_mut(r).iter_mut().zip(db.row_mut(r)).enumerate()
                        {
                            *dar = gr * br[k] / *eps;
                            *dbr = gr * ar[k] / *eps;
                        }
                    }
                }
                self.accum(*a, da);
                self.accum(*b, db);
            }
            Op::RowL2Normalize(a, eps) => {
                let va = self.value(*a).clone();
                let y = self.nodes[i].value.clone();
                let mut da = Matrix::zeros(va.rows(), va.cols());
                for r in 0..va.rows() {
                    let n = va.row_norm(r).max(*eps);
                    let gy = dot(g.row(r), y.row(r));
                    let clamped = va.row_norm(r) < *eps;
                    for (k, d) in da.row_mut(r).iter_mut().enumerate() {
                        // If the norm is clamped the denominator is constant.
                        *d = if clamped {
                            g[(r, k)] / n
                        } else {
                            (g[(r, k)] - gy * y[(r, k)]) / n
                        };
                    }
                }
                self.accum(*a, da);
            }
            Op::MulRowBroadcast(a, s) => {
                let (va, vs) = (self.value(*a).clone(), self.value(*s).clone());
                let mut da = g.clone();
                let mut ds = Matrix::zeros(vs.rows(), 1);
                for r in 0..va.rows() {
                    let f = vs[(r, 0)];
                    for x in da.row_mut(r) {
                        *x *= f;
                    }
                    ds[(r, 0)] = dot(g.row(r), va.row(r));
                }
                self.accum(*a, da);
                self.accum(*s, ds);
            }
            Op::AddColBroadcast(a, bias) => {
                self.accum(*a, g.clone());
                let mut db = Matrix::zeros(1, g.cols());
                for r in 0..g.rows() {
                    for (d, &x) in db.row_mut(0).iter_mut().zip(g.row(r)) {
                        *d += x;
                    }
                }
                self.accum(*bias, db);
            }
            Op::SubRowBroadcast(a, s) => {
                self.accum(*a, g.clone());
                let mut ds = Matrix::zeros(g.rows(), 1);
                for r in 0..g.rows() {
                    ds[(r, 0)] = -g.row(r).iter().sum::<f32>();
                }
                self.accum(*s, ds);
            }
            Op::MulScalarVar(a, s) => {
                let f = self.value(*s).data()[0];
                let mut da = g.clone();
                da.scale(f);
                self.accum(*a, da);
                let ds = Matrix::from_vec(
                    1,
                    1,
                    vec![g
                        .data()
                        .iter()
                        .zip(self.value(*a).data())
                        .map(|(x, y)| x * y)
                        .sum()],
                );
                self.accum(*s, ds);
            }
            Op::Recip(a, eps) => {
                let mut da = g.clone();
                for (x, &xx) in da.data_mut().iter_mut().zip(self.value(*a).data()) {
                    // d(1/x)/dx = -1/x^2 outside the clamp; zero inside.
                    *x = if xx > *eps { -*x / (xx * xx) } else { 0.0 };
                }
                self.accum(*a, da);
            }
            Op::Dropout(a, mask) => {
                let mut da = g.clone();
                for (x, m) in da.data_mut().iter_mut().zip(mask.iter()) {
                    *x *= m;
                }
                self.accum(*a, da);
            }
            Op::Sum(a) => {
                let (r, c) = self.value(*a).shape();
                self.accum(*a, Matrix::full(r, c, g.data()[0]));
            }
            Op::MeanAll(a) => {
                let (r, c) = self.value(*a).shape();
                let n = (r * c).max(1) as f32;
                self.accum(*a, Matrix::full(r, c, g.data()[0] / n));
            }
            Op::RowSum(a) => {
                let (r, c) = self.value(*a).shape();
                let mut da = Matrix::zeros(r, c);
                for rr in 0..r {
                    let gr = g[(rr, 0)];
                    for d in da.row_mut(rr) {
                        *d = gr;
                    }
                }
                self.accum(*a, da);
            }
            Op::SqFrobenius(a) => {
                let mut da = self.value(*a).clone();
                da.scale(2.0 * g.data()[0]);
                self.accum(*a, da);
            }
        }
    }
}

/// Numerically stable logistic function.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable `ln(1 + e^x)`.
pub fn softplus(x: f32) -> f32 {
    x.max(0.0) + (-x.abs()).exp().ln_1p()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_stability_and_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(100.0) <= 1.0 && sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) >= 0.0 && sigmoid(-100.0) < 1e-6);
    }

    #[test]
    fn softplus_matches_naive_in_safe_range() {
        for x in [-5.0f32, -1.0, 0.0, 1.0, 5.0] {
            assert!((softplus(x) - (1.0 + x.exp()).ln()).abs() < 1e-5);
        }
        assert!((softplus(80.0) - 80.0).abs() < 1e-3);
        assert!(softplus(-80.0) >= 0.0);
    }

    #[test]
    fn forward_add_mul_chain() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(1, 2, vec![2.0, 3.0]));
        let b = t.leaf(Matrix::from_vec(1, 2, vec![4.0, 5.0]));
        let c = t.add(a, b);
        let d = t.mul(c, c);
        assert_eq!(t.value(d).data(), &[36.0, 64.0]);
    }

    #[test]
    fn backward_through_sum_of_product() {
        // L = sum((a+b) ⊙ (a+b)): dL/da = 2(a+b).
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(1, 2, vec![2.0, 3.0]));
        let b = t.leaf(Matrix::from_vec(1, 2, vec![4.0, 5.0]));
        let c = t.add(a, b);
        let d = t.mul(c, c);
        let l = t.sum(d);
        t.backward(l);
        assert_eq!(t.grad(a).expect("grad a").data(), &[12.0, 16.0]);
        assert_eq!(t.grad(b).expect("grad b").data(), &[12.0, 16.0]);
    }

    #[test]
    fn constant_receives_no_grad() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(1, 1, vec![2.0]));
        let k = t.constant(Matrix::from_vec(1, 1, vec![3.0]));
        let p = t.mul(a, k);
        let l = t.sum(p);
        t.backward(l);
        assert!(t.grad(k).is_none());
        assert_eq!(t.grad(a).expect("grad").data(), &[3.0]);
    }

    #[test]
    fn matmul_grad_shapes() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::zeros(3, 4));
        let b = t.leaf(Matrix::zeros(4, 2));
        let c = t.matmul(a, b);
        let l = t.sum(c);
        t.backward(l);
        assert_eq!(t.grad(a).expect("da").shape(), (3, 4));
        assert_eq!(t.grad(b).expect("db").shape(), (4, 2));
    }

    #[test]
    fn gather_scatter_accumulates_repeats() {
        let mut t = Tape::new();
        let e = t.leaf(Matrix::from_vec(3, 2, vec![1.0; 6]));
        let g = t.gather(e, Rc::new(vec![1, 1, 2]));
        let l = t.sum(g);
        t.backward(l);
        let de = t.grad(e).expect("de");
        assert_eq!(de.row(0), &[0.0, 0.0]);
        assert_eq!(de.row(1), &[2.0, 2.0]);
        assert_eq!(de.row(2), &[1.0, 1.0]);
    }

    #[test]
    fn spmm_forward_and_backward_with_symmetric_matrix() {
        // S = [[0,1],[1,0]] (symmetric swap).
        let s = SharedCsr::new(Csr::from_coo(2, 2, vec![(0, 1, 1.0), (1, 0, 1.0)]));
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let y = t.spmm(&s, x);
        assert_eq!(t.value(y).data(), &[3.0, 4.0, 1.0, 2.0]);
        // L = sum(first row of Y) picks row 1 of X.
        let m = t.constant(Matrix::from_vec(2, 2, vec![1.0, 1.0, 0.0, 0.0]));
        let masked = t.mul(y, m);
        let l = t.sum(masked);
        t.backward(l);
        let dx = t.grad(x).expect("dx");
        assert_eq!(dx.row(0), &[0.0, 0.0]);
        assert_eq!(dx.row(1), &[1.0, 1.0]);
    }

    #[test]
    fn row_dot_is_batch_score() {
        let mut t = Tape::new();
        let u = t.leaf(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let v = t.leaf(Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]));
        let s = t.row_dot(u, v);
        assert_eq!(t.value(s).data(), &[17.0, 53.0]);
    }

    #[test]
    fn row_cosine_of_parallel_and_orthogonal_rows() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 2.0]));
        let b = t.leaf(Matrix::from_vec(2, 2, vec![2.0, 0.0, 3.0, 0.0]));
        let c = t.row_cosine(a, b, 1e-8);
        let v = t.value(c);
        assert!((v[(0, 0)] - 1.0).abs() < 1e-6);
        assert!(v[(1, 0)].abs() < 1e-6);
    }

    #[test]
    fn row_cosine_zero_vector_clamps_not_nan() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::zeros(1, 3));
        let b = t.leaf(Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]));
        let c = t.row_cosine(a, b, 1e-8);
        assert_eq!(t.value(c)[(0, 0)], 0.0);
        let l = t.sum(c);
        t.backward(l);
        assert!(!t.grad(a).expect("da").has_non_finite());
    }

    #[test]
    fn row_l2_normalize_unit_norms() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(2, 2, vec![3.0, 4.0, 0.0, 0.1]));
        let n = t.row_l2_normalize(a, 1e-12);
        let v = t.value(n);
        assert!((v.row_norm(0) - 1.0).abs() < 1e-6);
        assert!((v.row_norm(1) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn broadcasts() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let s = t.leaf(Matrix::col_vector(vec![2.0, -1.0]));
        let m = t.mul_row_broadcast(a, s);
        assert_eq!(t.value(m).data(), &[2.0, 4.0, -3.0, -4.0]);
        let bias = t.leaf(Matrix::row_vector(vec![10.0, 20.0]));
        let p = t.add_col_broadcast(a, bias);
        assert_eq!(t.value(p).data(), &[11.0, 22.0, 13.0, 24.0]);
        let lm = t.sum(m);
        let lp = t.sum(p);
        let l = t.add(lm, lp);
        t.backward(l);
        // ds_r = sum of row r of A (m is the only path through s).
        assert_eq!(t.grad(s).expect("ds").data(), &[3.0, 7.0]);
        // dbias sums over rows (p is the only path through bias).
        assert_eq!(t.grad(bias).expect("dbias").data(), &[2.0, 2.0]);
    }

    #[test]
    fn concat_splits_grads() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let b = t.leaf(Matrix::from_vec(1, 1, vec![3.0]));
        let c = t.concat_cols(&[a, b]);
        assert_eq!(t.value(c).data(), &[1.0, 2.0, 3.0]);
        let w = t.constant(Matrix::from_vec(1, 3, vec![10.0, 20.0, 30.0]));
        let p = t.mul(c, w);
        let l = t.sum(p);
        t.backward(l);
        assert_eq!(t.grad(a).expect("da").data(), &[10.0, 20.0]);
        assert_eq!(t.grad(b).expect("db").data(), &[30.0]);
    }

    #[test]
    fn mean_and_frobenius_backward() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(2, 2, vec![1.0, -2.0, 3.0, -4.0]));
        let l = t.mean_all(a);
        t.backward(l);
        assert_eq!(t.grad(a).expect("da").data(), &[0.25; 4]);

        let mut t2 = Tape::new();
        let a2 = t2.leaf(Matrix::from_vec(1, 2, vec![3.0, -5.0]));
        let l2 = t2.sq_frobenius(a2);
        assert_eq!(t2.scalar(l2), 34.0);
        t2.backward(l2);
        assert_eq!(t2.grad(a2).expect("da").data(), &[6.0, -10.0]);
    }

    #[test]
    fn diamond_pattern_accumulates_both_paths() {
        // L = sum(a ⊙ a + a): dL/da = 2a + 1.
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(1, 2, vec![3.0, -1.0]));
        let sq = t.mul(a, a);
        let s = t.add(sq, a);
        let l = t.sum(s);
        t.backward(l);
        assert_eq!(t.grad(a).expect("da").data(), &[7.0, -1.0]);
    }

    #[test]
    fn bpr_style_loss_is_positive_and_finite() {
        // softplus(neg - pos) with pos > neg should be small but positive.
        let mut t = Tape::new();
        let pos = t.leaf(Matrix::col_vector(vec![5.0, 2.0]));
        let neg = t.leaf(Matrix::col_vector(vec![1.0, 1.0]));
        let diff = t.sub(neg, pos);
        let sp = t.softplus(diff);
        let l = t.mean_all(sp);
        let lv = t.scalar(l);
        assert!(lv > 0.0 && lv < 0.5);
        t.backward(l);
        // Gradient on pos must be negative (increasing pos lowers loss).
        assert!(t.grad(pos).expect("dpos").data().iter().all(|&x| x < 0.0));
    }

    #[test]
    fn take_grad_removes_grad() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(1, 1, vec![2.0]));
        let l = t.sq_frobenius(a);
        t.backward(l);
        let g = t.take_grad(a).expect("grad");
        assert_eq!(g.data(), &[4.0]);
        assert!(t.grad(a).is_none());
    }

    #[test]
    #[should_panic(expected = "backward from non-scalar")]
    fn backward_requires_scalar() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::zeros(2, 2));
        t.backward(a);
    }
}
