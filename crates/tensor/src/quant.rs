//! Int8 symmetric row quantization for the serving read path.
//!
//! [`QuantizedTable`] stores an embedding table (typically the item block
//! of a trained model's final embeddings) as one `i8` row per embedding
//! plus one `f32` scale per row: `q = round(x / scale)` clamped to
//! `[-127, 127]` with `scale = max_abs(row) / 127`. A row dot against a
//! (likewise quantized) query accumulates in `i32` — integer addition is
//! associative, so unlike the f32 kernels the accumulation order is free
//! and the AVX2 path is *exactly* equal to the scalar one, not just
//! bitwise-compatible by careful ordering.
//!
//! The table answers approximate scores at 4 bytes/row memory traffic per
//! 16 dims (vs 64 for f32), which is what makes a full-catalog scan cheap
//! enough to serve. `lrgcn-serve` uses it as the first stage of a
//! rank-then-rescore pass: the quantized scan picks `4·K` candidates, the
//! exact f32 kernel re-scores only those (see `EngineState::top_k`).

use crate::kernels::{self, Kernel};
use crate::matrix::Matrix;

/// An embedding table quantized to int8 with one symmetric scale per row.
#[derive(Clone, Debug)]
pub struct QuantizedTable {
    rows: usize,
    cols: usize,
    /// Per-row dequantization scale; `0.0` for all-zero rows.
    scales: Vec<f32>,
    /// Row-major `i8` payload, `rows * cols` entries.
    data: Vec<i8>,
}

/// Quantizes one row into `out`, returning its scale.
fn quantize_row(row: &[f32], out: &mut [i8]) -> f32 {
    let max_abs = row.iter().fold(0.0f32, |m, x| m.max(x.abs()));
    if max_abs == 0.0 {
        out.fill(0);
        return 0.0;
    }
    let scale = max_abs / 127.0;
    let inv = 127.0 / max_abs;
    for (q, &x) in out.iter_mut().zip(row) {
        *q = (x * inv).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

impl QuantizedTable {
    /// Quantizes rows `start..end` of `m` (e.g. the item block of a final
    /// embedding matrix).
    pub fn from_matrix_rows(m: &Matrix, start: usize, end: usize) -> Self {
        assert!(start <= end && end <= m.rows(), "row range out of bounds");
        let (rows, cols) = (end - start, m.cols());
        let mut data = vec![0i8; rows * cols];
        let mut scales = vec![0.0f32; rows];
        for (r, (scale, qrow)) in scales.iter_mut().zip(data.chunks_exact_mut(cols.max(1))).enumerate()
        {
            *scale = quantize_row(m.row(start + r), qrow);
        }
        Self {
            rows,
            cols,
            scales,
            data,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Heap bytes held by the table (payload + scales).
    pub fn bytes(&self) -> usize {
        self.data.len() + self.scales.len() * 4
    }

    /// Dequantization scale of row `r`.
    pub fn scale(&self, r: usize) -> f32 {
        self.scales[r]
    }

    /// Quantized row `r`.
    pub fn row(&self, r: usize) -> &[i8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Quantizes a query vector into `buf` (resized to fit), returning the
    /// query scale.
    pub fn quantize_query(query: &[f32], buf: &mut Vec<i8>) -> f32 {
        buf.resize(query.len(), 0);
        quantize_row(query, buf)
    }

    /// Approximate dot of row `r` against a quantized query:
    /// `scale_r * q_scale * Σ (i32 products)`.
    pub fn score_row(&self, r: usize, q: &[i8], q_scale: f32) -> f32 {
        debug_assert_eq!(q.len(), self.cols);
        let s = self.scales[r] * q_scale;
        if s == 0.0 {
            return 0.0;
        }
        s * dot_i8(kernels::active_kernel(), self.row(r), q) as f32
    }

    /// Approximate dots of *every* row against a quantized query, written
    /// to `out` (one score per row). The full-catalog first-stage scan.
    ///
    /// The whole scan dispatches **once** on the kernel mode — the SIMD
    /// variant is a single `#[target_feature]` function so the per-row dot
    /// inlines into the row loop instead of paying a call per row.
    pub fn scores_into(&self, q: &[i8], q_scale: f32, out: &mut [f32]) {
        assert_eq!(q.len(), self.cols, "query width mismatch");
        assert_eq!(out.len(), self.rows, "output length mismatch");
        if q_scale == 0.0 {
            out.fill(0.0);
            return;
        }
        match kernels::active_kernel() {
            Kernel::Naive => self.scan_rows(q, q_scale, out, |a, b| {
                a.iter().zip(b).map(|(&x, &y)| x as i32 * y as i32).sum()
            }),
            Kernel::Blocked => self.scan_rows(q, q_scale, out, dot_i8_blocked),
            Kernel::Simd => {
                #[cfg(target_arch = "x86_64")]
                // Safety: Kernel::Simd is only resolved when AVX2 was
                // detected at runtime.
                unsafe {
                    self.scan_avx2(q, q_scale, out)
                }
                #[cfg(not(target_arch = "x86_64"))]
                self.scan_rows(q, q_scale, out, dot_i8_blocked);
            }
        }
    }

    #[inline(always)]
    fn scan_rows(&self, q: &[i8], q_scale: f32, out: &mut [f32], row_dot: impl Fn(&[i8], &[i8]) -> i32) {
        for ((o, &scale), qrow) in out
            .iter_mut()
            .zip(&self.scales)
            .zip(self.data.chunks_exact(self.cols.max(1)))
        {
            *o = if scale == 0.0 {
                0.0
            } else {
                (scale * q_scale) * row_dot(qrow, q) as f32
            };
        }
    }

    /// # Safety
    /// The CPU must support AVX2.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn scan_avx2(&self, q: &[i8], q_scale: f32, out: &mut [f32]) {
        self.scan_rows(q, q_scale, out, |a, b| dot_i8_avx2(a, b));
    }
}

/// Integer dot product of two `i8` slices with `i32` accumulation.
///
/// All kernel modes return the identical value (integer arithmetic is
/// associative); the modes differ only in speed.
pub fn dot_i8(kernel: Kernel, a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    match kernel {
        Kernel::Naive => a
            .iter()
            .zip(b)
            .map(|(&x, &y)| x as i32 * y as i32)
            .sum(),
        Kernel::Blocked => dot_i8_blocked(a, b),
        Kernel::Simd => {
            #[cfg(target_arch = "x86_64")]
            // Safety: Kernel::Simd is only resolved when AVX2 was detected
            // at runtime.
            unsafe {
                dot_i8_avx2(a, b)
            }
            #[cfg(not(target_arch = "x86_64"))]
            dot_i8_blocked(a, b)
        }
    }
}

/// Four independent `i32` accumulators; LLVM vectorizes the widening MACs.
fn dot_i8_blocked(a: &[i8], b: &[i8]) -> i32 {
    let mut acc = [0i32; 4];
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        for ((s, &x), &y) in acc.iter_mut().zip(ca).zip(cb) {
            *s += x as i32 * y as i32;
        }
    }
    let mut total: i32 = acc.iter().sum();
    for (&x, &y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        total += x as i32 * y as i32;
    }
    total
}

/// AVX2: widen `i8 -> i16`, `_mm256_madd_epi16` to paired `i32` MACs.
///
/// # Safety
/// The CPU must support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    let n = a.len();
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i + 16 <= n {
        let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(ap.add(i) as *const __m128i));
        let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(bp.add(i) as *const __m128i));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
        i += 16;
    }
    let lo = _mm256_castsi256_si128(acc);
    let hi = _mm256_extracti128_si256(acc, 1);
    let s4 = _mm_add_epi32(lo, hi);
    let s2 = _mm_add_epi32(s4, _mm_shuffle_epi32(s4, 0b00_01_10_11));
    let s1 = _mm_add_epi32(s2, _mm_shuffle_epi32(s2, 0b00_00_00_01));
    let mut total = _mm_cvtsi128_si32(s1);
    while i < n {
        total += *ap.add(i) as i32 * *bp.add(i) as i32;
        i += 1;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::simd_available;

    fn pseudo(n: usize, seed: u64) -> Vec<f32> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^= z >> 31;
                (z >> 40) as f32 / (1u64 << 23) as f32 - 1.0
            })
            .collect()
    }

    #[test]
    fn quantization_error_is_bounded_by_half_a_step() {
        let data = pseudo(16 * 7, 3);
        let m = Matrix::from_vec(16, 7, data);
        let t = QuantizedTable::from_matrix_rows(&m, 0, 16);
        for r in 0..16 {
            let scale = t.scale(r);
            for (q, &x) in t.row(r).iter().zip(m.row(r)) {
                let deq = *q as f32 * scale;
                assert!(
                    (deq - x).abs() <= scale * 0.5 + 1e-6,
                    "row {r}: {x} -> {q} (scale {scale})"
                );
            }
        }
    }

    #[test]
    fn zero_rows_quantize_to_zero_scale() {
        let m = Matrix::zeros(3, 5);
        let t = QuantizedTable::from_matrix_rows(&m, 0, 3);
        assert!(t.scales.iter().all(|&s| s == 0.0));
        let mut q = Vec::new();
        let qs = QuantizedTable::quantize_query(&[0.0; 5], &mut q);
        assert_eq!(qs, 0.0);
        assert_eq!(t.score_row(0, &q, qs), 0.0);
    }

    #[test]
    fn dot_i8_kernels_agree_exactly() {
        for n in [0usize, 1, 3, 15, 16, 17, 64, 100] {
            let a: Vec<i8> = pseudo(n, 7).iter().map(|x| (x * 127.0) as i8).collect();
            let b: Vec<i8> = pseudo(n, 11).iter().map(|x| (x * 127.0) as i8).collect();
            let reference = dot_i8(Kernel::Naive, &a, &b);
            assert_eq!(dot_i8(Kernel::Blocked, &a, &b), reference, "blocked, n={n}");
            if simd_available() {
                assert_eq!(dot_i8(Kernel::Simd, &a, &b), reference, "simd, n={n}");
            }
        }
    }

    #[test]
    fn approximate_scores_track_exact_dots() {
        let dim = 32;
        let items = Matrix::from_vec(50, dim, pseudo(50 * dim, 21));
        let t = QuantizedTable::from_matrix_rows(&items, 0, 50);
        let query = pseudo(dim, 77);
        let mut qbuf = Vec::new();
        let qs = QuantizedTable::quantize_query(&query, &mut qbuf);
        let mut approx = vec![0.0f32; 50];
        t.scores_into(&qbuf, qs, &mut approx);
        for (r, &a) in approx.iter().enumerate() {
            let exact = crate::matrix::dot(items.row(r), &query);
            // Error bound: per-term quantization error ≤ half a step on
            // each side; dim * (combined step) is a loose but safe bound.
            let bound = dim as f32 * (t.scale(r) + qs);
            assert!(
                (a - exact).abs() <= bound,
                "row {r}: approx {a} vs exact {exact}"
            );
            assert_eq!(a, t.score_row(r, &qbuf, qs), "row {r} scan/score parity");
        }
    }
}
