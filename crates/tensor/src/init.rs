//! Parameter initializers.
//!
//! The paper initializes all embedding tables with the Xavier method
//! (Glorot & Bengio, 2010) — §V-A4. Both the uniform and normal variants are
//! provided, plus small helpers used across the models.

use crate::matrix::Matrix;
use rand::{Rng, RngExt};

/// Xavier/Glorot *uniform* init: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    let data = (0..rows * cols)
        .map(|_| rng.random_range(-a..a))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Xavier/Glorot *normal* init: `N(0, 2 / (fan_in + fan_out))`, sampled via
/// Box–Muller.
pub fn xavier_normal<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
    let std = (2.0 / (rows + cols) as f32).sqrt();
    let data = (0..rows * cols).map(|_| std * standard_normal(rng)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Uniform init on an explicit interval.
pub fn uniform<R: Rng + ?Sized>(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut R) -> Matrix {
    assert!(lo < hi, "empty interval [{lo}, {hi})");
    let data = (0..rows * cols).map(|_| rng.random_range(lo..hi)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// One standard-normal draw via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = (1.0 - rng.random::<f32>()).max(f32::MIN_POSITIVE);
    let u2: f32 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_uniform_bounds_and_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = xavier_uniform(64, 64, &mut rng);
        let a = (6.0 / 128.0f32).sqrt();
        assert!(m.data().iter().all(|&x| x > -a && x < a));
        assert!(m.max_abs() > 0.5 * a, "suspiciously concentrated");
        assert!(m.mean().abs() < 0.05 * a);
    }

    #[test]
    fn xavier_normal_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = xavier_normal(100, 100, &mut rng);
        let std = (2.0 / 200.0f32).sqrt();
        let emp_var = m.sq_frobenius() / m.len() as f32 - m.mean().powi(2);
        assert!((emp_var.sqrt() - std).abs() < 0.01 * std.max(1.0));
        assert!(m.mean().abs() < 0.01);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(7));
        let b = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn standard_normal_tail_sanity() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let within: usize = (0..n)
            .filter(|_| standard_normal(&mut rng).abs() < 1.96)
            .count();
        let frac = within as f64 / n as f64;
        assert!((frac - 0.95).abs() < 0.01, "got {frac}");
    }
}
