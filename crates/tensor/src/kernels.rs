//! The dense micro-kernels behind [`crate::matrix::Matrix`], plus the
//! workspace-wide kernel-mode selection re-exported from
//! [`lrgcn_graph::kernels`].
//!
//! This module is the canonical dispatch surface for hot loops: dense
//! matmuls (all three transpose variants), the elementwise maps, and — via
//! the re-exports — the sparse propagation kernel in `lrgcn-graph`. Every
//! kernel exists in three implementations selected by [`Kernel`]
//! (`LRGCN_KERNEL={naive,blocked,simd}`, see [`active_kernel`]):
//!
//! * `naive` — the original scalar loops, byte-for-byte the historical
//!   reference (including its per-scalar zero skip);
//! * `blocked` — register-tiled loops (output stripes of [`TILE`] floats
//!   accumulated in a local array across the whole `k` loop) written so
//!   LLVM autovectorizes them; the per-scalar zero skip is replaced by a
//!   per-block density check so genuinely sparse operands (e.g. a
//!   Multi-VAE input batch) still skip, while dense embedding blocks run
//!   straight-line code;
//! * `simd` — the same structure with explicit AVX2 intrinsics (separate
//!   multiply and add, never FMA), behind runtime feature detection.
//!
//! ## Determinism contract
//!
//! Every output cell is accumulated by a single accumulator in ascending
//! `k` order in all three modes, so for finite inputs the kernels are
//! bitwise identical to each other and to serial execution — the property
//! `tests/kernel_equality.rs` pins. [`dot`] is the one kernel that stays
//! scalar in every mode: its value is a *single* sequential dependent add
//! chain, and any lane-split reassociation would change the result. The
//! `matmul_nt` kernels get their speedup elsewhere — computing eight
//! independent cells per pass (eight chains in flight hides the add
//! latency) — without touching any chain's order.

pub use lrgcn_graph::kernels::{
    active_kernel, count_dispatch, set_kernel, simd_available, spmm_block, Kernel, TILE,
};

/// Rows per register tile in `matmul_tn`: four output rows share each
/// streamed B row.
const MR: usize = 4;

/// Operands with at least this fraction of zeros take the zero-skipping
/// scalar path in the blocked/simd kernels ("genuinely sparse": 7/8 zeros,
/// where skipping beats straight-line tiles even with the branch).
fn is_sparse(block: &[f32]) -> bool {
    let nz = block.iter().filter(|&&x| x != 0.0).count();
    nz * 8 < block.len()
}

// ---------------------------------------------------------------------------
// matmul (A · B)
// ---------------------------------------------------------------------------

/// Computes a contiguous row block of `out = A · B`.
///
/// `a_block` holds the A rows matching `out_block` (`k` columns each), `b`
/// is the full `k x n` right operand, and `out_block` must arrive
/// **zero-filled** (the kernels accumulate from zero).
pub fn matmul_block(kernel: Kernel, a_block: &[f32], k: usize, b: &[f32], n: usize, out_block: &mut [f32]) {
    if k == 0 || n == 0 || out_block.is_empty() {
        return;
    }
    match kernel {
        Kernel::Naive => matmul_block_naive(a_block, k, b, n, out_block),
        _ if is_sparse(a_block) => matmul_block_naive(a_block, k, b, n, out_block),
        Kernel::Blocked => {
            for (arow, orow) in a_block.chunks_exact(k).zip(out_block.chunks_exact_mut(n)) {
                matmul_row_blocked(arow, b, n, orow);
            }
        }
        Kernel::Simd => {
            for (arow, orow) in a_block.chunks_exact(k).zip(out_block.chunks_exact_mut(n)) {
                #[cfg(target_arch = "x86_64")]
                // Safety: Kernel::Simd is only resolved when AVX2 was
                // detected at runtime.
                unsafe {
                    matmul_row_avx2(arow, b, n, orow)
                }
                #[cfg(not(target_arch = "x86_64"))]
                matmul_row_blocked(arow, b, n, orow);
            }
        }
    }
}

/// Reference: the original `i-k-j` loop with its per-scalar zero skip.
fn matmul_block_naive(a_block: &[f32], k: usize, b: &[f32], n: usize, out_block: &mut [f32]) {
    for (arow, orow) in a_block.chunks_exact(k).zip(out_block.chunks_exact_mut(n)) {
        for (kk, &a) in arow.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let brow = &b[kk * n..kk * n + n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += a * bv;
            }
        }
    }
}

/// One output row, register-tiled: a [`TILE`]-wide stripe of the row lives
/// in a local accumulator array across the whole `k` loop, so the output
/// is written once instead of loaded/stored once per `k`.
fn matmul_row_blocked(arow: &[f32], b: &[f32], n: usize, orow: &mut [f32]) {
    let mut j = 0;
    while j + TILE <= n {
        let mut acc = [0.0f32; TILE];
        for (kk, &a) in arow.iter().enumerate() {
            let brow = &b[kk * n + j..kk * n + j + TILE];
            for (s, &bv) in acc.iter_mut().zip(brow) {
                *s += a * bv;
            }
        }
        orow[j..j + TILE].copy_from_slice(&acc);
        j += TILE;
    }
    if j < n {
        let tail = n - j;
        let mut acc = [0.0f32; TILE];
        for (kk, &a) in arow.iter().enumerate() {
            let brow = &b[kk * n + j..kk * n + n];
            for (s, &bv) in acc[..tail].iter_mut().zip(brow) {
                *s += a * bv;
            }
        }
        orow[j..].copy_from_slice(&acc[..tail]);
    }
}

/// AVX2 variant of [`matmul_row_blocked`]: 4 × 8-lane accumulators per
/// stripe, broadcast-multiply-add (separate mul and add — no FMA).
///
/// # Safety
/// The CPU must support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_row_avx2(arow: &[f32], b: &[f32], n: usize, orow: &mut [f32]) {
    use std::arch::x86_64::*;
    let bp = b.as_ptr();
    let mut j = 0;
    while j + TILE <= n {
        let mut a0 = _mm256_setzero_ps();
        let mut a1 = _mm256_setzero_ps();
        let mut a2 = _mm256_setzero_ps();
        let mut a3 = _mm256_setzero_ps();
        for (kk, &a) in arow.iter().enumerate() {
            let av = _mm256_set1_ps(a);
            let base = bp.add(kk * n + j);
            a0 = _mm256_add_ps(a0, _mm256_mul_ps(av, _mm256_loadu_ps(base)));
            a1 = _mm256_add_ps(a1, _mm256_mul_ps(av, _mm256_loadu_ps(base.add(8))));
            a2 = _mm256_add_ps(a2, _mm256_mul_ps(av, _mm256_loadu_ps(base.add(16))));
            a3 = _mm256_add_ps(a3, _mm256_mul_ps(av, _mm256_loadu_ps(base.add(24))));
        }
        let op = orow.as_mut_ptr().add(j);
        _mm256_storeu_ps(op, a0);
        _mm256_storeu_ps(op.add(8), a1);
        _mm256_storeu_ps(op.add(16), a2);
        _mm256_storeu_ps(op.add(24), a3);
        j += TILE;
    }
    while j + 8 <= n {
        let mut a0 = _mm256_setzero_ps();
        for (kk, &a) in arow.iter().enumerate() {
            let base = bp.add(kk * n + j);
            a0 = _mm256_add_ps(a0, _mm256_mul_ps(_mm256_set1_ps(a), _mm256_loadu_ps(base)));
        }
        _mm256_storeu_ps(orow.as_mut_ptr().add(j), a0);
        j += 8;
    }
    if j < n {
        let tail = n - j;
        let mut acc = [0.0f32; 8];
        for (kk, &a) in arow.iter().enumerate() {
            let brow = &b[kk * n + j..kk * n + n];
            for (s, &bv) in acc[..tail].iter_mut().zip(brow) {
                *s += a * bv;
            }
        }
        orow[j..].copy_from_slice(&acc[..tail]);
    }
}

// ---------------------------------------------------------------------------
// matmul_tn (Aᵀ · B)
// ---------------------------------------------------------------------------

/// Computes a contiguous row block of `out = Aᵀ · B` without materializing
/// the transpose.
///
/// `a` is the full `a_rows x a_cols` left operand, `b` the full
/// `a_rows x n` right operand; `out_block` covers output rows (= A
/// columns) `start_col ..` and must arrive **zero-filled**.
#[allow(clippy::too_many_arguments)]
pub fn matmul_tn_block(
    kernel: Kernel,
    a: &[f32],
    a_rows: usize,
    a_cols: usize,
    start_col: usize,
    b: &[f32],
    n: usize,
    out_block: &mut [f32],
) {
    if a_rows == 0 || n == 0 || out_block.is_empty() {
        return;
    }
    let block_rows = out_block.len() / n;
    let dense = match kernel {
        Kernel::Naive => false,
        // Density of this block's share of A (its columns, strided scan).
        _ => {
            let mut nz = 0usize;
            for kk in 0..a_rows {
                let arow = &a[kk * a_cols + start_col..kk * a_cols + start_col + block_rows];
                nz += arow.iter().filter(|&&x| x != 0.0).count();
            }
            nz * 8 >= a_rows * block_rows
        }
    };
    if !dense {
        matmul_tn_block_naive(a, a_rows, a_cols, start_col, b, n, out_block);
        return;
    }
    // Register tile: MR output rows × an 8/16-wide B stripe, k innermost,
    // so each streamed B row feeds MR output rows at once.
    let mut i = 0;
    while i + MR <= block_rows {
        let rows = &mut out_block[i * n..(i + MR) * n];
        matmul_tn_rows_tile(kernel, a, a_rows, a_cols, start_col + i, b, n, rows);
        i += MR;
    }
    while i < block_rows {
        let orow = &mut out_block[i * n..(i + 1) * n];
        matmul_tn_row(kernel, a, a_rows, a_cols, start_col + i, b, n, orow);
        i += 1;
    }
}

/// Reference: the original `k`-outer loop with its per-scalar zero skip.
fn matmul_tn_block_naive(
    a: &[f32],
    a_rows: usize,
    a_cols: usize,
    start_col: usize,
    b: &[f32],
    n: usize,
    out_block: &mut [f32],
) {
    for kk in 0..a_rows {
        let arow = &a[kk * a_cols..(kk + 1) * a_cols];
        let brow = &b[kk * n..kk * n + n];
        for (bi, orow) in out_block.chunks_exact_mut(n).enumerate() {
            let av = arow[start_col + bi];
            if av == 0.0 {
                continue;
            }
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// `MR` output rows × 16-wide stripes, accumulators in registers.
#[allow(clippy::too_many_arguments)]
fn matmul_tn_rows_tile(
    kernel: Kernel,
    a: &[f32],
    a_rows: usize,
    a_cols: usize,
    col0: usize,
    b: &[f32],
    n: usize,
    out4: &mut [f32],
) {
    const NR: usize = 16;
    let mut j = 0;
    while j + NR <= n {
        let mut acc = [[0.0f32; NR]; MR];
        for kk in 0..a_rows {
            let a4 = &a[kk * a_cols + col0..kk * a_cols + col0 + MR];
            let brow = &b[kk * n + j..kk * n + j + NR];
            for (accr, &av) in acc.iter_mut().zip(a4) {
                for (s, &bv) in accr.iter_mut().zip(brow) {
                    *s += av * bv;
                }
            }
        }
        for (mi, accr) in acc.iter().enumerate() {
            out4[mi * n + j..mi * n + j + NR].copy_from_slice(accr);
        }
        j += NR;
    }
    if j < n {
        let tail = n - j;
        let mut acc = [[0.0f32; NR]; MR];
        for kk in 0..a_rows {
            let a4 = &a[kk * a_cols + col0..kk * a_cols + col0 + MR];
            let brow = &b[kk * n + j..kk * n + n];
            for (accr, &av) in acc.iter_mut().zip(a4) {
                for (s, &bv) in accr[..tail].iter_mut().zip(brow) {
                    *s += av * bv;
                }
            }
        }
        for (mi, accr) in acc.iter().enumerate() {
            out4[mi * n + j..mi * n + n].copy_from_slice(&accr[..tail]);
        }
    }
    // `kernel` only distinguishes naive from tiled here: the tile body is
    // already a pure mul-then-add pattern LLVM vectorizes, and an
    // intrinsics variant would be structurally identical.
    let _ = kernel;
}

/// Single leftover output row (block height not a multiple of `MR`).
#[allow(clippy::too_many_arguments)]
fn matmul_tn_row(
    kernel: Kernel,
    a: &[f32],
    a_rows: usize,
    a_cols: usize,
    col: usize,
    b: &[f32],
    n: usize,
    orow: &mut [f32],
) {
    let _ = kernel;
    let mut j = 0;
    while j < n {
        let tile = TILE.min(n - j);
        let mut acc = [0.0f32; TILE];
        for kk in 0..a_rows {
            let av = a[kk * a_cols + col];
            let brow = &b[kk * n + j..kk * n + j + tile];
            for (s, &bv) in acc[..tile].iter_mut().zip(brow) {
                *s += av * bv;
            }
        }
        orow[j..j + tile].copy_from_slice(&acc[..tile]);
        j += tile;
    }
}

// ---------------------------------------------------------------------------
// matmul_nt (A · Bᵀ)
// ---------------------------------------------------------------------------

/// Computes a contiguous row block of `out = A · Bᵀ`.
///
/// `a_block` holds the A rows matching `out_block` (`k` columns each), `b`
/// the full right operand in row-major `n_brows x k` layout. Each output
/// cell is the [`dot`] of an A row and a B row; the blocked/simd modes run
/// eight cells per pass (eight independent chains hide the FP add
/// latency), each chain still in exact `k` order.
pub fn matmul_nt_block(
    kernel: Kernel,
    a_block: &[f32],
    k: usize,
    b: &[f32],
    n: usize,
    out_block: &mut [f32],
) {
    if n == 0 || out_block.is_empty() {
        return;
    }
    if k == 0 {
        out_block.fill(0.0);
        return;
    }
    for (arow, orow) in a_block.chunks_exact(k).zip(out_block.chunks_exact_mut(n)) {
        match kernel {
            Kernel::Naive => {
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = dot(arow, &b[j * k..j * k + k]);
                }
            }
            Kernel::Blocked | Kernel::Simd => matmul_nt_row_blocked(arow, k, b, orow),
        }
    }
}

/// Eight B rows per pass; each output cell keeps its own scalar
/// accumulator through the shared `k` loop.
fn matmul_nt_row_blocked(arow: &[f32], k: usize, b: &[f32], orow: &mut [f32]) {
    let n = orow.len();
    let mut j = 0;
    while j + 8 <= n {
        let mut acc = [0.0f32; 8];
        let rows: [&[f32]; 8] = std::array::from_fn(|t| &b[(j + t) * k..(j + t) * k + k]);
        for (kk, &av) in arow.iter().enumerate() {
            for (s, row) in acc.iter_mut().zip(&rows) {
                *s += av * row[kk];
            }
        }
        orow[j..j + 8].copy_from_slice(&acc);
        j += 8;
    }
    for (jj, o) in orow.iter_mut().enumerate().skip(j) {
        *o = dot(arow, &b[jj * k..jj * k + k]);
    }
}

// ---------------------------------------------------------------------------
// centroid distances (IVF k-means assignment)
// ---------------------------------------------------------------------------

/// Computes a contiguous row block of squared-distance surrogates to a
/// centroid table: `out[r][j] = half_cnorm[j] - x_r · c_j`, where
/// `half_cnorm[j] = ½‖c_j‖²`. Minimizing this over `j` is equivalent to
/// minimizing `‖x_r - c_j‖²` (the constant `½‖x_r‖²` term is dropped), so
/// the argmin is the nearest centroid. The dots run through
/// [`matmul_nt_block`], which is bitwise-identical across kernel modes and
/// thread counts; the elementwise flip afterwards is order-free per cell,
/// so the whole surrogate inherits the determinism contract.
pub fn centroid_scores_block(
    kernel: Kernel,
    x_block: &[f32],
    k: usize,
    centroids: &[f32],
    n_centroids: usize,
    half_cnorm: &[f32],
    out_block: &mut [f32],
) {
    debug_assert_eq!(half_cnorm.len(), n_centroids);
    matmul_nt_block(kernel, x_block, k, centroids, n_centroids, out_block);
    for orow in out_block.chunks_exact_mut(n_centroids) {
        for (o, &h) in orow.iter_mut().zip(half_cnorm) {
            *o = h - *o;
        }
    }
}

/// Index of the minimum value in `scores`, breaking ties toward the lowest
/// index (strict `<` keeps the first minimum seen). This is the assignment
/// rule for the IVF k-means quantizer: combined with the deterministic
/// surrogate from [`centroid_scores_block`], assignments are
/// bitwise-reproducible at any thread count. Returns 0 for an empty slice.
pub fn argmin_first(scores: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_v = f32::INFINITY;
    for (j, &s) in scores.iter().enumerate() {
        if s < best_v {
            best_v = s;
            best = j;
        }
    }
    best
}

// ---------------------------------------------------------------------------
// dot + elementwise
// ---------------------------------------------------------------------------

/// Dot product of two equal-length slices — a single sequential add chain,
/// identical in every kernel mode (see the module docs for why it cannot
/// be vectorized without changing the result).
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y[i] += x[i]`. Elementwise kernels are order-free per element, so one
/// implementation serves every mode; the plain loops autovectorize.
pub fn add_slices(y: &mut [f32], x: &[f32]) {
    for (a, b) in y.iter_mut().zip(x) {
        *a += b;
    }
}

/// `y[i] += s * x[i]` (axpy).
pub fn axpy(y: &mut [f32], s: f32, x: &[f32]) {
    for (a, b) in y.iter_mut().zip(x) {
        *a += s * b;
    }
}

/// `y[i] -= x[i]`.
pub fn sub_slices(y: &mut [f32], x: &[f32]) {
    for (a, b) in y.iter_mut().zip(x) {
        *a -= b;
    }
}

/// `y[i] *= s`.
pub fn scale_slice(y: &mut [f32], s: f32) {
    for a in y.iter_mut() {
        *a *= s;
    }
}

/// `dst[i] = f(src[i])`.
pub fn map_slice(src: &[f32], dst: &mut [f32], f: impl Fn(f32) -> f32) {
    for (o, &x) in dst.iter_mut().zip(src) {
        *o = f(x);
    }
}

/// `dst[i] = f(dst[i])`.
pub fn map_slice_inplace(dst: &mut [f32], f: impl Fn(f32) -> f32) {
    for x in dst.iter_mut() {
        *x = f(*x);
    }
}
