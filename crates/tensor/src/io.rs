//! Binary (de)serialization of matrices and named parameter sets.
//!
//! A deliberately tiny format (no serde dependency): little-endian, with a
//! magic header and explicit shapes, so trained models can be checkpointed
//! to disk and reloaded — e.g. train LayerGCN once, then serve
//! recommendations from the saved embedding table.
//!
//! ```text
//! file   := MAGIC u32(version) u32(n_entries) entry*
//! entry  := u32(name_len) name_bytes u64(rows) u64(cols) f32_le*
//! ```

use crate::matrix::Matrix;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"LRGCNv1\0";

/// Errors raised by the checkpoint reader.
#[derive(Debug)]
pub enum IoError {
    Io(io::Error),
    /// Not a checkpoint file, or an unsupported version.
    BadHeader,
    /// Structurally invalid contents.
    Corrupt(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::BadHeader => write!(f, "not an LRGCN checkpoint (bad magic/version)"),
            IoError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes named matrices as a checkpoint.
pub fn write_checkpoint<W: Write>(
    mut w: W,
    entries: &[(&str, &Matrix)],
) -> Result<(), IoError> {
    w.write_all(MAGIC)?;
    w.write_all(&1u32.to_le_bytes())?;
    w.write_all(&(entries.len() as u32).to_le_bytes())?;
    for (name, m) in entries {
        let nb = name.as_bytes();
        w.write_all(&(nb.len() as u32).to_le_bytes())?;
        w.write_all(nb)?;
        w.write_all(&(m.rows() as u64).to_le_bytes())?;
        w.write_all(&(m.cols() as u64).to_le_bytes())?;
        for &v in m.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a checkpoint back as `(name, matrix)` pairs, in file order.
///
/// Hostile-input posture: entry counts, name lengths, shapes and payload
/// values are all validated — a truncated, bit-flipped or adversarial file
/// yields an [`IoError`], never a panic, an unbounded allocation or a
/// non-finite parameter. When the total input size is known up front,
/// prefer [`read_checkpoint_bounded`] (which [`load_checkpoint`] uses) so
/// shape headers larger than the file itself are rejected *before* any
/// allocation.
pub fn read_checkpoint<R: Read>(r: R) -> Result<Vec<(String, Matrix)>, IoError> {
    read_checkpoint_bounded(r, None)
}

/// [`read_checkpoint`] with an optional byte budget: when `total_bytes` is
/// `Some`, every declared name/payload length is checked against the bytes
/// that can still remain in the stream, so a corrupted shape header
/// (`rows*cols` beyond the file size) fails with [`IoError::Corrupt`]
/// instead of a slow EOF after allocating the declared buffer.
pub fn read_checkpoint_bounded<R: Read>(
    mut r: R,
    total_bytes: Option<u64>,
) -> Result<Vec<(String, Matrix)>, IoError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(IoError::BadHeader);
    }
    let version = read_u32(&mut r)?;
    if version != 1 {
        return Err(IoError::BadHeader);
    }
    let n = read_u32(&mut r)? as usize;
    if n > 1_000_000 {
        return Err(IoError::Corrupt(format!("implausible entry count {n}")));
    }
    // Bytes that may still legitimately follow the 16-byte header.
    let mut remaining = total_bytes.map(|t| t.saturating_sub(16));
    let mut budget = |need: u64| -> Result<(), IoError> {
        if let Some(rem) = remaining.as_mut() {
            if need > *rem {
                return Err(IoError::Corrupt(format!(
                    "declared {need} bytes but only {rem} remain in the file"
                )));
            }
            *rem -= need;
        }
        Ok(())
    };
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name_len = read_u32(&mut r)? as usize;
        if name_len > 4096 {
            return Err(IoError::Corrupt(format!("implausible name length {name_len}")));
        }
        budget(4 + name_len as u64)?;
        let mut nb = vec![0u8; name_len];
        r.read_exact(&mut nb)?;
        let name = String::from_utf8(nb)
            .map_err(|_| IoError::Corrupt("non-UTF8 entry name".into()))?;
        let rows = read_u64(&mut r)? as usize;
        let cols = read_u64(&mut r)? as usize;
        let len = rows
            .checked_mul(cols)
            .ok_or_else(|| IoError::Corrupt("shape overflow".into()))?;
        if len > 1 << 30 {
            return Err(IoError::Corrupt(format!("implausible matrix size {rows}x{cols}")));
        }
        budget(16 + 4 * len as u64)?;
        let mut data = vec![0f32; len];
        let mut buf = [0u8; 4];
        for v in &mut data {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
            if !v.is_finite() {
                return Err(IoError::Corrupt(format!(
                    "non-finite value {v} in entry {name:?}"
                )));
            }
        }
        out.push((name, Matrix::from_vec(rows, cols, data)));
    }
    Ok(out)
}

/// The temporary sibling `save_checkpoint` stages into before renaming.
pub fn tmp_path(path: &std::path::Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    std::path::PathBuf::from(os)
}

/// Atomically writes named matrices as a checkpoint file.
///
/// The bytes are staged into `<path>.tmp`, fsynced, and renamed over the
/// final path, so no reader (`--resume`, serve's `/admin/reload`, a
/// concurrent `lrgcn evaluate --load`) can ever observe a half-written
/// checkpoint: either the old file survives intact or the new one is
/// complete. A failed save leaves at most a torn `.tmp` behind — which the
/// reader rejects by magic/bounds checks — never a damaged final file.
///
/// This is also the injection point for [`crate::faultfs`]: with
/// `LRGCN_FAULT` active, a save may deliberately stop after half the bytes
/// (torn write), abort the process (simulated SIGKILL), or panic.
pub fn save_checkpoint(
    path: impl AsRef<std::path::Path>,
    entries: &[(&str, &Matrix)],
) -> Result<(), IoError> {
    let path = path.as_ref();
    let mut bytes = Vec::new();
    write_checkpoint(&mut bytes, entries)?;
    let tmp = tmp_path(path);
    let mut f = std::fs::File::create(&tmp)?;
    if let Some(fault) = crate::faultfs::save_fault() {
        // Every injected save fault is a torn write: half the serialized
        // bytes reach the tmp file, the rename never happens.
        f.write_all(&bytes[..bytes.len() / 2])?;
        let _ = f.sync_all();
        match fault {
            crate::faultfs::SaveFault::Error => {
                return Err(IoError::Io(io::Error::other(
                    "injected fault: torn write during checkpoint save",
                )));
            }
            crate::faultfs::SaveFault::Kill => {
                eprintln!("lrgcn: injected fault: killing process mid-save of {path:?}");
                std::process::abort();
            }
            crate::faultfs::SaveFault::Panic => {
                panic!("injected fault: panic mid-save of {path:?}");
            }
        }
    }
    f.write_all(&bytes)?;
    f.sync_all()?;
    std::fs::rename(&tmp, path)?;
    // Persist the rename itself (POSIX: directory metadata needs its own
    // fsync). Best-effort — some filesystems refuse O_RDONLY dir syncs.
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

/// Loads a checkpoint from a file path. The file size bounds every declared
/// entry length, so hostile shape headers are rejected up front (see
/// [`read_checkpoint_bounded`]). With `LRGCN_FAULT=short_read:<p>` active,
/// a load may deliberately see only a truncated prefix of the file — which
/// the bounded reader then rejects like any other torn file.
pub fn load_checkpoint(
    path: impl AsRef<std::path::Path>,
) -> Result<Vec<(String, Matrix)>, IoError> {
    let bytes = std::fs::read(path)?;
    let visible = if crate::faultfs::read_fault() {
        &bytes[..bytes.len() / 2]
    } else {
        &bytes[..]
    };
    read_checkpoint_bounded(visible, Some(visible.len() as u64))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, IoError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, IoError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_everything() {
        let a = Matrix::from_vec(2, 3, vec![1.0, -2.5, 3.25, f32::MIN_POSITIVE, 0.0, 1e30]);
        let b = Matrix::zeros(0, 5);
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, &[("ego", &a), ("empty", &b)]).expect("write");
        let back = read_checkpoint(buf.as_slice()).expect("read");
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].0, "ego");
        assert_eq!(back[0].1, a);
        assert_eq!(back[1].0, "empty");
        assert_eq!(back[1].1.shape(), (0, 5));
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_checkpoint(&b"NOTLRGCN\x01\0\0\0\0\0\0\0"[..]).expect_err("must fail");
        assert!(matches!(err, IoError::BadHeader));
    }

    #[test]
    fn rejects_truncated_file() {
        let a = Matrix::full(3, 3, 1.0);
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, &[("w", &a)]).expect("write");
        buf.truncate(buf.len() - 5);
        assert!(read_checkpoint(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_implausible_shapes() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(b'x');
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            read_checkpoint(buf.as_slice()),
            Err(IoError::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_non_finite_values() {
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let mut buf = Vec::new();
            // Hand-assemble so the writer's own state cannot mask the check.
            buf.extend_from_slice(MAGIC);
            buf.extend_from_slice(&1u32.to_le_bytes());
            buf.extend_from_slice(&1u32.to_le_bytes());
            buf.extend_from_slice(&1u32.to_le_bytes());
            buf.push(b'w');
            buf.extend_from_slice(&1u64.to_le_bytes());
            buf.extend_from_slice(&2u64.to_le_bytes());
            buf.extend_from_slice(&1.0f32.to_le_bytes());
            buf.extend_from_slice(&bad.to_le_bytes());
            let err = read_checkpoint(buf.as_slice()).expect_err("must reject");
            assert!(matches!(err, IoError::Corrupt(_)), "{bad}: {err}");
        }
    }

    #[test]
    fn bounded_reader_rejects_shapes_beyond_file_size() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(b'w');
        // Declares a 1M x 64 payload that plainly cannot fit in the file.
        buf.extend_from_slice(&1_000_000u64.to_le_bytes());
        buf.extend_from_slice(&64u64.to_le_bytes());
        let err = read_checkpoint_bounded(buf.as_slice(), Some(buf.len() as u64))
            .expect_err("must reject");
        assert!(matches!(err, IoError::Corrupt(_)), "{err}");
        // The unbounded reader only discovers the truncation at EOF.
        assert!(read_checkpoint(buf.as_slice()).is_err());
    }

    #[test]
    fn file_helpers_roundtrip() {
        let dir = std::env::temp_dir().join("lrgcn_io_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("ckpt.bin");
        let a = Matrix::from_vec(1, 4, vec![9.0, 8.0, 7.0, 6.0]);
        save_checkpoint(&path, &[("a", &a)]).expect("save");
        let back = load_checkpoint(&path).expect("load");
        assert_eq!(back[0].1, a);
        assert!(!tmp_path(&path).exists(), "tmp staging file must be renamed away");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn injected_torn_write_leaves_old_file_intact_and_tmp_rejected() {
        let dir = std::env::temp_dir().join("lrgcn_io_fault_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("ckpt.bin");
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        save_checkpoint(&path, &[("a", &a)]).expect("clean save");

        crate::faultfs::set_thread_override(Some("torn_write:save")).unwrap();
        let b = Matrix::from_vec(2, 2, vec![9.0, 9.0, 9.0, 9.0]);
        let err = save_checkpoint(&path, &[("a", &b)]).expect_err("save must fail");
        crate::faultfs::set_thread_override(None).unwrap();
        assert!(err.to_string().contains("injected"), "{err}");

        // The final path still holds the previous generation, bit for bit.
        let back = load_checkpoint(&path).expect("old file must survive");
        assert_eq!(back[0].1, a);
        // The torn leftover exists and is rejected by the corrupt-file checks.
        let tmp = tmp_path(&path);
        assert!(tmp.exists(), "torn .tmp must be left behind");
        assert!(load_checkpoint(&tmp).is_err(), "torn .tmp must not load");
        std::fs::remove_file(&tmp).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_short_read_is_rejected_not_mangled() {
        let dir = std::env::temp_dir().join("lrgcn_io_short_read_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("ckpt.bin");
        let a = Matrix::from_vec(4, 4, vec![0.5; 16]);
        save_checkpoint(&path, &[("a", &a)]).expect("save");

        crate::faultfs::set_thread_override(Some("short_read:1.0")).unwrap();
        let res = load_checkpoint(&path);
        crate::faultfs::set_thread_override(None).unwrap();
        assert!(res.is_err(), "truncated read must be rejected");
        // Without the fault the same file loads fine.
        assert_eq!(load_checkpoint(&path).expect("clean load")[0].1, a);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn probabilistic_io_error_never_corrupts_final_path() {
        let dir = std::env::temp_dir().join("lrgcn_io_prob_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("ckpt.bin");
        crate::faultfs::set_thread_override(Some("io_error:0.5")).unwrap();
        let mut failures = 0;
        for i in 0..20 {
            let m = Matrix::full(3, 3, i as f32);
            match save_checkpoint(&path, &[("w", &m)]) {
                // Every successful save must leave a loadable file with the
                // value it claimed to write.
                Ok(()) => {
                    let back = load_checkpoint(&path).expect("must load after ok save");
                    assert_eq!(back[0].1, m);
                }
                // Every failed save must leave the previous contents valid.
                Err(_) => {
                    failures += 1;
                    if path.exists() {
                        load_checkpoint(&path).expect("old file must stay loadable");
                    }
                }
            }
        }
        crate::faultfs::set_thread_override(None).unwrap();
        assert!(failures > 0, "with p=0.5 over 20 saves some must fail");
        std::fs::remove_file(tmp_path(&path)).ok();
        std::fs::remove_file(&path).ok();
    }
}
